//! Cross-crate integration: the full stack (index → store → log →
//! network) under combined load, verified against a model.

use std::collections::BTreeMap;

use mtkv::{recover, write_checkpoint, Store};
use mtnet::{Client, Server};
use mtworkload::{decimal_key, Rng64};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mt-int-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn network_store_matches_model() {
    let server = Server::start(Store::in_memory(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut rng = Rng64::new(42);
    for i in 0..20_000u64 {
        let key = decimal_key(rng.next_u64());
        let val = i.to_le_bytes().to_vec();
        match rng.below(10) {
            0..=6 => {
                model.insert(key.clone(), val.clone());
                client.put(&key, vec![(0, val)]).unwrap();
            }
            7..=8 => {
                let want = model.remove(&key).is_some();
                let got = client.remove(&key).unwrap();
                assert_eq!(got, want);
            }
            _ => {
                let want = model.get(&key).cloned();
                let got = client
                    .get(&key, Some(vec![0]))
                    .unwrap()
                    .map(|mut c| c.remove(0));
                assert_eq!(got, want);
            }
        }
    }
    // Final sweep: scan the whole store over the network and compare.
    let mut last = Vec::new();
    let mut seen = 0usize;
    loop {
        let rows = client.scan(&last, 500, Some(vec![0])).unwrap();
        if rows.is_empty() {
            break;
        }
        for (k, cols) in &rows {
            assert_eq!(model.get(k), Some(&cols[0]), "{k:?}");
            seen += 1;
        }
        last = rows.last().unwrap().0.clone();
        last.push(0);
    }
    assert_eq!(seen, model.len());
}

#[test]
fn crash_recovery_equivalence_under_concurrency() {
    // Concurrent logged writers; after a "crash", recovery must agree
    // with a reference model on every surviving key (all records were
    // forced, so nothing falls past the cutoff).
    let dir = tmpdir("crash");
    let mut expected: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    {
        let store = Store::persistent(&dir).unwrap();
        let sessions: Vec<_> = (0..4).map(|_| store.session().unwrap()).collect();
        std::thread::scope(|s| {
            for (t, session) in sessions.iter().enumerate() {
                s.spawn(move || {
                    // Disjoint key ranges: the model can be rebuilt
                    // deterministically afterwards.
                    for i in 0..5_000u64 {
                        let key = format!("t{t}/k{i:05}");
                        session.put(key.as_bytes(), &[(0, &(i * 10).to_le_bytes()[..])]);
                    }
                    for i in (0..5_000u64).step_by(3) {
                        let key = format!("t{t}/k{i:05}");
                        session.remove(key.as_bytes());
                    }
                });
            }
        });
        for s in &sessions {
            assert!(s.force_log());
        }
        for t in 0..4 {
            for i in 0..5_000u64 {
                if i % 3 != 0 {
                    expected.insert(format!("t{t}/k{i:05}").into_bytes(), i * 10);
                }
            }
        }
    }
    let (store, report) = recover(&dir, &dir).unwrap();
    assert_eq!(report.dropped_past_cutoff, 0, "all records were forced");
    let session = store.session().unwrap();
    let guard = masstree::pin();
    assert_eq!(store.tree().count_keys(&guard), expected.len());
    drop(guard);
    for (k, v) in expected.iter().step_by(97) {
        assert_eq!(session.get(k, Some(&[0])).unwrap()[0], v.to_le_bytes());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_log_recovery_composition() {
    // checkpoint + more writes + removes + crash: recovery must compose
    // all three sources correctly (version-ordered, tombstone-correct).
    let dir = tmpdir("compose");
    {
        let store = Store::persistent(&dir).unwrap();
        let s = store.session().unwrap();
        for i in 0..3_000u32 {
            s.put(format!("k{i:05}").as_bytes(), &[(0, &i.to_le_bytes()[..])]);
        }
        write_checkpoint(&store, &dir, 3).unwrap();
        // Updates, inserts, removes after the checkpoint.
        for i in 0..1_000u32 {
            s.put(format!("k{i:05}").as_bytes(), &[(0, b"updated")]);
        }
        for i in 3_000..3_500u32 {
            s.put(format!("k{i:05}").as_bytes(), &[(0, &i.to_le_bytes()[..])]);
        }
        for i in 1_000..1_500u32 {
            s.remove(format!("k{i:05}").as_bytes());
        }
        assert!(s.force_log());
    }
    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(report.used_checkpoint);
    let s = store.session().unwrap();
    assert_eq!(s.get(b"k00000", Some(&[0])).unwrap()[0], b"updated");
    assert_eq!(
        s.get(b"k02999", Some(&[0])).unwrap()[0],
        2999u32.to_le_bytes()
    );
    assert_eq!(
        s.get(b"k03499", Some(&[0])).unwrap()[0],
        3499u32.to_le_bytes()
    );
    assert_eq!(s.get(b"k01200", None), None, "post-checkpoint remove wins");
    let guard = masstree::pin();
    assert_eq!(store.tree().count_keys(&guard), 3_000 + 500 - 500);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn double_crash_recovery_is_stable() {
    // Recover, write more, crash again, recover again.
    let dir = tmpdir("double");
    {
        let store = Store::persistent(&dir).unwrap();
        let s = store.session().unwrap();
        for i in 0..1_000u32 {
            s.put(
                format!("gen1/{i:04}").as_bytes(),
                &[(0, &i.to_le_bytes()[..])],
            );
        }
        assert!(s.force_log());
    }
    {
        let (store, _) = recover(&dir, &dir).unwrap();
        let s = store.session().unwrap();
        for i in 0..1_000u32 {
            s.put(
                format!("gen2/{i:04}").as_bytes(),
                &[(0, &i.to_le_bytes()[..])],
            );
        }
        assert!(s.force_log());
    }
    let (store, _) = recover(&dir, &dir).unwrap();
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"gen1/0500", Some(&[0])).unwrap()[0],
        500u32.to_le_bytes()
    );
    assert_eq!(
        s.get(b"gen2/0500", Some(&[0])).unwrap()[0],
        500u32.to_le_bytes()
    );
    let guard = masstree::pin();
    assert_eq!(store.tree().count_keys(&guard), 2_000);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workload_generators_drive_all_structures() {
    // The unified index works for every Figure 8 structure with the
    // actual benchmark workload generator (sanity for the harness).
    let mut gen = mtworkload::DecimalKeys::new(9, 1 << 20);
    let keys: Vec<Vec<u8>> = (&mut gen).take(2_000).collect();
    let g = crossbeam::epoch::pin();
    let mass: masstree::Masstree<u64> = masstree::Masstree::new();
    let four = baselines::FourTree::new();
    let bin =
        baselines::BinaryTree::new(baselines::Compare::IntPrefix, baselines::NodeAlloc::Global);
    let occ = baselines::OccBtree::new(baselines::OccBtreeConfig::permuter());
    for (i, k) in keys.iter().enumerate() {
        mass.put(k, i as u64, &g);
        four.put(k, i as u64, &g);
        bin.put(k, i as u64, &g);
        occ.put(k, i as u64, &g);
    }
    // Duplicate keys resolve to the same (last) value everywhere.
    for k in &keys {
        let want = mass.get(k, &g).copied();
        assert!(want.is_some());
        assert_eq!(four.get(k, &g), want);
        assert_eq!(bin.get(k, &g), want);
        assert_eq!(occ.get(k, &g), want);
    }
}
