//! Shared-prefix key-length workloads (Figure 9 of the paper).
//!
//! "The X axis gives each test's key length in bytes, but only the final
//! 8 bytes vary uniformly. A 0-to-40-byte prefix is the same for every
//! key." These keys make trees that store whole keys inline (or pointers
//! to them) pay a cache miss per comparison, while Masstree's trie
//! structure skips the shared prefix in O(1) per layer.

use crate::Rng64;

/// Generates `total_len`-byte keys: a constant prefix followed by 8
/// uniformly random decimal-ish bytes.
#[derive(Clone, Debug)]
pub struct PrefixedKeys {
    prefix: Vec<u8>,
    rng: Rng64,
    keyspace: u64,
}

impl PrefixedKeys {
    /// `total_len` must be at least 8 (the varying tail).
    pub fn new(total_len: usize, keyspace: u64, seed: u64) -> Self {
        assert!(total_len >= 8, "need room for the varying 8-byte tail");
        let prefix: Vec<u8> = (0..total_len - 8).map(|i| b'A' + (i % 26) as u8).collect();
        PrefixedKeys {
            prefix,
            rng: Rng64::new(seed),
            keyspace: keyspace.max(1),
        }
    }

    /// Key length produced by this generator.
    pub fn key_len(&self) -> usize {
        self.prefix.len() + 8
    }

    /// Renders the key for draw `v` (zero-padded 8-digit decimal tail).
    pub fn key_for(&self, v: u64) -> Vec<u8> {
        let mut k = self.prefix.clone();
        k.extend_from_slice(format!("{:08}", v % 100_000_000).as_bytes());
        k
    }

    pub fn next_key(&mut self) -> Vec<u8> {
        let v = self.rng.below(self.keyspace);
        self.key_for(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_match() {
        for len in [8usize, 16, 24, 32, 40, 48] {
            let mut g = PrefixedKeys::new(len, 1 << 20, 1);
            let k = g.next_key();
            assert_eq!(k.len(), len);
            assert_eq!(g.key_len(), len);
        }
    }

    #[test]
    fn prefix_is_shared_tail_varies() {
        let mut g = PrefixedKeys::new(24, 1 << 20, 2);
        let a = g.next_key();
        let b = g.next_key();
        assert_eq!(a[..16], b[..16], "prefix shared");
        assert_ne!(a[16..], b[16..], "tails differ whp");
    }

    #[test]
    fn eight_byte_keys_have_no_prefix() {
        let mut g = PrefixedKeys::new(8, 100, 3);
        let k = g.next_key();
        assert_eq!(k.len(), 8);
        assert!(k.iter().all(|b| b.is_ascii_digit()));
    }
}
