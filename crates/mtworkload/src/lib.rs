//! Workload generators for the Masstree evaluation (§6.1 and §7 of the
//! paper): uniformly random 1-to-10-byte decimal keys, Zipfian-popularity
//! MYCSB mixes, shared-prefix key-length sweeps, the skewed-partition
//! router of §6.6, and 8-byte alphabetical keys for the hash-table
//! comparison.

pub mod decimal;
pub mod keylen;
pub mod mycsb;
pub mod skew;
pub mod zipf;

pub use decimal::{alpha_key, decimal_key, ycsb_key, DecimalKeys};
pub use keylen::PrefixedKeys;
pub use mycsb::{Mix, MycsbOp, MycsbWorkload};
pub use skew::SkewRouter;
pub use zipf::Zipfian;

/// A small, fast, seedable PRNG (splitmix64) used by all generators so
/// workloads are reproducible across runs and threads.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping; bias is negligible for
        // benchmark bounds (≪ 2^64).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = Rng64::new(3);
        let mut seen = [false; 16];
        for _ in 0..10_000 {
            seen[r.below(16) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(11);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
