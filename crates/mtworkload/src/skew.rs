//! The skewed-partition request router of §6.6.
//!
//! Following Hua et al., skew is modelled with one parameter δ: with 16
//! partitions, 15 receive equal request rates and the last receives
//! (δ+1)× more. At δ=9 the hot partition handles 40% of all requests and
//! the others 4% each. Clients preserve the skew by drawing the partition
//! first, then a key within it.

use crate::Rng64;

/// Routes requests over `parts` partitions with skew δ on the last one.
#[derive(Clone, Debug)]
pub struct SkewRouter {
    parts: usize,
    delta: u64,
    rng: Rng64,
}

impl SkewRouter {
    pub fn new(parts: usize, delta: u64, seed: u64) -> Self {
        assert!(parts >= 1);
        SkewRouter {
            parts,
            delta,
            rng: Rng64::new(seed),
        }
    }

    /// Total request weight (15 × 1 + (δ+1) for 16 partitions).
    fn total_weight(&self) -> u64 {
        (self.parts as u64 - 1) + (self.delta + 1)
    }

    /// The fraction of requests the hot partition receives.
    pub fn hot_fraction(&self) -> f64 {
        (self.delta + 1) as f64 / self.total_weight() as f64
    }

    /// Draws the partition for the next request.
    #[inline]
    pub fn next_partition(&mut self) -> usize {
        let w = self.rng.below(self.total_weight());
        if w < self.parts as u64 - 1 {
            w as usize
        } else {
            self.parts - 1
        }
    }

    pub fn parts(&self) -> usize {
        self.parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_delta_zero() {
        let mut r = SkewRouter::new(16, 0, 1);
        let mut counts = [0u64; 16];
        const N: u64 = 160_000;
        for _ in 0..N {
            counts[r.next_partition()] += 1;
        }
        for c in counts {
            let frac = c as f64 / N as f64;
            assert!((0.05..0.08).contains(&frac), "{frac}");
        }
    }

    #[test]
    fn delta_nine_gives_forty_percent() {
        // §6.6: "at δ = 9, one partition handles 40% of the requests and
        // each other partition handles 4%".
        let mut r = SkewRouter::new(16, 9, 2);
        assert!((r.hot_fraction() - 0.4).abs() < 1e-9);
        let mut counts = [0u64; 16];
        const N: u64 = 1_000_000;
        for _ in 0..N {
            counts[r.next_partition()] += 1;
        }
        let hot = counts[15] as f64 / N as f64;
        assert!((0.39..0.41).contains(&hot), "hot {hot}");
        let cold = counts[0] as f64 / N as f64;
        assert!((0.035..0.045).contains(&cold), "cold {cold}");
    }
}
