//! MYCSB: the paper's modified YCSB (§7).
//!
//! Differences from stock YCSB, per the paper: small keys and values
//! (10 columns × 4 bytes), columns identified by number instead of name,
//! Zipfian key popularity, puts modify existing keys (no inserts, so the
//! popularity distribution is preserved across client processes), and
//! MYCSB-E returns a single column per scanned key.
//!
//! Workload mixes:
//! * **A** — 50% get, 50% put
//! * **B** — 95% get, 5% put
//! * **C** — 100% get
//! * **E** — 95% getrange (1–100 keys, uniform), 5% put

use crate::zipf::Zipfian;
use crate::Rng64;

/// Number of columns per value in MYCSB.
pub const COLUMNS: usize = 10;
/// Bytes per column.
pub const COLUMN_LEN: usize = 4;
/// 5-to-24-byte keys (paper's Figure 13 header).
pub const KEY_PREFIX: &[u8] = b"user";

/// The four benchmark mixes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    A,
    B,
    C,
    E,
}

impl Mix {
    /// Fraction of operations that are reads (gets or scans).
    pub fn read_fraction(self) -> f64 {
        match self {
            Mix::A => 0.5,
            Mix::B | Mix::E => 0.95,
            Mix::C => 1.0,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Mix::A => "MYCSB-A",
            Mix::B => "MYCSB-B",
            Mix::C => "MYCSB-C",
            Mix::E => "MYCSB-E",
        }
    }
}

/// One benchmark operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MycsbOp {
    /// Read all columns of the key (A/B/C gets read 10 columns).
    Get { key: Vec<u8> },
    /// Overwrite one 4-byte column.
    Put {
        key: Vec<u8>,
        column: usize,
        data: [u8; COLUMN_LEN],
    },
    /// Read one column of up to `count` adjacent keys starting at `key`.
    GetRange {
        key: Vec<u8>,
        count: usize,
        column: usize,
    },
}

/// A reproducible MYCSB operation stream.
#[derive(Clone, Debug)]
pub struct MycsbWorkload {
    mix: Mix,
    zipf: Zipfian,
    rng: Rng64,
}

impl MycsbWorkload {
    /// `records` is the number of pre-loaded keys (the paper uses 20M).
    pub fn new(mix: Mix, records: u64, seed: u64) -> Self {
        MycsbWorkload {
            mix,
            zipf: Zipfian::new(records, Zipfian::YCSB_THETA),
            rng: Rng64::new(seed),
        }
    }

    pub fn mix(&self) -> Mix {
        self.mix
    }

    /// The key for record `i` (5-to-24-byte keys: "user" + decimal id).
    pub fn record_key(i: u64) -> Vec<u8> {
        let mut k = KEY_PREFIX.to_vec();
        k.extend_from_slice(i.to_string().as_bytes());
        k
    }

    /// The initial value of every column at load time.
    pub fn initial_columns(i: u64) -> Vec<[u8; COLUMN_LEN]> {
        (0..COLUMNS as u64)
            .map(|c| ((i ^ (c << 56)) as u32).to_le_bytes())
            .collect()
    }

    /// Draws a Zipfian-popular record id (scattered over the keyspace).
    fn popular_record(&mut self) -> u64 {
        let rank = self.zipf.sample(&mut self.rng);
        self.zipf.scatter(rank)
    }

    /// Draws the next `n` operations as one client batch (the batched
    /// MYCSB mode): the stream is identical to calling
    /// [`MycsbWorkload::next_op`] `n` times, so batched and sequential
    /// drivers replay the same operations and differ only in how they
    /// execute them (interleaved multi-get/multi-put vs one at a time).
    pub fn next_ops(&mut self, n: usize) -> Vec<MycsbOp> {
        (0..n).map(|_| self.next_op()).collect()
    }

    /// The next operation in the stream.
    pub fn next_op(&mut self) -> MycsbOp {
        let r = self.rng.f64();
        let read = r < self.mix.read_fraction();
        match (self.mix, read) {
            (Mix::E, true) => {
                let key = Self::record_key(self.popular_record());
                // n uniform in 1..=100 (Figure 13 caption).
                let count = 1 + self.rng.below(100) as usize;
                let column = self.rng.below(COLUMNS as u64) as usize;
                MycsbOp::GetRange { key, count, column }
            }
            (_, true) => MycsbOp::Get {
                key: Self::record_key(self.popular_record()),
            },
            (_, false) => {
                let key = Self::record_key(self.popular_record());
                let column = self.rng.below(COLUMNS as u64) as usize;
                let data = (self.rng.next_u64() as u32).to_le_bytes();
                MycsbOp::Put { key, column, data }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_c_is_all_gets() {
        let mut w = MycsbWorkload::new(Mix::C, 10_000, 1);
        for _ in 0..10_000 {
            assert!(matches!(w.next_op(), MycsbOp::Get { .. }));
        }
    }

    #[test]
    fn mix_a_is_half_puts() {
        let mut w = MycsbWorkload::new(Mix::A, 10_000, 2);
        let mut puts = 0;
        const N: usize = 100_000;
        for _ in 0..N {
            if matches!(w.next_op(), MycsbOp::Put { .. }) {
                puts += 1;
            }
        }
        let frac = puts as f64 / N as f64;
        assert!((0.48..0.52).contains(&frac), "put fraction {frac}");
    }

    #[test]
    fn mix_e_scans_bounded() {
        let mut w = MycsbWorkload::new(Mix::E, 10_000, 3);
        let mut scans = 0;
        for _ in 0..10_000 {
            if let MycsbOp::GetRange { count, column, .. } = w.next_op() {
                assert!((1..=100).contains(&count));
                assert!(column < COLUMNS);
                scans += 1;
            }
        }
        assert!(scans > 9_000, "{scans} scans");
    }

    #[test]
    fn next_ops_matches_sequential_stream() {
        let mut a = MycsbWorkload::new(Mix::A, 10_000, 9);
        let mut b = MycsbWorkload::new(Mix::A, 10_000, 9);
        let batched: Vec<MycsbOp> = a.next_ops(16).into_iter().chain(a.next_ops(16)).collect();
        let sequential: Vec<MycsbOp> = (0..32).map(|_| b.next_op()).collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn record_keys_are_5_to_24_bytes() {
        for i in [0u64, 9, 999_999, 19_999_999] {
            let k = MycsbWorkload::record_key(i);
            assert!((5..=24).contains(&k.len()), "{k:?}");
            assert!(k.starts_with(b"user"));
        }
    }

    #[test]
    fn popularity_is_skewed_after_scatter() {
        let mut w = MycsbWorkload::new(Mix::C, 1000, 4);
        let mut counts = std::collections::HashMap::<Vec<u8>, u64>::new();
        for _ in 0..100_000 {
            if let MycsbOp::Get { key } = w.next_op() {
                *counts.entry(key).or_default() += 1;
            }
        }
        let max = counts.values().max().copied().unwrap();
        let avg = 100_000 / counts.len() as u64;
        assert!(max > 10 * avg, "hot key {max}x vs avg {avg}");
    }
}
