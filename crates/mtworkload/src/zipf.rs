//! Zipfian popularity distribution, as used by YCSB [Cooper et al. 2010]
//! and the paper's MYCSB workloads (§7).
//!
//! Implements the Gray et al. rejection-free inversion method (the same
//! algorithm YCSB uses): draw `u ∈ [0,1)` and map it through the
//! generalized harmonic numbers. Items are returned as ranks in
//! `[0, n)` with rank 0 the most popular; callers scatter ranks over the
//! key space to avoid accidental key-order locality.

/// A Zipfian generator over `[0, n)` with exponent `theta`
/// (YCSB default 0.99).
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// YCSB's default skew.
    pub const YCSB_THETA: f64 = 0.99;

    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0 && theta > 0.0 && theta < 1.0);
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for moderate n; for huge n, sample-and-extrapolate
        // would be needed, but benchmark key counts stay within reach.
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Maps a uniform draw `u ∈ [0,1)` to a rank (0 = most popular).
    #[inline]
    pub fn rank_for(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }

    /// Draws a rank using the provided RNG.
    #[inline]
    pub fn sample(&self, rng: &mut crate::Rng64) -> u64 {
        self.rank_for(rng.f64())
    }

    /// Scatters a rank over the item space so popular keys are not
    /// adjacent in key order (YCSB's fnv-hash scatter).
    #[inline]
    pub fn scatter(&self, rank: u64) -> u64 {
        // FNV-1a 64-bit over the rank's bytes.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in rank.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h % self.n
    }

    /// Theoretical probability of the most popular item.
    pub fn top_probability(&self) -> f64 {
        1.0 / self.zetan
    }

    #[allow(dead_code)]
    fn zeta2(&self) -> f64 {
        self.zeta2theta
    }

    /// Draws a rank and scatters it over the item space in one step —
    /// the usual way to turn a popularity draw into a key id.
    #[inline]
    pub fn sample_scattered(&self, rng: &mut crate::Rng64) -> u64 {
        self.scatter(self.sample(rng))
    }
}

/// A reproducible stream of point-get key ids over `[0, n)`: Zipfian
/// with exponent `theta` (ranks scattered over the id space), or uniform
/// when `theta == 0`. The hot-cache benchmark sweeps `theta` with this
/// one generator so skewed and uniform runs share the key population.
#[derive(Clone, Debug)]
pub struct PointGets {
    dist: Option<Zipfian>,
    n: u64,
    rng: crate::Rng64,
}

impl PointGets {
    /// `theta == 0.0` means uniform; otherwise Zipfian (YCSB range,
    /// `0 < theta < 1`).
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        PointGets {
            dist: (theta > 0.0).then(|| Zipfian::new(n, theta)),
            n,
            rng: crate::Rng64::new(seed),
        }
    }

    /// The next key id in `[0, n)`.
    #[inline]
    pub fn next_key(&mut self) -> u64 {
        match &self.dist {
            Some(z) => z.sample_scattered(&mut self.rng),
            None => self.rng.below(self.n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    #[test]
    fn ranks_in_range() {
        let z = Zipfian::new(1000, Zipfian::YCSB_THETA);
        let mut rng = Rng64::new(1);
        for _ in 0..100_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn distribution_is_skewed() {
        let z = Zipfian::new(10_000, Zipfian::YCSB_THETA);
        let mut rng = Rng64::new(2);
        let mut counts = vec![0u64; 10_000];
        const N: u64 = 1_000_000;
        for _ in 0..N {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let p0 = counts[0] as f64 / N as f64;
        let expect = z.top_probability();
        assert!(
            (p0 - expect).abs() / expect < 0.1,
            "rank0 popularity {p0} vs theory {expect}"
        );
        // Rank 0 must dominate the median rank by orders of magnitude.
        assert!(counts[0] > 100 * counts[5000].max(1));
    }

    #[test]
    fn zipf_monotone_decreasing_head() {
        let z = Zipfian::new(1000, Zipfian::YCSB_THETA);
        let mut rng = Rng64::new(3);
        let mut counts = vec![0u64; 1000];
        for _ in 0..500_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(counts[10] > counts[100]);
    }

    #[test]
    fn point_gets_uniform_and_zipf_stay_in_range() {
        let mut u = PointGets::new(1000, 0.0, 1);
        let mut z = PointGets::new(1000, Zipfian::YCSB_THETA, 1);
        let mut ucounts = vec![0u64; 1000];
        let mut zcounts = vec![0u64; 1000];
        for _ in 0..200_000 {
            ucounts[u.next_key() as usize] += 1;
            zcounts[z.next_key() as usize] += 1;
        }
        // Uniform: no key dominates. Zipf: one (scattered) key does.
        let umax = *ucounts.iter().max().unwrap();
        let zmax = *zcounts.iter().max().unwrap();
        assert!(umax < 1000, "uniform max {umax}");
        assert!(zmax > 10_000, "zipf max {zmax}");
    }

    #[test]
    fn scatter_is_a_fixed_mapping_within_range() {
        let z = Zipfian::new(777, Zipfian::YCSB_THETA);
        for r in 0..777 {
            let s = z.scatter(r);
            assert!(s < 777);
            assert_eq!(s, z.scatter(r));
        }
    }
}
