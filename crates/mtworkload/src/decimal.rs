//! "1-to-10-byte decimal" keys (§6.1): decimal string representations of
//! uniform random numbers in `[0, 2^31)`. About 80% of these keys are 9 or
//! 10 bytes long, which exercises variable-length key support and forces
//! layer-1 trie nodes. Also 8-byte random alphabetical keys for the
//! hash-table comparison (§6.4).

use crate::Rng64;

/// Renders `v mod 2^31` as its decimal byte string (1–10 bytes).
#[inline]
pub fn decimal_key(v: u64) -> Vec<u8> {
    let v = v % 2_147_483_648;
    let mut buf = [0u8; 10];
    let mut n = v;
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    buf[i..].to_vec()
}

/// A YCSB-style record key: `"user"` + the zero-padded decimal digits
/// of a hash of the record id — exactly how stock YCSB builds
/// `usertable` keys (`"user" + fnv(id)`). The multiplier is odd, so the
/// mapping is bijective on `u64`; keys are 23-24 bytes and their digit
/// structure spreads records over several trie layers (unlike the short
/// §6.1 decimal keys, which a single layer absorbs).
#[inline]
pub fn ycsb_key(id: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(24);
    k.extend_from_slice(b"user");
    let hashed = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    k.extend_from_slice(format!("{hashed:019}").as_bytes());
    k
}

/// An 8-byte random alphabetical key (`a..=z`), as used for the §6.4
/// hash-table benchmark ("digit-only keys caused collisions").
#[inline]
pub fn alpha_key(rng: &mut Rng64) -> [u8; 8] {
    let mut k = [0u8; 8];
    for b in &mut k {
        *b = b'a' + rng.below(26) as u8;
    }
    k
}

/// A reproducible stream of decimal keys.
#[derive(Clone, Debug)]
pub struct DecimalKeys {
    rng: Rng64,
    /// Number of distinct underlying integers (keyspace size).
    pub keyspace: u64,
}

impl DecimalKeys {
    /// Keys drawn uniformly from a `keyspace`-sized integer range (the
    /// paper varies the range per experiment).
    pub fn new(seed: u64, keyspace: u64) -> Self {
        DecimalKeys {
            rng: Rng64::new(seed),
            keyspace: keyspace.max(1),
        }
    }

    /// The next random key.
    #[inline]
    pub fn next_key(&mut self) -> Vec<u8> {
        decimal_key(self.rng.below(self.keyspace))
    }

    /// The `i`-th key of a deterministic enumeration of the keyspace
    /// (useful for prefilling stores with exactly-known contents).
    #[inline]
    pub fn nth_key(&self, i: u64) -> Vec<u8> {
        // Feistel-free mixing: deterministic bijection-ish spread.
        let mut r = Rng64::new(i.wrapping_mul(0x2545F4914F6CDD1D));
        decimal_key(r.below(self.keyspace))
    }
}

impl Iterator for DecimalKeys {
    type Item = Vec<u8>;
    fn next(&mut self) -> Option<Vec<u8>> {
        Some(self.next_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_rendering() {
        assert_eq!(decimal_key(0), b"0");
        assert_eq!(decimal_key(7), b"7");
        assert_eq!(decimal_key(1234567890), b"1234567890");
        assert_eq!(decimal_key(2_147_483_647), b"2147483647");
        assert_eq!(decimal_key(2_147_483_648), b"0", "wraps at 2^31");
    }

    #[test]
    fn length_distribution_matches_paper() {
        // §6.1: "80% of the keys are 9 or 10 bytes long" — i.e. the
        // majority of keys are long enough to force layer-1 trie nodes.
        // Uniform draws over [0, 2^31) give ~95% at 9-10 digits; the
        // paper's 80% suggests a slightly different draw, but the
        // property that matters (most keys exceed one slice) holds.
        let mut gen = DecimalKeys::new(1, 2_147_483_648);
        let mut long = 0;
        const N: usize = 100_000;
        for _ in 0..N {
            if gen.next_key().len() >= 9 {
                long += 1;
            }
        }
        let frac = long as f64 / N as f64;
        assert!(frac > 0.75, "9/10-byte fraction = {frac}");
    }

    #[test]
    fn keys_are_at_most_ten_bytes() {
        let mut gen = DecimalKeys::new(2, 2_147_483_648);
        for _ in 0..10_000 {
            let k = gen.next_key();
            assert!((1..=10).contains(&k.len()));
            assert!(k.iter().all(|b| b.is_ascii_digit()));
        }
    }

    #[test]
    fn alpha_keys_are_alphabetic() {
        let mut rng = Rng64::new(5);
        for _ in 0..1000 {
            let k = alpha_key(&mut rng);
            assert!(k.iter().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn nth_key_is_deterministic() {
        let gen = DecimalKeys::new(1, 1 << 20);
        assert_eq!(gen.nth_key(12345), gen.nth_key(12345));
        assert_ne!(gen.nth_key(1), gen.nth_key(2));
    }
}
