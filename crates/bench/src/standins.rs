//! Stand-in systems for the §7 comparison (Figure 13).
//!
//! MongoDB, VoltDB, Redis and memcached cannot be run in this
//! environment, so — per the substitution rule in DESIGN.md §4.8 — each is
//! replaced by a stand-in that reproduces the *architectural property*
//! the paper credits for its result, served through the same `mtnet`
//! network stack Masstree uses:
//!
//! * **memcached stand-in** — 16 hash-table partitions, no persistence,
//!   no range queries; gets batch, puts pay one round trip each (the
//!   paper's memcached client library lacked batched puts).
//! * **Redis stand-in** — 16 single-threaded (mutex-serialized) hash
//!   partitions with append-only logging; columns are fixed-width byte
//!   ranges of the value, as the paper did with Redis.
//! * **VoltDB-like stand-in** — 16 single-threaded *ordered* (tree)
//!   partitions behind a command-dispatch layer: every operation is
//!   rendered to and re-parsed from a stored-procedure-invocation string,
//!   modelling the SQL command path.
//! * **MongoDB-like stand-in** — like the VoltDB stand-in but with a
//!   document layer: each operation builds a BSON-style document with
//!   field names, and a coarse per-partition lock covers it.
//!
//! These stand-ins support honest *shape* comparisons (who wins, rough
//! factors, which workloads a system cannot run); they are not the real
//! systems and EXPERIMENTS.md labels them accordingly.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use baselines::partition_of;
use masstree::Masstree;
use mtkv::{ColValue, LogRecord, LogWriter};
use mtnet::{Backend, ConnState, Request, Response};
use parking_lot::Mutex;

/// Number of partitions (the paper runs 16 instances of each system).
pub const PARTS: usize = 16;

// ---------------------------------------------------------------- blobs

/// A concurrent open-addressing hash table mapping byte keys to byte
/// blobs (whole values). No deletion; updates swap the blob pointer.
pub struct BlobHash {
    slots: Box<[BlobSlot]>,
    mask: usize,
}

struct BlobSlot {
    tag: AtomicU64,
    key: AtomicPtr<u8>,
    key_len: AtomicU64,
    value: AtomicPtr<Vec<u8>>,
}

fn fnv(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h | 1
}

impl BlobHash {
    pub fn with_expected_keys(expected: usize) -> BlobHash {
        let cap = (expected.max(16) * 10 / 3).next_power_of_two();
        BlobHash {
            slots: (0..cap)
                .map(|_| BlobSlot {
                    tag: AtomicU64::new(0),
                    key: AtomicPtr::new(std::ptr::null_mut()),
                    key_len: AtomicU64::new(0),
                    value: AtomicPtr::new(std::ptr::null_mut()),
                })
                .collect(),
            mask: cap - 1,
        }
    }

    fn slot_key(s: &BlobSlot) -> Option<&[u8]> {
        let p = s.key.load(Ordering::Acquire);
        if p.is_null() {
            return None;
        }
        let l = s.key_len.load(Ordering::Acquire) as usize;
        // SAFETY: key blocks are write-once and live with the table.
        Some(unsafe { std::slice::from_raw_parts(p, l) })
    }

    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let h = fnv(key);
        let mut i = h as usize & self.mask;
        loop {
            let s = &self.slots[i];
            let tag = s.tag.load(Ordering::Acquire);
            if tag == 0 {
                return None;
            }
            if tag == h && Self::slot_key(s) == Some(key) {
                let v = s.value.load(Ordering::Acquire);
                if v.is_null() {
                    return None;
                }
                // SAFETY: blobs are epoch-retired on update; calls happen
                // under a pinned guard at the backend layer.
                return Some(unsafe { (*v).clone() });
            }
            i = (i + 1) & self.mask;
        }
    }

    pub fn put(&self, key: &[u8], value: Vec<u8>, guard: &crossbeam::epoch::Guard) {
        let h = fnv(key);
        let vptr = Box::into_raw(Box::new(value));
        let mut i = h as usize & self.mask;
        let mut probes = 0;
        loop {
            let s = &self.slots[i];
            let tag = s.tag.load(Ordering::Acquire);
            if tag == h {
                let k = loop {
                    if let Some(k) = Self::slot_key(s) {
                        break k;
                    }
                    std::hint::spin_loop();
                };
                if k == key {
                    let old = s.value.swap(vptr, Ordering::AcqRel);
                    if !old.is_null() {
                        let oldp = old as usize;
                        // SAFETY: old blob unreachable; epoch protects
                        // in-flight readers.
                        unsafe {
                            guard
                                .defer_unchecked(move || drop(Box::from_raw(oldp as *mut Vec<u8>)));
                        }
                    }
                    return;
                }
            } else if tag == 0
                && s.tag
                    .compare_exchange(0, h, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                let boxed: Box<[u8]> = key.into();
                let len = boxed.len() as u64;
                s.key_len.store(len, Ordering::Release);
                s.key
                    .store(Box::into_raw(boxed).cast::<u8>(), Ordering::Release);
                s.value.store(vptr, Ordering::Release);
                return;
            }
            i = (i + 1) & self.mask;
            probes += 1;
            assert!(probes <= self.mask, "hash table full");
        }
    }
}

impl Drop for BlobHash {
    fn drop(&mut self) {
        for s in self.slots.iter() {
            let k = s.key.load(Ordering::Relaxed);
            if !k.is_null() {
                let l = s.key_len.load(Ordering::Relaxed) as usize;
                // SAFETY: exclusive access.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(k, l)));
                }
            }
            let v = s.value.load(Ordering::Relaxed);
            if !v.is_null() {
                // SAFETY: exclusive access.
                unsafe { drop(Box::from_raw(v)) };
            }
        }
    }
}

// SAFETY: all shared state is atomic; blobs epoch-reclaimed.
unsafe impl Send for BlobHash {}
// SAFETY: as above.
unsafe impl Sync for BlobHash {}

/// Fixed column width used by the byte-range column emulation.
pub const COL_WIDTH: usize = 4;

fn cols_to_blob(cols: &[(u16, Vec<u8>)], old: Option<&[u8]>) -> Vec<u8> {
    // Fixed-width columns laid out back to back (the Redis byte-range
    // trick from §7); variable-width inputs are truncated/padded.
    let max_col = cols.iter().map(|(i, _)| *i as usize + 1).max().unwrap_or(0);
    let old_cols = old.map_or(0, |o| o.len() / COL_WIDTH);
    let ncols = max_col.max(old_cols).max(1);
    let mut blob = vec![0u8; ncols * COL_WIDTH];
    if let Some(o) = old {
        let n = o.len().min(blob.len());
        blob[..n].copy_from_slice(&o[..n]);
    }
    for (i, data) in cols {
        let off = *i as usize * COL_WIDTH;
        let n = data.len().min(COL_WIDTH);
        blob[off..off + n].copy_from_slice(&data[..n]);
    }
    blob
}

fn blob_cols(blob: &[u8], cols: &Option<Vec<u16>>) -> Vec<Vec<u8>> {
    match cols {
        None => blob.chunks(COL_WIDTH).map(|c| c.to_vec()).collect(),
        Some(ids) => ids
            .iter()
            .map(|&i| {
                let off = i as usize * COL_WIDTH;
                blob.get(off..off + COL_WIDTH).unwrap_or(&[]).to_vec()
            })
            .collect(),
    }
}

// ---------------------------------------------------- memcached stand-in

/// Partitioned hash store, no persistence, no scans.
pub struct MemcachedStandin {
    parts: Vec<BlobHash>,
}

impl MemcachedStandin {
    pub fn new(expected_keys: usize) -> Arc<MemcachedStandin> {
        Arc::new(MemcachedStandin {
            parts: (0..PARTS)
                .map(|_| BlobHash::with_expected_keys(expected_keys / PARTS + 16))
                .collect(),
        })
    }
}

struct MemcachedConn(Arc<MemcachedStandin>);

/// Arc-wrapped backends (connections share the store).
pub struct ArcBackend<T: ?Sized>(pub Arc<T>);

impl Backend for ArcBackend<MemcachedStandin> {
    fn connect(&self) -> Box<dyn ConnState> {
        Box::new(MemcachedConn(Arc::clone(&self.0)))
    }
}

impl ConnState for MemcachedConn {
    fn execute(&mut self, req: Request) -> Response {
        let guard = crossbeam::epoch::pin();
        match req {
            Request::Get { key, cols } => {
                let p = partition_of(&key, PARTS);
                Response::Value(
                    self.0.parts[p]
                        .get(&key)
                        .map(|b: Vec<u8>| blob_cols(&b, &cols)),
                )
            }
            Request::Put { key, cols } => {
                let p = partition_of(&key, PARTS);
                let old = self.0.parts[p].get(&key);
                let blob = cols_to_blob(&cols, old.as_deref());
                self.0.parts[p].put(&key, blob, &guard);
                Response::PutOk(0)
            }
            Request::Remove { .. } => Response::RemoveOk(false),
            // memcached has no range queries (§7: "N/A").
            Request::Scan { .. } => Response::Rows(vec![]),
            Request::Stats | Request::Flush | Request::Sync => Response::Stats(Default::default()),
            Request::StatsEx => Response::StatsEx(Default::default()),
        }
    }
}

// -------------------------------------------------------- Redis stand-in

/// Partitioned, mutex-serialized (single-threaded-instance) hash store
/// with append-only logging.
pub struct RedisStandin {
    parts: Vec<Mutex<BlobHash>>,
    logs: Vec<LogWriter>,
}

impl RedisStandin {
    pub fn new(expected_keys: usize, log_dir: &std::path::Path) -> std::io::Result<Arc<Self>> {
        std::fs::create_dir_all(log_dir)?;
        let mut logs = Vec::with_capacity(PARTS);
        for i in 0..PARTS {
            logs.push(LogWriter::open(log_dir.join(format!("log-redis-{i}")))?);
        }
        Ok(Arc::new(RedisStandin {
            parts: (0..PARTS)
                .map(|_| Mutex::new(BlobHash::with_expected_keys(expected_keys / PARTS + 16)))
                .collect(),
            logs,
        }))
    }
}

struct RedisConn(Arc<RedisStandin>);

impl Backend for ArcBackend<RedisStandin> {
    fn connect(&self) -> Box<dyn ConnState> {
        Box::new(RedisConn(Arc::clone(&self.0)))
    }
}

impl ConnState for RedisConn {
    fn execute(&mut self, req: Request) -> Response {
        let guard = crossbeam::epoch::pin();
        match req {
            Request::Get { key, cols } => {
                let p = partition_of(&key, PARTS);
                let part = self.0.parts[p].lock();
                Response::Value(part.get(&key).map(|b: Vec<u8>| blob_cols(&b, &cols)))
            }
            Request::Put { key, cols } => {
                let p = partition_of(&key, PARTS);
                {
                    let part = self.0.parts[p].lock();
                    let old = part.get(&key);
                    let blob = cols_to_blob(&cols, old.as_deref());
                    part.put(&key, blob, &guard);
                }
                self.0.logs[p].append(&LogRecord::Put {
                    timestamp: mtkv::clock::now(),
                    version: 0,
                    key,
                    cols,
                });
                Response::PutOk(0)
            }
            Request::Remove { .. } => Response::RemoveOk(false),
            Request::Scan { .. } => Response::Rows(vec![]),
            // Stand-ins model data paths only; durability admin
            // requests answer with empty stats.
            Request::Stats | Request::Flush | Request::Sync => Response::Stats(Default::default()),
            Request::StatsEx => Response::StatsEx(Default::default()),
        }
    }
}

// ----------------------------------------- partitioned tree stand-ins

/// Which heavyweight per-operation path to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeStandinStyle {
    /// VoltDB-like: stored-procedure command dispatch per operation.
    VoltLike,
    /// MongoDB-like: document construction with named fields per op.
    MongoLike,
}

/// 16 mutex-serialized ordered partitions (each a Masstree of column
/// values) behind a synthetic command-processing layer.
pub struct TreeStandin {
    parts: Vec<Mutex<Masstree<ColValue>>>,
    style: TreeStandinStyle,
    versions: AtomicU64,
}

impl TreeStandin {
    pub fn new(style: TreeStandinStyle) -> Arc<TreeStandin> {
        Arc::new(TreeStandin {
            parts: (0..PARTS).map(|_| Mutex::new(Masstree::new())).collect(),
            style,
            versions: AtomicU64::new(1),
        })
    }

    /// The synthetic command layer: real serialization work standing in
    /// for SQL/stored-procedure dispatch or BSON document handling.
    fn command_overhead(&self, op: &str, key: &[u8]) {
        match self.style {
            TreeStandinStyle::VoltLike => {
                // Render and re-parse a procedure invocation.
                let cmd = format!("EXEC {op} ('{}');", String::from_utf8_lossy(key));
                let parsed: Vec<&str> = cmd.split(['(', ')', '\'', ';']).collect();
                std::hint::black_box(parsed);
            }
            TreeStandinStyle::MongoLike => {
                // Build a field-named document and a response document.
                let mut doc: Vec<(String, Vec<u8>)> = Vec::with_capacity(12);
                doc.push(("_id".to_string(), key.to_vec()));
                for i in 0..10 {
                    doc.push((format!("field{i}"), vec![0u8; 4]));
                }
                let encoded: usize = doc.iter().map(|(k, v)| k.len() + v.len() + 2).sum();
                std::hint::black_box((doc, encoded));
            }
        }
    }
}

struct TreeConn(Arc<TreeStandin>);

impl Backend for ArcBackend<TreeStandin> {
    fn connect(&self) -> Box<dyn ConnState> {
        Box::new(TreeConn(Arc::clone(&self.0)))
    }
}

impl ConnState for TreeConn {
    fn execute(&mut self, req: Request) -> Response {
        let s = &self.0;
        let guard = crossbeam::epoch::pin();
        match req {
            Request::Get { key, cols } => {
                s.command_overhead("get", &key);
                let p = partition_of(&key, PARTS);
                let part = s.parts[p].lock();
                let out = part.get(&key, &guard).map(|v| match &cols {
                    None => v.cols(),
                    Some(ids) => ids
                        .iter()
                        .map(|&i| v.col(i as usize).unwrap_or(&[]).to_vec())
                        .collect(),
                });
                Response::Value(out)
            }
            Request::Put { key, cols } => {
                s.command_overhead("put", &key);
                let p = partition_of(&key, PARTS);
                let version = s.versions.fetch_add(1, Ordering::Relaxed);
                let updates: Vec<(usize, &[u8])> = cols
                    .iter()
                    .map(|(i, d)| (*i as usize, d.as_slice()))
                    .collect();
                let part = s.parts[p].lock();
                part.put_with(
                    &key,
                    |old| match old {
                        None => ColValue::from_updates(version, &updates),
                        Some(prev) => prev.with_updates(version, &updates),
                    },
                    &guard,
                );
                Response::PutOk(version)
            }
            Request::Remove { key } => {
                s.command_overhead("remove", &key);
                let p = partition_of(&key, PARTS);
                let part = s.parts[p].lock();
                Response::RemoveOk(part.remove(&key, &guard).is_some())
            }
            Request::Scan {
                key, count, cols, ..
            } => {
                s.command_overhead("scan", &key);
                // Cross-partition merge: collect `count` candidates from
                // every partition, then merge-sort (partitioned ordered
                // stores pay this on every range query — §7's "VoltDB's
                // range query support lags behind its pure gets").
                let mut all: Vec<(Vec<u8>, Vec<Vec<u8>>)> = Vec::new();
                for part in &s.parts {
                    let t = part.lock();
                    for (k, v) in t.get_range(&key, count as usize, &guard) {
                        let row = match &cols {
                            None => v.cols(),
                            Some(ids) => ids
                                .iter()
                                .map(|&i| v.col(i as usize).unwrap_or(&[]).to_vec())
                                .collect(),
                        };
                        all.push((k, row));
                    }
                }
                all.sort_by(|a, b| a.0.cmp(&b.0));
                all.truncate(count as usize);
                Response::Rows(all)
            }
            Request::Stats | Request::Flush | Request::Sync => Response::Stats(Default::default()),
            Request::StatsEx => Response::StatsEx(Default::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_hash_roundtrip() {
        let h = BlobHash::with_expected_keys(100);
        let g = crossbeam::epoch::pin();
        assert_eq!(h.get(b"k"), None);
        h.put(b"k", vec![1, 2, 3], &g);
        assert_eq!(h.get(b"k"), Some(vec![1, 2, 3]));
        h.put(b"k", vec![9], &g);
        assert_eq!(h.get(b"k"), Some(vec![9]));
    }

    #[test]
    fn column_blob_mapping() {
        let blob = cols_to_blob(&[(0, b"aaaa".to_vec()), (2, b"cc".to_vec())], None);
        assert_eq!(blob.len(), 3 * COL_WIDTH);
        assert_eq!(&blob[0..4], b"aaaa");
        assert_eq!(&blob[8..10], b"cc");
        let cols = blob_cols(&blob, &Some(vec![0, 2]));
        assert_eq!(cols[0], b"aaaa");
        assert_eq!(&cols[1][..2], b"cc");
        // Update preserves other columns.
        let blob2 = cols_to_blob(&[(1, b"bbbb".to_vec())], Some(&blob));
        assert_eq!(&blob2[0..4], b"aaaa");
        assert_eq!(&blob2[4..8], b"bbbb");
    }

    #[test]
    fn tree_standin_serves_all_ops() {
        let s = TreeStandin::new(TreeStandinStyle::VoltLike);
        let mut conn = TreeConn(Arc::clone(&s));
        let put = conn.execute(Request::Put {
            key: b"user5".to_vec(),
            cols: vec![(0, b"aaaa".to_vec())],
        });
        assert!(matches!(put, Response::PutOk(_)));
        let got = conn.execute(Request::Get {
            key: b"user5".to_vec(),
            cols: Some(vec![0]),
        });
        assert_eq!(got, Response::Value(Some(vec![b"aaaa".to_vec()])));
        // Scan across partitions returns merged sorted rows.
        for i in 0..50u32 {
            conn.execute(Request::Put {
                key: format!("scan{i:03}").into_bytes(),
                cols: vec![(0, i.to_le_bytes().to_vec())],
            });
        }
        let rows = conn.execute(Request::Scan {
            key: b"scan".to_vec(),
            count: 10,
            cols: Some(vec![0]),
            resume: None,
        });
        if let Response::Rows(rows) = rows {
            assert_eq!(rows.len(), 10);
            assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
            assert_eq!(rows[0].0, b"scan000");
        } else {
            panic!("expected rows");
        }
    }

    #[test]
    fn memcached_standin_basics() {
        let s = MemcachedStandin::new(1000);
        let mut conn = MemcachedConn(Arc::clone(&s));
        conn.execute(Request::Put {
            key: b"k".to_vec(),
            cols: vec![(0, b"abcd".to_vec())],
        });
        let got = conn.execute(Request::Get {
            key: b"k".to_vec(),
            cols: Some(vec![0]),
        });
        assert_eq!(got, Response::Value(Some(vec![b"abcd".to_vec()])));
        // No scans.
        assert_eq!(
            conn.execute(Request::Scan {
                key: vec![],
                count: 5,
                cols: None,
                resume: None,
            }),
            Response::Rows(vec![])
        );
    }
}
