//! Shared benchmark harness for regenerating the paper's tables and
//! figures (§6–§7). Each figure has a binary under `src/bin/`; this
//! library provides thread orchestration, throughput measurement, a
//! unified index interface over every structure in the factor analysis,
//! and simple CLI parameter handling.
//!
//! Absolute numbers will not match the paper's 2012 Opteron testbed; the
//! harness reproduces *shapes*: orderings, ratios and crossovers (see
//! EXPERIMENTS.md).

pub mod params;
pub mod runner;
pub mod standins;
pub mod unified;

pub use params::Params;
pub use runner::{run_fixed_ops, run_timed, Throughput};
pub use unified::AnyIndex;

/// Host/run metadata lines for a `BENCH_*.json` payload: the machine's
/// `available_parallelism` and the run's worker/thread count. Every
/// emitter includes this so numbers from the single-core CI container
/// are distinguishable from real multicore runs when comparing
/// artifacts. Returns complete `"key": value,` lines (two-space
/// indented, trailing-comma) ready to splice after the opening brace.
pub fn host_meta_json(workers: usize) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    format!("  \"available_parallelism\": {cores},\n  \"workers\": {workers},\n")
}
