//! **Figure 9** — performance effect of key length with shared prefixes
//! (§6.4): for each key length (8–48 bytes, only the final 8 bytes
//! varying), a 16-core get workload on Masstree vs the "+Permuter" OCC
//! B-tree. The paper: Masstree reaches 3.4× the B-tree for long keys and
//! 1.4× even at 16 bytes.

use std::sync::atomic::Ordering;

use bench::unified::AnyIndex;
use bench::{run_timed, Params};
use mtworkload::{PrefixedKeys, Rng64};

fn main() {
    let p = Params::from_args();
    let keys = p.keys.min(80_000_000);
    println!(
        "# Figure 9: key-length sweep — {} keys, {} threads, {:.1}s per point",
        keys, p.threads, p.secs
    );
    println!(
        "{:<10} {:>16} {:>18} {:>8}",
        "keylen(B)", "Masstree Mreq/s", "+Permuter Mreq/s", "ratio"
    );
    for len in [8usize, 16, 24, 32, 40, 48] {
        let keyspace = (keys as u64).min(100_000_000);
        let gen = PrefixedKeys::new(len, keyspace, 42);
        let mut results = Vec::new();
        for which in ["masstree", "permuter"] {
            let idx = match which {
                "masstree" => AnyIndex::masstree(),
                _ => bench::unified::Fig8Config::PlusPermuter.build(keys),
            };
            // Prefill in parallel.
            let per_thread = keys / p.threads;
            bench::run_fixed_ops(p.threads, |tid| {
                let g = gen.clone();
                let mut rng = Rng64::new(tid as u64 * 77 + 1);
                let guard = crossbeam::epoch::pin();
                for i in 0..per_thread {
                    let k = g.key_for(rng.below(keyspace));
                    idx.put(&k, i as u64, &guard);
                }
                per_thread as u64
            });
            let t = run_timed(p.threads, p.secs, |tid, stop| {
                let g = gen.clone();
                let mut rng = Rng64::new(tid as u64 * 77 + 1);
                let guard = crossbeam::epoch::pin();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = g.key_for(rng.below(keyspace));
                    std::hint::black_box(idx.get(&k, &guard));
                    n += 1;
                }
                n
            });
            results.push(t.mreq_per_sec());
        }
        println!(
            "{:<10} {:>16.2} {:>18.2} {:>8.2}",
            len,
            results[0],
            results[1],
            results[0] / results[1]
        );
    }
    println!("# paper: ratio grows from ~1.0 (8B) through 1.4 (16B) to ~3.4 (48B)");
}
