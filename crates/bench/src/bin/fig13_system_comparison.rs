//! **Figure 13** — system comparison (§7): Masstree vs stand-ins for
//! MongoDB, VoltDB, Redis and memcached (see `bench::standins` and
//! DESIGN.md §4.8 — the real systems cannot run here, so each stand-in
//! reproduces the architectural property the paper credits for its
//! result; rows are labelled accordingly).
//!
//! Workloads, as in the paper: uniform-popularity 1-to-10-byte decimal
//! keys with one 8-byte column (get, put, 1-core get, 1-core put), and
//! Zipfian MYCSB-A/B/C/E (10 × 4-byte columns, puts modify existing
//! keys). Every system is driven through the same network stack with
//! batched, pipelined clients. All servers are preloaded with the same
//! records.

use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use bench::standins::{ArcBackend, MemcachedStandin, RedisStandin, TreeStandin, TreeStandinStyle};
use bench::{run_timed, Params};
use mtkv::Store;
use mtnet::{Client, Request, Response, Server};
use mtworkload::{decimal_key, Mix, MycsbOp, MycsbWorkload, Rng64};

const BATCH: usize = 128;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Wl {
    UniformGet,
    UniformPut,
    Mycsb(Mix),
}

impl Wl {
    fn label(self) -> String {
        match self {
            Wl::UniformGet => "get (uniform)".into(),
            Wl::UniformPut => "put (uniform)".into(),
            Wl::Mycsb(m) => m.name().into(),
        }
    }
}

struct SystemUnderTest {
    name: &'static str,
    server: Server,
    /// Which workloads this system supports (the paper marks N/A).
    supports: fn(Wl) -> bool,
    /// Whether puts may be batched (the paper's memcached client library
    /// could not batch puts, which §7 calls out as decisive).
    batched_puts: bool,
}

fn main() {
    let p = Params::from_args();
    let records: u64 = (p.keys as u64).clamp(10_000, 20_000_000);
    let dir = std::env::temp_dir().join(format!("fig13-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    println!(
        "# Figure 13: system comparison — {records} records, {} client threads, {:.1}s per cell",
        p.threads, p.secs
    );
    println!("# stand-ins are architectural models, not the real systems (DESIGN.md §4.8)");

    let masstree_store = Store::persistent(&dir.join("masstree")).unwrap();
    let systems: Vec<SystemUnderTest> = vec![
        SystemUnderTest {
            name: "Masstree",
            server: Server::start(Arc::clone(&masstree_store), "127.0.0.1:0").unwrap(),
            supports: |_| true,
            batched_puts: true,
        },
        SystemUnderTest {
            name: "Mongo-like",
            server: Server::start_backend(
                Arc::new(ArcBackend(TreeStandin::new(TreeStandinStyle::MongoLike))),
                "127.0.0.1:0",
            )
            .unwrap(),
            supports: |_| true,
            batched_puts: true,
        },
        SystemUnderTest {
            name: "Volt-like",
            server: Server::start_backend(
                Arc::new(ArcBackend(TreeStandin::new(TreeStandinStyle::VoltLike))),
                "127.0.0.1:0",
            )
            .unwrap(),
            supports: |_| true,
            batched_puts: true,
        },
        SystemUnderTest {
            name: "Redis-like",
            server: Server::start_backend(
                Arc::new(ArcBackend(
                    RedisStandin::new(records as usize, &dir.join("redis")).unwrap(),
                )),
                "127.0.0.1:0",
            )
            .unwrap(),
            // Hash store: no MYCSB-E (range queries).
            supports: |w| !matches!(w, Wl::Mycsb(Mix::E)),
            batched_puts: true,
        },
        SystemUnderTest {
            name: "Memcached-like",
            server: Server::start_backend(
                Arc::new(ArcBackend(MemcachedStandin::new(records as usize))),
                "127.0.0.1:0",
            )
            .unwrap(),
            // No ranges, no individual-column updates (MYCSB-A/B).
            supports: |w| matches!(w, Wl::UniformGet | Wl::UniformPut | Wl::Mycsb(Mix::C)),
            batched_puts: false,
        },
    ];

    // ---- preload every system with the same records.
    eprintln!("preloading {} systems ...", systems.len());
    for sys in &systems {
        preload(sys.server.addr(), records, p.threads);
    }

    let workloads = [
        Wl::UniformGet,
        Wl::UniformPut,
        Wl::Mycsb(Mix::A),
        Wl::Mycsb(Mix::B),
        Wl::Mycsb(Mix::C),
        Wl::Mycsb(Mix::E),
    ];
    print!("{:<16}", "workload");
    for sys in &systems {
        print!(" {:>15}", sys.name);
    }
    println!();
    for wl in workloads {
        print!("{:<16}", wl.label());
        let mut masstree_rate = None;
        for sys in &systems {
            if !(sys.supports)(wl) {
                print!(" {:>15}", "N/A");
                continue;
            }
            let rate = drive(sys, wl, records, &p);
            let rel = masstree_rate.get_or_insert(rate);
            print!(" {:>9.2} {:>4.0}%", rate, 100.0 * rate / *rel);
        }
        println!();
    }
    // 1-core rows (uniform only, like the paper).
    for wl in [Wl::UniformGet, Wl::UniformPut] {
        let p1 = Params {
            threads: 1,
            ..p.clone()
        };
        print!(
            "{:<16}",
            format!(
                "1-core {}",
                if wl == Wl::UniformGet { "get" } else { "put" }
            )
        );
        let mut masstree_rate = None;
        for sys in &systems {
            if !(sys.supports)(wl) {
                print!(" {:>15}", "N/A");
                continue;
            }
            let rate = drive(sys, wl, records, &p1);
            let rel = masstree_rate.get_or_insert(rate);
            print!(" {:>9.2} {:>4.0}%", rate, 100.0 * rate / *rel);
        }
        println!();
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("# paper: Masstree ≥ all tree/persistent stores on every row;");
    println!("#        memcached edges out Masstree only on uniform 16-core get (107%)");
}

/// Loads `records` keys (both keyspaces: decimal for uniform rows, MYCSB
/// user keys) through the network.
fn preload(addr: SocketAddr, records: u64, threads: usize) {
    let per = records / threads as u64;
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            s.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let (lo, hi) = (t * per, ((t + 1) * per).min(records));
                for i in lo..hi {
                    // MYCSB record with 10 columns.
                    let cols: Vec<(u16, Vec<u8>)> = MycsbWorkload::initial_columns(i)
                        .into_iter()
                        .enumerate()
                        .map(|(c, d)| (c as u16, d.to_vec()))
                        .collect();
                    c.queue(&Request::Put {
                        key: MycsbWorkload::record_key(i),
                        cols,
                    });
                    // Decimal-key record with one 8-byte column.
                    c.queue(&Request::Put {
                        key: decimal_key(i),
                        cols: vec![(0, i.to_le_bytes().to_vec())],
                    });
                    if i % (BATCH as u64 / 2) == 0 {
                        c.execute_batch().unwrap();
                    }
                }
                c.execute_batch().unwrap();
            });
        }
    });
}

/// Drives one workload cell and returns Mreq/s.
fn drive(sys: &SystemUnderTest, wl: Wl, records: u64, p: &Params) -> f64 {
    let addr = sys.server.addr();
    let batched_puts = sys.batched_puts;
    let t = run_timed(p.threads, p.secs, move |tid, stop| {
        let mut c = Client::connect(addr).unwrap();
        let mut rng = Rng64::new(31 + tid as u64);
        let mut my = MycsbWorkload::new(
            match wl {
                Wl::Mycsb(m) => m,
                _ => Mix::C,
            },
            records,
            77 + tid as u64,
        );
        let mut done = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let mut queued = 0usize;
            while queued < BATCH {
                let req = match wl {
                    Wl::UniformGet => Request::Get {
                        key: decimal_key(rng.below(records)),
                        cols: Some(vec![0]),
                    },
                    Wl::UniformPut => Request::Put {
                        key: decimal_key(rng.below(records)),
                        cols: vec![(0, rng.next_u64().to_le_bytes().to_vec())],
                    },
                    Wl::Mycsb(_) => match my.next_op() {
                        MycsbOp::Get { key } => Request::Get { key, cols: None },
                        MycsbOp::Put { key, column, data } => Request::Put {
                            key,
                            cols: vec![(column as u16, data.to_vec())],
                        },
                        MycsbOp::GetRange { key, count, column } => Request::Scan {
                            key,
                            count: count as u32,
                            cols: Some(vec![column as u16]),
                            resume: None,
                        },
                    },
                };
                let is_put = matches!(req, Request::Put { .. });
                c.queue(&req);
                queued += 1;
                if is_put && !batched_puts {
                    // One round trip per put (§7's memcached limitation).
                    break;
                }
            }
            let responses = c.execute_batch().unwrap();
            debug_assert!(responses
                .iter()
                .all(|r| !matches!(r, Response::Rows(_)) || matches!(wl, Wl::Mycsb(Mix::E))));
            done += queued as u64;
        }
        done
    });
    t.mreq_per_sec()
}
