//! **Figure 11** — shared vs hard-partitioned Masstree under skew (§6.6).
//!
//! Skew model (Hua et al.): 15 partitions receive equal request rates,
//! the 16th receives (δ+1)× more. Hard-partitioned: 16 single-core
//! Masstree instances, each request processed only by its partition's
//! core — the hot core saturates and the others idle, because clients
//! preserve the skew. Shared: one concurrent Masstree, any core serves
//! any request. The paper: partitioned wins ~1.5× at δ=0; shared wins
//! 3.5× at δ=9.

use std::sync::atomic::Ordering;

use baselines::{partition_of, PartitionedMasstree};
use bench::{run_timed, Params, Throughput};
use masstree::Masstree;
use mtworkload::{decimal_key, Rng64, SkewRouter};

const PARTS: usize = 16;

fn main() {
    let p = Params::from_args();
    let threads = p.threads.clamp(1, PARTS);
    println!(
        "# Figure 11: skew — {} keys, {} cores, {:.1}s per point",
        p.keys, threads, p.secs
    );

    // Pre-generate per-partition key pools so the workload draws keys
    // from the requested partition without rejection sampling.
    let keyspace = p.keys as u64;
    let mut pools: Vec<Vec<Vec<u8>>> = vec![Vec::new(); PARTS];
    {
        let mut rng = Rng64::new(4242);
        let per_pool = (p.keys / PARTS).clamp(1, 200_000);
        while pools.iter().any(|q| q.len() < per_pool) {
            let k = decimal_key(rng.below(keyspace));
            let part = partition_of(&k, PARTS);
            if pools[part].len() < per_pool {
                pools[part].push(k);
            }
        }
    }

    // Shared tree, prefilled.
    let shared: Masstree<u64> = Masstree::new();
    {
        let guard = masstree::pin();
        let mut rng = Rng64::new(4242);
        for i in 0..p.keys {
            shared.put(&decimal_key(rng.below(keyspace)), i as u64, &guard);
        }
    }
    // Hard-partitioned instances, prefilled with the same keys.
    let mut pm = PartitionedMasstree::new(PARTS);
    {
        let mut rng = Rng64::new(4242);
        for i in 0..p.keys {
            pm.load(&decimal_key(rng.below(keyspace)), i as u64);
        }
    }
    let parts = pm.into_parts();

    println!(
        "{:<5} {:>16} {:>22} {:>8}",
        "delta", "shared Mreq/s", "partitioned Mreq/s", "ratio"
    );
    for delta in 0..=9u64 {
        // ---- shared: every core draws from the skewed request stream.
        let sh: Throughput = run_timed(threads, p.secs, |tid, stop| {
            let mut router = SkewRouter::new(PARTS, delta, 7 + tid as u64);
            let mut rng = Rng64::new(1000 + tid as u64);
            let guard = masstree::pin();
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let part = router.next_partition();
                let pool = &pools[part];
                let k = &pool[rng.below(pool.len() as u64) as usize];
                std::hint::black_box(shared.get(k, &guard));
                n += 1;
            }
            n
        });

        // ---- hard-partitioned: core i serves only partition i. Clients
        // preserve the skew, so while any partition's queue is saturated
        // the others idle. Model: each core processes its own stream for
        // the same wall time; the admissible *balanced* throughput is
        // limited by the hot partition:
        //     total = hot_rate / hot_fraction
        // (equivalently: other cores can only use work in proportion).
        let rates: Vec<f64> = {
            let mut per_core = vec![0u64; PARTS];
            let t = run_timed(PARTS.min(threads.max(1)), p.secs, |tid, stop| {
                // With fewer measurement threads than partitions, each
                // thread serves partitions tid, tid+T, ... sequentially
                // (only used when --threads < 16).
                let mut n = 0u64;
                let mut rng = Rng64::new(2000 + tid as u64);
                let part = tid % PARTS;
                let tree = &parts[part];
                let pool = &pools[part];
                while !stop.load(Ordering::Relaxed) {
                    let k = &pool[rng.below(pool.len() as u64) as usize];
                    std::hint::black_box(tree.get(k));
                    n += 1;
                }
                n
            });
            let _ = &mut per_core;
            // All cores run uncontended single-core gets; use the mean
            // single-core service rate.
            vec![t.req_per_sec() / PARTS.min(threads.max(1)) as f64; PARTS]
        };
        let hot_fraction = (delta + 1) as f64 / (15 + delta + 1) as f64;
        let hot_rate = rates[PARTS - 1];
        // The hot core saturates: system throughput = hot_rate / fraction,
        // capped by the sum of all cores (uniform case).
        let part_total = (hot_rate / hot_fraction).min(rates.iter().sum::<f64>());
        println!(
            "{:<5} {:>16.2} {:>22.2} {:>8.2}",
            delta,
            sh.mreq_per_sec(),
            part_total / 1e6,
            sh.mreq_per_sec() / (part_total / 1e6),
        );
    }
    println!("# paper: partitioned 1.5x better at δ=0; shared 3.5x better at δ=9");
}
