//! Replication bench: how fast does a cold follower catch up, and how
//! far behind does a live follower trail a write-saturated primary?
//!
//! Two measurements over a loopback primary→follower pair:
//!
//! * **Cold catch-up**: prefill the primary's log, then start a fresh
//!   follower and time mirror + replay until its reported lag is zero —
//!   the "restore a read replica" path (MB/s of log applied).
//! * **Steady-state tail lag**: keep writing at full speed while a
//!   caught-up follower streams the live tail; sample its lag (bytes
//!   and primary-clock microseconds) to report the staleness bound a
//!   read actually sees.
//!
//! Writes `BENCH_repl.json` at the repository root. Fails (exit 1) only
//! if the follower cannot catch up at all — lag numbers are reported,
//! not gated, since loopback staleness is hardware-dependent.
//!
//! Runtime knobs (env or flags, see `bench::Params`): `MT_SECS` scales
//! the steady-state window.

use std::time::{Duration, Instant};

use mtkv::mtobs::Kind;
use mtkv::{DurabilityConfig, Store};
use mtnet::{Follower, ReplSource};

const PREFILL_KEYS: u64 = 100_000;
const VALUE_BYTES: usize = 64;

fn key(i: u64) -> Vec<u8> {
    format!("repl{i:010}").into_bytes()
}

fn main() {
    let p = bench::Params::from_args();
    let secs = (p.secs * 0.75).clamp(0.5, 10.0);

    let base = std::env::temp_dir().join(format!("mt-repl-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let primary_dir = base.join("primary");
    std::fs::create_dir_all(&primary_dir).expect("create dirs");

    let store = Store::persistent_with(&primary_dir, DurabilityConfig::tiny_segments(4 << 20))
        .expect("primary store");
    let source = ReplSource::start(&store, "127.0.0.1:0").expect("repl source");
    let session = store.session().unwrap();

    // ---- prefill, group-committed so it ships ----
    let payload = vec![0xabu8; VALUE_BYTES];
    for i in 0..PREFILL_KEYS {
        session.put(&key(i), &[(0, &payload)]);
    }
    assert!(session.force_log(), "group commit");

    // ---- cold catch-up ----
    // Target: every durable log byte the prefill produced (the
    // follower's heartbeat-derived lag only turns nonzero after the
    // first heartbeat, so poll applied bytes against the real total).
    let target_bytes = store.durability_stats().log_bytes;
    eprintln!(
        "repl_bench: cold catch-up of {PREFILL_KEYS} keys x {VALUE_BYTES}B values \
         ({:.1} MB of log)",
        target_bytes as f64 / 1e6
    );
    let t0 = Instant::now();
    let follower =
        Follower::start(&base.join("follower"), &source.addr().to_string()).expect("follower");
    let deadline = Instant::now() + Duration::from_secs(120);
    while follower.applied_bytes() < target_bytes || follower.lag().0 != 0 {
        if Instant::now() > deadline {
            eprintln!(
                "GATE FAILED: follower never caught up (lag {:?}, applied {} bytes)",
                follower.lag(),
                follower.applied_bytes()
            );
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let catchup_secs = t0.elapsed().as_secs_f64();
    let catchup_bytes = follower.applied_bytes();
    let catchup_mb_s = catchup_bytes as f64 / 1e6 / catchup_secs;
    eprintln!(
        "  caught up: {:.1} MB applied in {catchup_secs:.3}s ({catchup_mb_s:.1} MB/s)",
        catchup_bytes as f64 / 1e6
    );

    // ---- steady-state tail lag under write pressure ----
    eprintln!("repl_bench: steady-state lag, {secs:.2}s of saturated puts");
    // Latency percentiles for the window come from the observability
    // histograms on both ends: primary-side put / WAL-force / ship
    // timings, follower-side replay timings.
    let pri_before = store.obs().snapshot();
    let fol_before = follower.store().obs().snapshot();
    let mut lag_samples: Vec<(u64, u64)> = Vec::new();
    let mut puts = 0u64;
    let t0 = Instant::now();
    let mut last_sample = Instant::now();
    while t0.elapsed().as_secs_f64() < secs {
        for _ in 0..256 {
            session.put(&key(puts % PREFILL_KEYS), &[(0, &payload)]);
            puts += 1;
        }
        assert!(session.force_log(), "group commit");
        if last_sample.elapsed() >= Duration::from_millis(10) {
            lag_samples.push(follower.lag());
            last_sample = Instant::now();
        }
    }
    assert!(session.force_log(), "group commit");
    let write_secs = t0.elapsed().as_secs_f64();

    // Let the tail drain to measure post-burst convergence.
    let t1 = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(60);
    while follower.lag().0 != 0 {
        if Instant::now() > deadline {
            eprintln!("GATE FAILED: follower never drained the tail");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let drain_secs = t1.elapsed().as_secs_f64();
    let pri_d = store.obs().snapshot().delta(&pri_before);
    let fol_d = follower.store().obs().snapshot().delta(&fol_before);
    let put_h = *pri_d.kind(Kind::Put);
    let ship_h = *pri_d.kind(Kind::ReplShip);
    let replay_h = *fol_d.kind(Kind::ReplReplay);

    let max_lag_bytes = lag_samples.iter().map(|&(b, _)| b).max().unwrap_or(0);
    let max_lag_us = lag_samples.iter().map(|&(_, t)| t).max().unwrap_or(0);
    let avg_lag_bytes = if lag_samples.is_empty() {
        0.0
    } else {
        lag_samples.iter().map(|&(b, _)| b as f64).sum::<f64>() / lag_samples.len() as f64
    };
    eprintln!(
        "  {puts} puts in {write_secs:.2}s ({:.3} Mputs/s); lag max {max_lag_bytes} B / \
         {max_lag_us} us, avg {avg_lag_bytes:.0} B; tail drained in {drain_secs:.3}s",
        puts as f64 / write_secs / 1e6
    );

    // ---- BENCH_repl.json ----
    let json = format!(
        "{{\n  \"prefill_keys\": {PREFILL_KEYS},\n  \"value_bytes\": {VALUE_BYTES},\n  \
         \"catchup_bytes\": {catchup_bytes},\n  \"catchup_secs\": {catchup_secs:.3},\n  \
         \"catchup_mb_per_sec\": {catchup_mb_s:.1},\n  \"steady_puts\": {puts},\n  \
         \"steady_secs\": {write_secs:.3},\n  \"steady_puts_per_sec\": {:.0},\n  \
         \"lag_samples\": {},\n  \"max_lag_bytes\": {max_lag_bytes},\n  \
         \"max_lag_us\": {max_lag_us},\n  \"avg_lag_bytes\": {avg_lag_bytes:.0},\n  \
         \"drain_secs\": {drain_secs:.3},\n  \"put_p50_ns\": {},\n  \"put_p99_ns\": {},\n  \
         \"wal_force_p99_ns\": {},\n  \"ship_pass_p99_ns\": {},\n  \
         \"replay_pass_p99_ns\": {}\n}}\n",
        puts as f64 / write_secs,
        lag_samples.len(),
        put_h.percentile(0.5),
        put_h.percentile(0.99),
        pri_d.kind(Kind::WalForce).percentile(0.99),
        ship_h.percentile(0.99),
        replay_h.percentile(0.99),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repl.json");
    std::fs::write(path, &json).expect("write BENCH_repl.json");
    eprintln!("wrote BENCH_repl.json");
    print!("{json}");

    follower.stop();
    drop(source);
    drop(session);
    drop(store);
    let _ = std::fs::remove_dir_all(&base);
}
