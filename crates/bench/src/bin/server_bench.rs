//! Many-connection server benchmark: does the event-loop server's
//! cross-connection batch aggregation recover the interleaved batch
//! engine's throughput when *clients don't batch*?
//!
//! Hundreds of connections each pipeline single-get frames (depth 4) —
//! the worst case §7 warns about, where per-op network overhead and
//! one-at-a-time root-to-leaf descents dominate. The sweep crosses
//! worker counts {1, 2, 4} with aggregation on/off; with aggregation on,
//! each worker merges all ready connections' pending point gets into one
//! `multi_get` run per wakeup (interleaved prefetching across the batch)
//! instead of executing hundreds of one-op frames back to back.
//!
//! Writes `BENCH_server.json` at the repository root and **fails
//! (exit 1)** if aggregation does not beat the unaggregated path on the
//! ≥128-pipelined-client point-get workload — that win is the tentpole
//! claim of the event-loop server and is asserted, not just reported.
//!
//! Runtime knobs (env or flags, see `bench::Params`): `MT_SECS` scales
//! the per-cell measurement window.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mtkv::mtobs::Kind;
use mtkv::Store;
use mtnet::{Client, Request, Response, Server, ServerConfig};
use mtworkload::{Rng64, Zipfian};

const STORE_KEYS: u64 = 100_000;
const CLIENTS: usize = 256;
const CLIENT_THREADS: usize = 8;
const DEPTH: usize = 4;

fn key(i: u64) -> Vec<u8> {
    format!("user{i:010}").into_bytes()
}

/// Drives `CLIENTS` pipelined connections against `addr` for `secs`,
/// returning (client-side completed gets per second, elapsed seconds).
/// Key popularity is uniform, or Zipfian when `zipf` is given.
fn run_cell(addr: std::net::SocketAddr, secs: f64, zipf: Option<&Zipfian>) -> (f64, f64) {
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..CLIENT_THREADS {
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            s.spawn(move || {
                let mut rng = Rng64::new(0x5eed + t as u64);
                let mut clients: Vec<Client> = (0..CLIENTS / CLIENT_THREADS)
                    .map(|_| Client::connect(addr).expect("connect"))
                    .collect();
                let send_get = |c: &mut Client, rng: &mut Rng64| {
                    let id = match zipf {
                        Some(z) => z.sample_scattered(rng),
                        None => rng.next_u64() % STORE_KEYS,
                    };
                    c.send_one(&Request::Get {
                        key: key(id),
                        cols: Some(vec![0]),
                    })
                    .expect("send");
                };
                for c in &mut clients {
                    for _ in 0..DEPTH {
                        send_get(c, &mut rng);
                    }
                }
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for c in &mut clients {
                        match c.recv_one().expect("recv") {
                            Response::Value(Some(_)) => {}
                            other => panic!("unexpected response: {other:?}"),
                        }
                        local += 1;
                        send_get(c, &mut rng);
                    }
                }
                // Drain the pipelines so every connection closes with no
                // response in flight.
                for c in &mut clients {
                    while c.in_flight() > 0 {
                        let _ = c.recv_one().expect("drain");
                        local += 1;
                    }
                }
                completed.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed().as_secs_f64();
    (completed.load(Ordering::Relaxed) as f64 / elapsed, elapsed)
}

struct Cell {
    workers: usize,
    aggregate: bool,
    gets_per_sec: f64,
    server_ops: u64,
    secs: f64,
    /// Server-side latency percentiles over this cell's window (ns):
    /// merged point-get kinds and the per-wakeup multi-get runs.
    get_p50: u64,
    get_p99: u64,
    multiget_p99: u64,
}

/// Merged point-get histogram (hit + descent + cold) from a snapshot
/// delta.
fn merged_gets(d: &mtkv::mtobs::Snapshot) -> mtkv::mtobs::HistSnapshot {
    let mut h = *d.kind(Kind::GetHit);
    h.merge(d.kind(Kind::GetDescent));
    h.merge(d.kind(Kind::GetCold));
    h
}

fn main() {
    let p = bench::Params::from_args();
    let secs = (p.secs * 0.75).clamp(0.5, 10.0);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // One shared store, prefilled once; each cell gets a fresh server
    // (its own worker pool and sessions) over it.
    let store = Store::in_memory();
    {
        let session = store.session().unwrap();
        let payload = vec![0xabu8; 64];
        for i in 0..STORE_KEYS {
            session.put(&key(i), &[(0, &payload)]);
        }
    }

    eprintln!(
        "server_bench: {CLIENTS} connections x depth-{DEPTH} single-get \
         frames, {secs:.2}s/cell, {cores} core(s)"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for &workers in &[1usize, 2, 4] {
        // Both variants' servers stay up over the same store and the
        // measured runs interleave off/on/off/on, so a load spike on a
        // busy shared host taxes both sides of the comparison instead
        // of flipping the gate on common-mode drift; best-of-2 per
        // variant then drops the more-disturbed round.
        let mut servers: Vec<(bool, mtnet::Server)> = [false, true]
            .iter()
            .map(|&aggregate| {
                let server = Server::start_with(
                    Arc::clone(&store),
                    "127.0.0.1:0",
                    ServerConfig {
                        workers,
                        aggregate,
                        ..Default::default()
                    },
                )
                .expect("start server");
                // Throwaway warm cell to populate worker caches and
                // client buffers off the measured path.
                run_cell(server.addr(), (secs * 0.2).max(0.2), None);
                (aggregate, server)
            })
            .collect();
        let mut best: [Option<(f64, f64, u64, mtkv::mtobs::Snapshot)>; 2] = [None, None];
        for _ in 0..2 {
            for (i, (_, server)) in servers.iter().enumerate() {
                let ops_before = server.ops_served();
                let obs_before = store.obs().snapshot();
                let (rate, elapsed) = run_cell(server.addr(), secs, None);
                let d = store.obs().snapshot().delta(&obs_before);
                let ops = server.ops_served() - ops_before;
                if best[i].as_ref().is_none_or(|b| rate > b.0) {
                    best[i] = Some((rate, elapsed, ops, d));
                }
            }
        }
        for ((aggregate, server), best) in servers.iter_mut().zip(best) {
            let (gets_per_sec, elapsed, server_ops, d) = best.unwrap();
            server.stop();
            eprintln!(
                "  workers={workers} aggregate={aggregate:<5} -> {:.3} Mgets/s",
                gets_per_sec / 1e6
            );
            let gets = merged_gets(&d);
            cells.push(Cell {
                workers,
                aggregate: *aggregate,
                gets_per_sec,
                server_ops,
                secs: elapsed,
                get_p50: gets.percentile(0.5),
                get_p99: gets.percentile(0.99),
                multiget_p99: d.kind(Kind::MultiGet).percentile(0.99),
            });
        }
    }

    // ---- zipf latency cell: skewed-popularity reads with recording
    // on; the server-side histograms provide the percentiles.
    // Unaggregated on purpose: per-frame execution records each get as
    // a point-op kind (hit vs descent vs cold), so the reported p99 is
    // a real per-get latency, not a merged-run time. ----
    let zipf = Zipfian::new(STORE_KEYS, Zipfian::YCSB_THETA);
    let (zipf_rate, zipf_gets, zipf_multiget_p99) = {
        let mut server = Server::start_with(
            Arc::clone(&store),
            "127.0.0.1:0",
            ServerConfig {
                workers: 4,
                aggregate: false,
                ..Default::default()
            },
        )
        .expect("start server");
        run_cell(server.addr(), (secs * 0.2).max(0.2), Some(&zipf));
        let obs_before = store.obs().snapshot();
        let (rate, _) = run_cell(server.addr(), secs, Some(&zipf));
        let d = store.obs().snapshot().delta(&obs_before);
        server.stop();
        (
            rate,
            merged_gets(&d),
            d.kind(Kind::MultiGet).percentile(0.99),
        )
    };
    eprintln!(
        "  zipf(theta={:.2}): {:.3} Mgets/s, get p99 {} ns, multiget-run p99 {} ns",
        Zipfian::YCSB_THETA,
        zipf_rate / 1e6,
        zipf_gets.percentile(0.99),
        zipf_multiget_p99
    );

    // ---- observability overhead gate: identical aggregated cells with
    // recording on vs off, interleaved, best-of-2 each ----
    let (obs_on, obs_off) = {
        let mut server = Server::start_with(
            Arc::clone(&store),
            "127.0.0.1:0",
            ServerConfig {
                workers: 4,
                aggregate: true,
                ..Default::default()
            },
        )
        .expect("start server");
        run_cell(server.addr(), (secs * 0.2).max(0.2), None);
        let cell_secs = (secs * 0.5).max(0.5);
        let (mut best_on, mut best_off) = (0.0f64, 0.0f64);
        for _ in 0..3 {
            store.obs().set_enabled(true);
            best_on = best_on.max(run_cell(server.addr(), cell_secs, None).0);
            store.obs().set_enabled(false);
            best_off = best_off.max(run_cell(server.addr(), cell_secs, None).0);
        }
        store.obs().set_enabled(true);
        server.stop();
        (best_on, best_off)
    };
    let obs_overhead = 1.0 - obs_on / obs_off;
    eprintln!(
        "  observability overhead on batched read path: {:.2}% \
         (on {:.3} / off {:.3} Mgets/s)",
        obs_overhead * 100.0,
        obs_on / 1e6,
        obs_off / 1e6
    );

    // ---- BENCH_server.json ----
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str(&format!("  \"store_keys\": {STORE_KEYS},\n"));
    json.push_str(&format!("  \"clients\": {CLIENTS},\n"));
    json.push_str(&format!("  \"pipeline_depth\": {DEPTH},\n"));
    json.push_str("  \"workload\": \"uniform single-get frames, 64B values\",\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"workers\": {}, \"aggregate\": {}, \"gets_per_sec\": {:.0}, \
             \"server_ops\": {}, \"secs\": {:.3}, \"get_p50_ns\": {}, \
             \"get_p99_ns\": {}, \"multiget_run_p99_ns\": {} }}{}\n",
            c.workers,
            c.aggregate,
            c.gets_per_sec,
            c.server_ops,
            c.secs,
            c.get_p50,
            c.get_p99,
            c.multiget_p99,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"zipf\": {{ \"theta\": {:.2}, \"gets_per_sec\": {:.0}, \
         \"get_p50_ns\": {}, \"get_p99_ns\": {}, \"multiget_run_p99_ns\": {} }},\n",
        Zipfian::YCSB_THETA,
        zipf_rate,
        zipf_gets.percentile(0.5),
        zipf_gets.percentile(0.99),
        zipf_multiget_p99
    ));
    json.push_str(&format!(
        "  \"observability\": {{ \"enabled_gets_per_sec\": {:.0}, \
         \"disabled_gets_per_sec\": {:.0}, \"overhead_frac\": {:.4} }},\n",
        obs_on, obs_off, obs_overhead
    ));
    let mut gate_ok = true;
    json.push_str("  \"aggregation_speedup_by_workers\": {\n");
    let worker_counts = [1usize, 2, 4];
    for (i, &w) in worker_counts.iter().enumerate() {
        let on = cells
            .iter()
            .find(|c| c.workers == w && c.aggregate)
            .unwrap()
            .gets_per_sec;
        let off = cells
            .iter()
            .find(|c| c.workers == w && !c.aggregate)
            .unwrap()
            .gets_per_sec;
        let ratio = on / off;
        if ratio <= 1.0 {
            gate_ok = false;
        }
        json.push_str(&format!(
            "    \"{w}\": {:.3}{}\n",
            ratio,
            if i + 1 < worker_counts.len() { "," } else { "" }
        ));
        eprintln!("  workers={w}: aggregated / unaggregated = {ratio:.3}x");
    }
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, &json).expect("write BENCH_server.json");
    eprintln!("wrote BENCH_server.json");
    print!("{json}");

    if !gate_ok {
        eprintln!(
            "GATE FAILED: cross-connection aggregation must beat the \
             unaggregated path at every worker count on the {CLIENTS}\
             -pipelined-client point-get workload"
        );
        std::process::exit(1);
    }
    if obs_overhead > 0.02 {
        eprintln!(
            "GATE FAILED: histogram recording costs {:.2}% on the batched \
             read path (budget: 2%)",
            obs_overhead * 100.0
        );
        std::process::exit(1);
    }
}
