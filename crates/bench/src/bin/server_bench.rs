//! Many-connection server benchmark: does the event-loop server's
//! cross-connection batch aggregation recover the interleaved batch
//! engine's throughput when *clients don't batch*?
//!
//! Hundreds of connections each pipeline single-get frames (depth 4) —
//! the worst case §7 warns about, where per-op network overhead and
//! one-at-a-time root-to-leaf descents dominate. The sweep crosses
//! worker counts {1, 2, 4} with aggregation on/off; with aggregation on,
//! each worker merges all ready connections' pending point gets into one
//! `multi_get` run per wakeup (interleaved prefetching across the batch)
//! instead of executing hundreds of one-op frames back to back.
//!
//! Writes `BENCH_server.json` at the repository root and **fails
//! (exit 1)** if aggregation does not beat the unaggregated path on the
//! ≥128-pipelined-client point-get workload — that win is the tentpole
//! claim of the event-loop server and is asserted, not just reported.
//!
//! Runtime knobs (env or flags, see `bench::Params`): `MT_SECS` scales
//! the per-cell measurement window.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mtkv::Store;
use mtnet::{Client, Request, Response, Server, ServerConfig};
use mtworkload::Rng64;

const STORE_KEYS: u64 = 100_000;
const CLIENTS: usize = 256;
const CLIENT_THREADS: usize = 8;
const DEPTH: usize = 4;

fn key(i: u64) -> Vec<u8> {
    format!("user{i:010}").into_bytes()
}

/// Drives `CLIENTS` pipelined connections against `addr` for `secs`,
/// returning (client-side completed gets per second, elapsed seconds).
fn run_cell(addr: std::net::SocketAddr, secs: f64) -> (f64, f64) {
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..CLIENT_THREADS {
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            s.spawn(move || {
                let mut rng = Rng64::new(0x5eed + t as u64);
                let mut clients: Vec<Client> = (0..CLIENTS / CLIENT_THREADS)
                    .map(|_| Client::connect(addr).expect("connect"))
                    .collect();
                let send_get = |c: &mut Client, rng: &mut Rng64| {
                    c.send_one(&Request::Get {
                        key: key(rng.next_u64() % STORE_KEYS),
                        cols: Some(vec![0]),
                    })
                    .expect("send");
                };
                for c in &mut clients {
                    for _ in 0..DEPTH {
                        send_get(c, &mut rng);
                    }
                }
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for c in &mut clients {
                        match c.recv_one().expect("recv") {
                            Response::Value(Some(_)) => {}
                            other => panic!("unexpected response: {other:?}"),
                        }
                        local += 1;
                        send_get(c, &mut rng);
                    }
                }
                // Drain the pipelines so every connection closes with no
                // response in flight.
                for c in &mut clients {
                    while c.in_flight() > 0 {
                        let _ = c.recv_one().expect("drain");
                        local += 1;
                    }
                }
                completed.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed().as_secs_f64();
    (completed.load(Ordering::Relaxed) as f64 / elapsed, elapsed)
}

struct Cell {
    workers: usize,
    aggregate: bool,
    gets_per_sec: f64,
    server_ops: u64,
    secs: f64,
}

fn main() {
    let p = bench::Params::from_args();
    let secs = (p.secs * 0.75).clamp(0.5, 10.0);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // One shared store, prefilled once; each cell gets a fresh server
    // (its own worker pool and sessions) over it.
    let store = Store::in_memory();
    {
        let session = store.session().unwrap();
        let payload = vec![0xabu8; 64];
        for i in 0..STORE_KEYS {
            session.put(&key(i), &[(0, &payload)]);
        }
    }

    eprintln!(
        "server_bench: {CLIENTS} connections x depth-{DEPTH} single-get \
         frames, {secs:.2}s/cell, {cores} core(s)"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for &workers in &[1usize, 2, 4] {
        for &aggregate in &[false, true] {
            let mut server = Server::start_with(
                Arc::clone(&store),
                "127.0.0.1:0",
                ServerConfig {
                    workers,
                    aggregate,
                    ..Default::default()
                },
            )
            .expect("start server");
            // Throwaway warm cell to populate worker caches and client
            // buffers off the measured path.
            run_cell(server.addr(), (secs * 0.2).max(0.2));
            let ops_before = server.ops_served();
            let (gets_per_sec, elapsed) = run_cell(server.addr(), secs);
            let server_ops = server.ops_served() - ops_before;
            server.stop();
            eprintln!(
                "  workers={workers} aggregate={aggregate:<5} -> {:.3} Mgets/s",
                gets_per_sec / 1e6
            );
            cells.push(Cell {
                workers,
                aggregate,
                gets_per_sec,
                server_ops,
                secs: elapsed,
            });
        }
    }

    // ---- BENCH_server.json ----
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str(&format!("  \"store_keys\": {STORE_KEYS},\n"));
    json.push_str(&format!("  \"clients\": {CLIENTS},\n"));
    json.push_str(&format!("  \"pipeline_depth\": {DEPTH},\n"));
    json.push_str("  \"workload\": \"uniform single-get frames, 64B values\",\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"workers\": {}, \"aggregate\": {}, \"gets_per_sec\": {:.0}, \
             \"server_ops\": {}, \"secs\": {:.3} }}{}\n",
            c.workers,
            c.aggregate,
            c.gets_per_sec,
            c.server_ops,
            c.secs,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let mut gate_ok = true;
    json.push_str("  \"aggregation_speedup_by_workers\": {\n");
    let worker_counts = [1usize, 2, 4];
    for (i, &w) in worker_counts.iter().enumerate() {
        let on = cells
            .iter()
            .find(|c| c.workers == w && c.aggregate)
            .unwrap()
            .gets_per_sec;
        let off = cells
            .iter()
            .find(|c| c.workers == w && !c.aggregate)
            .unwrap()
            .gets_per_sec;
        let ratio = on / off;
        if ratio <= 1.0 {
            gate_ok = false;
        }
        json.push_str(&format!(
            "    \"{w}\": {:.3}{}\n",
            ratio,
            if i + 1 < worker_counts.len() { "," } else { "" }
        ));
        eprintln!("  workers={w}: aggregated / unaggregated = {ratio:.3}x");
    }
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, &json).expect("write BENCH_server.json");
    eprintln!("wrote BENCH_server.json");
    print!("{json}");

    if !gate_ok {
        eprintln!(
            "GATE FAILED: cross-connection aggregation must beat the \
             unaggregated path at every worker count on the {CLIENTS}\
             -pipelined-client point-get workload"
        );
        std::process::exit(1);
    }
}
