//! **Figure 10** — Masstree scalability (§6.5): per-core throughput of
//! get and put workloads as the core count grows 1 → 16. Ideal scaling is
//! a horizontal line; the paper reaches 12.7×/12.5× at 16 cores, limited
//! by growing DRAM fetch cost.

use std::sync::atomic::Ordering;

use bench::{run_fixed_ops, run_timed, Params};
use masstree::Masstree;
use mtworkload::{decimal_key, Rng64};

fn main() {
    let p = Params::from_args();
    println!(
        "# Figure 10: scalability — {} keys per run, {:.1}s get phase",
        p.keys, p.secs
    );
    println!(
        "{:<7} {:>14} {:>16} {:>14} {:>16}",
        "cores", "get Mreq/s", "get Mreq/s/core", "put Mreq/s", "put Mreq/s/core"
    );
    let mut one_core: Option<(f64, f64)> = None;
    let core_counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&c| c <= p.threads.max(1))
        .collect();
    for &cores in &core_counts {
        let tree: Masstree<u64> = Masstree::new();
        let per_thread = p.keys / cores;
        let put = run_fixed_ops(cores, |tid| {
            let mut rng = Rng64::new(900 + tid as u64);
            let guard = masstree::pin();
            for i in 0..per_thread {
                tree.put(&decimal_key(rng.next_u64()), i as u64, &guard);
            }
            per_thread as u64
        });
        let get = run_timed(cores, p.secs, |tid, stop| {
            let mut rng = Rng64::new(900 + tid as u64);
            let guard = masstree::pin();
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                std::hint::black_box(tree.get(&decimal_key(rng.next_u64()), &guard));
                n += 1;
            }
            n
        });
        let (g1, p1) = *one_core.get_or_insert((get.mreq_per_sec(), put.mreq_per_sec()));
        println!(
            "{:<7} {:>14.2} {:>16.3} {:>14.2} {:>16.3}   (speedup {:.1}x / {:.1}x)",
            cores,
            get.mreq_per_sec(),
            get.mreq_per_sec() / cores as f64,
            put.mreq_per_sec(),
            put.mreq_per_sec() / cores as f64,
            get.mreq_per_sec() / g1,
            put.mreq_per_sec() / p1,
        );
    }
    println!("# paper: 12.7x (get) and 12.5x (put) at 16 cores");
}
