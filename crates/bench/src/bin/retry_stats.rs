//! **§4.6.4** — how rare are concurrency retries? The paper measured
//! that with 8 threads inserting, fewer than 1 in 10^6 operations had to
//! retry from the root because of a concurrent split, while local insert
//! retries were ~15× more common. This harness reproduces the
//! measurement from the tree's event counters.

use bench::{run_fixed_ops, Params};
use masstree::Masstree;
use mtworkload::{decimal_key, Rng64};

fn main() {
    let p = Params::from_args();
    let threads = p.threads.clamp(2, 8); // the paper uses 8
    println!(
        "# §4.6.4: retry statistics — {} inserts across {} threads",
        p.keys, threads
    );
    let tree: Masstree<u64> = Masstree::new();
    let per = p.keys / threads;
    run_fixed_ops(threads, |tid| {
        let mut rng = Rng64::new(tid as u64 * 13 + 7);
        let guard = masstree::pin();
        for i in 0..per {
            tree.put(&decimal_key(rng.next_u64()), i as u64, &guard);
        }
        per as u64
    });
    let ops = (per * threads) as f64;
    let s = tree.stats().snapshot();
    println!("operations              {ops:>14.0}");
    println!("splits                  {:>14}", s.splits);
    println!("interior splits         {:>14}", s.interior_splits);
    println!("layers created          {:>14}", s.layers_created);
    println!(
        "root-retry rate         {:>14.2e}  (paper: < 1e-6 per op)",
        s.descend_retries_root as f64 / ops
    );
    println!(
        "local-retry rate        {:>14.2e}  (paper: ~15x the root rate)",
        s.descend_retries_local as f64 / ops
    );
    println!(
        "reader retry rate       {:>14.2e}",
        s.read_retries as f64 / ops
    );
    println!("op restarts             {:>14}", s.op_restarts);
}
