//! **Figure 8** — factor analysis: contributions of design features to
//! Masstree's performance (§6.2).
//!
//! Nine cumulative configurations (Binary → +Flow → +Superpage → +IntCmp →
//! 4-tree → B-tree → +Prefetch → +Permuter → Masstree) on 1-to-10-byte
//! decimal get and put workloads. Each server thread generates its own
//! load; no network, no logging — exactly as in the paper. Bar numbers
//! are reported relative to the binary tree on the get workload.

use std::sync::atomic::Ordering;

use bench::unified::Fig8Config;
use bench::{run_fixed_ops, run_timed, Params, Throughput};
use mtworkload::{decimal_key, Rng64};

fn main() {
    let p = Params::from_args();
    println!(
        "# Figure 8: factor analysis — {} keys, {} threads, {:.1}s get phase",
        p.keys, p.threads, p.secs
    );
    println!(
        "{:<12} {:>12} {:>8} {:>12} {:>8}",
        "config", "get Mreq/s", "(rel)", "put Mreq/s", "(rel)"
    );

    let mut binary_get: Option<f64> = None;
    for cfg in Fig8Config::ALL {
        // ---- put workload: timed insert of `keys` random decimal keys.
        let idx = cfg.build(p.keys);
        let per_thread = p.keys / p.threads;
        let put: Throughput = run_fixed_ops(p.threads, |tid| {
            let mut rng = Rng64::new(0x5eed + tid as u64);
            let guard = crossbeam::epoch::pin();
            for i in 0..per_thread {
                let k = decimal_key(rng.next_u64());
                idx.put(&k, i as u64, &guard);
            }
            per_thread as u64
        });

        // ---- get workload: random gets against the filled store.
        let get: Throughput = run_timed(p.threads, p.secs, |tid, stop| {
            let mut rng = Rng64::new(0x5eed + tid as u64); // same key stream
            let guard = crossbeam::epoch::pin();
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let k = decimal_key(rng.next_u64());
                std::hint::black_box(idx.get(&k, &guard));
                n += 1;
            }
            n
        });

        let base = *binary_get.get_or_insert(get.mreq_per_sec());
        println!(
            "{:<12} {:>12.2} {:>8.2} {:>12.2} {:>8.2}",
            cfg.label(),
            get.mreq_per_sec(),
            get.mreq_per_sec() / base,
            put.mreq_per_sec(),
            put.mreq_per_sec() / base,
        );
        drop(idx);
    }
    println!("# paper (16-core Opteron): get rel 1.00 → 2.93, put rel 1.00 → 3.33");
}
