//! **§5** — checkpoint and recovery measurements: time to write a
//! checkpoint of the whole store, time to recover from it, and put
//! throughput while a checkpoint runs concurrently (the paper: 58 s to
//! checkpoint 140M pairs, 38 s to recover, and 72% of ordinary put
//! throughput during a concurrent checkpoint).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use bench::{run_timed, Params};
use mtkv::{recover, write_checkpoint, Store};
use mtworkload::{decimal_key, Rng64};

fn main() {
    let p = Params::from_args();
    let dir = std::env::temp_dir().join(format!("ckpt-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    println!(
        "# §5: checkpoint / recovery — {} keys, {} threads",
        p.keys, p.threads
    );

    // Build the store (8-byte values as in the small-value experiments).
    // Sessions are long-lived, as in a real server: their logs keep
    // heartbeating, so the recovery cutoff tracks real time.
    let store = Store::persistent(&dir).unwrap();
    let sessions: Vec<_> = (0..p.threads).map(|_| store.session().unwrap()).collect();
    let per = p.keys / p.threads;
    std::thread::scope(|s| {
        for (t, session) in sessions.iter().enumerate() {
            s.spawn(move || {
                let mut rng = Rng64::new(t as u64 + 1);
                for i in 0..per {
                    session.put_single(&decimal_key(rng.next_u64()), &(i as u64).to_le_bytes());
                }
                session.force_log();
            });
        }
    });
    let guard = masstree::pin();
    let live_keys = store.tree().count_keys(&guard);
    drop(guard);
    let data_bytes = live_keys * (10 + 8);
    println!(
        "store built: {live_keys} live keys (~{:.1} MB of key/value data)",
        data_bytes as f64 / 1e6
    );

    // ---- checkpoint write time.
    let t0 = Instant::now();
    let meta = write_checkpoint(&store, &dir, p.threads).unwrap();
    let write_secs = t0.elapsed().as_secs_f64();
    println!(
        "checkpoint: {} keys in {:.2}s ({:.2} Mkeys/s)",
        meta.keys,
        write_secs,
        meta.keys as f64 / write_secs / 1e6
    );

    // Fresh heartbeats push the cutoff past the checkpoint's end.
    for s in &sessions {
        s.force_log();
    }

    // ---- recovery time (checkpoint + logs).
    let t0 = Instant::now();
    let (recovered, report) = recover(&dir, &dir).unwrap();
    let rec_secs = t0.elapsed().as_secs_f64();
    let guard = masstree::pin();
    let rec_keys = recovered.tree().count_keys(&guard);
    drop(guard);
    println!(
        "recovery:   {rec_keys} keys in {rec_secs:.2}s ({:.2} Mkeys/s; ckpt {} keys + {} log records, cutoff {})",
        rec_keys as f64 / rec_secs / 1e6,
        report.checkpoint_keys,
        report.replayed,
        report.cutoff
    );
    assert_eq!(rec_keys, live_keys, "recovered store must match");
    drop(recovered);

    // ---- put throughput with and without a concurrent checkpoint.
    let run_seed = std::sync::atomic::AtomicU64::new(1);
    let put_rate = |label: &str, concurrent_ckpt: bool| -> f64 {
        // Distinct keys each run: otherwise later runs would redo the
        // same keys as cheap updates and drift fast.
        let seed_base = run_seed.fetch_add(1, Ordering::Relaxed) << 32;
        // Keep a checkpoint running for the whole measurement window (the
        // paper's run: "when run concurrently with a checkpoint").
        let ckpt_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let ckpt_thread = concurrent_ckpt.then(|| {
            let store = Arc::clone(&store);
            let dir = dir.clone();
            let threads = p.threads;
            let stop = Arc::clone(&ckpt_stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = write_checkpoint(&store, &dir, threads.min(4));
                }
            })
        });
        let t = run_timed(p.threads, p.secs, |tid, stop| {
            let session = &sessions[tid];
            let mut rng = Rng64::new(seed_base + tid as u64 + 99);
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                session.put_single(&decimal_key(rng.next_u64()), &n.to_le_bytes());
                n += 1;
            }
            n
        });
        ckpt_stop.store(true, Ordering::Relaxed);
        if let Some(h) = ckpt_thread {
            let _ = h.join();
        }
        println!("{label}: {:.2} Mreq/s", t.mreq_per_sec());
        t.mreq_per_sec()
    };
    // Warm up the put path (allocator, page faults) before measuring.
    run_timed(p.threads, (p.secs / 4.0).max(0.25), |tid, stop| {
        let session = &sessions[tid];
        let mut rng = Rng64::new(tid as u64 + 7);
        let mut n = 0u64;
        while !stop.load(Ordering::Relaxed) {
            session.put_single(&decimal_key(rng.next_u64()), &n.to_le_bytes());
            n += 1;
        }
        n
    });
    // Interleave A/B/A/B to average out filesystem and growth drift.
    let n1 = put_rate("puts (no checkpoint)  ", false);
    let d1 = put_rate("puts (with checkpoint)", true);
    let n2 = put_rate("puts (no checkpoint)  ", false);
    let d2 = put_rate("puts (with checkpoint)", true);
    let normal = (n1 + n2) / 2.0;
    let during = (d1 + d2) / 2.0;
    println!(
        "# during/normal = {:.0}% (paper: 72%)",
        100.0 * during / normal
    );
    let _ = std::fs::remove_dir_all(&dir);
}
