//! **§4.4 / §5** — online durability measurements: time to write a
//! checkpoint of the whole store, time to recover from it, put
//! throughput while a checkpoint runs concurrently (the paper: 58 s to
//! checkpoint 140M pairs, 38 s to recover, and 72% of ordinary put
//! throughput during a concurrent checkpoint), and — the online
//! subsystem — put throughput with the **background checkpointer**
//! (checkpoint → group-commit barrier → segment truncation → pruning)
//! on vs. off, with the resulting bounded log footprint.
//!
//! Writes `BENCH_checkpoint.json` at the repository root.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{run_timed, Params};
use mtkv::mtobs::Kind;
use mtkv::{recover, write_checkpoint, DurabilityConfig, Store};
use mtworkload::{decimal_key, Rng64};

fn main() {
    let p = Params::from_args();
    let dir = std::env::temp_dir().join(format!("ckpt-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    println!(
        "# §4.4/§5: online durability — {} keys, {} threads",
        p.keys, p.threads
    );

    // ---- build the store (8-byte values as in the small-value
    // experiments), then close every session cleanly so the directory is
    // quiescent: recovery takes exclusive ownership of the logs it
    // consumes (it seals them).
    let live_keys;
    let write_secs;
    let ckpt_keys;
    {
        let store = Store::persistent(&dir).unwrap();
        let sessions: Vec<_> = (0..p.threads).map(|_| store.session().unwrap()).collect();
        let per = p.keys / p.threads;
        std::thread::scope(|s| {
            for (t, session) in sessions.iter().enumerate() {
                s.spawn(move || {
                    let mut rng = Rng64::new(t as u64 + 1);
                    for i in 0..per {
                        session.put_single(&decimal_key(rng.next_u64()), &(i as u64).to_le_bytes());
                    }
                    assert!(session.force_log());
                });
            }
        });
        let guard = masstree::pin();
        live_keys = store.tree().count_keys(&guard);
        drop(guard);
        println!(
            "store built: {live_keys} live keys (~{:.1} MB of key/value data)",
            (live_keys * (10 + 8)) as f64 / 1e6
        );

        // ---- checkpoint write time.
        let t0 = Instant::now();
        let meta = write_checkpoint(&store, &dir, p.threads).unwrap();
        write_secs = t0.elapsed().as_secs_f64();
        ckpt_keys = meta.keys;
        println!(
            "checkpoint: {} keys in {:.2}s ({:.2} Mkeys/s)",
            meta.keys,
            write_secs,
            meta.keys as f64 / write_secs / 1e6
        );
        // Sessions close cleanly here (clean-close sentinels, final
        // force) — the cutoff covers everything.
    }

    // ---- recovery time (checkpoint + logs), on the quiescent dir.
    let t0 = Instant::now();
    let (recovered, report) = recover(&dir, &dir).unwrap();
    let rec_secs = t0.elapsed().as_secs_f64();
    let guard = masstree::pin();
    let rec_keys = recovered.tree().count_keys(&guard);
    drop(guard);
    println!(
        "recovery:   {rec_keys} keys in {rec_secs:.2}s ({:.2} Mkeys/s; ckpt {} keys + {} log records over {} segments, cutoff {})",
        rec_keys as f64 / rec_secs / 1e6,
        report.checkpoint_keys,
        report.replayed,
        report.log_segments,
        report.cutoff
    );
    assert_eq!(rec_keys, live_keys, "recovered store must match");

    // ---- put throughput with and without a concurrent checkpoint
    // (paper: 72%), on the recovered store.
    let store = recovered;
    let sessions: Vec<_> = (0..p.threads).map(|_| store.session().unwrap()).collect();
    let run_seed = std::sync::atomic::AtomicU64::new(1);
    let put_rate = |label: &str, concurrent_ckpt: bool| -> f64 {
        // Distinct keys each run: otherwise later runs would redo the
        // same keys as cheap updates and drift fast.
        let seed_base = run_seed.fetch_add(1, Ordering::Relaxed) << 32;
        // Keep a checkpoint running for the whole measurement window (the
        // paper's run: "when run concurrently with a checkpoint").
        let ckpt_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let ckpt_thread = concurrent_ckpt.then(|| {
            let store = Arc::clone(&store);
            let dir = dir.clone();
            let threads = p.threads;
            let stop = Arc::clone(&ckpt_stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = write_checkpoint(&store, &dir, threads.min(4));
                }
            })
        });
        let t = run_timed(p.threads, p.secs, |tid, stop| {
            let session = &sessions[tid];
            let mut rng = Rng64::new(seed_base + tid as u64 + 99);
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                session.put_single(&decimal_key(rng.next_u64()), &n.to_le_bytes());
                n += 1;
            }
            n
        });
        ckpt_stop.store(true, Ordering::Relaxed);
        if let Some(h) = ckpt_thread {
            let _ = h.join();
        }
        println!("{label}: {:.2} Mreq/s", t.mreq_per_sec());
        t.mreq_per_sec()
    };
    // Warm up the put path (allocator, page faults) before measuring.
    run_timed(p.threads, (p.secs / 4.0).max(0.25), |tid, stop| {
        let session = &sessions[tid];
        let mut rng = Rng64::new(tid as u64 + 7);
        let mut n = 0u64;
        while !stop.load(Ordering::Relaxed) {
            session.put_single(&decimal_key(rng.next_u64()), &n.to_le_bytes());
            n += 1;
        }
        n
    });
    // Interleave A/B/A/B to average out filesystem and growth drift.
    // The observability delta over the whole comparison window yields
    // put latency percentiles plus checkpoint-cycle and WAL-force
    // timings from the same run (no separate instrumented pass).
    let obs_before = store.obs().snapshot();
    let n1 = put_rate("puts (no checkpoint)  ", false);
    let d1 = put_rate("puts (with checkpoint)", true);
    let n2 = put_rate("puts (no checkpoint)  ", false);
    let d2 = put_rate("puts (with checkpoint)", true);
    let obs_d = store.obs().snapshot().delta(&obs_before);
    let put_h = *obs_d.kind(Kind::Put);
    let ckpt_h = *obs_d.kind(Kind::Checkpoint);
    println!(
        "put latency: p50 {} p90 {} p99 {} ns ({} ops); checkpoint cycle p99 {} ns ({} cycles)",
        put_h.percentile(0.5),
        put_h.percentile(0.9),
        put_h.percentile(0.99),
        put_h.count(),
        ckpt_h.percentile(0.99),
        ckpt_h.count()
    );
    let normal = (n1 + n2) / 2.0;
    let during = (d1 + d2) / 2.0;
    println!(
        "# during/normal = {:.0}% (paper: 72%)",
        100.0 * during / normal
    );
    drop(sessions);
    drop(store);
    // Clear the (large) main directory before the background phase so
    // its dirty-page writeback does not tax the runs below.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // ---- the online subsystem: put throughput with the background
    // checkpointer running its full cycle (checkpoint + truncation +
    // pruning) vs. off, each on a fresh store, plus the log footprint it
    // maintains.
    let interval = Duration::from_secs_f64((p.secs / 3.0).clamp(0.25, 10.0));
    let bg_rate = |background: bool| -> (f64, mtkv::DurabilityStats) {
        let bdir = std::env::temp_dir().join(format!(
            "ckpt-bench-bg{}-{}",
            background as u8,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&bdir);
        let mut config = DurabilityConfig::tiny_segments(4 << 20);
        config.checkpoint_threads = p.threads.min(4);
        if background {
            config.checkpoint_interval = Some(interval);
        }
        let store = Store::persistent_with(&bdir, config).unwrap();
        let sessions: Vec<_> = (0..p.threads).map(|_| store.session().unwrap()).collect();
        let workload = |tid: usize, stop: &std::sync::atomic::AtomicBool| {
            let session = &sessions[tid];
            let mut rng = Rng64::new(0xb6 + tid as u64);
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                session.put_single(&decimal_key(rng.next_u64()), &n.to_le_bytes());
                n += 1;
            }
            n
        };
        run_timed(p.threads, (p.secs / 4.0).max(0.25), workload); // warm up
        let t = run_timed(p.threads, p.secs, workload);
        if background {
            // The cycle in flight at the window's end still counts: wait
            // for at least one full epoch before snapshotting.
            let deadline = Instant::now() + interval * 3;
            while store.checkpoint_epoch() == 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let stats = store.durability_stats();
        drop(sessions);
        drop(store);
        let _ = std::fs::remove_dir_all(&bdir);
        (t.mreq_per_sec(), stats)
    };
    // Interleave on/off like the checkpoint comparison above.
    let (off1, _) = bg_rate(false);
    let (on1, on_stats) = bg_rate(true);
    let (off2, off_stats) = bg_rate(false);
    let (on2, _) = bg_rate(true);
    let bg_off = (off1 + off2) / 2.0;
    let bg_on = (on1 + on2) / 2.0;
    println!(
        "puts (background checkpointer off): {bg_off:.2} Mreq/s ({} segments, {:.1} MB logs)",
        off_stats.log_segments,
        off_stats.log_bytes as f64 / 1e6
    );
    println!(
        "puts (background checkpointer on):  {bg_on:.2} Mreq/s ({} checkpoints, {} segments truncated, {} segments / {:.1} MB logs left)",
        on_stats.checkpoints,
        on_stats.segments_truncated,
        on_stats.log_segments,
        on_stats.log_bytes as f64 / 1e6
    );
    println!(
        "# background-on/off = {:.0}% (paper's concurrent-checkpoint figure: 72%)",
        100.0 * bg_on / bg_off
    );

    // ---- BENCH_checkpoint.json ----
    let json = format!(
        "{{\n{}  \"keys\": {},\n  \"threads\": {},\n  \"checkpoint_write_secs\": {:.4},\n  \
         \"checkpoint_keys\": {},\n  \"recovery_secs\": {:.4},\n  \"recovery_keys\": {},\n  \
         \"recovery_replayed_records\": {},\n  \"recovery_log_segments\": {},\n  \
         \"put_mreq_per_sec_normal\": {:.4},\n  \"put_mreq_per_sec_during_checkpoint\": {:.4},\n  \
         \"during_over_normal\": {:.4},\n  \"put_mreq_per_sec_background_off\": {:.4},\n  \
         \"put_mreq_per_sec_background_on\": {:.4},\n  \"background_on_over_off\": {:.4},\n  \
         \"background_checkpoints\": {},\n  \"background_segments_truncated\": {},\n  \
         \"background_final_log_bytes\": {},\n  \"background_off_final_log_bytes\": {},\n  \
         \"put_p50_ns\": {},\n  \"put_p90_ns\": {},\n  \"put_p99_ns\": {},\n  \
         \"checkpoint_cycle_p99_ns\": {},\n  \"wal_force_p99_ns\": {}\n}}\n",
        bench::host_meta_json(p.threads),
        p.keys,
        p.threads,
        write_secs,
        ckpt_keys,
        rec_secs,
        rec_keys,
        report.replayed,
        report.log_segments,
        normal,
        during,
        during / normal,
        bg_off,
        bg_on,
        bg_on / bg_off,
        on_stats.checkpoints,
        on_stats.segments_truncated,
        on_stats.log_bytes,
        off_stats.log_bytes,
        put_h.percentile(0.5),
        put_h.percentile(0.9),
        put_h.percentile(0.99),
        ckpt_h.percentile(0.99),
        obs_d.kind(Kind::WalForce).percentile(0.99),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_checkpoint.json");
    std::fs::write(path, &json).expect("write BENCH_checkpoint.json");
    println!("\nwrote {path}");
    print!("{json}");

    let _ = std::fs::remove_dir_all(&dir);
}
