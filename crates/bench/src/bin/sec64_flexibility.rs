//! **§6.4** — what Masstree's flexibility costs, via structures that drop
//! one feature each:
//!
//! * variable-length keys: Masstree vs a fixed 8-byte-key OCC B-tree on
//!   8-byte decimal keys (paper: fixed tree only 0.8% faster);
//! * concurrency: concurrent Masstree on one core vs the single-core
//!   variant with no synchronization (paper: single-core 13% faster);
//! * range queries: Masstree vs a concurrent hash table on 8-byte
//!   alphabetical keys (paper: hash 2.5× faster — range queries are the
//!   one inherently expensive feature).

use std::sync::atomic::Ordering;

use baselines::SingleMasstree;
use bench::unified::AnyIndex;
use bench::{run_fixed_ops, run_timed, Params};
use mtworkload::{alpha_key, decimal_key, Rng64};

fn main() {
    let p = Params::from_args();
    println!(
        "# §6.4: flexibility costs — {} keys, {} threads, {:.1}s per point",
        p.keys, p.threads, p.secs
    );

    // ---- (a) variable-length key support: 8-byte decimal keys.
    {
        let keyspace = 10_000_000u64.min(p.keys as u64);
        let make_key = |v: u64| format!("{:08}", v % 100_000_000).into_bytes();
        let mut rates = Vec::new();
        for which in ["Masstree", "fixed-8B B-tree"] {
            let idx = if which == "Masstree" {
                AnyIndex::masstree()
            } else {
                AnyIndex::fixed8_btree()
            };
            let per = p.keys / p.threads;
            run_fixed_ops(p.threads, |tid| {
                let mut rng = Rng64::new(17 + tid as u64);
                let g = crossbeam::epoch::pin();
                for i in 0..per {
                    idx.put(&make_key(rng.below(keyspace)), i as u64, &g);
                }
                per as u64
            });
            let t = run_timed(p.threads, p.secs, |tid, stop| {
                let mut rng = Rng64::new(17 + tid as u64);
                let g = crossbeam::epoch::pin();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(idx.get(&make_key(rng.below(keyspace)), &g));
                    n += 1;
                }
                n
            });
            println!(
                "var-len keys    {which:<16}: {:>8.2} Mreq/s",
                t.mreq_per_sec()
            );
            rates.push(t.mreq_per_sec());
        }
        println!(
            "#   fixed/masstree = {:.3} (paper: 1.008 — essentially free)",
            rates[1] / rates[0]
        );
    }

    // ---- (b) concurrency support: 1-core put workload.
    {
        let n = p.keys;
        let conc = masstree::Masstree::<u64>::new();
        let t_conc = run_fixed_ops(1, |_| {
            let mut rng = Rng64::new(3);
            let g = masstree::pin();
            for i in 0..n {
                conc.put(&decimal_key(rng.next_u64()), i as u64, &g);
            }
            n as u64
        });
        let mut single = SingleMasstree::new();
        let t0 = std::time::Instant::now();
        let mut rng = Rng64::new(3);
        for i in 0..n {
            single.put(&decimal_key(rng.next_u64()), i as u64);
        }
        let single_rate = n as f64 / t0.elapsed().as_secs_f64() / 1e6;
        println!(
            "concurrency     concurrent 1-core : {:>8.2} Mreq/s",
            t_conc.mreq_per_sec()
        );
        println!("concurrency     single-core variant: {single_rate:>8.2} Mreq/s");
        println!(
            "#   single/concurrent = {:.2} (paper: 1.13 — 13% overhead)",
            single_rate / t_conc.mreq_per_sec()
        );
    }

    // ---- (c) range-query support: hash table vs Masstree, 8-byte
    // alphabetical keys.
    {
        let mut rates = Vec::new();
        for which in ["Masstree", "hash table"] {
            let idx = if which == "Masstree" {
                AnyIndex::masstree()
            } else {
                AnyIndex::hash_table(p.keys)
            };
            let per = p.keys / p.threads;
            run_fixed_ops(p.threads, |tid| {
                let mut rng = Rng64::new(23 + tid as u64);
                let g = crossbeam::epoch::pin();
                for i in 0..per {
                    idx.put(&alpha_key(&mut rng), i as u64, &g);
                }
                per as u64
            });
            let t = run_timed(p.threads, p.secs, |tid, stop| {
                let mut rng = Rng64::new(23 + tid as u64);
                let g = crossbeam::epoch::pin();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(idx.get(&alpha_key(&mut rng), &g));
                    n += 1;
                }
                n
            });
            println!(
                "range queries   {which:<16}: {:>8.2} Mreq/s",
                t.mreq_per_sec()
            );
            rates.push(t.mreq_per_sec());
        }
        println!(
            "#   hash/masstree = {:.2} (paper: 2.5 — ordered access is the costly feature)",
            rates[1] / rates[0]
        );
    }
}
