//! **§6.3** — system relevance of tree design: with logging on and load
//! arriving over the network, Masstree vs the fastest binary tree from
//! Figure 8 ("+IntCmp"). The paper: Masstree gives 1.90× (gets) and
//! 1.53× (puts) even with the full system around the tree, showing tree
//! design matters end to end.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use baselines::{Arena, BinaryTree, Compare, NodeAlloc};
use bench::{run_timed, Params};
use mtkv::{LogRecord, LogWriter, Store};
use mtnet::{Backend, Client, ConnState, Request, Response, Server};
use mtworkload::{decimal_key, Rng64};

const BATCH: usize = 128;

/// A store backend over the "+IntCmp" binary tree with per-connection
/// logging — the same surrounding system as Masstree's, different index.
struct BinaryBackend {
    tree: Arc<BinaryTree>,
    log_dir: std::path::PathBuf,
    next_log: std::sync::atomic::AtomicU64,
}

struct BinaryConn {
    tree: Arc<BinaryTree>,
    log: LogWriter,
}

impl Backend for BinaryBackend {
    fn connect(&self) -> Box<dyn ConnState> {
        let id = self.next_log.fetch_add(1, Ordering::Relaxed);
        let log = LogWriter::open(self.log_dir.join(format!("log-bin-{id}"))).unwrap();
        Box::new(BinaryConn {
            tree: Arc::clone(&self.tree),
            log,
        })
    }
}

impl ConnState for BinaryConn {
    fn execute(&mut self, req: Request) -> Response {
        let guard = crossbeam::epoch::pin();
        match req {
            Request::Get { key, .. } => Response::Value(
                self.tree
                    .get(&key, &guard)
                    .map(|v| vec![v.to_le_bytes().to_vec()]),
            ),
            Request::Put { key, cols } => {
                let v = cols
                    .first()
                    .map(|(_, d)| {
                        let mut b = [0u8; 8];
                        let n = d.len().min(8);
                        b[..n].copy_from_slice(&d[..n]);
                        u64::from_le_bytes(b)
                    })
                    .unwrap_or(0);
                self.tree.put(&key, v, &guard);
                self.log.append(&LogRecord::Put {
                    timestamp: mtkv::clock::now(),
                    version: 0,
                    key,
                    cols,
                });
                Response::PutOk(0)
            }
            Request::Remove { .. } => Response::RemoveOk(false),
            Request::Scan { .. } => Response::Rows(vec![]),
            Request::Stats | Request::Flush | Request::Sync => Response::Stats(Default::default()),
            Request::StatsEx => Response::StatsEx(Default::default()),
        }
    }
}

fn main() {
    let p = Params::from_args();
    let records = p.keys as u64;
    let dir = std::env::temp_dir().join(format!("sec63-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    println!(
        "# §6.3: tree design inside the full system (net + log) — {records} keys, {} clients",
        p.threads
    );

    let mt_store = Store::persistent(&dir.join("mt")).unwrap();
    let mt_server = Server::start(mt_store, "127.0.0.1:0").unwrap();
    let bin_server = Server::start_backend(
        Arc::new(BinaryBackend {
            tree: Arc::new(BinaryTree::new(
                Compare::IntPrefix,
                NodeAlloc::Arena(Arc::new(Arena::new_superpage())),
            )),
            log_dir: dir.join("bin"),
            next_log: std::sync::atomic::AtomicU64::new(0),
        }),
        "127.0.0.1:0",
    )
    .unwrap();
    std::fs::create_dir_all(dir.join("bin")).unwrap();

    let mut rates = Vec::new();
    for (name, addr) in [
        ("Masstree", mt_server.addr()),
        ("+IntCmp binary", bin_server.addr()),
    ] {
        // Preload.
        std::thread::scope(|s| {
            for t in 0..p.threads as u64 {
                s.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let per = records / p.threads as u64;
                    for i in t * per..((t + 1) * per).min(records) {
                        c.queue(&Request::Put {
                            key: decimal_key(i),
                            cols: vec![(0, i.to_le_bytes().to_vec())],
                        });
                        if i % 64 == 0 {
                            c.execute_batch().unwrap();
                        }
                    }
                    c.execute_batch().unwrap();
                });
            }
        });
        for (op, is_put) in [("get", false), ("put", true)] {
            let t = run_timed(p.threads, p.secs, |tid, stop| {
                let mut c = Client::connect(addr).unwrap();
                let mut rng = Rng64::new(5 + tid as u64);
                let mut done = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..BATCH {
                        let key = decimal_key(rng.below(records));
                        if is_put {
                            c.queue(&Request::Put {
                                key,
                                cols: vec![(0, rng.next_u64().to_le_bytes().to_vec())],
                            });
                        } else {
                            c.queue(&Request::Get {
                                key,
                                cols: Some(vec![0]),
                            });
                        }
                    }
                    c.execute_batch().unwrap();
                    done += BATCH as u64;
                }
                done
            });
            println!("{name:<16} {op}: {:>8.2} Mreq/s", t.mreq_per_sec());
            rates.push(t.mreq_per_sec());
        }
    }
    if rates.len() == 4 {
        println!(
            "# Masstree / binary: get {:.2}x, put {:.2}x   (paper: 1.90x / 1.53x)",
            rates[0] / rates[2],
            rates[1] / rates[3]
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
