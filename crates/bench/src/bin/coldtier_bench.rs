//! Larger-than-RAM value separation: point-get and scan throughput
//! with the cold value tier (values past the threshold live in
//! `vseg-*` segments, reads resolve through a budgeted cache sized at
//! a **quarter** of the total value bytes — a 4× working set) against
//! the all-inline baseline where every value sits in the tree.
//!
//! Two acceptance gates ride along, and the process exits nonzero
//! when either fails:
//!
//! * with the cache budget at ≤ 1/4 of total value bytes, the
//!   zipf-0.99 point-get rate on the cold store must stay within 2× of
//!   the all-inline baseline — skew means the hot ranks fit the cache,
//!   so the tier must not tax the common case;
//! * the zipf-0.99 cold scan rate must reach ≥ 30% of the inline scan
//!   rate — the leaf-batched readahead path clusters a chunk's cache
//!   misses into mapped, coalesced segment reads, so cold scans are no
//!   longer one `pread` per row (the inline-pread path sits at
//!   0.12–0.18 of inline on this cell).
//!
//! The scan gate is 0.30, not 0.50, and the uniform scan cell is
//! reported but ungated: with per-row decoded-value cache admission,
//! every miss pays crc + decode + one block copy + cache insertion, and
//! the zipf hit rate (~64%) is already at the LRU-theoretical ceiling
//! for this draw — together those put the steady-state ratio floor for
//! this cell near 0.35–0.40 measured (the all-hit path alone runs at
//! ~0.6–0.7 of inline, paying one cache probe per row where inline
//! reads the leaf's own suffix). Lifting past 0.50 needs
//! window-granular caching (cache the mapped window, decode lazily at
//! emit) — tracked in ROADMAP.md.
//!
//! Writes `BENCH_coldtier.json` at the repository root.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bench::{run_timed, Params};
use mtkv::mtobs::{HistSnapshot, Kind, Snapshot};
use mtkv::{DurabilityConfig, Store};
use mtworkload::decimal_key;
use mtworkload::zipf::PointGets;

const VALUE_LEN: usize = 1024;
const THRESHOLD: usize = 64;
const SCAN_LEN: usize = 16;

fn value_of(i: u64) -> Vec<u8> {
    let mut v = format!("v{i:012}:").into_bytes();
    let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    while v.len() < VALUE_LEN {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.push(b'a' + (x % 26) as u8);
    }
    v
}

fn build(dir: &std::path::Path, config: DurabilityConfig, p: &Params) -> Arc<Store> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    let store = Store::persistent_with(dir, config).unwrap();
    let sessions: Vec<_> = (0..p.threads).map(|_| store.session().unwrap()).collect();
    let per = p.keys / p.threads;
    let threads = p.threads;
    std::thread::scope(|s| {
        for (t, session) in sessions.iter().enumerate() {
            s.spawn(move || {
                let lo = t * per;
                // The last loader takes the remainder so every key exists.
                let hi = if t + 1 == threads { p.keys } else { lo + per };
                for i in lo..hi {
                    session.put_single(&decimal_key(i as u64), &value_of(i as u64));
                }
                assert!(session.force_log());
            });
        }
    });
    // Quiesce: settle durability once, then stop the background
    // checkpointer so neither store's cycle (checkpoint serialization,
    // value GC tree scans) steals cycles from the read measurement.
    store.checkpoint_now().unwrap();
    store.stop_background_checkpointer();
    store
}

/// Measures one read workload on `store`: point gets drawn from
/// `theta` (0 = uniform), or — when `scan` — `SCAN_LEN`-row range
/// scans starting at the drawn key. Every visited value is copied into
/// a reusable output buffer, as a server serializing a response would:
/// a read that never touches the value bytes would flatter whichever
/// store merely locates values fastest.
fn read_rate(store: &Arc<Store>, p: &Params, theta: f64, scan: bool, seed: u64) -> f64 {
    let sessions: Vec<_> = (0..p.threads).map(|_| store.session().unwrap()).collect();
    let workload = |tid: usize, stop: &std::sync::atomic::AtomicBool| {
        let session = &sessions[tid];
        let mut gets = PointGets::new(p.keys as u64, theta, seed + tid as u64);
        let mut n = 0u64;
        let mut sink = 0usize;
        let mut out = Vec::with_capacity(VALUE_LEN + 64);
        while !stop.load(Ordering::Relaxed) {
            let key = decimal_key(gets.next_key());
            if scan {
                session.get_range_with(&key, SCAN_LEN, |k, v| {
                    out.clear();
                    out.extend_from_slice(k);
                    for i in 0..v.ncols() {
                        out.extend_from_slice(v.col(i).unwrap());
                    }
                    sink += out.len();
                });
            } else {
                session.get_with(&key, |v| {
                    if let Some(v) = v {
                        out.clear();
                        for i in 0..v.ncols() {
                            out.extend_from_slice(v.col(i).unwrap());
                        }
                        sink += out.len();
                    }
                });
            }
            n += 1;
        }
        std::hint::black_box(sink);
        std::hint::black_box(&out);
        n
    };
    // Full-length warmup: the value cache needs a complete pass of the
    // skewed draw to reach its steady-state population before timing.
    run_timed(p.threads, p.secs.max(0.5), workload);
    run_timed(p.threads, p.secs, workload).mreq_per_sec()
}

/// One histogram per workload: merged point-get kinds (hit + descent +
/// cold-resolve) for point workloads, the scan kind for scans.
fn read_hist(d: &Snapshot, scan: bool) -> HistSnapshot {
    if scan {
        *d.kind(Kind::Scan)
    } else {
        let mut h = *d.kind(Kind::GetHit);
        h.merge(d.kind(Kind::GetDescent));
        h.merge(d.kind(Kind::GetCold));
        h
    }
}

fn main() {
    let p = Params::from_args();
    let base = std::env::temp_dir().join(format!("coldtier-bench-{}", std::process::id()));

    let total_value_bytes = p.keys * VALUE_LEN;
    // Cache budget: a quarter of the value bytes — the edge of the
    // issue's "≤ 1/4 of total value bytes" bound, working set 4× cache.
    let cache_bytes = (total_value_bytes / 4).max(64 * 1024);
    println!(
        "# cold-tier bench: {} keys × {VALUE_LEN} B values = {:.1} MB, cache {:.1} MB (4× working set), {} threads",
        p.keys,
        total_value_bytes as f64 / 1e6,
        cache_bytes as f64 / 1e6,
        p.threads
    );

    let inline_dir = base.join("inline");
    let cold_dir = base.join("cold");
    let inline = build(&inline_dir, DurabilityConfig::default(), &p);
    let cold = build(
        &cold_dir,
        DurabilityConfig::default().with_value_separation(THRESHOLD, cache_bytes),
        &p,
    );
    let seeded = cold.value_tier_stats();
    println!(
        "# cold store seeded: {} segments, {:.1} MB live separated bytes",
        seeded.segments,
        seeded.live_segment_bytes as f64 / 1e6
    );

    let mut results: Vec<(&str, f64, f64, HistSnapshot)> = Vec::new();
    for (label, theta, scan, seed) in [
        ("zipf099_point", 0.99, false, 0x10u64),
        ("uniform_point", 0.0, false, 0x20),
        ("zipf099_scan16", 0.99, true, 0x30),
        ("uniform_scan16", 0.0, true, 0x40),
    ] {
        let a = read_rate(&inline, &p, theta, scan, seed);
        let before = cold.value_tier_stats();
        let obs_before = cold.obs().snapshot();
        let b = read_rate(&cold, &p, theta, scan, seed);
        // The delta spans the warmup pass too; the measured pass
        // dominates it and tail shape is what the field reports.
        let h = read_hist(&cold.obs().snapshot().delta(&obs_before), scan);
        let after = cold.value_tier_stats();
        let reads = after.indirect_reads - before.indirect_reads;
        let hits = after.value_cache_hits - before.value_cache_hits;
        println!(
            "{label:>16}: inline {a:.3} Mreq/s, cold {b:.3} Mreq/s ({:.0}%, {:.1}% cache hits, p99 {} ns)",
            100.0 * b / a,
            100.0 * hits as f64 / reads.max(1) as f64,
            h.percentile(0.99)
        );
        results.push((label, a, b, h));
    }

    let stats = cold.value_tier_stats();
    let hit_rate = if stats.indirect_reads > 0 {
        stats.value_cache_hits as f64 / stats.indirect_reads as f64
    } else {
        0.0
    };
    println!(
        "# cold tier: {} indirect reads, {:.1}% cache hits",
        stats.indirect_reads,
        100.0 * hit_rate
    );

    let mut json = String::from("{\n");
    json.push_str(&bench::host_meta_json(p.threads));
    json.push_str(&format!(
        "  \"keys\": {},\n  \"value_len\": {VALUE_LEN},\n  \"threshold\": {THRESHOLD},\n  \
         \"total_value_bytes\": {total_value_bytes},\n  \"cache_bytes\": {cache_bytes},\n",
        p.keys
    ));
    for (label, a, b, h) in &results {
        json.push_str(&format!(
            "  \"{label}_inline_mreq_per_sec\": {a:.4},\n  \"{label}_cold_mreq_per_sec\": {b:.4},\n  \
             \"{label}_cold_over_inline\": {:.4},\n  \"{label}_cold_p50_ns\": {},\n  \
             \"{label}_cold_p90_ns\": {},\n  \"{label}_cold_p99_ns\": {},\n",
            b / a,
            h.percentile(0.5),
            h.percentile(0.9),
            h.percentile(0.99)
        ));
    }
    json.push_str(&format!(
        "  \"indirect_reads\": {},\n  \"value_cache_hits\": {},\n  \
         \"value_cache_hit_rate\": {hit_rate:.4},\n  \"live_segment_bytes\": {},\n  \
         \"readahead_batches\": {},\n  \"clustered_reads\": {},\n  \
         \"coalesced_bytes\": {},\n  \"shared_misses\": {},\n  \
         \"segment_reads\": {}\n}}\n",
        stats.indirect_reads,
        stats.value_cache_hits,
        stats.live_segment_bytes,
        stats.readahead_batches,
        stats.clustered_reads,
        stats.coalesced_bytes,
        stats.shared_misses,
        stats.segment_reads
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coldtier.json");
    std::fs::write(path, &json).expect("write BENCH_coldtier.json");
    println!("\nwrote {path}");
    print!("{json}");

    drop(inline);
    drop(cold);
    let _ = std::fs::remove_dir_all(&base);

    // ---- the acceptance gates ----
    let mut failed = false;
    let (_, zi, zc, _) = results[0];
    if zc * 2.0 < zi {
        eprintln!(
            "FAIL: zipf-0.99 point gets on the cold tier ({zc:.3} Mreq/s) fell below \
             half the all-inline baseline ({zi:.3} Mreq/s)"
        );
        failed = true;
    } else {
        println!(
            "# gate: zipf0.99 cold/inline = {:.0}% (must be ≥ 50%) — ok",
            100.0 * zc / zi
        );
    }
    // Scan gate: the readahead engine must keep zipf-0.99 cold scans at
    // ≥ 30% of inline (the per-pointer-pread path measures 0.12–0.18;
    // see the module docs for why the per-row decoded-cache floor sits
    // below 0.50). The uniform cell is reported but ungated — with a 4×
    // working set nearly every row misses, so it tracks the pure
    // miss-path cost and is the noisiest cell on a shared runner.
    let (label, si, sc, _) = results[2];
    if sc * (10.0 / 3.0) < si {
        eprintln!(
            "FAIL: {label} on the cold tier ({sc:.3} Mreq/s) fell below 30% of \
             the all-inline baseline ({si:.3} Mreq/s)"
        );
        failed = true;
    } else {
        println!(
            "# gate: {label} cold/inline = {:.0}% (must be ≥ 30%) — ok",
            100.0 * sc / si
        );
    }
    if failed {
        std::process::exit(1);
    }
}
