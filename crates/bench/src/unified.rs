//! One interface over every index structure in the factor analysis
//! (Figure 8) plus the §6.4 comparisons, so the benchmark binaries can
//! sweep configurations uniformly.

use std::sync::Arc;

use baselines::{
    Arena, BinaryTree, Compare, FourTree, HashTable, NodeAlloc, OccBtree, OccBtreeConfig,
};
use crossbeam::epoch::Guard;
use masstree::Masstree;

/// Any benchmarked index mapping byte keys to `u64` values.
pub enum AnyIndex {
    Binary(BinaryTree),
    Four(FourTree),
    Occ(OccBtree),
    Mass(Masstree<u64>),
    Hash(HashTable),
}

/// The Figure 8 configuration ladder, in presentation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig8Config {
    Binary,
    PlusFlow,
    PlusSuperpage,
    PlusIntCmp,
    FourTree,
    BTree,
    PlusPrefetch,
    PlusPermuter,
    Masstree,
}

impl Fig8Config {
    pub const ALL: [Fig8Config; 9] = [
        Fig8Config::Binary,
        Fig8Config::PlusFlow,
        Fig8Config::PlusSuperpage,
        Fig8Config::PlusIntCmp,
        Fig8Config::FourTree,
        Fig8Config::BTree,
        Fig8Config::PlusPrefetch,
        Fig8Config::PlusPermuter,
        Fig8Config::Masstree,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Fig8Config::Binary => "Binary",
            Fig8Config::PlusFlow => "+Flow",
            Fig8Config::PlusSuperpage => "+Superpage",
            Fig8Config::PlusIntCmp => "+IntCmp",
            Fig8Config::FourTree => "4-tree",
            Fig8Config::BTree => "B-tree",
            Fig8Config::PlusPrefetch => "+Prefetch",
            Fig8Config::PlusPermuter => "+Permuter",
            Fig8Config::Masstree => "Masstree",
        }
    }

    /// Builds a fresh index in this configuration.
    pub fn build(self, expected_keys: usize) -> AnyIndex {
        match self {
            Fig8Config::Binary => {
                AnyIndex::Binary(BinaryTree::new(Compare::Bytes, NodeAlloc::Global))
            }
            Fig8Config::PlusFlow => AnyIndex::Binary(BinaryTree::new(
                Compare::Bytes,
                NodeAlloc::Arena(Arc::new(Arena::new_flow())),
            )),
            Fig8Config::PlusSuperpage => AnyIndex::Binary(BinaryTree::new(
                Compare::Bytes,
                NodeAlloc::Arena(Arc::new(Arena::new_superpage())),
            )),
            Fig8Config::PlusIntCmp => AnyIndex::Binary(BinaryTree::new(
                Compare::IntPrefix,
                NodeAlloc::Arena(Arc::new(Arena::new_superpage())),
            )),
            Fig8Config::FourTree => AnyIndex::Four(FourTree::new()),
            Fig8Config::BTree => AnyIndex::Occ(OccBtree::new(OccBtreeConfig::plain())),
            Fig8Config::PlusPrefetch => AnyIndex::Occ(OccBtree::new(OccBtreeConfig::prefetching())),
            Fig8Config::PlusPermuter => AnyIndex::Occ(OccBtree::new(OccBtreeConfig::permuter())),
            Fig8Config::Masstree => AnyIndex::Mass(Masstree::new()),
        }
        .with_capacity_hint(expected_keys)
    }
}

impl AnyIndex {
    fn with_capacity_hint(self, _expected: usize) -> AnyIndex {
        self
    }

    /// Builds the §6.4 comparison structures.
    pub fn hash_table(expected_keys: usize) -> AnyIndex {
        AnyIndex::Hash(HashTable::with_expected_keys(expected_keys))
    }

    pub fn fixed8_btree() -> AnyIndex {
        AnyIndex::Occ(OccBtree::new(OccBtreeConfig::fixed8()))
    }

    pub fn masstree() -> AnyIndex {
        AnyIndex::Mass(Masstree::new())
    }

    #[inline]
    pub fn get(&self, key: &[u8], guard: &Guard) -> Option<u64> {
        match self {
            AnyIndex::Binary(t) => t.get(key, guard),
            AnyIndex::Four(t) => t.get(key, guard),
            AnyIndex::Occ(t) => t.get(key, guard),
            AnyIndex::Mass(t) => t.get(key, guard).copied(),
            AnyIndex::Hash(t) => t.get(key, guard),
        }
    }

    #[inline]
    pub fn put(&self, key: &[u8], value: u64, guard: &Guard) {
        match self {
            AnyIndex::Binary(t) => t.put(key, value, guard),
            AnyIndex::Four(t) => t.put(key, value, guard),
            AnyIndex::Occ(t) => t.put(key, value, guard),
            AnyIndex::Mass(t) => {
                t.put(key, value, guard);
            }
            AnyIndex::Hash(t) => t.put(key, value, guard),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_config_builds_and_works() {
        for cfg in Fig8Config::ALL {
            let idx = cfg.build(1000);
            let g = crossbeam::epoch::pin();
            idx.put(b"12345", 1, &g);
            idx.put(b"1234567890", 2, &g);
            assert_eq!(idx.get(b"12345", &g), Some(1), "{}", cfg.label());
            assert_eq!(idx.get(b"1234567890", &g), Some(2), "{}", cfg.label());
            assert_eq!(idx.get(b"99", &g), None, "{}", cfg.label());
        }
    }

    #[test]
    fn hash_and_fixed8_variants() {
        let g = crossbeam::epoch::pin();
        let h = AnyIndex::hash_table(100);
        h.put(b"abcdefgh", 1, &g);
        assert_eq!(h.get(b"abcdefgh", &g), Some(1));
        let f = AnyIndex::fixed8_btree();
        f.put(b"abcdefgh", 2, &g);
        assert_eq!(f.get(b"abcdefgh", &g), Some(2));
    }
}
