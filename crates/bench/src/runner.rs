//! Multi-thread throughput measurement.
//!
//! Two modes mirroring §6.1: *timed* (get experiments run for a fixed
//! duration against a prefilled store) and *fixed-ops* (put experiments
//! insert a fixed number of keys and are timed to completion). All
//! threads start together on a barrier; throughput is aggregate
//! operations over wall-clock time.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// A throughput measurement.
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    pub ops: u64,
    pub secs: f64,
}

impl Throughput {
    /// Million requests per second (the paper's unit).
    pub fn mreq_per_sec(&self) -> f64 {
        self.ops as f64 / self.secs / 1e6
    }

    /// Requests per second.
    pub fn req_per_sec(&self) -> f64 {
        self.ops as f64 / self.secs
    }
}

/// Runs `threads` workers for ~`secs` seconds. `work(tid, &stop)` loops
/// until `stop` is set and returns its operation count.
pub fn run_timed<F>(threads: usize, secs: f64, work: F) -> Throughput
where
    F: Fn(usize, &AtomicBool) -> u64 + Send + Sync,
{
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let total = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let total = Arc::clone(&total);
            let work = &work;
            scope.spawn(move || {
                barrier.wait();
                let ops = work(tid, &stop);
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        barrier.wait();
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Release);
    });
    // Note: all threads have joined here. Use the requested duration as
    // the denominator — workers check `stop` every iteration, so overrun
    // is one operation's worth.
    Throughput {
        ops: total.load(Ordering::Relaxed),
        secs,
    }
}

/// Runs `threads` workers, each executing `work(tid)` to completion
/// (fixed-operation runs: the put experiments). Returns the aggregate
/// count over the longest worker's wall time.
pub fn run_fixed_ops<F>(threads: usize, work: F) -> Throughput
where
    F: Fn(usize) -> u64 + Send + Sync,
{
    let barrier = Arc::new(Barrier::new(threads + 1));
    let total = Arc::new(AtomicU64::new(0));
    let elapsed = std::thread::scope(|scope| {
        for tid in 0..threads {
            let barrier = Arc::clone(&barrier);
            let total = Arc::clone(&total);
            let work = &work;
            scope.spawn(move || {
                barrier.wait();
                let ops = work(tid);
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        barrier.wait();
        // All workers released; the scope joins them before returning,
        // so `elapsed` covers the slowest worker.
        Instant::now()
    });
    let secs = elapsed.elapsed().as_secs_f64();
    Throughput {
        ops: total.load(Ordering::Relaxed),
        secs: secs.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_run_counts_ops() {
        let t = run_timed(4, 0.1, |_tid, stop| {
            let mut n = 0;
            while !stop.load(Ordering::Relaxed) {
                n += 1;
            }
            n
        });
        assert!(t.ops > 1000);
        assert!(t.mreq_per_sec() > 0.0);
    }

    #[test]
    fn fixed_ops_counts_everything() {
        let t = run_fixed_ops(8, |_tid| 1000);
        assert_eq!(t.ops, 8000);
        assert!(t.secs > 0.0);
    }
}
