//! Tiny CLI/env parameter handling shared by all benchmark binaries.
//!
//! Flags: `--keys=N --threads=N --secs=N --scale=F` (also readable from
//! `MT_KEYS`, `MT_THREADS`, `MT_SECS`, `MT_SCALE`). `--scale` multiplies
//! key counts so `--scale=0.1` gives a smoke run and `--scale=35` the
//! paper's full 140M-key configuration (hardware permitting).

#[derive(Clone, Debug)]
pub struct Params {
    /// Working-set size (defaults to 4M keys; the paper uses 80–140M).
    pub keys: usize,
    /// Maximum worker threads (paper: 16).
    pub threads: usize,
    /// Measurement duration per data point, seconds.
    pub secs: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            keys: 4_000_000,
            threads: 16,
            secs: 2.0,
        }
    }
}

impl Params {
    /// Parses `std::env::args` and the `MT_*` environment variables.
    pub fn from_args() -> Params {
        let mut p = Params::default();
        let env = |k: &str| std::env::var(k).ok();
        if let Some(v) = env("MT_KEYS").and_then(|v| v.parse().ok()) {
            p.keys = v;
        }
        if let Some(v) = env("MT_THREADS").and_then(|v| v.parse().ok()) {
            p.threads = v;
        }
        if let Some(v) = env("MT_SECS").and_then(|v| v.parse().ok()) {
            p.secs = v;
        }
        let mut scale: f64 = env("MT_SCALE").and_then(|v| v.parse().ok()).unwrap_or(1.0);
        for arg in std::env::args().skip(1) {
            if let Some(v) = arg.strip_prefix("--keys=") {
                p.keys = v.parse().expect("--keys=N");
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                p.threads = v.parse().expect("--threads=N");
            } else if let Some(v) = arg.strip_prefix("--secs=") {
                p.secs = v.parse().expect("--secs=SECONDS");
            } else if let Some(v) = arg.strip_prefix("--scale=") {
                scale = v.parse().expect("--scale=FACTOR");
            } else if arg == "--help" || arg == "-h" {
                eprintln!("flags: --keys=N --threads=N --secs=S --scale=F");
                std::process::exit(0);
            }
        }
        p.keys = ((p.keys as f64) * scale).max(1000.0) as usize;
        p
    }

    /// A reduced clone for prefill-heavy experiments.
    pub fn with_keys(&self, keys: usize) -> Params {
        Params {
            keys,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = Params::default();
        assert!(p.keys > 0 && p.threads > 0 && p.secs > 0.0);
    }
}
