//! Sequential vs interleaved batch traversal (`masstree::batch`) on a
//! ≥1M-key uniform workload, swept over batch sizes {1, 4, 8, 16, 32} —
//! the §4.2 prefetch rationale applied *across* operations.
//!
//! Run with `cargo bench --bench multiget_pipeline`. Besides the usual
//! console output, writes `BENCH_multiget.json` at the repository root:
//! ops/sec per (mode, batch size), the interleaved/sequential speedup
//! ratio per batch size, and single-op get/put baselines so regressions
//! on the non-batched paths are visible in the same artifact.

use criterion::{black_box, Criterion};
use masstree::Masstree;
use mtworkload::{decimal_key, Rng64};

const TREE_KEYS: u64 = 1_000_000;
const BATCH_SIZES: [usize; 5] = [1, 4, 8, 16, 32];
/// Pre-generated probe keys, cycled through per iteration so successive
/// iterations touch different cache-cold parts of the tree.
const PROBES: usize = 1 << 16;

struct Probes {
    keys: Vec<Vec<u8>>,
    at: usize,
}

impl Probes {
    fn new(seed: u64) -> Probes {
        let mut rng = Rng64::new(seed);
        Probes {
            keys: (0..PROBES).map(|_| decimal_key(rng.next_u64())).collect(),
            at: 0,
        }
    }

    /// The next window of `n` keys (wrapping).
    fn window(&mut self, n: usize) -> Vec<&[u8]> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.keys[self.at].as_slice());
            self.at = (self.at + 1) % PROBES;
        }
        out
    }
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    eprintln!("building {TREE_KEYS}-key tree ...");
    let tree: Masstree<u64> = Masstree::new();
    {
        let g = masstree::pin();
        let mut rng = Rng64::new(1);
        for i in 0..TREE_KEYS {
            tree.put(&decimal_key(rng.next_u64()), i, &g);
        }
    }
    // Every measured closure pins per batch (the documented guard
    // discipline): a guard held across the whole run would block epoch
    // reclamation for millions of put retirements and skew the numbers
    // with allocator pressure. Both modes pay the same pin cost.

    // Single-op baselines (regression guard for the non-batched paths).
    let single_get = c.bench_measured("single/get", |b| {
        let mut p = Probes::new(11);
        b.iter(|| {
            let g = masstree::pin();
            let k = p.window(1)[0];
            black_box(tree.get(k, &g).is_some())
        })
    });
    let single_put = c.bench_measured("single/put", |b| {
        let mut p = Probes::new(12);
        let mut i = 0u64;
        b.iter(|| {
            let g = masstree::pin();
            i += 1;
            let k = p.window(1)[0];
            tree.put(k, i, &g).is_some()
        })
    });

    let mut rows = Vec::new();
    for &n in &BATCH_SIZES {
        let seq = c.bench_measured(&format!("multiget/sequential/{n}"), |b| {
            let mut p = Probes::new(21);
            b.iter(|| {
                let g = masstree::pin();
                let keys = p.window(n);
                let mut hits = 0usize;
                for k in &keys {
                    if tree.get(k, &g).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        let inter = c.bench_measured(&format!("multiget/interleaved/{n}"), |b| {
            let mut p = Probes::new(21);
            b.iter(|| {
                let g = masstree::pin();
                let keys = p.window(n);
                black_box(tree.multi_get(&keys, &g).len())
            })
        });
        // ns/iter covers the whole batch; per-op rates divide by n.
        let seq_ops = seq.ops_per_sec() * n as f64;
        let inter_ops = inter.ops_per_sec() * n as f64;
        rows.push((n, seq_ops, inter_ops));
    }

    let mut put_rows = Vec::new();
    for &n in &BATCH_SIZES {
        let seq = c.bench_measured(&format!("multiput/sequential/{n}"), |b| {
            let mut p = Probes::new(31);
            let mut i = 0u64;
            b.iter(|| {
                let g = masstree::pin();
                let keys = p.window(n);
                for k in &keys {
                    i += 1;
                    tree.put(k, i, &g);
                }
            })
        });
        let inter = c.bench_measured(&format!("multiput/interleaved/{n}"), |b| {
            let mut p = Probes::new(31);
            let mut i = 0u64;
            b.iter(|| {
                let g = masstree::pin();
                let keys = p.window(n);
                i += 1;
                let values: Vec<u64> = (0..n as u64).map(|j| i + j).collect();
                black_box(tree.multi_put(&keys, values, &g).len())
            })
        });
        put_rows.push((
            n,
            seq.ops_per_sec() * n as f64,
            inter.ops_per_sec() * n as f64,
        ));
    }

    // ---- BENCH_multiget.json ----
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&bench::host_meta_json(1));
    json.push_str(&format!("  \"tree_keys\": {TREE_KEYS},\n"));
    json.push_str("  \"workload\": \"uniform decimal keys\",\n");
    json.push_str(&format!(
        "  \"single_get_ops_per_sec\": {:.0},\n  \"single_put_ops_per_sec\": {:.0},\n",
        single_get.ops_per_sec(),
        single_put.ops_per_sec()
    ));
    let emit = |json: &mut String, name: &str, rows: &[(usize, f64, f64)]| {
        json.push_str(&format!("  \"{name}\": [\n"));
        for (i, (n, seq, inter)) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"batch_size\": {n}, \"sequential_ops_per_sec\": {seq:.0}, \
                 \"interleaved_ops_per_sec\": {inter:.0}, \"speedup\": {:.3}}}{}\n",
                inter / seq,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n");
    };
    emit(&mut json, "multiget", &rows);
    emit(&mut json, "multiput", &put_rows);
    // Trailing summary field keeps the JSON valid after the arrays.
    let best = rows.iter().map(|(_, s, i)| i / s).fold(f64::MIN, f64::max);
    json.push_str(&format!("  \"best_multiget_speedup\": {best:.3}\n}}\n"));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multiget.json");
    std::fs::write(path, &json).expect("write BENCH_multiget.json");
    println!("\nwrote {path}");
    print!("{json}");
}
