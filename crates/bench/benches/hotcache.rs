//! Hot-path cache tier (`mtcache`) benchmark: zipf point-get sweep with
//! leaf hints on vs off, across skew θ **and batch size**, on a
//! ≥1M-key store.
//!
//! Run with `cargo bench --bench hotcache`. Writes `BENCH_hotcache.json`
//! at the repository root. Acceptance gates: hinted zipf (θ ≥ 0.99)
//! point gets ≥ 1.2× unhinted on 1M keys, and the uniform-workload
//! regression ≤ 5% (the admission sketch + adaptive bypass must keep
//! cold traffic from paying for the table).
//!
//! Keys are YCSB-style records (`"user"` + zero-padded hashed id, 23-24
//! bytes — stock YCSB's `usertable` key shape), whose digit structure
//! spans several trie layers. Batch size is a first-class dimension
//! because it is the system's native request shape: the paper's clients
//! pipeline batches ("batched query support is vital", §7) and the
//! network server feeds whole wire batches through
//! `Session::multi_get_with` — which is where the hint tier composes
//! with the interleaved traversal engine: validated hits complete in a
//! few cache lines and the engine pipelines only the misses.
//!
//! Honesty note, measured on this single-core container: at batch = 1 a
//! hinted hit is a *serial* chain of ~3 cache-line fetches (table →
//! node → value) while a zipf-hot key's descent is itself nearly free
//! (the upper tree is LLC-resident — the tree is already
//! cache-crafty), so singleton speedup hovers around 1.0×. The hint
//! tier's fewer-lines-per-op advantage pays where lines can overlap
//! (batches, below) or where cache capacity is contended (real
//! multicore serving, which a 1-CPU container cannot exhibit).

use std::time::Instant;

use criterion::black_box;
use mtkv::{CacheConfig, Session, Store};
use mtworkload::ycsb_key;
use mtworkload::zipf::PointGets;

const STORE_KEYS: u64 = 1_000_000;
/// θ = 0.0 denotes uniform; the rest are Zipfian (YCSB default 0.99).
const THETAS: [f64; 4] = [0.0, 0.5, 0.9, 0.99];
/// Batch sizes swept per θ; 1 = the singleton `get_with` path, the rest
/// go through `multi_get_with` (the server's wire-batch path).
const BATCH_SIZES: [usize; 3] = [1, 8, 32];
/// Hint slots per session. 32k slots over a 1M-key zipf(0.99) keyspace
/// covers ~75% of the probability mass.
const CACHE_CAPACITY: usize = 32 * 1024;
/// Pre-generated probe keys, cycled per iteration (sampling a Zipfian
/// costs two `powf`s — far too expensive to put inside the measured
/// loop). The pool must be LARGER than the keyspace: a short cycled
/// pool would turn "uniform" into a small hot working set and corrupt
/// both sides of the comparison.
const PROBES: usize = 1 << 21;
/// Probe keys live in a flat fixed-stride buffer (2M heap `Vec`s would
/// cost ~100 MB of pointer-chased allocations).
const STRIDE: usize = 32;

struct Probes {
    buf: Vec<u8>,
    lens: Vec<u8>,
    at: usize,
}

impl Probes {
    fn new(theta: f64, seed: u64) -> Probes {
        let mut ids = PointGets::new(STORE_KEYS, theta, seed);
        let mut buf = vec![0u8; PROBES * STRIDE];
        let mut lens = vec![0u8; PROBES];
        for i in 0..PROBES {
            let k = ycsb_key(ids.next_key());
            assert!(k.len() <= STRIDE);
            buf[i * STRIDE..i * STRIDE + k.len()].copy_from_slice(&k);
            lens[i] = k.len() as u8;
        }
        Probes { buf, lens, at: 0 }
    }

    #[inline]
    fn next(&mut self) -> &[u8] {
        let i = self.at;
        self.at = (self.at + 1) % PROBES;
        &self.buf[i * STRIDE..i * STRIDE + self.lens[i] as usize]
    }

    fn window(&mut self, n: usize) -> Vec<&[u8]> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let i = self.at;
            self.at = (self.at + 1) % PROBES;
            out.push(&self.buf[i * STRIDE..i * STRIDE + self.lens[i] as usize]);
        }
        out
    }
}

fn hit_rate(before: mtkv::CacheStats, after: mtkv::CacheStats) -> f64 {
    let lookups = (after.lookups - before.lookups).max(1);
    (after.hits - before.hits) as f64 / lookups as f64
}

/// Runs `ops` point gets (batched as requested) through `session`,
/// returning elapsed ns/op.
fn run_chunk(session: &Session, p: &mut Probes, batch: usize, ops: usize) -> f64 {
    let t = Instant::now();
    if batch == 1 {
        for _ in 0..ops {
            let k = p.next();
            black_box(session.get_with(k, |v| v.is_some()));
        }
    } else {
        for _ in 0..ops / batch {
            let keys = p.window(batch);
            let mut hits = 0usize;
            session.multi_get_with(&keys, |_, v| hits += v.is_some() as usize);
            black_box(hits);
        }
    }
    t.elapsed().as_nanos() as f64 / ops as f64
}

/// Paired rounds per cell.
const ROUNDS: usize = 15;
/// Ops per chunk (~20-60 ms per chunk at typical rates).
const CHUNK_OPS: usize = 100_000;

/// A **paired** plain-vs-hinted measurement of one (θ, batch) cell:
/// each round times a plain chunk and a hinted chunk back to back, and
/// the reported speedup is the median of per-round ratios — paired
/// rounds cancel the slow throughput drift of a shared container that
/// would otherwise swamp an unpaired A/B at this granularity.
fn measure_pair(plain: &Session, cached: &Session, theta: f64, batch: usize) -> (f64, f64, f64) {
    let mut pp = Probes::new(theta, 42);
    let mut pc = Probes::new(theta, 42);
    // Warm both chunks once (page in probe buffers, settle the bypass
    // governor).
    run_chunk(plain, &mut pp, batch, CHUNK_OPS / 4);
    run_chunk(cached, &mut pc, batch, CHUNK_OPS / 4);
    let mut plain_ns = Vec::with_capacity(ROUNDS);
    let mut cached_ns = Vec::with_capacity(ROUNDS);
    let mut ratios = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let a = run_chunk(plain, &mut pp, batch, CHUNK_OPS);
        let b = run_chunk(cached, &mut pc, batch, CHUNK_OPS);
        plain_ns.push(a);
        cached_ns.push(b);
        ratios.push(a / b);
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v[v.len() / 2]
    };
    (
        1e9 / med(&mut plain_ns),
        1e9 / med(&mut cached_ns),
        med(&mut ratios),
    )
}

fn main() {
    eprintln!("building {STORE_KEYS}-key store (YCSB-style keys) ...");
    let store = Store::in_memory();
    let plain = store.session().unwrap();
    store.set_session_cache(Some(CacheConfig::with_capacity(CACHE_CAPACITY)));
    let cached = store.session().unwrap();
    for i in 0..STORE_KEYS {
        plain.put(&ycsb_key(i), &[(0, &i.to_le_bytes())]);
    }

    let mut rows = Vec::new();
    for &theta in &THETAS {
        let label = if theta == 0.0 {
            "uniform".to_string()
        } else {
            format!("zipf{theta}")
        };
        for &batch in &BATCH_SIZES {
            // Warm the admission sketch and hint table so the hinted
            // rounds reflect steady state, not cold-cache fill.
            {
                let mut p = Probes::new(theta, 42);
                for _ in 0..(4 * CACHE_CAPACITY / batch) {
                    let keys = p.window(batch);
                    cached.multi_get_with(&keys, |_, _| {});
                }
            }
            let before = cached.cache_stats().unwrap();
            let (plain_ops, cached_ops, speedup) = measure_pair(&plain, &cached, theta, batch);
            let rate = hit_rate(before, cached.cache_stats().unwrap());
            eprintln!(
                "  {label} batch {batch}: unhinted {plain_ops:.0}/s, hinted {cached_ops:.0}/s, \
                 speedup {speedup:.3}, hit rate {rate:.3}"
            );
            rows.push((theta, batch, plain_ops, cached_ops, speedup, rate));
        }
    }

    // ---- BENCH_hotcache.json ----
    // Acceptance view: the WORST θ=0.99 speedup across the server's
    // batched operating points (min, so the gate bounds every batched
    // cell, not just the best one), and the worst uniform cell as the
    // regression bound.
    let zipf_speedup = rows
        .iter()
        .filter(|r| r.0 >= 0.99 && r.1 > 1)
        .map(|r| r.4)
        .fold(f64::MAX, f64::min);
    let uniform_regression = rows
        .iter()
        .filter(|r| r.0 == 0.0)
        .map(|r| 1.0 - r.4)
        .fold(f64::MIN, f64::max);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&bench::host_meta_json(1));
    json.push_str(&format!("  \"store_keys\": {STORE_KEYS},\n"));
    json.push_str(&format!("  \"cache_capacity\": {CACHE_CAPACITY},\n"));
    json.push_str("  \"key_shape\": \"ycsb: 'user' + 19-digit hashed id (23-24 bytes)\",\n");
    json.push_str(&format!(
        "  \"zipf099_batched_speedup\": {zipf_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"uniform_regression\": {uniform_regression:.4},\n"
    ));
    json.push_str("  \"point_gets\": [\n");
    for (i, (theta, batch, plain_ops, cached_ops, speedup, rate)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"theta\": {theta}, \"batch\": {batch}, \
             \"unhinted_ops_per_sec\": {plain_ops:.0}, \
             \"hinted_ops_per_sec\": {cached_ops:.0}, \"speedup\": {speedup:.3}, \
             \"hit_rate\": {rate:.3}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotcache.json");
    std::fs::write(path, &json).expect("write BENCH_hotcache.json");
    eprintln!("wrote BENCH_hotcache.json");
    eprintln!("{json}");

    // Enforce the acceptance gates so a regression fails CI instead of
    // hiding in an artifact nobody reads. The paired-ratio design keeps
    // these stable well past the thresholds (measured ~1.31-1.41 and
    // ≤ ~3% across runs on a noisy shared container).
    let mut failed = false;
    if zipf_speedup < 1.2 {
        eprintln!("GATE FAILED: zipf(0.99) batched speedup {zipf_speedup:.3} < 1.2");
        failed = true;
    }
    if uniform_regression > 0.05 {
        eprintln!("GATE FAILED: uniform regression {uniform_regression:.4} > 0.05");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "gates passed: zipf0.99 batched {zipf_speedup:.3}x (>= 1.2), \
         uniform regression {uniform_regression:.4} (<= 0.05)"
    );
}
