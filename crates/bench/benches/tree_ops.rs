//! Criterion benchmarks of single-threaded Masstree operations at several
//! tree sizes (the per-op DRAM-latency story of §4.2), including deep
//! shared-prefix keys and scans.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use masstree::Masstree;
use mtworkload::{decimal_key, Rng64};

fn filled_tree(n: u64) -> Masstree<u64> {
    let t = Masstree::new();
    let g = masstree::pin();
    let mut rng = Rng64::new(1);
    for i in 0..n {
        t.put(&decimal_key(rng.next_u64()), i, &g);
    }
    t
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("masstree/get");
    for n in [10_000u64, 100_000, 1_000_000] {
        let tree = filled_tree(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let g = masstree::pin();
            let mut rng = Rng64::new(1);
            b.iter(|| black_box(tree.get(&decimal_key(rng.next_u64()), &g)))
        });
    }
    group.finish();
}

fn bench_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("masstree/put");
    group.bench_function("insert_1M_keyspace", |b| {
        let tree = filled_tree(100_000);
        let g = masstree::pin();
        let mut rng = Rng64::new(99);
        b.iter(|| tree.put(&decimal_key(rng.next_u64()), 1, &g))
    });
    group.bench_function("update_hot_key", |b| {
        let tree = filled_tree(10_000);
        let g = masstree::pin();
        tree.put(b"hotkey", 0, &g);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tree.put(b"hotkey", i, &g)
        })
    });
    group.finish();
}

fn bench_deep_prefix(c: &mut Criterion) {
    // 40-byte shared prefix: five trie layers per lookup (Figure 9's
    // regime).
    let tree = Masstree::new();
    let g = masstree::pin();
    let prefix = "P".repeat(40);
    for i in 0..100_000u64 {
        tree.put(format!("{prefix}{i:08}").as_bytes(), i, &g);
    }
    c.bench_function("masstree/get_40B_shared_prefix", |b| {
        let mut rng = Rng64::new(3);
        b.iter(|| {
            let k = format!("{prefix}{:08}", rng.below(100_000));
            black_box(tree.get(k.as_bytes(), &g))
        })
    });
}

fn bench_scan(c: &mut Criterion) {
    let tree = filled_tree(1_000_000);
    let g = masstree::pin();
    c.bench_function("masstree/scan_100", |b| {
        let mut rng = Rng64::new(5);
        b.iter(|| {
            let start = decimal_key(rng.next_u64());
            black_box(tree.get_range(&start, 100, &g)).len()
        })
    });
}

criterion_group!(benches, bench_get, bench_put, bench_deep_prefix, bench_scan);
criterion_main!(benches);
