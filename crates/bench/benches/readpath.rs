//! Borrowed (zero-copy) vs owning read path on a 1M-key store with
//! 64-byte 8-column values: `get_with` / `multi_get_with` /
//! `get_range_with` against their `Vec<Vec<u8>>`-materializing
//! counterparts, plus the full border→wire serving pipeline both ways
//! (the seed server's triple-copy path vs `execute_batch_into`).
//!
//! Run with `cargo bench --bench readpath`. Writes `BENCH_readpath.json`
//! at the repository root: ops/sec per (api, mode) and the
//! borrowed/owning speedup per API. The acceptance gate is ≥ 1.3× on
//! the APIs where the owning path's copies serialize with the work —
//! `get_range` (per-row key + per-column vectors) and the served read
//! batch (`serve_read_batch`: gets + scans, border node to framed wire
//! bytes). Point `multi_get` is reported too, with a caveat measured
//! honestly below: on this single-core container a point get is
//! DRAM-bound (~250 ns of dependent cache misses per descent), and the
//! owned path's ~140 ns of tcache allocations execute in the shadow of
//! those stalls, so wall-clock parity is expected single-threaded; the
//! allocation savings show up as freed CPU cycles (and as the scan /
//! serving speedups, where copies do not overlap misses).

use criterion::{black_box, Criterion};
use mtkv::Store;
use mtnet::proto::{
    begin_batch, finish_batch, frame_batch, write_value_borrowed, write_value_none,
};
use mtnet::{Request, Response};
use mtworkload::{decimal_key, Rng64};

const STORE_KEYS: u64 = 1_000_000;
const VALUE_BYTES: usize = 64;
/// The 64 bytes are spread over 8 columns (the paper's multi-column
/// values, §4.7): `get_c` materializes one `Vec` per column on the
/// owning path, none on the borrowed path.
const NCOLS: usize = 8;
const COL_BYTES: usize = VALUE_BYTES / NCOLS;
const BATCH: usize = 128;
const RANGE: usize = 100;
/// Pre-generated probe keys, cycled through per iteration so successive
/// iterations touch different cache-cold parts of the tree.
const PROBES: usize = 1 << 16;

struct Probes {
    keys: Vec<Vec<u8>>,
    at: usize,
}

impl Probes {
    fn new(seed: u64) -> Probes {
        let mut rng = Rng64::new(seed);
        Probes {
            keys: (0..PROBES).map(|_| decimal_key(rng.next_u64())).collect(),
            at: 0,
        }
    }

    /// Probes drawn from only `n` distinct keys: a cache-resident hot
    /// set (the skewed-workload case where allocator overhead, not DRAM,
    /// is the read path's bottleneck).
    fn hot(seed: u64, n: usize) -> Probes {
        let mut p = Probes::new(seed);
        p.keys.truncate(n);
        p
    }

    fn next(&mut self) -> &[u8] {
        let k = self.keys[self.at].as_slice();
        self.at = (self.at + 1) % self.keys.len();
        k
    }

    fn window(&mut self, n: usize) -> Vec<&[u8]> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.keys[self.at].as_slice());
            self.at = (self.at + 1) % self.keys.len();
        }
        out
    }
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    eprintln!("building {STORE_KEYS}-key store with {VALUE_BYTES}-byte values ...");
    let store = Store::in_memory();
    let session = store.session().unwrap();
    {
        let mut rng = Rng64::new(1);
        let mut payload = [0u8; VALUE_BYTES];
        for _ in 0..STORE_KEYS {
            let k = decimal_key(rng.next_u64());
            payload[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
            let cols: Vec<(usize, &[u8])> = (0..NCOLS)
                .map(|c| (c, &payload[c * COL_BYTES..(c + 1) * COL_BYTES]))
                .collect();
            session.put(&k, &cols);
        }
    }

    let mut rows: Vec<(&str, f64, f64)> = Vec::new();

    // ---- point get ----
    let owning = c.bench_measured("get/owning", |b| {
        let mut p = Probes::new(11);
        b.iter(|| {
            let hit = session.get(p.next(), None);
            let sum = hit
                .as_ref()
                .map_or(0, |cols| cols.iter().map(|c| c.len()).sum::<usize>());
            black_box(&hit);
            black_box(sum)
        })
    });
    let borrowed = c.bench_measured("get/borrowed", |b| {
        let mut p = Probes::new(11);
        b.iter(|| {
            session.get_with(p.next(), |hit| {
                let sum = hit.map_or(0, |v| {
                    (0..v.ncols()).map(|c| v.col(c).unwrap_or(&[]).len()).sum()
                });
                black_box(sum)
            })
        })
    });
    rows.push(("get", owning.ops_per_sec(), borrowed.ops_per_sec()));

    // ---- multi_get (interleaved engine both ways) ----
    let owning = c.bench_measured("multi_get/owning", |b| {
        let mut p = Probes::new(21);
        b.iter(|| {
            let keys = p.window(BATCH);
            let hits = session.multi_get(&keys, None);
            let sum = hits
                .iter()
                .map(|h| {
                    h.as_ref()
                        .map_or(0, |cols| cols.iter().map(|c| c.len()).sum::<usize>())
                })
                .sum::<usize>();
            black_box(&hits);
            black_box(sum)
        })
    });
    let borrowed = c.bench_measured("multi_get/borrowed", |b| {
        let mut p = Probes::new(21);
        b.iter(|| {
            let keys = p.window(BATCH);
            let mut sum = 0usize;
            session.multi_get_with(&keys, |_, hit| {
                sum += hit.map_or(0, |v| {
                    (0..v.ncols())
                        .map(|c| v.col(c).unwrap_or(&[]).len())
                        .sum::<usize>()
                });
            });
            black_box(sum)
        })
    });
    // Per-op rates: the measured closure covers the whole batch.
    rows.push((
        "multi_get",
        owning.ops_per_sec() * BATCH as f64,
        borrowed.ops_per_sec() * BATCH as f64,
    ));

    // ---- multi_get over a hot (cache-resident) key set ----
    let owning = c.bench_measured("multi_get_hot/owning", |b| {
        let mut p = Probes::hot(22, 1024);
        b.iter(|| {
            let keys = p.window(BATCH);
            let hits = session.multi_get(&keys, None);
            let sum = hits
                .iter()
                .map(|h| {
                    h.as_ref()
                        .map_or(0, |cols| cols.iter().map(|c| c.len()).sum::<usize>())
                })
                .sum::<usize>();
            black_box(&hits);
            black_box(sum)
        })
    });
    let borrowed = c.bench_measured("multi_get_hot/borrowed", |b| {
        let mut p = Probes::hot(22, 1024);
        b.iter(|| {
            let keys = p.window(BATCH);
            let mut sum = 0usize;
            session.multi_get_with(&keys, |_, hit| {
                sum += hit.map_or(0, |v| {
                    (0..v.ncols())
                        .map(|c| v.col(c).unwrap_or(&[]).len())
                        .sum::<usize>()
                });
            });
            black_box(sum)
        })
    });
    rows.push((
        "multi_get_hot",
        owning.ops_per_sec() * BATCH as f64,
        borrowed.ops_per_sec() * BATCH as f64,
    ));

    // ---- get_range (100 rows) ----
    let owning = c.bench_measured("get_range/owning", |b| {
        let mut p = Probes::new(31);
        b.iter(|| {
            let rows = session.get_range(p.next(), RANGE, None);
            let sum = rows
                .iter()
                .map(|(k, cols)| k.len() + cols.iter().map(|c| c.len()).sum::<usize>())
                .sum::<usize>();
            black_box(&rows);
            black_box(sum)
        })
    });
    let borrowed = c.bench_measured("get_range/borrowed", |b| {
        let mut p = Probes::new(31);
        b.iter(|| {
            let mut sum = 0usize;
            session.get_range_with(p.next(), RANGE, |k, v| {
                sum += k.len()
                    + (0..v.ncols())
                        .map(|c| v.col(c).unwrap_or(&[]).len())
                        .sum::<usize>();
            });
            black_box(sum)
        })
    });
    rows.push((
        "get_range",
        owning.ops_per_sec() * RANGE as f64,
        borrowed.ops_per_sec() * RANGE as f64,
    ));

    // ---- store → wire (whole served batch, header included) ----
    // The owning pipeline is the seed server's: materialize owned
    // columns, wrap them in `Vec<Response>`, encode into a fresh body,
    // then `frame_batch` copies everything again. The borrowed pipeline
    // is the new one: reserve the header in the reusable connection
    // buffer, serialize straight from the live values, length-patch.
    let owning = c.bench_measured("wire_multi_get/owning", |b| {
        let mut p = Probes::new(41);
        b.iter(|| {
            let keys = p.window(BATCH);
            let hits = session.multi_get(&keys, None);
            let resps: Vec<Response> = hits.into_iter().map(Response::Value).collect();
            let mut body = Vec::with_capacity(1 << 10);
            for r in &resps {
                r.encode(&mut body);
            }
            let framed = frame_batch(resps.len(), &body);
            black_box(&resps);
            black_box(framed.len())
        })
    });
    let borrowed = c.bench_measured("wire_multi_get/borrowed", |b| {
        let mut p = Probes::new(41);
        let mut out: Vec<u8> = Vec::with_capacity(1 << 16);
        b.iter(|| {
            let keys = p.window(BATCH);
            out.clear();
            let mark = begin_batch(&mut out);
            session.multi_get_with(&keys, |_, hit| match hit {
                None => write_value_none(&mut out),
                Some(v) => write_value_borrowed(
                    &mut out,
                    v.ncols(),
                    (0..v.ncols()).map(|c| v.col(c).unwrap_or(&[])),
                ),
            });
            finish_batch(&mut out, mark, BATCH);
            black_box(out.len())
        })
    });
    rows.push((
        "wire_multi_get",
        owning.ops_per_sec() * BATCH as f64,
        borrowed.ops_per_sec() * BATCH as f64,
    ));

    // ---- full served read path: mixed gets + scans, border → wire ----
    // The measurement the tentpole is about: one wire batch of point
    // gets and range scans served end-to-end. Owning = the seed server
    // pipeline (owned column vectors → `Vec<Response>` → encode →
    // `frame_batch`: three heap round-trips per served read). Borrowed =
    // the new pipeline (`execute_batch_into`: responses serialized
    // straight from epoch-guarded value slices into the reusable,
    // length-patched connection buffer).
    const MIX_GETS: usize = 64;
    const MIX_SCANS: usize = 4;
    let mix_ops = (MIX_GETS + MIX_SCANS * RANGE) as f64;
    let make_reqs = |p: &mut Probes| -> Vec<Request> {
        let mut reqs = Vec::with_capacity(MIX_GETS + MIX_SCANS);
        for _ in 0..MIX_GETS {
            reqs.push(Request::Get {
                key: p.next().to_vec(),
                cols: None,
            });
        }
        for _ in 0..MIX_SCANS {
            reqs.push(Request::Scan {
                key: p.next().to_vec(),
                count: RANGE as u32,
                cols: None,
                resume: None,
            });
        }
        reqs
    };
    let owning = c.bench_measured("serve_read_batch/owning", |b| {
        let mut p = Probes::new(51);
        b.iter(|| {
            let reqs = make_reqs(&mut p);
            let resps = mtnet::execute_batch(&session, reqs);
            let mut body = Vec::with_capacity(1 << 12);
            for r in &resps {
                r.encode(&mut body);
            }
            let framed = frame_batch(resps.len(), &body);
            black_box(&resps);
            black_box(framed.len())
        })
    });
    let borrowed = c.bench_measured("serve_read_batch/borrowed", |b| {
        let mut p = Probes::new(51);
        let mut out: Vec<u8> = Vec::with_capacity(1 << 16);
        b.iter(|| {
            let reqs = make_reqs(&mut p);
            out.clear();
            let mark = begin_batch(&mut out);
            let written = mtnet::execute_batch_into(&session, reqs, &mut out);
            finish_batch(&mut out, mark, written);
            black_box(out.len())
        })
    });
    rows.push((
        "serve_read_batch",
        owning.ops_per_sec() * mix_ops,
        borrowed.ops_per_sec() * mix_ops,
    ));

    // ---- BENCH_readpath.json ----
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&bench::host_meta_json(1));
    json.push_str(&format!("  \"store_keys\": {STORE_KEYS},\n"));
    json.push_str(&format!("  \"value_bytes\": {VALUE_BYTES},\n"));
    json.push_str(&format!("  \"batch\": {BATCH},\n"));
    json.push_str(&format!("  \"range\": {RANGE},\n"));
    json.push_str("  \"apis\": [\n");
    for (i, (name, owning, borrowed)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"api\": \"{name}\", \"owning_ops_per_sec\": {owning:.0}, \
             \"borrowed_ops_per_sec\": {borrowed:.0}, \"speedup\": {:.3}}}{}\n",
            borrowed / owning,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    let speedup_of = |name: &str| {
        rows.iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, o, b)| b / o)
            .unwrap_or(0.0)
    };
    json.push_str(&format!(
        "  \"multi_get_speedup\": {:.3},\n  \"get_range_speedup\": {:.3},\n  \"serve_read_batch_speedup\": {:.3}\n}}\n",
        speedup_of("multi_get"),
        speedup_of("get_range"),
        speedup_of("serve_read_batch")
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_readpath.json");
    std::fs::write(path, &json).expect("write BENCH_readpath.json");
    println!("\nwrote {path}");
    print!("{json}");
}
