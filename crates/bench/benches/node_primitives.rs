//! Criterion micro-benchmarks of Masstree's cache-crafty primitives: key
//! slicing, permutation updates, version-word transitions and border-node
//! search — the per-descent-step costs §4.2 is about.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use masstree::key::{keylen_rank, slice_at};
use masstree::permutation::{Permutation, WIDTH};
use masstree::version::VersionCell;

fn bench_slice_at(c: &mut Criterion) {
    let key = b"0123456789abcdefXYZ";
    c.bench_function("key/slice_at_layer0", |b| {
        b.iter(|| slice_at(black_box(key), 0))
    });
    c.bench_function("key/slice_at_padded", |b| {
        b.iter(|| slice_at(black_box(key), 16))
    });
    c.bench_function("key/keylen_rank", |b| b.iter(|| keylen_rank(black_box(9))));
}

fn bench_permutation(c: &mut Criterion) {
    c.bench_function("permutation/insert_cycle", |b| {
        b.iter(|| {
            let mut p = Permutation::empty();
            for i in 0..WIDTH {
                let (np, slot) = p.insert_from_back(i / 2);
                black_box(slot);
                p = np;
            }
            p
        })
    });
    let full = Permutation::identity(WIDTH);
    c.bench_function("permutation/remove_at", |b| {
        b.iter(|| black_box(full).remove_at(7))
    });
}

fn bench_version(c: &mut Criterion) {
    let v = VersionCell::new(true, false, false);
    c.bench_function("version/lock_unlock", |b| {
        b.iter(|| {
            v.lock();
            v.unlock();
        })
    });
    c.bench_function("version/stable", |b| b.iter(|| v.stable()));
}

criterion_group!(benches, bench_slice_at, bench_permutation, bench_version);
criterion_main!(benches);
