//! Criterion comparison of single-threaded gets across every structure in
//! the factor analysis (a per-op view of Figure 8's ordering).

use bench::unified::{AnyIndex, Fig8Config};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtworkload::{decimal_key, Rng64};

const N: u64 = 200_000;

fn fill(idx: &AnyIndex) {
    let g = crossbeam::epoch::pin();
    let mut rng = Rng64::new(1);
    for i in 0..N {
        idx.put(&decimal_key(rng.next_u64()), i, &g);
    }
}

fn bench_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/get");
    for cfg in Fig8Config::ALL {
        let idx = cfg.build(N as usize);
        fill(&idx);
        group.bench_function(cfg.label(), |b| {
            let g = crossbeam::epoch::pin();
            let mut rng = Rng64::new(1);
            b.iter(|| black_box(idx.get(&decimal_key(rng.next_u64()), &g)))
        });
    }
    // The §6.4 hash table for reference.
    let hash = AnyIndex::hash_table(N as usize);
    fill(&hash);
    group.bench_function("HashTable", |b| {
        let g = crossbeam::epoch::pin();
        let mut rng = Rng64::new(1);
        b.iter(|| black_box(hash.get(&decimal_key(rng.next_u64()), &g)))
    });
    group.finish();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
