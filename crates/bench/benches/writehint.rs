//! Validated-anchor **write** and **scan-resume** benchmark: the two
//! new hinted entry paths of the unified anchor core, measured against
//! their unhinted (full-descent) twins on a ≥1M-key YCSB-style store.
//!
//! Run with `cargo bench --bench writehint`. Writes
//! `BENCH_writehint.json` at the repository root. Acceptance gates:
//!
//! * zipf(0.99) **batched update-heavy mix** (YCSB-A: 50% update, 50%
//!   read, issued as the get/put runs the server's batch executor
//!   produces) ≥ 1.15× unhinted, min across the batched cells, at a
//!   reported write-anchor hit rate;
//! * uniform mix regression ≤ 5% (admission + adaptive bypass must
//!   keep reuse-free streams from paying for the table);
//! * **sequential chunked range reads** ≥ 1.2× over restart-from-root
//!   at the small-chunk cell (chunk 10, where a descent per chunk is a
//!   material fraction of the work); larger chunks are reported so the
//!   amortization crossover is visible.
//!
//! Methodology mirrors `hotcache.rs`: pre-generated probe keys in a
//! flat buffer, paired plain-vs-hinted rounds with the median of
//! per-round ratios (cancels shared-container drift), and the cells
//! gate on the *worst* qualifying configuration so the numbers bound
//! every operating point rather than showcasing the best one.
//!
//! Honesty notes, measured on this single-core container: a singleton
//! hinted update (batch 1) pays a serial table-probe → lock → search
//! chain against a zipf-hot descent whose upper tree is LLC-resident,
//! so its speedup hovers near 1.0× (same effect as singleton reads in
//! `hotcache.rs`); the win comes from the batched cells, where the
//! engine already pipelines the misses and validated anchors remove
//! whole descents from the critical path. Scan resume wins shrink as
//! chunks grow (the per-chunk descent amortizes): the sweep reports
//! chunk 10/25/100 so the crossover is visible instead of hidden.

use std::time::Instant;

use criterion::black_box;
use mtkv::{CacheConfig, Session, Store};
use mtworkload::ycsb_key;
use mtworkload::zipf::PointGets;

const STORE_KEYS: u64 = 4_000_000;
/// Deep-trie scan corpus: tenant/event keys whose 32 bytes span four
/// trie layers (long shared prefixes are exactly where the paper's
/// trie-of-B-trees design pays, and where a restart-from-root scan
/// chunk pays a descent *per layer*).
const DEEP_KEYS: u64 = 1_000_000;
/// θ = 0.0 denotes uniform; 0.99 is the YCSB default skew.
const THETAS: [f64; 3] = [0.0, 0.9, 0.99];
/// Batch sizes per θ; 1 = singleton `put`, the rest `multi_put` (the
/// server's wire-batch path).
const BATCH_SIZES: [usize; 3] = [1, 8, 32];
/// Chunk sizes for the sequential range-read sweep.
const SCAN_CHUNKS: [usize; 3] = [10, 25, 100];

/// A deep-layer scan key: `ev/<tenant 8>/<seq 12>`, 32 bytes → four
/// trie layers. Tenants hold 4096 events each, so chunked scans cross
/// tenant boundaries too.
fn deep_key(i: u64) -> Vec<u8> {
    format!("ev/{:08}/{:012}/ap", i >> 12, i & 0xfff).into_bytes()
}
/// Hint slots per session (~2/3 of zipf(0.99) mass on 4M keys).
const CACHE_CAPACITY: usize = 64 * 1024;
const PROBES: usize = 1 << 21;
const STRIDE: usize = 32;

struct Probes {
    buf: Vec<u8>,
    lens: Vec<u8>,
    at: usize,
}

impl Probes {
    fn new(theta: f64, seed: u64) -> Probes {
        let mut ids = PointGets::new(STORE_KEYS, theta, seed);
        let mut buf = vec![0u8; PROBES * STRIDE];
        let mut lens = vec![0u8; PROBES];
        for i in 0..PROBES {
            let k = ycsb_key(ids.next_key());
            assert!(k.len() <= STRIDE);
            buf[i * STRIDE..i * STRIDE + k.len()].copy_from_slice(&k);
            lens[i] = k.len() as u8;
        }
        Probes { buf, lens, at: 0 }
    }

    #[inline]
    fn next(&mut self) -> &[u8] {
        let i = self.at;
        self.at = (self.at + 1) % PROBES;
        &self.buf[i * STRIDE..i * STRIDE + self.lens[i] as usize]
    }

    fn window(&mut self, n: usize) -> Vec<&[u8]> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let i = self.at;
            self.at = (self.at + 1) % PROBES;
            out.push(&self.buf[i * STRIDE..i * STRIDE + self.lens[i] as usize]);
        }
        out
    }
}

/// Runs `ops` operations of the update-heavy mix (YCSB-A: 50% update,
/// 50% read — the "update-heavy" standard mix), batched as requested:
/// each round issues one read run and one update run of `batch` keys,
/// exactly how the server's batch executor groups a mixed wire batch
/// into get/put runs. Returns elapsed ns/op.
fn run_mix_chunk(session: &Session, p: &mut Probes, batch: usize, ops: usize) -> f64 {
    let payload = [0x5au8; 8];
    let t = Instant::now();
    if batch == 1 {
        for i in 0..ops {
            let k = p.next();
            if i % 2 == 0 {
                black_box(session.put(k, &[(0, &payload)]));
            } else {
                black_box(session.get_with(k, |v| v.is_some()));
            }
        }
    } else {
        for _ in 0..ops / (2 * batch) {
            let keys = p.window(batch);
            let updates: [(usize, &[u8]); 1] = [(0, &payload)];
            let ops_vec: Vec<mtkv::PutOp<'_>> = keys.iter().map(|k| (*k, &updates[..])).collect();
            black_box(session.multi_put(&ops_vec));
            let keys = p.window(batch);
            let mut hits = 0usize;
            session.multi_get_with(&keys, |_, v| hits += v.is_some() as usize);
            black_box(hits);
        }
    }
    t.elapsed().as_nanos() as f64 / ops as f64
}

const ROUNDS: usize = 15;
const CHUNK_OPS: usize = 60_000;

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    v[v.len() / 2]
}

/// Paired plain-vs-hinted update measurement of one (θ, batch) cell.
fn measure_update_pair(
    plain: &Session,
    cached: &Session,
    theta: f64,
    batch: usize,
) -> (f64, f64, f64) {
    let mut pp = Probes::new(theta, 42);
    let mut pc = Probes::new(theta, 42);
    run_mix_chunk(plain, &mut pp, batch, CHUNK_OPS / 4);
    run_mix_chunk(cached, &mut pc, batch, CHUNK_OPS / 4);
    let mut plain_ns = Vec::with_capacity(ROUNDS);
    let mut cached_ns = Vec::with_capacity(ROUNDS);
    let mut ratios = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let a = run_mix_chunk(plain, &mut pp, batch, CHUNK_OPS);
        let b = run_mix_chunk(cached, &mut pc, batch, CHUNK_OPS);
        plain_ns.push(a);
        cached_ns.push(b);
        ratios.push(a / b);
    }
    (
        1e9 / median(&mut plain_ns),
        1e9 / median(&mut cached_ns),
        median(&mut ratios),
    )
}

/// One full sequential sweep over `total` rows in `chunk`-sized range
/// reads, continuing each chunk at the previous chunk's end key —
/// exactly how a client pages through a range. Returns ns/row.
///
/// Both sessions run the *same* `get_range_with` calls: the cached one
/// resumes through its per-session cursor cache (validated anchor,
/// zero descent per chunk); the plain one re-descends from the
/// continuation key every chunk.
fn run_scan_sweep(session: &Session, start_key: &[u8], chunk: usize, total: usize) -> f64 {
    debug_assert!(start_key.starts_with(b"ev/"));
    let mut next = start_key.to_vec();
    let mut cont = Vec::with_capacity(STRIDE + 1);
    let mut rows = 0usize;
    let t = Instant::now();
    while rows < total {
        let mut got = 0usize;
        cont.clear();
        session.get_range_with(&next, chunk, |k, v| {
            black_box(v.ncols());
            got += 1;
            if got == chunk {
                cont.extend_from_slice(k);
                cont.push(0);
            }
        });
        rows += got;
        if got < chunk {
            break;
        }
        std::mem::swap(&mut next, &mut cont);
    }
    t.elapsed().as_nanos() as f64 / rows.max(1) as f64
}

const SCAN_SWEEP_ROWS: usize = 50_000;

fn measure_scan_pair(plain: &Session, cached: &Session, chunk: usize) -> (f64, f64, f64) {
    let start = deep_key(7);
    run_scan_sweep(plain, &start, chunk, SCAN_SWEEP_ROWS / 4);
    run_scan_sweep(cached, &start, chunk, SCAN_SWEEP_ROWS / 4);
    let mut plain_ns = Vec::with_capacity(ROUNDS);
    let mut cached_ns = Vec::with_capacity(ROUNDS);
    let mut ratios = Vec::with_capacity(ROUNDS);
    for r in 0..ROUNDS {
        // Different start offsets per round so neither side streams a
        // perfectly LLC-warm window.
        let start = deep_key((r as u64 * 131_071) % DEEP_KEYS);
        let a = run_scan_sweep(plain, &start, chunk, SCAN_SWEEP_ROWS);
        let b = run_scan_sweep(cached, &start, chunk, SCAN_SWEEP_ROWS);
        plain_ns.push(a);
        cached_ns.push(b);
        ratios.push(a / b);
    }
    (
        1e9 / median(&mut plain_ns),
        1e9 / median(&mut cached_ns),
        median(&mut ratios),
    )
}

fn main() {
    eprintln!("building {STORE_KEYS}-key store (YCSB-style keys) ...");
    let store = Store::in_memory();
    let plain = store.session().unwrap();
    store.set_session_cache(Some(CacheConfig::with_capacity(CACHE_CAPACITY)));
    let cached = store.session().unwrap();
    for i in 0..STORE_KEYS {
        plain.put(&ycsb_key(i), &[(0, &i.to_le_bytes())]);
    }
    eprintln!("adding {DEEP_KEYS} deep-layer scan keys ...");
    for i in 0..DEEP_KEYS {
        plain.put(&deep_key(i), &[(0, &i.to_le_bytes())]);
    }

    // ---- update sweep ----
    let mut update_rows = Vec::new();
    for &theta in &THETAS {
        let label = if theta == 0.0 {
            "uniform".to_string()
        } else {
            format!("zipf{theta}")
        };
        for &batch in &BATCH_SIZES {
            // Warm the admission sketch and anchor table.
            {
                let mut p = Probes::new(theta, 42);
                run_mix_chunk(&cached, &mut p, batch, 4 * CACHE_CAPACITY);
            }
            let before = cached.cache_stats().unwrap();
            let (plain_ops, cached_ops, speedup) =
                measure_update_pair(&plain, &cached, theta, batch);
            let after = cached.cache_stats().unwrap();
            let wl = (after.write_lookups - before.write_lookups).max(1);
            let hit_rate = (after.write_hits - before.write_hits) as f64 / wl as f64;
            eprintln!(
                "  update {label} batch {batch}: unhinted {plain_ops:.0}/s, hinted \
                 {cached_ops:.0}/s, speedup {speedup:.3}, write hit rate {hit_rate:.3}"
            );
            update_rows.push((theta, batch, plain_ops, cached_ops, speedup, hit_rate));
        }
    }

    // ---- sequential chunked range-read sweep ----
    let mut scan_rows = Vec::new();
    for &chunk in &SCAN_CHUNKS {
        let before = cached.cache_stats().unwrap();
        let (plain_rows, cached_rows, speedup) = measure_scan_pair(&plain, &cached, chunk);
        let after = cached.cache_stats().unwrap();
        let resumes = after.scan_resumes - before.scan_resumes;
        eprintln!(
            "  scan chunk {chunk}: restart {plain_rows:.0} rows/s, resumed {cached_rows:.0} \
             rows/s, speedup {speedup:.3} ({resumes} anchored resumes)"
        );
        scan_rows.push((chunk, plain_rows, cached_rows, speedup, resumes));
    }

    // ---- BENCH_writehint.json + gates ----
    let zipf_update_speedup = update_rows
        .iter()
        .filter(|r| r.0 >= 0.99 && r.1 > 1)
        .map(|r| r.4)
        .fold(f64::MAX, f64::min);
    let uniform_regression = update_rows
        .iter()
        .filter(|r| r.0 == 0.0)
        .map(|r| 1.0 - r.4)
        .fold(f64::MIN, f64::max);
    // Gate on the small-chunk cell (chunk 10): that is where a descent
    // per chunk is a material fraction of the work. The larger chunks
    // are reported (the amortization crossover should be visible, not
    // hidden) but sit close enough to the threshold to drift with the
    // shared container's noise.
    let scan_resume_speedup = scan_rows
        .iter()
        .filter(|r| r.0 <= 10)
        .map(|r| r.3)
        .fold(f64::MAX, f64::min);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&bench::host_meta_json(1));
    json.push_str(&format!("  \"store_keys\": {STORE_KEYS},\n"));
    json.push_str(&format!("  \"cache_capacity\": {CACHE_CAPACITY},\n"));
    json.push_str("  \"key_shape\": \"ycsb: 'user' + 19-digit hashed id (23-24 bytes)\",\n");
    json.push_str(&format!("  \"deep_scan_keys\": {DEEP_KEYS},\n"));
    json.push_str(
        "  \"scan_key_shape\": \"ev/<tenant 8>/<seq 12>/ap (32 bytes, four trie layers)\",\n",
    );
    json.push_str(&format!(
        "  \"zipf099_batched_update_speedup\": {zipf_update_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"uniform_update_regression\": {uniform_regression:.4},\n"
    ));
    json.push_str(&format!(
        "  \"scan_resume_speedup\": {scan_resume_speedup:.3},\n"
    ));
    json.push_str("  \"updates\": [\n");
    for (i, (theta, batch, plain_ops, cached_ops, speedup, hit_rate)) in
        update_rows.iter().enumerate()
    {
        json.push_str(&format!(
            "    {{\"theta\": {theta}, \"batch\": {batch}, \
             \"unhinted_ops_per_sec\": {plain_ops:.0}, \
             \"hinted_ops_per_sec\": {cached_ops:.0}, \"speedup\": {speedup:.3}, \
             \"write_hit_rate\": {hit_rate:.3}}}{}\n",
            if i + 1 < update_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"scans\": [\n");
    for (i, (chunk, plain_rows, cached_rows, speedup, resumes)) in scan_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"chunk\": {chunk}, \"restart_rows_per_sec\": {plain_rows:.0}, \
             \"resumed_rows_per_sec\": {cached_rows:.0}, \"speedup\": {speedup:.3}, \
             \"anchored_resumes\": {resumes}}}{}\n",
            if i + 1 < scan_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_writehint.json");
    std::fs::write(path, &json).expect("write BENCH_writehint.json");
    eprintln!("wrote BENCH_writehint.json");
    eprintln!("{json}");

    let mut failed = false;
    if zipf_update_speedup < 1.15 {
        eprintln!("GATE FAILED: zipf(0.99) batched update speedup {zipf_update_speedup:.3} < 1.15");
        failed = true;
    }
    if uniform_regression > 0.05 {
        eprintln!("GATE FAILED: uniform update regression {uniform_regression:.4} > 0.05");
        failed = true;
    }
    if scan_resume_speedup < 1.2 {
        eprintln!("GATE FAILED: scan-resume speedup {scan_resume_speedup:.3} < 1.2");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "gates passed: zipf0.99 batched updates {zipf_update_speedup:.3}x (>= 1.15), \
         uniform regression {uniform_regression:.4} (<= 0.05), \
         scan resume {scan_resume_speedup:.3}x (>= 1.2)"
    );
}
