//! Offline stand-in for the `parking_lot` crate: the `Mutex`/`Condvar`
//! subset this workspace uses, layered over `std::sync`.
//!
//! API differences from `std` that this shim papers over:
//! * `Mutex::lock` returns the guard directly (poisoning is ignored — a
//!   panicked critical section does not poison the lock, matching
//!   parking_lot semantics).
//! * `Condvar::wait`/`wait_for` take `&mut MutexGuard` instead of
//!   consuming and returning the guard.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s panic-transparent API.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. The inner `Option` is always `Some` except
/// transiently inside [`Condvar`] waits.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> core::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> core::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// Outcome of a timed wait (mirrors `parking_lot::WaitTimeoutResult`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` API.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside wait");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        h.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
