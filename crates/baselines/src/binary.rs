//! The lock-free concurrent binary search tree from the paper's factor
//! analysis (§6.2): Figure 8's "Binary", "+Flow", "+Superpage" and
//! "+IntCmp" bars.
//!
//! Each ~40-byte node holds the key (prefix inline, remainder out of
//! line), a value pointer and two child pointers. Reads are lock-free and
//! never retry; inserts are lock-free, publishing new leaves with a
//! compare-and-swap on the parent's child pointer; updates swap the value
//! pointer atomically and retire the old value through the epoch.
//!
//! Configuration axes (the factor-analysis ladder):
//! * `IntCmp` — compare the first 8 key bytes as one big-endian integer
//!   before falling back to byte comparison (§4.2's trick).
//! * allocator — global allocator, or a bump [`Arena`] (DESIGN.md §4.7).

use std::cmp::Ordering as Ord_;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use crossbeam::epoch::Guard;
use masstree::key::slice_at;

use crate::arena::Arena;

/// Key comparison mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Compare {
    /// Plain byte-string comparison (the "Binary" baseline).
    Bytes,
    /// 8-byte integer prefix comparison first ("+IntCmp").
    IntPrefix,
}

/// Node allocation mode.
#[derive(Clone)]
pub enum NodeAlloc {
    /// Global allocator (the "Binary" baseline, jemalloc in the paper).
    Global,
    /// Bump arena ("+Flow" / "+Superpage" depending on the arena).
    Arena(Arc<Arena>),
}

struct Node {
    /// Big-endian integer of key bytes 0..8 (always stored; only *used*
    /// for ordering in `IntPrefix` mode).
    ikey: u64,
    key_ptr: *const u8,
    key_len: u32,
    value: AtomicPtr<u64>,
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
}

/// A concurrent binary search tree mapping byte keys to `u64` values.
pub struct BinaryTree {
    root: AtomicPtr<Node>,
    compare: Compare,
    alloc: NodeAlloc,
}

// SAFETY: all shared mutable state is atomic; node/key memory is either
// leaked into an arena owned by the tree or freed on drop.
unsafe impl Send for BinaryTree {}
// SAFETY: as above.
unsafe impl Sync for BinaryTree {}

impl BinaryTree {
    pub fn new(compare: Compare, alloc: NodeAlloc) -> Self {
        BinaryTree {
            root: AtomicPtr::new(std::ptr::null_mut()),
            compare,
            alloc,
        }
    }

    fn key_of(n: &Node) -> &[u8] {
        // SAFETY: key bytes are immutable and live as long as the node.
        unsafe { std::slice::from_raw_parts(n.key_ptr, n.key_len as usize) }
    }

    #[inline]
    fn cmp(&self, key: &[u8], ikey: u64, node: &Node) -> Ord_ {
        match self.compare {
            Compare::Bytes => key.cmp(Self::key_of(node)),
            Compare::IntPrefix => match ikey.cmp(&node.ikey) {
                Ord_::Equal => {
                    // Prefixes equal: compare the remainders (includes the
                    // length tie-break, exactly like byte comparison).
                    let a = &key[key.len().min(8)..];
                    let nk = Self::key_of(node);
                    let b = &nk[nk.len().min(8)..];
                    match a.cmp(b) {
                        Ord_::Equal => key.len().cmp(&nk.len()),
                        o => o,
                    }
                }
                o => o,
            },
        }
    }

    fn alloc_node(&self, key: &[u8], value: *mut u64) -> *mut Node {
        let (key_ptr, key_len) = match &self.alloc {
            NodeAlloc::Global => {
                let boxed: Box<[u8]> = key.into();
                let len = boxed.len() as u32;
                (Box::into_raw(boxed).cast::<u8>().cast_const(), len)
            }
            NodeAlloc::Arena(a) => {
                let s = a.alloc_bytes(key);
                (s.as_ptr(), s.len() as u32)
            }
        };
        let node = Node {
            ikey: slice_at(key, 0),
            key_ptr,
            key_len,
            value: AtomicPtr::new(value),
            left: AtomicPtr::new(std::ptr::null_mut()),
            right: AtomicPtr::new(std::ptr::null_mut()),
        };
        match &self.alloc {
            NodeAlloc::Global => Box::into_raw(Box::new(node)),
            NodeAlloc::Arena(a) => {
                let p = a.alloc(std::alloc::Layout::new::<Node>()).cast::<Node>();
                // SAFETY: fresh, properly aligned arena memory.
                unsafe { p.write(node) };
                p
            }
        }
    }

    /// Looks up `key`. Lock-free; never retries.
    pub fn get(&self, key: &[u8], _guard: &Guard) -> Option<u64> {
        let ikey = slice_at(key, 0);
        let mut cur = self.root.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: nodes are never freed while the tree lives (no
            // removal; value updates go through the epoch).
            let n = unsafe { &*cur };
            match self.cmp(key, ikey, n) {
                Ord_::Equal => {
                    let v = n.value.load(Ordering::Acquire);
                    // SAFETY: value blocks are epoch-retired on update.
                    return Some(unsafe { *v });
                }
                Ord_::Less => cur = n.left.load(Ordering::Acquire),
                Ord_::Greater => cur = n.right.load(Ordering::Acquire),
            }
        }
        None
    }

    /// Inserts or updates `key → value`. Lock-free (CAS publication).
    pub fn put(&self, key: &[u8], value: u64, guard: &Guard) {
        let ikey = slice_at(key, 0);
        let vptr = Box::into_raw(Box::new(value));
        let mut fresh: *mut Node = std::ptr::null_mut();
        let mut link = &self.root;
        loop {
            let cur = link.load(Ordering::Acquire);
            if cur.is_null() {
                if fresh.is_null() {
                    fresh = self.alloc_node(key, vptr);
                }
                match link.compare_exchange(cur, fresh, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => return,
                    Err(_) => continue, // lost the race; re-read this link
                }
            }
            // SAFETY: as in `get`.
            let n = unsafe { &*cur };
            match self.cmp(key, ikey, n) {
                Ord_::Equal => {
                    let old = n.value.swap(vptr, Ordering::AcqRel);
                    if !fresh.is_null() {
                        // We raced and allocated a node we no longer need;
                        // arena-mode key/node blocks stay in the arena by
                        // design, heap-mode blocks are freed here.
                        if let NodeAlloc::Global = self.alloc {
                            // SAFETY: never published; freeing node + key.
                            unsafe {
                                let n = Box::from_raw(fresh);
                                drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                                    n.key_ptr.cast_mut(),
                                    n.key_len as usize,
                                )));
                            }
                        }
                    }
                    let oldp = old as usize;
                    // SAFETY: the old value is unreachable; readers from
                    // before the swap are protected by their guards.
                    unsafe {
                        guard.defer_unchecked(move || drop(Box::from_raw(oldp as *mut u64)));
                    }
                    return;
                }
                Ord_::Less => link = &n.left,
                Ord_::Greater => link = &n.right,
            }
        }
    }
}

impl Drop for BinaryTree {
    fn drop(&mut self) {
        if let NodeAlloc::Global = self.alloc {
            // Free heap nodes, keys and values iteratively.
            let mut stack = vec![*self.root.get_mut()];
            while let Some(p) = stack.pop() {
                if p.is_null() {
                    continue;
                }
                // SAFETY: exclusive access; each node visited once.
                unsafe {
                    let n = Box::from_raw(p);
                    stack.push(n.left.load(Ordering::Relaxed));
                    stack.push(n.right.load(Ordering::Relaxed));
                    drop(Box::from_raw(n.value.load(Ordering::Relaxed)));
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        n.key_ptr.cast_mut(),
                        n.key_len as usize,
                    )));
                }
            }
        } else {
            // Arena mode: keys/nodes die with the arena; values are heap.
            let mut stack = vec![*self.root.get_mut()];
            while let Some(p) = stack.pop() {
                if p.is_null() {
                    continue;
                }
                // SAFETY: exclusive access; nodes remain in arena memory.
                unsafe {
                    let n = &*p;
                    stack.push(n.left.load(Ordering::Relaxed));
                    stack.push(n.right.load(Ordering::Relaxed));
                    drop(Box::from_raw(n.value.load(Ordering::Relaxed)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<BinaryTree> {
        vec![
            BinaryTree::new(Compare::Bytes, NodeAlloc::Global),
            BinaryTree::new(
                Compare::Bytes,
                NodeAlloc::Arena(Arc::new(Arena::new_flow())),
            ),
            BinaryTree::new(
                Compare::IntPrefix,
                NodeAlloc::Arena(Arc::new(Arena::new_superpage())),
            ),
            BinaryTree::new(Compare::IntPrefix, NodeAlloc::Global),
        ]
    }

    #[test]
    fn put_get_all_variants() {
        for t in all_variants() {
            let g = crossbeam::epoch::pin();
            assert_eq!(t.get(b"a", &g), None);
            t.put(b"a", 1, &g);
            t.put(b"b", 2, &g);
            t.put(b"a", 3, &g);
            assert_eq!(t.get(b"a", &g), Some(3));
            assert_eq!(t.get(b"b", &g), Some(2));
            assert_eq!(t.get(b"c", &g), None);
        }
    }

    #[test]
    fn intcmp_orders_like_bytes() {
        // Keys engineered so prefix-int and byte comparisons must agree.
        let keys: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"aaaaaaaa".to_vec(),
            b"aaaaaaaab".to_vec(),
            b"aaaaaaaac".to_vec(),
            b"aaaaaaab".to_vec(),
            b"\x00\x01".to_vec(),
            b"zzzzzzzzzzzz".to_vec(),
        ];
        for t in all_variants() {
            let g = crossbeam::epoch::pin();
            for (i, k) in keys.iter().enumerate() {
                t.put(k, i as u64, &g);
            }
            for (i, k) in keys.iter().enumerate() {
                assert_eq!(t.get(k, &g), Some(i as u64), "key {k:?}");
            }
        }
    }

    #[test]
    fn concurrent_inserts() {
        use std::sync::Arc as SArc;
        let t = SArc::new(BinaryTree::new(
            Compare::IntPrefix,
            NodeAlloc::Arena(Arc::new(Arena::new_flow())),
        ));
        let handles: Vec<_> = (0..8)
            .map(|tid| {
                let t = SArc::clone(&t);
                std::thread::spawn(move || {
                    let g = crossbeam::epoch::pin();
                    for i in 0..5_000u64 {
                        t.put(format!("t{tid}k{i}").as_bytes(), i, &g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let g = crossbeam::epoch::pin();
        for tid in 0..8 {
            for i in 0..5_000u64 {
                assert_eq!(t.get(format!("t{tid}k{i}").as_bytes(), &g), Some(i));
            }
        }
    }
}
