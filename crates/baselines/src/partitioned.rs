//! Hard-partitioned Masstree (§6.6): static partitioning of the key space
//! over per-core single-threaded instances.
//!
//! The paper's configuration: 16 instances of the single-core variant,
//! each holding the same number of keys, each serving requests only from
//! its own core; clients route each query to the instance owning the key.
//! The benchmark harness gives each worker thread exclusive ownership of
//! its instance, so this module only provides the router and a
//! convenience container.

use crate::single_core::SingleMasstree;

/// Static partition assignment: a hash of the key, so every partition
/// holds the same number of keys regardless of key distribution ("the
//  partitioning is static, and each instance holds the same number of
/// keys").
#[inline]
pub fn partition_of(key: &[u8], parts: usize) -> usize {
    debug_assert!(parts > 0);
    // FNV-1a, folded.
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % parts as u64) as usize
}

/// A set of single-core Masstree instances, one per partition. Each
/// instance must be driven by exactly one thread; the harness splits the
/// container with [`PartitionedMasstree::into_parts`].
pub struct PartitionedMasstree {
    parts: Vec<SingleMasstree>,
}

impl PartitionedMasstree {
    pub fn new(nparts: usize) -> Self {
        PartitionedMasstree {
            parts: (0..nparts).map(|_| SingleMasstree::new()).collect(),
        }
    }

    pub fn nparts(&self) -> usize {
        self.parts.len()
    }

    /// Single-threaded load phase: routes each key to its partition.
    pub fn load(&mut self, key: &[u8], value: u64) {
        let p = partition_of(key, self.parts.len());
        self.parts[p].put(key, value);
    }

    /// Splits into per-partition instances for per-core serving.
    pub fn into_parts(self) -> Vec<SingleMasstree> {
        self.parts
    }

    /// Total keys across partitions.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_is_stable_and_in_range() {
        for parts in [1usize, 2, 16] {
            for i in 0..1000u64 {
                let k = i.to_string();
                let p = partition_of(k.as_bytes(), parts);
                assert!(p < parts);
                assert_eq!(p, partition_of(k.as_bytes(), parts));
            }
        }
    }

    #[test]
    fn partitions_are_balanced() {
        // Each instance should hold roughly the same number of keys.
        let mut counts = vec![0usize; 16];
        for i in 0..160_000u64 {
            counts[partition_of(i.to_string().as_bytes(), 16)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "partition count {c}");
        }
    }

    #[test]
    fn load_and_split() {
        let mut pm = PartitionedMasstree::new(4);
        for i in 0..10_000u64 {
            pm.load(i.to_string().as_bytes(), i);
        }
        assert_eq!(pm.len(), 10_000);
        let parts = pm.into_parts();
        assert_eq!(parts.len(), 4);
        // Every key must be findable in its routed partition.
        for i in 0..10_000u64 {
            let k = i.to_string();
            let p = partition_of(k.as_bytes(), 4);
            assert_eq!(parts[p].get(k.as_bytes()), Some(i));
        }
    }
}
