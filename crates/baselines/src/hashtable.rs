//! The open-coded concurrent hash table from §6.4's range-query-cost
//! comparison (and the hash-store stand-ins of §7).
//!
//! Open addressing with linear probing, sized at creation for ~30%
//! occupancy as in the paper ("Each hash lookup inspects 1.1 entries on
//! average"). No deletion (the benchmarks never remove); key slots are
//! write-once, so readers are lock-free and never retry: a slot's tag is
//! claimed by CAS, the key block published with a release store, and
//! updates swap the value pointer atomically.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use crossbeam::epoch::Guard;

struct Slot {
    /// 0 = empty; otherwise the key's hash with the low bit forced to 1.
    tag: AtomicU64,
    key: AtomicPtr<u8>,
    key_len: AtomicU64,
    value: AtomicPtr<u64>,
}

/// A fixed-capacity concurrent hash table mapping byte keys to `u64`.
pub struct HashTable {
    slots: Box<[Slot]>,
    mask: usize,
}

// SAFETY: all shared state is atomic; values epoch-reclaimed, keys
// write-once.
unsafe impl Send for HashTable {}
// SAFETY: as above.
unsafe impl Sync for HashTable {}

#[inline]
fn hash_key(key: &[u8]) -> u64 {
    // FNV-1a, then force the "occupied" bit.
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h | 1
}

impl HashTable {
    /// A table able to hold `expected` keys at ~30% occupancy.
    pub fn with_expected_keys(expected: usize) -> Self {
        let cap = (expected.max(16) * 10 / 3).next_power_of_two();
        let slots: Vec<Slot> = (0..cap)
            .map(|_| Slot {
                tag: AtomicU64::new(0),
                key: AtomicPtr::new(std::ptr::null_mut()),
                key_len: AtomicU64::new(0),
                value: AtomicPtr::new(std::ptr::null_mut()),
            })
            .collect();
        HashTable {
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot_key(s: &Slot) -> Option<&[u8]> {
        let p = s.key.load(Ordering::Acquire);
        if p.is_null() {
            return None;
        }
        let l = s.key_len.load(Ordering::Acquire) as usize;
        // SAFETY: key blocks are write-once and live while the table does.
        Some(unsafe { std::slice::from_raw_parts(p, l) })
    }

    /// Lock-free lookup.
    pub fn get(&self, key: &[u8], _guard: &Guard) -> Option<u64> {
        let h = hash_key(key);
        let mut i = h as usize & self.mask;
        loop {
            let s = &self.slots[i];
            let tag = s.tag.load(Ordering::Acquire);
            if tag == 0 {
                return None;
            }
            if tag == h {
                match Self::slot_key(s) {
                    Some(k) if k == key => {
                        let v = s.value.load(Ordering::Acquire);
                        if v.is_null() {
                            // Insert in flight; treat as absent.
                            return None;
                        }
                        // SAFETY: values epoch-retired on update.
                        return Some(unsafe { *v });
                    }
                    Some(_) => {}
                    None => {
                        // Claimed but key not yet published: the insert is
                        // concurrent, so "absent" is linearizable.
                        return None;
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts or updates. Panics if the table is full (it is sized for
    /// the benchmark working set).
    pub fn put(&self, key: &[u8], value: u64, guard: &Guard) {
        let h = hash_key(key);
        let vptr = Box::into_raw(Box::new(value));
        let mut i = h as usize & self.mask;
        let mut probes = 0;
        loop {
            let s = &self.slots[i];
            let tag = s.tag.load(Ordering::Acquire);
            if tag == h {
                // Possible match: wait for the key to be published.
                let k = loop {
                    if let Some(k) = Self::slot_key(s) {
                        break k;
                    }
                    std::hint::spin_loop();
                };
                if k == key {
                    let old = s.value.swap(vptr, Ordering::AcqRel);
                    if !old.is_null() {
                        let oldp = old as usize;
                        // SAFETY: old value unreachable; epoch protects
                        // in-flight readers.
                        unsafe {
                            guard.defer_unchecked(move || drop(Box::from_raw(oldp as *mut u64)));
                        }
                    }
                    return;
                }
            } else if tag == 0
                && s.tag
                    .compare_exchange(0, h, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                // Claimed a fresh slot: publish key then value.
                let boxed: Box<[u8]> = key.into();
                let len = boxed.len() as u64;
                s.key_len.store(len, Ordering::Release);
                s.key
                    .store(Box::into_raw(boxed).cast::<u8>(), Ordering::Release);
                s.value.store(vptr, Ordering::Release);
                return;
            }
            i = (i + 1) & self.mask;
            probes += 1;
            assert!(probes <= self.mask, "hash table full");
        }
    }
}

impl Drop for HashTable {
    fn drop(&mut self) {
        for s in self.slots.iter() {
            let k = s.key.load(Ordering::Relaxed);
            if !k.is_null() {
                let l = s.key_len.load(Ordering::Relaxed) as usize;
                // SAFETY: exclusive access; write-once key blocks.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(k, l)));
                }
            }
            let v = s.value.load(Ordering::Relaxed);
            if !v.is_null() {
                // SAFETY: exclusive access.
                unsafe { drop(Box::from_raw(v)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_update() {
        let t = HashTable::with_expected_keys(1000);
        let g = crossbeam::epoch::pin();
        assert_eq!(t.get(b"a", &g), None);
        t.put(b"a", 1, &g);
        t.put(b"bb", 2, &g);
        assert_eq!(t.get(b"a", &g), Some(1));
        assert_eq!(t.get(b"bb", &g), Some(2));
        t.put(b"a", 3, &g);
        assert_eq!(t.get(b"a", &g), Some(3));
    }

    #[test]
    fn thirty_percent_occupancy_sizing() {
        let t = HashTable::with_expected_keys(100_000);
        assert!(t.capacity() >= 100_000 * 3);
    }

    #[test]
    fn many_keys() {
        let t = HashTable::with_expected_keys(50_000);
        let g = crossbeam::epoch::pin();
        for i in 0..50_000u64 {
            t.put(format!("key{i}").as_bytes(), i, &g);
        }
        for i in 0..50_000u64 {
            assert_eq!(t.get(format!("key{i}").as_bytes(), &g), Some(i));
        }
    }

    #[test]
    fn concurrent_inserts() {
        let t = std::sync::Arc::new(HashTable::with_expected_keys(100_000));
        let handles: Vec<_> = (0..8)
            .map(|tid| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    let g = crossbeam::epoch::pin();
                    for i in 0..10_000u64 {
                        t.put(format!("t{tid}k{i}").as_bytes(), i, &g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let g = crossbeam::epoch::pin();
        for tid in 0..8 {
            for i in 0..10_000u64 {
                assert_eq!(t.get(format!("t{tid}k{i}").as_bytes(), &g), Some(i));
            }
        }
    }
}
