//! The concurrent OCC B+-tree from the factor analysis (§6.2): Figure 8's
//! "B-tree", "+Prefetch" and "+Permuter" bars, plus §6.4's fixed-8-byte-key
//! variant.
//!
//! A single-layer B+-tree of width 15 using the same concurrency control
//! scheme as Masstree (version words, hand-over-hand validation, B-link
//! rightward walks), but storing *whole keys*: the first 16 bytes inline
//! (two big-endian words), the rest in an out-of-line block — so long keys
//! cost a cache miss per comparison, which is exactly what Figure 9
//! measures against Masstree's trie.
//!
//! Runtime toggles (all combinations valid):
//! * `prefetch` — prefetch whole nodes before use ("+Prefetch").
//! * `permuter` — publish inserts via a permutation instead of physically
//!   rearranging keys and dirtying the version ("+Permuter").
//! * `fixed8` — keys are exactly 8 bytes; skips all suffix machinery
//!   (§6.4's fixed-size-key tree).

use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

use crossbeam::epoch::Guard;
use masstree::key::slice_at;
use masstree::permutation::{Permutation, WIDTH};
use masstree::prefetch::prefetch;
use masstree::version::{Version, VersionCell};

/// Configuration toggles (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct OccBtreeConfig {
    pub prefetch: bool,
    pub permuter: bool,
    pub fixed8: bool,
}

impl OccBtreeConfig {
    /// Figure 8's "B-tree" bar.
    pub fn plain() -> Self {
        OccBtreeConfig::default()
    }
    /// Figure 8's "+Prefetch" bar.
    pub fn prefetching() -> Self {
        OccBtreeConfig {
            prefetch: true,
            ..Default::default()
        }
    }
    /// Figure 8's "+Permuter" bar (the full non-trie B-tree).
    pub fn permuter() -> Self {
        OccBtreeConfig {
            prefetch: true,
            permuter: true,
            ..Default::default()
        }
    }
    /// §6.4's fixed 8-byte-key tree.
    pub fn fixed8() -> Self {
        OccBtreeConfig {
            prefetch: true,
            permuter: true,
            fixed8: true,
        }
    }
}

/// An immutable full-key block (used when a key exceeds 16 bytes, and for
/// leaf lowkeys / interior separators).
struct FullKey;

impl FullKey {
    fn alloc(key: &[u8]) -> *mut u8 {
        let mut v = Vec::with_capacity(key.len() + 4);
        v.extend_from_slice(&(key.len() as u32).to_le_bytes());
        v.extend_from_slice(key);
        Box::into_raw(v.into_boxed_slice()).cast::<u8>()
    }

    /// # Safety
    ///
    /// `p` must come from [`FullKey::alloc`] and be live.
    unsafe fn bytes<'a>(p: *const u8) -> &'a [u8] {
        // SAFETY: layout written by `alloc`.
        unsafe {
            let len = u32::from_le_bytes(*p.cast::<[u8; 4]>()) as usize;
            std::slice::from_raw_parts(p.add(4), len)
        }
    }

    /// # Safety
    ///
    /// `p` must come from [`FullKey::alloc`], be unreachable, and not be
    /// freed twice.
    unsafe fn free(p: *mut u8) {
        // SAFETY: reconstructing the boxed slice allocated in `alloc`.
        unsafe {
            let len = u32::from_le_bytes(*p.cast::<[u8; 4]>()) as usize;
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                p,
                len + 4,
            )));
        }
    }
}

#[repr(C)]
struct Head {
    version: VersionCell,
}

#[repr(C, align(64))]
struct Leaf {
    head: Head,
    permutation: AtomicU64,
    ikey: [AtomicU64; WIDTH],
    ikey2: [AtomicU64; WIDTH],
    klen: [AtomicU32; WIDTH],
    kfull: [AtomicPtr<u8>; WIDTH],
    value: [AtomicPtr<u64>; WIDTH],
    next: AtomicPtr<Leaf>,
    parent: AtomicPtr<Inner>,
    /// Full-key lower bound (null for the leftmost leaf).
    lowkey: AtomicPtr<u8>,
}

#[repr(C, align(64))]
struct Inner {
    head: Head,
    nkeys: AtomicU64,
    ikey: [AtomicU64; WIDTH],
    ikey2: [AtomicU64; WIDTH],
    sep: [AtomicPtr<u8>; WIDTH],
    child: [AtomicPtr<Head>; WIDTH + 1],
    parent: AtomicPtr<Inner>,
}

fn new_leaf(is_root: bool, locked_splitting: Option<&VersionCell>) -> *mut Leaf {
    let version = match locked_splitting {
        None => VersionCell::new(true, is_root, false),
        Some(src) => {
            let v = src.clone_for_split();
            v.set_root(false);
            v
        }
    };
    Box::into_raw(Box::new(Leaf {
        head: Head { version },
        permutation: AtomicU64::new(Permutation::empty().raw()),
        ikey: [const { AtomicU64::new(0) }; WIDTH],
        ikey2: [const { AtomicU64::new(0) }; WIDTH],
        klen: [const { AtomicU32::new(0) }; WIDTH],
        kfull: [const { AtomicPtr::new(std::ptr::null_mut()) }; WIDTH],
        value: [const { AtomicPtr::new(std::ptr::null_mut()) }; WIDTH],
        next: AtomicPtr::new(std::ptr::null_mut()),
        parent: AtomicPtr::new(std::ptr::null_mut()),
        lowkey: AtomicPtr::new(std::ptr::null_mut()),
    }))
}

fn new_inner(is_root: bool, locked_splitting: Option<&VersionCell>) -> *mut Inner {
    let version = match locked_splitting {
        None => VersionCell::new(false, is_root, false),
        Some(src) => {
            let v = src.clone_for_split();
            v.set_root(false);
            v
        }
    };
    Box::into_raw(Box::new(Inner {
        head: Head { version },
        nkeys: AtomicU64::new(0),
        ikey: [const { AtomicU64::new(0) }; WIDTH],
        ikey2: [const { AtomicU64::new(0) }; WIDTH],
        sep: [const { AtomicPtr::new(std::ptr::null_mut()) }; WIDTH],
        child: [const { AtomicPtr::new(std::ptr::null_mut()) }; WIDTH + 1],
        parent: AtomicPtr::new(std::ptr::null_mut()),
    }))
}

/// A concurrent B+-tree over whole byte keys, mapping to `u64` values.
pub struct OccBtree {
    root: AtomicPtr<Head>,
    cfg: OccBtreeConfig,
}

// SAFETY: all shared state is atomic and follows the OCC protocol; values
// and key blocks are epoch-reclaimed or freed on drop.
unsafe impl Send for OccBtree {}
// SAFETY: as above.
unsafe impl Sync for OccBtree {}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Cmp {
    Less,
    Equal,
    Greater,
}

impl OccBtree {
    pub fn new(cfg: OccBtreeConfig) -> Self {
        OccBtree {
            root: AtomicPtr::new(new_leaf(true, None).cast::<Head>()),
            cfg,
        }
    }

    pub fn config(&self) -> OccBtreeConfig {
        self.cfg
    }

    /// Compares a lookup key (pre-sliced) against leaf slot contents.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn cmp_slot(
        &self,
        key: &[u8],
        ik: u64,
        ik2: u64,
        s_ik: u64,
        s_ik2: u64,
        s_len: u32,
        s_full: *const u8,
    ) -> Cmp {
        if ik != s_ik {
            return if ik < s_ik { Cmp::Less } else { Cmp::Greater };
        }
        if self.cfg.fixed8 {
            return Cmp::Equal;
        }
        if ik2 != s_ik2 {
            return if ik2 < s_ik2 { Cmp::Less } else { Cmp::Greater };
        }
        let klen = key.len();
        let slen = s_len as usize;
        if klen <= 16 && slen <= 16 {
            return match klen.cmp(&slen) {
                std::cmp::Ordering::Less => Cmp::Less,
                std::cmp::Ordering::Equal => Cmp::Equal,
                std::cmp::Ordering::Greater => Cmp::Greater,
            };
        }
        // Both 16-byte prefixes equal and at least one key is long: fetch
        // the stored full key (the cache miss Figure 9 measures).
        if s_full.is_null() {
            // Stored key is short: it is a prefix of ours.
            return Cmp::Greater;
        }
        // SAFETY: full-key blocks are immutable and epoch-live.
        let sk = unsafe { FullKey::bytes(s_full) };
        match key.cmp(sk) {
            std::cmp::Ordering::Less => Cmp::Less,
            std::cmp::Ordering::Equal => Cmp::Equal,
            std::cmp::Ordering::Greater => Cmp::Greater,
        }
    }

    fn leaf_prefetch(&self, l: *const Leaf) {
        if self.cfg.prefetch {
            prefetch(l);
        }
    }

    /// Descends to the leaf covering `key` with hand-over-hand validation.
    fn reach_leaf<'g>(&self, key: &[u8], ik: u64, ik2: u64) -> (&'g Leaf, Version) {
        'retry: loop {
            let mut n = self.root.load(Ordering::Acquire);
            // SAFETY: the root and all reachable nodes stay live (no node
            // deletion in this baseline; retired nodes epoch-live).
            let mut v = unsafe { &(*n).version }.stable();
            if !v.is_root() {
                // A root split is installing a new root; brief retry.
                std::hint::spin_loop();
                continue 'retry;
            }
            loop {
                if v.is_border() {
                    let leaf = n.cast::<Leaf>();
                    self.leaf_prefetch(leaf);
                    // SAFETY: live per above.
                    return (unsafe { &*leaf }, v);
                }
                // SAFETY: interior per shape bit.
                let inner = unsafe { &*n.cast::<Inner>() };
                if self.cfg.prefetch {
                    prefetch(inner as *const Inner);
                }
                let nk = (inner.nkeys.load(Ordering::Acquire) as usize).min(WIDTH);
                let mut ci = nk;
                for i in 0..nk {
                    let c = self.cmp_slot(
                        key,
                        ik,
                        ik2,
                        inner.ikey[i].load(Ordering::Acquire),
                        inner.ikey2[i].load(Ordering::Acquire),
                        u32::MAX, // separators always carry full keys
                        inner.sep[i].load(Ordering::Acquire),
                    );
                    if c == Cmp::Less {
                        ci = i;
                        break;
                    }
                }
                let childp = inner.child[ci].load(Ordering::Acquire);
                if childp.is_null() {
                    let v2 = inner.head.version.stable();
                    if v.has_split(v2) {
                        continue 'retry;
                    }
                    v = v2;
                    continue;
                }
                // SAFETY: children of live nodes are live.
                let vc = unsafe { &(*childp).version }.stable();
                let v2 = inner.head.version.load(Ordering::Acquire);
                if !v.has_changed(Version(v2.0)) {
                    n = childp;
                    v = vc;
                    continue;
                }
                let v2 = inner.head.version.stable();
                if v.has_split(v2) {
                    continue 'retry;
                }
                v = v2;
            }
        }
    }

    /// Searches a leaf's live entries. Returns `Ok(slot)` or the sorted
    /// insertion position.
    fn search_leaf(
        &self,
        l: &Leaf,
        perm: Permutation,
        key: &[u8],
        ik: u64,
        ik2: u64,
    ) -> Result<usize, usize> {
        for pos in 0..perm.nkeys() {
            let slot = perm.get(pos);
            match self.cmp_slot(
                key,
                ik,
                ik2,
                l.ikey[slot].load(Ordering::Acquire),
                l.ikey2[slot].load(Ordering::Acquire),
                l.klen[slot].load(Ordering::Acquire),
                l.kfull[slot].load(Ordering::Acquire),
            ) {
                Cmp::Equal => return Ok(slot),
                Cmp::Less => return Err(pos),
                Cmp::Greater => {}
            }
        }
        Err(perm.nkeys())
    }

    /// Full-key comparison against a leaf's lowkey (for B-link walks).
    fn key_below_lowkey(&self, key: &[u8], l: &Leaf) -> bool {
        let lk = l.lowkey.load(Ordering::Acquire);
        if lk.is_null() {
            return false; // leftmost: lowkey −∞
        }
        // SAFETY: lowkey blocks are immutable and live with the leaf.
        key < unsafe { FullKey::bytes(lk) }
    }

    pub fn get(&self, key: &[u8], _guard: &Guard) -> Option<u64> {
        let (ik, ik2) = (slice_at(key, 0), slice_at(key, 8));
        let (mut l, mut v) = self.reach_leaf(key, ik, ik2);
        loop {
            let perm = Permutation::from_raw(l.permutation.load(Ordering::Acquire));
            let hit = self.search_leaf(l, perm, key, ik, ik2);
            let value = match hit {
                Ok(slot) => {
                    let p = l.value[slot].load(Ordering::Acquire);
                    // SAFETY: values epoch-retired on update; non-null once
                    // published (validated below).
                    if p.is_null() {
                        None
                    } else {
                        Some(unsafe { *p })
                    }
                }
                Err(_) => None,
            };
            let v2 = l.head.version.load(Ordering::Acquire);
            if !v.has_changed(v2) {
                return value;
            }
            v = l.head.version.stable();
            // Walk right while the key may have moved.
            loop {
                let next = l.next.load(Ordering::Acquire);
                if next.is_null() {
                    break;
                }
                // SAFETY: leaf-list nodes stay live.
                let nx = unsafe { &*next };
                if self.key_below_lowkey(key, nx) {
                    break;
                }
                l = nx;
                v = l.head.version.stable();
            }
        }
    }

    pub fn put(&self, key: &[u8], value: u64, guard: &Guard) {
        let (ik, ik2) = (slice_at(key, 0), slice_at(key, 8));
        if self.cfg.fixed8 {
            assert_eq!(key.len(), 8, "fixed8 tree requires 8-byte keys");
        }
        let vptr = Box::into_raw(Box::new(value));
        let (start, _v) = self.reach_leaf(key, ik, ik2);
        // Lock, walking right (unlock-then-lock) if the key moved.
        let mut l = start;
        l.head.version.lock();
        loop {
            let next = l.next.load(Ordering::Acquire);
            if !next.is_null() {
                // SAFETY: leaf-list nodes stay live.
                let nx = unsafe { &*next };
                if !self.key_below_lowkey(key, nx) {
                    l.head.version.unlock();
                    nx.head.version.lock();
                    l = nx;
                    continue;
                }
            }
            break;
        }
        let perm = Permutation::from_raw(l.permutation.load(Ordering::Acquire));
        match self.search_leaf(l, perm, key, ik, ik2) {
            Ok(slot) => {
                let old = l.value[slot].swap(vptr, Ordering::AcqRel);
                l.head.version.unlock();
                let oldp = old as usize;
                // SAFETY: old value unreachable; epoch protects readers.
                unsafe {
                    guard.defer_unchecked(move || drop(Box::from_raw(oldp as *mut u64)));
                }
            }
            Err(pos) => {
                if !perm.is_full() {
                    self.insert_in_leaf(l, perm, pos, key, ik, ik2, vptr);
                    l.head.version.unlock();
                } else {
                    self.split_leaf(l, pos, key, ik, ik2, vptr);
                }
            }
        }
    }

    fn write_leaf_slot(
        &self,
        l: &Leaf,
        slot: usize,
        key: &[u8],
        ik: u64,
        ik2: u64,
        vptr: *mut u64,
    ) {
        l.ikey[slot].store(ik, Ordering::Release);
        l.ikey2[slot].store(ik2, Ordering::Release);
        l.klen[slot].store(key.len() as u32, Ordering::Release);
        let full = if key.len() > 16 {
            FullKey::alloc(key)
        } else {
            std::ptr::null_mut()
        };
        // Stale `kfull` pointers from split-moved entries are owned by
        // their new node; overwriting the stale copy here is correct.
        let _old = l.kfull[slot].swap(full, Ordering::Release);
        l.value[slot].store(vptr, Ordering::Release);
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_in_leaf(
        &self,
        l: &Leaf,
        perm: Permutation,
        pos: usize,
        key: &[u8],
        ik: u64,
        ik2: u64,
        vptr: *mut u64,
    ) {
        if self.cfg.permuter {
            // Masstree-style: fill a free slot, publish via permutation.
            let (nperm, slot) = perm.insert_from_back(pos);
            self.write_leaf_slot(l, slot, key, ik, ik2, vptr);
            l.permutation.store(nperm.raw(), Ordering::Release);
        } else {
            // Conventional B-tree: dirty the node and physically shift
            // the sorted arrays (readers retry on the vinsert bump).
            l.head.version.mark_inserting();
            let n = perm.nkeys();
            let mut j = n;
            while j > pos {
                l.ikey[j].store(l.ikey[j - 1].load(Ordering::Relaxed), Ordering::Relaxed);
                l.ikey2[j].store(l.ikey2[j - 1].load(Ordering::Relaxed), Ordering::Relaxed);
                l.klen[j].store(l.klen[j - 1].load(Ordering::Relaxed), Ordering::Relaxed);
                l.kfull[j].store(l.kfull[j - 1].load(Ordering::Relaxed), Ordering::Relaxed);
                l.value[j].store(l.value[j - 1].load(Ordering::Relaxed), Ordering::Relaxed);
                j -= 1;
            }
            self.write_leaf_slot(l, pos, key, ik, ik2, vptr);
            l.permutation
                .store(Permutation::identity(n + 1).raw(), Ordering::Release);
        }
    }

    /// Splits the locked, full leaf while inserting; consumes the lock.
    fn split_leaf(&self, l: &Leaf, pos: usize, key: &[u8], ik: u64, ik2: u64, vptr: *mut u64) {
        l.head.version.mark_splitting();
        let perm = Permutation::from_raw(l.permutation.load(Ordering::Relaxed));
        const NEW: usize = usize::MAX;
        let mut order = [0usize; WIDTH + 1];
        for (i, o) in order.iter_mut().enumerate().take(pos) {
            *o = perm.get(i);
        }
        order[pos] = NEW;
        for i in pos..WIDTH {
            order[i + 1] = perm.get(i);
        }
        // Sequential-insert optimization (§4.3).
        let split_at = if pos == WIDTH && l.next.load(Ordering::Acquire).is_null() {
            WIDTH
        } else {
            WIDTH.div_ceil(2)
        };

        let right = new_leaf(false, Some(&l.head.version));
        // SAFETY: fresh private node (locked + splitting).
        let r = unsafe { &*right };
        // The right node's lowkey is the full first right key.
        let lowkey_bytes: Vec<u8> = {
            let e = order[split_at];
            if e == NEW {
                key.to_vec()
            } else {
                self.slot_key_bytes(l, e)
            }
        };
        r.lowkey
            .store(FullKey::alloc(&lowkey_bytes), Ordering::Release);
        for (j, &e) in order[split_at..].iter().enumerate() {
            if e == NEW {
                self.write_leaf_slot(r, j, key, ik, ik2, vptr);
            } else {
                r.ikey[j].store(l.ikey[e].load(Ordering::Relaxed), Ordering::Relaxed);
                r.ikey2[j].store(l.ikey2[e].load(Ordering::Relaxed), Ordering::Relaxed);
                r.klen[j].store(l.klen[e].load(Ordering::Relaxed), Ordering::Relaxed);
                r.kfull[j].store(l.kfull[e].load(Ordering::Relaxed), Ordering::Relaxed);
                r.value[j].store(l.value[e].load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        r.permutation.store(
            Permutation::identity(WIDTH + 1 - split_at).raw(),
            Ordering::Release,
        );

        // Left side.
        if self.cfg.permuter {
            let mut left_slots = [0usize; WIDTH];
            let mut nl = 0;
            let mut new_left = None;
            for &e in order[..split_at].iter() {
                if e == NEW {
                    new_left = Some(nl);
                }
                left_slots[nl] = e;
                nl += 1;
            }
            if let Some(ipos) = new_left {
                let freed = order[split_at..]
                    .iter()
                    .copied()
                    .find(|&e| e != NEW)
                    .expect("at least one entry moved right");
                // The freed slot's kfull pointer now lives in the right
                // node; clear before reuse so it isn't double-owned.
                l.kfull[freed].store(std::ptr::null_mut(), Ordering::Relaxed);
                self.write_leaf_slot(l, freed, key, ik, ik2, vptr);
                left_slots[ipos] = freed;
            }
            l.permutation.store(
                Permutation::from_slots(&left_slots[..nl]).raw(),
                Ordering::Release,
            );
        } else {
            // Non-permuter leaves keep slots physically sorted (their
            // insert path shifts arrays), so rebuild the kept entries into
            // slots 0..nl. The SPLITTING mark makes the rearrangement
            // safe: concurrent readers retry from the root.
            let mut tmp: Vec<(u64, u64, u32, *mut u8, *mut u64)> = Vec::with_capacity(split_at);
            let mut new_at = None;
            for &e in order[..split_at].iter() {
                if e == NEW {
                    new_at = Some(tmp.len());
                    tmp.push((0, 0, 0, std::ptr::null_mut(), std::ptr::null_mut()));
                } else {
                    tmp.push((
                        l.ikey[e].load(Ordering::Relaxed),
                        l.ikey2[e].load(Ordering::Relaxed),
                        l.klen[e].load(Ordering::Relaxed),
                        l.kfull[e].load(Ordering::Relaxed),
                        l.value[e].load(Ordering::Relaxed),
                    ));
                }
            }
            for (j, &(a, b, c, d, v)) in tmp.iter().enumerate() {
                if Some(j) == new_at {
                    continue;
                }
                l.ikey[j].store(a, Ordering::Relaxed);
                l.ikey2[j].store(b, Ordering::Relaxed);
                l.klen[j].store(c, Ordering::Relaxed);
                l.kfull[j].store(d, Ordering::Relaxed);
                l.value[j].store(v, Ordering::Relaxed);
            }
            if let Some(j) = new_at {
                l.kfull[j].store(std::ptr::null_mut(), Ordering::Relaxed);
                self.write_leaf_slot(l, j, key, ik, ik2, vptr);
            }
            l.permutation
                .store(Permutation::identity(tmp.len()).raw(), Ordering::Release);
        }

        // Link the sibling (no prev pointers: this baseline never removes).
        r.next
            .store(l.next.load(Ordering::Acquire), Ordering::Release);
        l.next.store(right, Ordering::Release);

        // Ascend.
        self.ascend(
            (l as *const Leaf as *mut Head).cast::<Head>(),
            right.cast::<Head>(),
            lowkey_bytes,
        );
    }

    fn slot_key_bytes(&self, l: &Leaf, slot: usize) -> Vec<u8> {
        let full = l.kfull[slot].load(Ordering::Relaxed);
        if !full.is_null() {
            // SAFETY: immutable full-key block.
            return unsafe { FullKey::bytes(full) }.to_vec();
        }
        let len = l.klen[slot].load(Ordering::Relaxed) as usize;
        let mut k = Vec::with_capacity(len);
        k.extend_from_slice(&l.ikey[slot].load(Ordering::Relaxed).to_be_bytes());
        k.extend_from_slice(&l.ikey2[slot].load(Ordering::Relaxed).to_be_bytes());
        k.truncate(len);
        k
    }

    /// Locks and returns the parent, revalidating (Figure 4).
    fn locked_parent(&self, child: *mut Head) -> Option<*mut Inner> {
        loop {
            // SAFETY: live node; parent offset dispatched on shape.
            let p = unsafe {
                let v = (*child).version.load(Ordering::Relaxed);
                if v.is_border() {
                    (*child.cast::<Leaf>()).parent.load(Ordering::Acquire)
                } else {
                    (*child.cast::<Inner>()).parent.load(Ordering::Acquire)
                }
            };
            if p.is_null() {
                return None;
            }
            // SAFETY: parents of live nodes are live.
            unsafe { &(*p).head.version }.lock();
            // SAFETY: as above.
            let still = unsafe {
                let v = (*child).version.load(Ordering::Relaxed);
                if v.is_border() {
                    (*child.cast::<Leaf>()).parent.load(Ordering::Acquire)
                } else {
                    (*child.cast::<Inner>()).parent.load(Ordering::Acquire)
                }
            };
            if still == p {
                return Some(p);
            }
            // SAFETY: we hold the lock we just took.
            unsafe { (*p).head.version.unlock() };
        }
    }

    /// # Contract
    ///
    /// `left` and `right` are locked; inserts `right` under their parent,
    /// splitting upward as needed; releases all locks.
    #[allow(clippy::needless_range_loop)] // parallel-array index loops
    fn ascend(&self, mut left: *mut Head, mut right: *mut Head, mut sep: Vec<u8>) {
        loop {
            match self.locked_parent(left) {
                None => {
                    let newp = new_inner(true, None);
                    // SAFETY: fresh private node.
                    let np = unsafe { &*newp };
                    np.ikey[0].store(slice_at(&sep, 0), Ordering::Relaxed);
                    np.ikey2[0].store(slice_at(&sep, 8), Ordering::Relaxed);
                    np.sep[0].store(FullKey::alloc(&sep), Ordering::Relaxed);
                    np.child[0].store(left, Ordering::Relaxed);
                    np.child[1].store(right, Ordering::Relaxed);
                    np.nkeys.store(1, Ordering::Release);
                    // SAFETY: we hold both children's locks.
                    unsafe {
                        set_parent(left, newp);
                        set_parent(right, newp);
                        (*left).version.set_root(false);
                        let _ = self.root.compare_exchange(
                            left,
                            newp.cast::<Head>(),
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        );
                        (*left).version.unlock();
                        (*right).version.unlock();
                    }
                    return;
                }
                Some(p) => {
                    // SAFETY: locked parent is live.
                    let pr = unsafe { &*p };
                    let nk = (pr.nkeys.load(Ordering::Relaxed) as usize).min(WIDTH);
                    // Find left's index.
                    let ci = (0..=nk)
                        .find(|&i| pr.child[i].load(Ordering::Relaxed) == left)
                        .expect("child under its locked parent");
                    if nk < WIDTH {
                        pr.head.version.mark_inserting();
                        let mut j = nk;
                        while j > ci {
                            pr.ikey[j]
                                .store(pr.ikey[j - 1].load(Ordering::Relaxed), Ordering::Relaxed);
                            pr.ikey2[j]
                                .store(pr.ikey2[j - 1].load(Ordering::Relaxed), Ordering::Relaxed);
                            pr.sep[j]
                                .store(pr.sep[j - 1].load(Ordering::Relaxed), Ordering::Relaxed);
                            pr.child[j + 1]
                                .store(pr.child[j].load(Ordering::Relaxed), Ordering::Relaxed);
                            j -= 1;
                        }
                        pr.ikey[ci].store(slice_at(&sep, 0), Ordering::Relaxed);
                        pr.ikey2[ci].store(slice_at(&sep, 8), Ordering::Relaxed);
                        pr.sep[ci].store(FullKey::alloc(&sep), Ordering::Relaxed);
                        pr.child[ci + 1].store(right, Ordering::Relaxed);
                        // SAFETY: we hold the parent's lock.
                        unsafe { set_parent(right, p) };
                        pr.nkeys.store(nk as u64 + 1, Ordering::Release);
                        // SAFETY: we hold all three locks.
                        unsafe {
                            (*left).version.unlock();
                            (*right).version.unlock();
                        }
                        pr.head.version.unlock();
                        return;
                    }
                    // Split the parent.
                    pr.head.version.mark_splitting();
                    // SAFETY: we hold left's lock (Figure 5 releases here).
                    unsafe { (*left).version.unlock() };
                    let mut keys: Vec<(u64, u64, *mut u8)> = Vec::with_capacity(WIDTH + 1);
                    let mut children: Vec<*mut Head> = Vec::with_capacity(WIDTH + 2);
                    for i in 0..ci {
                        keys.push((
                            pr.ikey[i].load(Ordering::Relaxed),
                            pr.ikey2[i].load(Ordering::Relaxed),
                            pr.sep[i].load(Ordering::Relaxed),
                        ));
                    }
                    keys.push((slice_at(&sep, 0), slice_at(&sep, 8), FullKey::alloc(&sep)));
                    for i in ci..WIDTH {
                        keys.push((
                            pr.ikey[i].load(Ordering::Relaxed),
                            pr.ikey2[i].load(Ordering::Relaxed),
                            pr.sep[i].load(Ordering::Relaxed),
                        ));
                    }
                    for i in 0..=ci {
                        children.push(pr.child[i].load(Ordering::Relaxed));
                    }
                    children.push(right);
                    for i in ci + 1..=WIDTH {
                        children.push(pr.child[i].load(Ordering::Relaxed));
                    }
                    const LEFT_KEYS: usize = WIDTH.div_ceil(2);
                    let up = keys[LEFT_KEYS];
                    let p2 = new_inner(false, Some(&pr.head.version));
                    // SAFETY: fresh private node.
                    let p2r = unsafe { &*p2 };
                    for i in 0..LEFT_KEYS {
                        pr.ikey[i].store(keys[i].0, Ordering::Relaxed);
                        pr.ikey2[i].store(keys[i].1, Ordering::Relaxed);
                        pr.sep[i].store(keys[i].2, Ordering::Relaxed);
                    }
                    for (i, &c) in children.iter().enumerate().take(LEFT_KEYS + 1) {
                        pr.child[i].store(c, Ordering::Relaxed);
                        // SAFETY: parent's lock held.
                        unsafe { set_parent(c, p) };
                    }
                    let right_keys = WIDTH - LEFT_KEYS;
                    for i in 0..right_keys {
                        let k = keys[LEFT_KEYS + 1 + i];
                        p2r.ikey[i].store(k.0, Ordering::Relaxed);
                        p2r.ikey2[i].store(k.1, Ordering::Relaxed);
                        p2r.sep[i].store(k.2, Ordering::Relaxed);
                    }
                    for i in 0..=right_keys {
                        let c = children[LEFT_KEYS + 1 + i];
                        p2r.child[i].store(c, Ordering::Relaxed);
                        // SAFETY: old parent's lock held (§4.5 allows
                        // reassigning children's parents without their
                        // locks).
                        unsafe { set_parent(c, p2) };
                    }
                    p2r.nkeys.store(right_keys as u64, Ordering::Relaxed);
                    pr.nkeys.store(LEFT_KEYS as u64, Ordering::Release);
                    // SAFETY: we hold right's lock.
                    unsafe { (*right).version.unlock() };
                    left = p.cast::<Head>();
                    right = p2.cast::<Head>();
                    // SAFETY: immutable separator block.
                    sep = unsafe { FullKey::bytes(up.2) }.to_vec();
                }
            }
        }
    }
}

/// # Safety
///
/// `child` must be live; caller must hold the lock protecting the parent
/// pointer (the parent's lock, or the child is private).
unsafe fn set_parent(child: *mut Head, parent: *mut Inner) {
    // SAFETY: per caller contract.
    unsafe {
        let v = (*child).version.load(Ordering::Relaxed);
        if v.is_border() {
            (*child.cast::<Leaf>())
                .parent
                .store(parent, Ordering::Release);
        } else {
            (*child.cast::<Inner>())
                .parent
                .store(parent, Ordering::Release);
        }
    }
}

impl Drop for OccBtree {
    fn drop(&mut self) {
        // Iterative DFS freeing nodes, separators, keys and values.
        let mut stack = vec![*self.root.get_mut()];
        while let Some(h) = stack.pop() {
            if h.is_null() {
                continue;
            }
            // SAFETY: exclusive access, each node visited once.
            unsafe {
                let v = (*h).version.load(Ordering::Relaxed);
                if v.is_border() {
                    let l = Box::from_raw(h.cast::<Leaf>());
                    let perm = Permutation::from_raw(l.permutation.load(Ordering::Relaxed));
                    for pos in 0..perm.nkeys() {
                        let slot = perm.get(pos);
                        let kf = l.kfull[slot].load(Ordering::Relaxed);
                        if !kf.is_null() {
                            FullKey::free(kf);
                        }
                        drop(Box::from_raw(l.value[slot].load(Ordering::Relaxed)));
                    }
                    let lk = l.lowkey.load(Ordering::Relaxed);
                    if !lk.is_null() {
                        FullKey::free(lk);
                    }
                } else {
                    let inner = Box::from_raw(h.cast::<Inner>());
                    let nk = (inner.nkeys.load(Ordering::Relaxed) as usize).min(WIDTH);
                    for i in 0..nk {
                        let s = inner.sep[i].load(Ordering::Relaxed);
                        if !s.is_null() {
                            FullKey::free(s);
                        }
                    }
                    for i in 0..=nk {
                        stack.push(inner.child[i].load(Ordering::Relaxed));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configs() -> Vec<OccBtreeConfig> {
        vec![
            OccBtreeConfig::plain(),
            OccBtreeConfig::prefetching(),
            OccBtreeConfig::permuter(),
        ]
    }

    #[test]
    fn put_get_all_configs() {
        for cfg in configs() {
            let t = OccBtree::new(cfg);
            let g = crossbeam::epoch::pin();
            for i in 0..20_000u64 {
                t.put(format!("key{i:07}").as_bytes(), i, &g);
            }
            for i in 0..20_000u64 {
                assert_eq!(
                    t.get(format!("key{i:07}").as_bytes(), &g),
                    Some(i),
                    "{cfg:?}"
                );
            }
            assert_eq!(t.get(b"missing", &g), None);
        }
    }

    #[test]
    fn long_keys_with_shared_prefix() {
        // The Figure 9 scenario: 40-byte keys, only last 8 vary.
        for cfg in configs() {
            let t = OccBtree::new(cfg);
            let g = crossbeam::epoch::pin();
            let prefix = "P".repeat(32);
            for i in 0..5_000u64 {
                let k = format!("{prefix}{i:08}");
                t.put(k.as_bytes(), i, &g);
            }
            for i in 0..5_000u64 {
                let k = format!("{prefix}{i:08}");
                assert_eq!(t.get(k.as_bytes(), &g), Some(i), "{cfg:?}");
            }
        }
    }

    #[test]
    fn update_in_place() {
        let t = OccBtree::new(OccBtreeConfig::permuter());
        let g = crossbeam::epoch::pin();
        t.put(b"k", 1, &g);
        t.put(b"k", 2, &g);
        assert_eq!(t.get(b"k", &g), Some(2));
    }

    #[test]
    fn fixed8_variant() {
        let t = OccBtree::new(OccBtreeConfig::fixed8());
        let g = crossbeam::epoch::pin();
        for i in 0..20_000u64 {
            t.put(&i.to_be_bytes(), i, &g);
        }
        for i in 0..20_000u64 {
            assert_eq!(t.get(&i.to_be_bytes(), &g), Some(i));
        }
    }

    #[test]
    fn mixed_key_lengths() {
        for cfg in configs() {
            let t = OccBtree::new(cfg);
            let g = crossbeam::epoch::pin();
            let keys: Vec<Vec<u8>> = vec![
                b"".to_vec(),
                b"a".to_vec(),
                b"aaaaaaaabbbbbbbb".to_vec(),
                b"aaaaaaaabbbbbbbbc".to_vec(),
                b"aaaaaaaabbbbbbbbcc".to_vec(),
                vec![b'z'; 100],
            ];
            for (i, k) in keys.iter().enumerate() {
                t.put(k, i as u64, &g);
            }
            for (i, k) in keys.iter().enumerate() {
                assert_eq!(t.get(k, &g), Some(i as u64), "{cfg:?} key {i}");
            }
        }
    }

    #[test]
    fn concurrent_inserts_all_configs() {
        for cfg in configs() {
            let t = std::sync::Arc::new(OccBtree::new(cfg));
            let handles: Vec<_> = (0..8)
                .map(|tid| {
                    let t = std::sync::Arc::clone(&t);
                    std::thread::spawn(move || {
                        let g = crossbeam::epoch::pin();
                        for i in 0..10_000u64 {
                            t.put(format!("t{tid}key{i:06}").as_bytes(), i, &g);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let g = crossbeam::epoch::pin();
            for tid in 0..8 {
                for i in 0..10_000u64 {
                    assert_eq!(
                        t.get(format!("t{tid}key{i:06}").as_bytes(), &g),
                        Some(i),
                        "{cfg:?}"
                    );
                }
            }
        }
    }
}
