//! Bump-arena allocation standing in for the paper's Streamflow-derived
//! "Flow" allocator and its superpage mode (§6.2, Figure 8's "+Flow" and
//! "+Superpage" bars).
//!
//! We cannot port Streamflow or force 2 MB x86 superpages from a
//! container, so the two allocator bars are approximated by what made
//! them fast (see DESIGN.md §4.7): per-thread bump allocation from large
//! chunks (no per-object free, no cross-thread synchronization on the
//! allocation path) and, for the superpage variant, 2 MB-aligned chunks —
//! which Linux's transparent huge pages will typically back with 2 MB
//! mappings, reducing TLB misses just as the paper's superpages did.
//!
//! Arena memory is freed only when the arena drops; tree nodes allocated
//! from an arena are never individually freed (the factor-analysis
//! benchmarks only insert).

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Chunk size for the plain arena ("+Flow").
pub const SMALL_CHUNK: usize = 64 * 1024;
/// Chunk size and alignment for the superpage arena ("+Superpage").
pub const HUGE_CHUNK: usize = 2 * 1024 * 1024;

static NEXT_ARENA_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread bump state, keyed by arena id (an arena is shared by
    /// many threads; each thread bumps its own chunk).
    static TLS_CHUNKS: RefCell<HashMap<u64, (usize, usize)>> = RefCell::new(HashMap::new());
}

/// A multi-thread bump arena. Allocation is lock-free per thread except
/// when a new chunk must be carved (amortized over `chunk_size`).
pub struct Arena {
    id: u64,
    chunk_size: usize,
    chunk_align: usize,
    /// All chunks ever handed out, freed on drop.
    chunks: Mutex<Vec<(usize, Layout)>>,
}

impl Arena {
    /// Arena with small chunks (the "+Flow" configuration).
    pub fn new_flow() -> Self {
        Self::with_chunks(SMALL_CHUNK, 4096)
    }

    /// Arena with 2 MB-aligned chunks (the "+Superpage" configuration).
    pub fn new_superpage() -> Self {
        Self::with_chunks(HUGE_CHUNK, HUGE_CHUNK)
    }

    fn with_chunks(chunk_size: usize, chunk_align: usize) -> Self {
        Arena {
            id: NEXT_ARENA_ID.fetch_add(1, Ordering::Relaxed),
            chunk_size,
            chunk_align,
            chunks: Mutex::new(Vec::new()),
        }
    }

    /// Allocates `layout` from the calling thread's chunk.
    ///
    /// The returned memory lives until the arena is dropped. The caller
    /// must not outlive the arena with the pointer.
    pub fn alloc(&self, layout: Layout) -> *mut u8 {
        assert!(layout.size() <= self.chunk_size);
        TLS_CHUNKS.with(|tls| {
            let mut map = tls.borrow_mut();
            let (cur, remaining) = map.entry(self.id).or_insert((0, 0));
            let align = layout.align().max(8);
            let aligned = (*cur + align - 1) & !(align - 1);
            let pad = aligned - *cur;
            if *remaining < layout.size() + pad {
                let chunk_layout =
                    Layout::from_size_align(self.chunk_size, self.chunk_align).unwrap();
                // SAFETY: non-zero size.
                let p = unsafe { alloc(chunk_layout) };
                if p.is_null() {
                    handle_alloc_error(chunk_layout);
                }
                self.chunks.lock().unwrap().push((p as usize, chunk_layout));
                *cur = p as usize;
                *remaining = self.chunk_size;
                let aligned = (*cur + align - 1) & !(align - 1);
                let pad = aligned - *cur;
                *cur = aligned + layout.size();
                *remaining -= pad + layout.size();
                return aligned as *mut u8;
            }
            *cur = aligned + layout.size();
            *remaining -= pad + layout.size();
            aligned as *mut u8
        })
    }

    /// Copies `bytes` into the arena, returning the stable slice.
    pub fn alloc_bytes(&self, bytes: &[u8]) -> &'static [u8] {
        if bytes.is_empty() {
            return &[];
        }
        let p = self.alloc(Layout::from_size_align(bytes.len(), 1).unwrap());
        // SAFETY: fresh arena memory of sufficient size.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), p, bytes.len());
            std::slice::from_raw_parts(p, bytes.len())
        }
    }

    /// Total bytes reserved.
    pub fn reserved_bytes(&self) -> usize {
        self.chunks.lock().unwrap().len() * self.chunk_size
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        for (p, layout) in self.chunks.lock().unwrap().drain(..) {
            // SAFETY: allocated by `alloc` with exactly this layout; the
            // arena owns its chunks and is being dropped.
            unsafe { dealloc(p as *mut u8, layout) };
        }
    }
}

// SAFETY: the chunk list is mutex-protected; per-thread bump state lives
// in TLS and is never shared.
unsafe impl Send for Arena {}
// SAFETY: as above.
unsafe impl Sync for Arena {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let a = Arena::new_flow();
        let mut ptrs = Vec::new();
        for i in 1..100usize {
            let l = Layout::from_size_align(i * 3 % 200 + 1, 8).unwrap();
            let p = a.alloc(l);
            assert_eq!(p as usize % 8, 0);
            ptrs.push((p as usize, l.size()));
        }
        ptrs.sort();
        for w in ptrs.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "allocations overlap");
        }
    }

    #[test]
    fn alloc_bytes_roundtrip() {
        let a = Arena::new_flow();
        let s = a.alloc_bytes(b"hello arena");
        assert_eq!(s, b"hello arena");
        assert_eq!(a.alloc_bytes(b""), b"");
    }

    #[test]
    fn superpage_chunks_are_2mb_aligned() {
        let a = Arena::new_superpage();
        let p = a.alloc(Layout::from_size_align(64, 8).unwrap());
        assert_eq!(p as usize % HUGE_CHUNK, 0, "first alloc at chunk start");
        assert_eq!(a.reserved_bytes(), HUGE_CHUNK);
    }

    #[test]
    fn threads_get_independent_chunks() {
        let a = std::sync::Arc::new(Arena::new_flow());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let a = std::sync::Arc::clone(&a);
                std::thread::spawn(move || {
                    let mut last = 0usize;
                    for _ in 0..1000 {
                        let p = a.alloc(Layout::from_size_align(40, 8).unwrap()) as usize;
                        assert_ne!(p, last);
                        last = p;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(a.reserved_bytes() >= SMALL_CHUNK);
    }
}
