//! Baseline index structures from the Masstree paper's evaluation:
//! the factor-analysis ladder of §6.2 (binary tree, arena allocation,
//! integer compare, 4-tree, OCC B+-tree with prefetching and
//! permutations), the flexibility comparisons of §6.4 (fixed-key tree,
//! hash table, single-core variant) and the hard-partitioned
//! configuration of §6.6.

pub mod arena;
pub mod binary;
pub mod fourtree;
pub mod hashtable;
pub mod occ_btree;
pub mod partitioned;
pub mod single_core;

pub use arena::Arena;
pub use binary::{BinaryTree, Compare, NodeAlloc};
pub use fourtree::FourTree;
pub use hashtable::HashTable;
pub use occ_btree::{OccBtree, OccBtreeConfig};
pub use partitioned::{partition_of, PartitionedMasstree};
pub use single_core::SingleMasstree;
