//! The single-core Masstree variant of §6.4: the same trie-of-B+-trees
//! shape with "locking, node versions, and interlocked instructions"
//! removed. One thread owns it (`&mut self` writes); the paper found the
//! concurrent version only ~13% slower than this on one core.
//!
//! Also the building block of the hard-partitioned configuration (§6.6):
//! 16 instances, each serving one partition from its own core.

use masstree::key::{slice_at, SLICE_LEN};

const WIDTH: usize = 15;

/// Sort rank of a leaf entry: inline length 0..=8, 9 for suffix keys.
/// Layer links share rank 9's position (at most one ">8 bytes" resident
/// per slice, as in the concurrent tree).
const RANK_SUFFIX: u8 = 9;

enum Lv {
    Value(u64),
    Layer(Box<Node>),
}

struct LeafEntry {
    ikey: u64,
    /// 0..=8 inline; RANK_SUFFIX for both suffixed keys and layer links
    /// (`lv` disambiguates).
    rank: u8,
    suffix: Option<Box<[u8]>>,
    lv: Lv,
}

enum Node {
    Leaf(Leaf),
    Interior(Interior),
}

struct Leaf {
    entries: Vec<LeafEntry>, // sorted by (ikey, rank); ≤ WIDTH after ops
}

struct Interior {
    keys: Vec<u64>,
    children: Vec<Node>, // keys.len() + 1
}

fn rank_of(key: &[u8], offset: usize) -> u8 {
    let rem = key.len().saturating_sub(offset);
    if rem > SLICE_LEN {
        RANK_SUFFIX
    } else {
        rem as u8
    }
}

/// A single-threaded Masstree: trie of width-15 B+-trees without any
/// synchronization.
pub struct SingleMasstree {
    root: Node,
    keys: usize,
}

impl Default for SingleMasstree {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a recursive insert: propagated split, if any.
enum InsertUp {
    /// true = a new key was inserted (vs an update).
    Done(bool),
    Split {
        key: u64,
        right: Node,
        new: bool,
    },
}

impl SingleMasstree {
    pub fn new() -> Self {
        SingleMasstree {
            root: Node::Leaf(Leaf {
                entries: Vec::with_capacity(WIDTH),
            }),
            keys: 0,
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.keys
    }

    pub fn is_empty(&self) -> bool {
        self.keys == 0
    }

    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let mut node = &self.root;
        let mut offset = 0;
        'layer: loop {
            match node {
                Node::Interior(i) => {
                    let ikey = slice_at(key, offset);
                    let mut ci = i.keys.len();
                    for (j, &k) in i.keys.iter().enumerate() {
                        if ikey < k {
                            ci = j;
                            break;
                        }
                    }
                    node = &i.children[ci];
                }
                Node::Leaf(l) => {
                    let ikey = slice_at(key, offset);
                    let rank = rank_of(key, offset);
                    for e in &l.entries {
                        if e.ikey < ikey || (e.ikey == ikey && e.rank < rank) {
                            continue;
                        }
                        if e.ikey > ikey || e.rank > rank {
                            return None;
                        }
                        // Exact (ikey, rank) group.
                        return match &e.lv {
                            Lv::Layer(sub) => {
                                debug_assert_eq!(rank, RANK_SUFFIX);
                                node = sub;
                                offset += SLICE_LEN;
                                continue 'layer;
                            }
                            Lv::Value(v) if rank != RANK_SUFFIX => Some(*v),
                            Lv::Value(v) => {
                                let suf = e.suffix.as_deref().unwrap_or(&[]);
                                if suf == &key[offset + SLICE_LEN..] {
                                    Some(*v)
                                } else {
                                    None
                                }
                            }
                        };
                    }
                    return None;
                }
            }
        }
    }

    pub fn put(&mut self, key: &[u8], value: u64) {
        match Self::insert_rec(&mut self.root, key, 0, value) {
            InsertUp::Done(new) => {
                if new {
                    self.keys += 1;
                }
            }
            InsertUp::Split { key: k, right, new } => {
                let old = std::mem::replace(
                    &mut self.root,
                    Node::Interior(Interior {
                        keys: Vec::with_capacity(WIDTH),
                        children: Vec::with_capacity(WIDTH + 1),
                    }),
                );
                if let Node::Interior(r) = &mut self.root {
                    r.keys.push(k);
                    r.children.push(old);
                    r.children.push(right);
                }
                if new {
                    self.keys += 1;
                }
            }
        }
    }

    /// Inserts into a deeper trie layer, absorbing any split by growing
    /// that layer's root (splits never cross layer boundaries).
    fn insert_into_layer(sub: &mut Node, key: &[u8], offset: usize, value: u64) -> InsertUp {
        match Self::insert_rec(sub, key, offset, value) {
            InsertUp::Done(new) => InsertUp::Done(new),
            InsertUp::Split { key: k, right, new } => {
                let old = std::mem::replace(
                    sub,
                    Node::Interior(Interior {
                        keys: Vec::with_capacity(WIDTH),
                        children: Vec::with_capacity(WIDTH + 1),
                    }),
                );
                if let Node::Interior(r) = sub {
                    r.keys.push(k);
                    r.children.push(old);
                    r.children.push(right);
                }
                InsertUp::Done(new)
            }
        }
    }

    fn insert_rec(node: &mut Node, key: &[u8], offset: usize, value: u64) -> InsertUp {
        match node {
            Node::Interior(i) => {
                let ikey = slice_at(key, offset);
                let mut ci = i.keys.len();
                for (j, &k) in i.keys.iter().enumerate() {
                    if ikey < k {
                        ci = j;
                        break;
                    }
                }
                match Self::insert_rec(&mut i.children[ci], key, offset, value) {
                    InsertUp::Done(new) => InsertUp::Done(new),
                    InsertUp::Split { key: k, right, new } => {
                        i.keys.insert(ci, k);
                        i.children.insert(ci + 1, right);
                        if i.keys.len() <= WIDTH {
                            return InsertUp::Done(new);
                        }
                        let mid = i.keys.len() / 2;
                        let up = i.keys[mid];
                        let rkeys: Vec<u64> = i.keys.split_off(mid + 1);
                        i.keys.pop(); // `up` moves up
                        let rchildren: Vec<Node> = i.children.split_off(mid + 1);
                        InsertUp::Split {
                            key: up,
                            right: Node::Interior(Interior {
                                keys: rkeys,
                                children: rchildren,
                            }),
                            new,
                        }
                    }
                }
            }
            Node::Leaf(l) => {
                let ikey = slice_at(key, offset);
                let rank = rank_of(key, offset);
                let mut pos = l.entries.len();
                for j in 0..l.entries.len() {
                    let (eikey, erank) = (l.entries[j].ikey, l.entries[j].rank);
                    if eikey < ikey || (eikey == ikey && erank < rank) {
                        continue;
                    }
                    if eikey > ikey || erank > rank {
                        pos = j;
                        break;
                    }
                    // Exact (ikey, rank) group: update, descend, or layer.
                    let e = &mut l.entries[j];
                    match &mut e.lv {
                        Lv::Layer(sub) => {
                            return Self::insert_into_layer(sub, key, offset + SLICE_LEN, value);
                        }
                        Lv::Value(v) if rank != RANK_SUFFIX => {
                            *v = value;
                            return InsertUp::Done(false);
                        }
                        Lv::Value(v) => {
                            let esuf: &[u8] = e.suffix.as_deref().unwrap_or(&[]);
                            let ksuf = &key[offset + SLICE_LEN..];
                            if esuf == ksuf {
                                *v = value;
                                return InsertUp::Done(false);
                            }
                            // Conflict: push the resident key one layer
                            // down (§4.6.3), then insert into the layer.
                            let old_value = *v;
                            let old_suffix = e.suffix.take().unwrap_or_default();
                            let sub_rank = rank_of(&old_suffix, 0);
                            let sub = Node::Leaf(Leaf {
                                entries: vec![LeafEntry {
                                    ikey: slice_at(&old_suffix, 0),
                                    rank: sub_rank,
                                    suffix: if old_suffix.len() > SLICE_LEN {
                                        Some(old_suffix[SLICE_LEN..].to_vec().into_boxed_slice())
                                    } else {
                                        None
                                    },
                                    lv: Lv::Value(old_value),
                                }],
                            });
                            e.lv = Lv::Layer(Box::new(sub));
                            if let Lv::Layer(sub) = &mut e.lv {
                                return Self::insert_into_layer(
                                    sub,
                                    key,
                                    offset + SLICE_LEN,
                                    value,
                                );
                            }
                            unreachable!()
                        }
                    }
                }
                // Plain insert at `pos`.
                l.entries.insert(
                    pos,
                    LeafEntry {
                        ikey,
                        rank,
                        suffix: if rank == RANK_SUFFIX {
                            Some(key[offset + SLICE_LEN..].to_vec().into_boxed_slice())
                        } else {
                            None
                        },
                        lv: Lv::Value(value),
                    },
                );
                if l.entries.len() <= WIDTH {
                    return InsertUp::Done(true);
                }
                // Split at an ikey boundary nearest the middle (same-slice
                // keys must stay together).
                let mid = l.entries.len() / 2;
                let mut best: Option<(usize, usize)> = None;
                for cand in 1..l.entries.len() {
                    if l.entries[cand].ikey != l.entries[cand - 1].ikey {
                        let d = cand.abs_diff(mid);
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, cand));
                        }
                    }
                }
                let b = best.expect("16 entries always span ≥2 slices").1;
                let right_entries: Vec<LeafEntry> = l.entries.split_off(b);
                let up = right_entries[0].ikey;
                InsertUp::Split {
                    key: up,
                    right: Node::Leaf(Leaf {
                        entries: right_entries,
                    }),
                    new: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut t = SingleMasstree::new();
        for i in 0..50_000u64 {
            t.put(format!("{i}").as_bytes(), i);
        }
        assert_eq!(t.len(), 50_000);
        for i in 0..50_000u64 {
            assert_eq!(t.get(format!("{i}").as_bytes()), Some(i), "{i}");
        }
        assert_eq!(t.get(b"missing"), None);
    }

    #[test]
    fn update_does_not_grow() {
        let mut t = SingleMasstree::new();
        t.put(b"k", 1);
        t.put(b"k", 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"k"), Some(2));
    }

    #[test]
    fn layering_on_shared_prefixes() {
        let mut t = SingleMasstree::new();
        t.put(b"01234567AB", 1);
        t.put(b"01234567XY", 2);
        t.put(b"01234567", 3);
        assert_eq!(t.get(b"01234567AB"), Some(1));
        assert_eq!(t.get(b"01234567XY"), Some(2));
        assert_eq!(t.get(b"01234567"), Some(3));
        assert_eq!(t.get(b"01234567ZZ"), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn deep_layers() {
        let mut t = SingleMasstree::new();
        let prefix = "x".repeat(40);
        for i in 0..1_000u64 {
            t.put(format!("{prefix}{i:06}").as_bytes(), i);
        }
        for i in 0..1_000u64 {
            assert_eq!(t.get(format!("{prefix}{i:06}").as_bytes()), Some(i));
        }
        assert_eq!(t.len(), 1_000);
    }

    #[test]
    fn matches_model_on_random_keys() {
        use std::collections::BTreeMap;
        let mut t = SingleMasstree::new();
        let mut model = BTreeMap::new();
        let mut seed = 12345u64;
        for i in 0..30_000u64 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = ((seed >> 33) % 2_147_483_648).to_string();
            t.put(k.as_bytes(), i);
            model.insert(k, i);
        }
        assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k.as_bytes()), Some(*v));
        }
    }

    #[test]
    fn binary_keys() {
        let mut t = SingleMasstree::new();
        t.put(b"ABCDEFG", 7);
        t.put(b"ABCDEFG\0", 8);
        t.put(b"", 0);
        assert_eq!(t.get(b"ABCDEFG"), Some(7));
        assert_eq!(t.get(b"ABCDEFG\0"), Some(8));
        assert_eq!(t.get(b""), Some(0));
    }
}
