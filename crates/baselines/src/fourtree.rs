//! The "4-tree" from the factor analysis (§6.2): a tree with fanout 4
//! whose two-cache-line nodes put everything needed for traversal — four
//! child pointers and the first 8 bytes of each key — in the first line.
//!
//! As in the paper: reads are lockless and never retry; inserts use a
//! per-node lock with single-store publication (a packed order byte plays
//! the role Masstree's permutation plays); nodes never rearrange keys and
//! internal nodes are always full, because a node only grows children
//! after its three key slots fill.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, Ordering};

use crossbeam::epoch::Guard;
use masstree::key::slice_at;

/// Keys per node (fanout 4 = 3 separators + 4 children).
const KEYS: usize = 3;

struct Node {
    // ---- first cache line: everything traversal needs ----
    /// Packed publication word: bits 0..2 = nkeys, bits 2..8 = sorted
    /// order (2 bits per position). A single release store publishes an
    /// insert, so readers never retry.
    order: AtomicU8,
    lock: AtomicU8,
    ikey: [AtomicU64; KEYS],
    child: [AtomicPtr<Node>; 4],
    // ---- second cache line: full keys and values ----
    key_ptr: [AtomicPtr<u8>; KEYS],
    key_len: [AtomicU64; KEYS],
    value: [AtomicPtr<u64>; KEYS],
}

#[derive(Clone, Copy)]
struct Order(u8);

impl Order {
    fn empty() -> Self {
        Order(0)
    }
    fn nkeys(self) -> usize {
        (self.0 & 0b11) as usize
    }
    fn get(self, i: usize) -> usize {
        ((self.0 >> (2 + 2 * i)) & 0b11) as usize
    }
    /// Insert slot index `slot` at sorted position `pos`.
    fn insert(self, pos: usize, slot: usize) -> Order {
        let n = self.nkeys();
        debug_assert!(pos <= n && n < KEYS);
        let mut o = Order((self.0 & 0b11) + 1);
        let mut src = 0;
        for dst in 0..=n {
            let s = if dst == pos {
                slot
            } else {
                let s = self.get(src);
                src += 1;
                s
            };
            o.0 |= (s as u8) << (2 + 2 * dst);
        }
        o
    }
}

fn new_node() -> *mut Node {
    Box::into_raw(Box::new(Node {
        order: AtomicU8::new(Order::empty().0),
        lock: AtomicU8::new(0),
        ikey: [const { AtomicU64::new(0) }; KEYS],
        child: [const { AtomicPtr::new(std::ptr::null_mut()) }; 4],
        key_ptr: [const { AtomicPtr::new(std::ptr::null_mut()) }; KEYS],
        key_len: [const { AtomicU64::new(0) }; KEYS],
        value: [const { AtomicPtr::new(std::ptr::null_mut()) }; KEYS],
    }))
}

/// A concurrent fanout-4 search tree mapping byte keys to `u64` values.
pub struct FourTree {
    root: AtomicPtr<Node>,
}

// SAFETY: all shared state is atomic; values are epoch-reclaimed.
unsafe impl Send for FourTree {}
// SAFETY: as above.
unsafe impl Sync for FourTree {}

impl Node {
    fn key(&self, slot: usize) -> &[u8] {
        let p = self.key_ptr[slot].load(Ordering::Acquire);
        let l = self.key_len[slot].load(Ordering::Acquire) as usize;
        // SAFETY: key blocks are immutable once published and live while
        // the tree lives.
        unsafe { std::slice::from_raw_parts(p, l) }
    }

    fn lock(&self) {
        while self
            .lock
            .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
    }

    fn unlock(&self) {
        self.lock.store(0, Ordering::Release);
    }
}

impl Default for FourTree {
    fn default() -> Self {
        Self::new()
    }
}

impl FourTree {
    pub fn new() -> Self {
        FourTree {
            root: AtomicPtr::new(new_node()),
        }
    }

    /// Compares a lookup key against slot `slot` of `n` (integer prefix
    /// first — the 4-tree inherits "+IntCmp").
    #[inline]
    fn cmp(key: &[u8], ikey: u64, n: &Node, slot: usize) -> std::cmp::Ordering {
        let sk = n.ikey[slot].load(Ordering::Acquire);
        match ikey.cmp(&sk) {
            std::cmp::Ordering::Equal => {
                let nk = n.key(slot);
                key[key.len().min(8)..]
                    .cmp(&nk[nk.len().min(8)..])
                    .then(key.len().cmp(&nk.len()))
            }
            o => o,
        }
    }

    /// Lockless lookup; never retries.
    pub fn get(&self, key: &[u8], _guard: &Guard) -> Option<u64> {
        let ikey = slice_at(key, 0);
        let mut cur = self.root.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: nodes are never freed while the tree lives.
            let n = unsafe { &*cur };
            let order = Order(n.order.load(Ordering::Acquire));
            let mut ci = order.nkeys(); // rightmost child unless key < some separator
            let mut found = None;
            for pos in 0..order.nkeys() {
                let slot = order.get(pos);
                match Self::cmp(key, ikey, n, slot) {
                    std::cmp::Ordering::Equal => {
                        found = Some(slot);
                        break;
                    }
                    std::cmp::Ordering::Less => {
                        ci = pos;
                        break;
                    }
                    std::cmp::Ordering::Greater => {}
                }
            }
            if let Some(slot) = found {
                let v = n.value[slot].load(Ordering::Acquire);
                // SAFETY: values are epoch-retired on update.
                return Some(unsafe { *v });
            }
            cur = n.child[ci].load(Ordering::Acquire);
        }
        None
    }

    /// Inserts or updates `key → value`.
    pub fn put(&self, key: &[u8], value: u64, guard: &Guard) {
        let ikey = slice_at(key, 0);
        let vptr = Box::into_raw(Box::new(value));
        let mut cur = self.root.load(Ordering::Acquire);
        loop {
            // SAFETY: as in `get`.
            let n = unsafe { &*cur };
            let order = Order(n.order.load(Ordering::Acquire));
            let mut ci = order.nkeys();
            let mut found = None;
            for pos in 0..order.nkeys() {
                let slot = order.get(pos);
                match Self::cmp(key, ikey, n, slot) {
                    std::cmp::Ordering::Equal => {
                        found = Some(slot);
                        break;
                    }
                    std::cmp::Ordering::Less => {
                        ci = pos;
                        break;
                    }
                    std::cmp::Ordering::Greater => {}
                }
            }
            if let Some(slot) = found {
                let old = n.value[slot].swap(vptr, Ordering::AcqRel);
                let oldp = old as usize;
                // SAFETY: old value unreachable; epoch protects readers.
                unsafe {
                    guard.defer_unchecked(move || drop(Box::from_raw(oldp as *mut u64)));
                }
                return;
            }
            if order.nkeys() < KEYS {
                // Try to claim a slot in this node under its lock.
                n.lock();
                let cur_order = Order(n.order.load(Ordering::Relaxed));
                if cur_order.0 != order.0 {
                    n.unlock();
                    continue; // re-examine the node
                }
                // Re-derive the sorted position under the lock.
                let mut pos = cur_order.nkeys();
                for p in 0..cur_order.nkeys() {
                    if Self::cmp(key, ikey, n, cur_order.get(p)) == std::cmp::Ordering::Less {
                        pos = p;
                        break;
                    }
                }
                let slot = cur_order.nkeys();
                let boxed: Box<[u8]> = key.into();
                let len = boxed.len() as u64;
                n.key_ptr[slot].store(Box::into_raw(boxed).cast::<u8>(), Ordering::Release);
                n.key_len[slot].store(len, Ordering::Release);
                n.ikey[slot].store(ikey, Ordering::Release);
                n.value[slot].store(vptr, Ordering::Release);
                n.order
                    .store(cur_order.insert(pos, slot).0, Ordering::Release);
                n.unlock();
                return;
            }
            // Node full: descend, creating the child if missing.
            let childp = n.child[ci].load(Ordering::Acquire);
            if childp.is_null() {
                let fresh = new_node();
                match n.child[ci].compare_exchange(
                    std::ptr::null_mut(),
                    fresh,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => cur = fresh,
                    Err(existing) => {
                        // SAFETY: never published.
                        unsafe { drop(Box::from_raw(fresh)) };
                        cur = existing;
                    }
                }
            } else {
                cur = childp;
            }
        }
    }
}

impl Drop for FourTree {
    fn drop(&mut self) {
        let mut stack = vec![*self.root.get_mut()];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            // SAFETY: exclusive access; each node visited once.
            unsafe {
                let n = Box::from_raw(p);
                for c in &n.child {
                    stack.push(c.load(Ordering::Relaxed));
                }
                let order = Order(n.order.load(Ordering::Relaxed));
                for pos in 0..order.nkeys() {
                    let slot = order.get(pos);
                    drop(Box::from_raw(n.value[slot].load(Ordering::Relaxed)));
                    let kp = n.key_ptr[slot].load(Ordering::Relaxed);
                    let kl = n.key_len[slot].load(Ordering::Relaxed) as usize;
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(kp, kl)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_packing() {
        let o = Order::empty();
        assert_eq!(o.nkeys(), 0);
        let o = o.insert(0, 0);
        let o = o.insert(0, 1); // new key sorts first
        let o = o.insert(1, 2); // middle
        assert_eq!(o.nkeys(), 3);
        assert_eq!((o.get(0), o.get(1), o.get(2)), (1, 2, 0));
    }

    #[test]
    fn put_get_roundtrip() {
        let t = FourTree::new();
        let g = crossbeam::epoch::pin();
        for i in 0..1000u64 {
            t.put(format!("key{i:05}").as_bytes(), i, &g);
        }
        for i in 0..1000u64 {
            assert_eq!(t.get(format!("key{i:05}").as_bytes(), &g), Some(i));
        }
        assert_eq!(t.get(b"missing", &g), None);
        // Updates.
        t.put(b"key00000", 999, &g);
        assert_eq!(t.get(b"key00000", &g), Some(999));
    }

    #[test]
    fn keys_longer_than_prefix() {
        let t = FourTree::new();
        let g = crossbeam::epoch::pin();
        t.put(b"aaaaaaaaX", 1, &g);
        t.put(b"aaaaaaaaY", 2, &g);
        t.put(b"aaaaaaaa", 3, &g);
        assert_eq!(t.get(b"aaaaaaaaX", &g), Some(1));
        assert_eq!(t.get(b"aaaaaaaaY", &g), Some(2));
        assert_eq!(t.get(b"aaaaaaaa", &g), Some(3));
    }

    #[test]
    fn concurrent_inserts() {
        let t = std::sync::Arc::new(FourTree::new());
        let handles: Vec<_> = (0..8)
            .map(|tid| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    let g = crossbeam::epoch::pin();
                    for i in 0..5_000u64 {
                        t.put(format!("t{tid}k{i}").as_bytes(), i, &g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let g = crossbeam::epoch::pin();
        for tid in 0..8 {
            for i in 0..5_000u64 {
                assert_eq!(t.get(format!("t{tid}k{i}").as_bytes(), &g), Some(i));
            }
        }
    }
}
