//! Checkpoint-under-load consistency and bounded recovery (§4.4, §5).
//!
//! The background checkpointer runs against the live tree while writers
//! keep going — checkpoints are *fuzzy* and recovery repairs them by
//! replaying surviving log segments in value-version order. These tests
//! pin down the two guarantees that makes worth having:
//!
//! 1. **Consistency**: recovering from a checkpoint taken under load
//!    plus the surviving segments equals a version-ordered replay of
//!    everything the writers did — the winner for every key is the op
//!    with the highest version, and no value that was never written can
//!    appear (no future writes leak in, no torn state surfaces).
//! 2. **Bounded recovery**: after rotation + checkpoint + truncation,
//!    recovery replays only records from segments newer than the
//!    checkpoint cutoff — the replayed-record count is bounded by the
//!    post-checkpoint tail, not by the store's lifetime write count.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use mtkv::{recover, DurabilityConfig, Store};

/// splitmix64.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mtkv-cul-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn checkpoint_under_concurrent_writers_recovers_version_ordered_state() {
    const WRITERS: usize = 4;
    const OPS: usize = 600;
    const SHARED_KEYS: u64 = 48; // all writers contend on one key space

    /// One journaled op: key, assigned version, written value.
    type JournalOp = (Vec<u8>, u64, Option<Vec<u8>>);

    let dir = tmpdir("consistency");
    let journals: Vec<Vec<JournalOp>>;
    {
        let store = Store::persistent_with(&dir, DurabilityConfig::tiny_segments(4096)).unwrap();
        let store2 = Arc::clone(&store);
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        // Checkpoints keep firing for as long as the writers run: no
        // write stalls, each checkpoint sees some fuzzy mid-load state.
        let ckpt_thread = std::thread::spawn(move || {
            let mut cycles = 0u32;
            loop {
                store2.checkpoint_now().unwrap();
                cycles += 1;
                if done2.load(std::sync::atomic::Ordering::Acquire) {
                    return cycles;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        journals = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let session = store.session().unwrap();
                    scope.spawn(move || {
                        let mut rng = Rng(0xc0ffee ^ (w as u64 * 7919));
                        let mut journal = Vec::with_capacity(OPS);
                        for i in 0..OPS {
                            let key = format!("shared{:03}", rng.below(SHARED_KEYS)).into_bytes();
                            if rng.below(100) < 12 {
                                // Removes race puts on the same keys; the
                                // version drawn at the linearization point
                                // is what recovery must respect.
                                let existed = session.remove(&key);
                                let _ = existed;
                                // remove() doesn't return its version to
                                // callers; re-put a tombstone marker value
                                // instead so every journaled op has one.
                                let v = session.put(&key, &[(0, b"removed-marker")]);
                                journal.push((key, v, Some(b"removed-marker".to_vec())));
                            } else {
                                let value =
                                    format!("w{w}i{i:05}-{:08x}", rng.next() as u32).into_bytes();
                                let v = session.put(&key, &[(0, &value)]);
                                journal.push((key, v, Some(value)));
                            }
                            if i % 37 == 0 {
                                assert!(session.force_log());
                            }
                        }
                        assert!(session.force_log());
                        journal
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        done.store(true, std::sync::atomic::Ordering::Release);
        let cycles = ckpt_thread.join().unwrap();
        assert!(cycles >= 1, "checkpoints ran under load");
        assert_eq!(store.checkpoint_epoch(), cycles as u64);
        // Clean shutdown of all sessions happened when the scope ended
        // (drop = sentinel + force), so recovery must reproduce the
        // *complete* version-ordered history.
    }

    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(report.used_checkpoint, "{report:?}");

    // The expected state: per key, the journaled op with the highest
    // version (versions are drawn inside each key's critical section, so
    // version order *is* the serialization order).
    let mut expected: HashMap<Vec<u8>, (u64, Option<Vec<u8>>)> = HashMap::new();
    for journal in &journals {
        for (key, version, value) in journal {
            let e = expected.entry(key.clone()).or_insert((0, None));
            if *version > e.0 {
                *e = (*version, value.clone());
            }
        }
    }
    let session = store.session().unwrap();
    for (key, (version, value)) in &expected {
        let got = session.get(key, Some(&[0])).map(|mut c| c.remove(0));
        assert_eq!(
            got.as_ref(),
            value.as_ref(),
            "key {:?}: recovered state must equal the version-ordered replay \
             (winning version {version})",
            String::from_utf8_lossy(key)
        );
    }
    // And nothing beyond the journals leaked in.
    let mut recovered_keys = 0;
    session.get_range_with(b"", usize::MAX, |k, _| {
        assert!(
            expected.contains_key(k),
            "key {:?} was never written",
            String::from_utf8_lossy(k)
        );
        recovered_keys += 1;
    });
    assert_eq!(recovered_keys, expected.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_bounds_recovery_replay() {
    // The acceptance-criteria test: rotation + checkpoint + truncation,
    // then recovery replays only segments newer than the checkpoint
    // cutoff — asserted via replayed-record counts.
    const BULK: u32 = 4_000;
    const TAIL: u32 = 120;

    let dir = tmpdir("bounded");
    {
        let store = Store::persistent_with(&dir, DurabilityConfig::tiny_segments(4096)).unwrap();
        let s = store.session().unwrap();
        for i in 0..BULK {
            s.put(
                format!("bulk{i:06}").as_bytes(),
                &[(0, &i.to_le_bytes()[..])],
            );
        }
        assert!(s.force_log());
        let segments_before = store.durability_stats().log_segments;
        assert!(
            segments_before >= 8,
            "bulk phase rotated: {segments_before}"
        );

        // One full online cycle: checkpoint + truncate + prune.
        store.checkpoint_now().unwrap();
        let stats = store.durability_stats();
        assert!(
            stats.segments_truncated >= segments_before - 2,
            "covered segments deleted: {stats:?}"
        );
        assert!(stats.log_segments <= 2, "only the tail survives: {stats:?}");

        // Post-checkpoint tail, then crash (no sentinel).
        for i in 0..TAIL {
            s.put(
                format!("tail{i:04}").as_bytes(),
                &[(0, &i.to_le_bytes()[..])],
            );
        }
        assert!(s.force_log());
        s.simulate_crash();
    }
    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(report.used_checkpoint, "{report:?}");
    assert_eq!(report.checkpoint_keys, BULK as u64, "{report:?}");
    assert!(
        report.replayed <= (TAIL as u64) + 8,
        "recovery must replay only the post-checkpoint tail, got {report:?}"
    );
    assert!(
        report.replayed >= TAIL as u64,
        "the whole tail replays: {report:?}"
    );
    assert!(
        report.log_segments <= 4,
        "truncation bounded the segment count: {report:?}"
    );
    // Everything is still there.
    let s = store.session().unwrap();
    for i in [0u32, BULK / 2, BULK - 1] {
        assert_eq!(
            s.get(format!("bulk{i:06}").as_bytes(), Some(&[0])).unwrap()[0],
            i.to_le_bytes()
        );
    }
    for i in [0u32, TAIL - 1] {
        assert_eq!(
            s.get(format!("tail{i:04}").as_bytes(), Some(&[0])).unwrap()[0],
            i.to_le_bytes()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn logger_death_freezes_truncation_and_recovery_falls_back_to_older_checkpoint() {
    // Regression for the poisoned-store data-loss chain: cycle 1
    // (healthy) truncates segments covered by checkpoint C1 — those
    // records now exist only in C1. A session's logger then dies,
    // leaving a torn chain whose last durable timestamp sits below any
    // later checkpoint's start_ts. Later cycles must neither truncate
    // (the torn chain pins future cutoffs) nor prune C1 (an older
    // checkpoint may be the only one a post-crash cutoff accepts), and
    // recovery must fall back to the newest checkpoint at or before the
    // cutoff instead of rejecting "the newest, period" and replaying
    // logs that no longer reach back to the beginning.
    const BULK: u32 = 1_500;
    let dir = tmpdir("poisoned");
    {
        let store = Store::persistent_with(&dir, DurabilityConfig::tiny_segments(2048)).unwrap();
        let a = store.session().unwrap();
        for i in 0..BULK {
            a.put(
                format!("bulk{i:06}").as_bytes(),
                &[(0, &i.to_le_bytes()[..])],
            );
        }
        assert!(a.force_log());
        store.checkpoint_now().unwrap(); // C1: healthy, truncates
        let truncated_healthy = store.durability_stats().segments_truncated;
        assert!(truncated_healthy >= 1, "cycle 1 truncated");

        // Session B dies without its shutdown protocol: poison.
        let b = store.session().unwrap();
        b.put(b"bkey", &[(0, b"bval")]);
        assert!(b.force_log());
        b.simulate_crash();

        // More writes and cycles: C2, C3 (keep_checkpoints = 2 would
        // prune C1 if pruning kept running).
        for i in 0..200u32 {
            a.put(
                format!("tail{i:04}").as_bytes(),
                &[(0, &i.to_le_bytes()[..])],
            );
        }
        assert!(a.force_log());
        store.checkpoint_now().unwrap(); // C2
        store.checkpoint_now().unwrap(); // C3
        assert_eq!(
            store.durability_stats().segments_truncated,
            truncated_healthy,
            "truncation frozen once poisoned"
        );
        a.simulate_crash();
    }
    let (store, report) = recover(&dir, &dir).unwrap();
    // The cutoff is pinned by B's torn chain (< C2.start_ts), so only
    // C1 qualifies — and it must still exist and be used.
    assert!(
        report.used_checkpoint,
        "recovery must fall back to the older checkpoint: {report:?}"
    );
    assert_eq!(report.checkpoint_keys, BULK as u64, "{report:?}");
    let s = store.session().unwrap();
    for i in [0u32, BULK / 2, BULK - 1] {
        assert_eq!(
            s.get(format!("bulk{i:06}").as_bytes(), Some(&[0])).unwrap()[0],
            i.to_le_bytes(),
            "record truncated under C1 must come back from C1"
        );
    }
    assert_eq!(s.get(b"bkey", Some(&[0])).unwrap()[0], b"bval");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn background_checkpointer_runs_and_bounds_log_growth() {
    // The paper's online mode: a background thread checkpoints on a
    // cadence; writers never wait on it; the log footprint stays bounded
    // instead of growing with every write.
    let dir = tmpdir("background");
    {
        let config = DurabilityConfig::tiny_segments(2048).with_interval(Duration::from_millis(15));
        let store = Store::persistent_with(&dir, config).unwrap();
        let s = store.session().unwrap();
        for i in 0..3_000u32 {
            s.put(format!("bg{i:06}").as_bytes(), &[(0, &i.to_le_bytes()[..])]);
            if i % 500 == 499 {
                assert!(s.force_log());
                // Give the checkpointer a beat to land a cycle.
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        assert!(s.force_log());
        // Wait (bounded) for at least two background epochs.
        let mut waited = 0;
        while store.checkpoint_epoch() < 2 && waited < 200 {
            std::thread::sleep(Duration::from_millis(10));
            waited += 1;
        }
        let stats = store.durability_stats();
        assert!(
            stats.checkpoints >= 2,
            "background checkpointer never ran: {stats:?}"
        );
        assert!(
            stats.segments_truncated >= 1,
            "background truncation never ran: {stats:?}"
        );
        // ~3000 * 40B of records went through tiny 2 KiB segments; with
        // online truncation only a tail survives.
        assert!(
            stats.log_segments < 20,
            "log growth must stay bounded: {stats:?}"
        );
        store.stop_background_checkpointer();
    }
    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(report.used_checkpoint, "{report:?}");
    let s = store.session().unwrap();
    for i in [0u32, 1_499, 2_999] {
        assert_eq!(
            s.get(format!("bg{i:06}").as_bytes(), Some(&[0])).unwrap()[0],
            i.to_le_bytes()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
