//! Deterministic property test for the log segment wire format: random
//! `LogRecord` sequences round-trip exactly, and — the §5 torn-tail
//! guarantee — truncating the encoded stream at **every** byte offset
//! decodes to exactly the records whose frames fit entirely before the
//! cut. No torn frame ever yields a record; no intact frame before the
//! cut is ever lost.
//!
//! (Deterministic by construction: seeded splitmix64, no `proptest`
//! crate — same discipline as the other property tests in this repo.)

use mtkv::log::decode_all;
use mtkv::LogRecord;

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn bytes(&mut self, max_len: u64) -> Vec<u8> {
        let len = self.below(max_len + 1) as usize;
        (0..len).map(|_| self.next() as u8).collect()
    }
}

fn random_record(rng: &mut Rng, ts: u64) -> LogRecord {
    match rng.below(10) {
        0..=5 => {
            let ncols = rng.below(4) as usize;
            LogRecord::Put {
                timestamp: ts,
                version: rng.next(),
                key: rng.bytes(24),
                cols: (0..ncols)
                    .map(|_| (rng.below(16) as u16, rng.bytes(40)))
                    .collect(),
            }
        }
        6..=7 => LogRecord::Remove {
            timestamp: ts,
            version: rng.next(),
            key: rng.bytes(24),
        },
        8 => LogRecord::Heartbeat { timestamp: ts },
        _ => LogRecord::CleanClose { timestamp: ts },
    }
}

/// Generates a record sequence, returning each record with its frame's
/// end offset in the encoded stream.
fn random_stream(seed: u64, n: usize) -> (Vec<u8>, Vec<(LogRecord, usize)>) {
    let mut rng = Rng(seed);
    let mut buf = Vec::new();
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let rec = random_record(&mut rng, 1 + i as u64);
        rec.encode(&mut buf);
        records.push((rec, buf.len()));
    }
    (buf, records)
}

#[test]
fn roundtrip_random_sequences() {
    for seed in 0..32u64 {
        let (buf, records) = random_stream(0x5eed_0000 + seed, 60);
        let decoded = decode_all(&buf);
        assert_eq!(decoded.len(), records.len(), "seed {seed}");
        for ((got, got_end), (want, want_end)) in decoded.iter().zip(&records) {
            assert_eq!(got, want, "seed {seed}");
            assert_eq!(got_end, want_end, "seed {seed}");
        }
    }
}

#[test]
fn every_byte_truncation_yields_exactly_the_durable_prefix() {
    for seed in 0..6u64 {
        let (buf, records) = random_stream(0xabcd_0000 + seed, 48);
        for cut in 0..=buf.len() {
            let decoded = decode_all(&buf[..cut]);
            let expected = records.iter().take_while(|(_, end)| *end <= cut).count();
            assert_eq!(
                decoded.len(),
                expected,
                "seed {seed}, cut {cut}/{}: a torn tail must surface exactly \
                 the records whose frames fit before the cut",
                buf.len()
            );
            for (i, (got, _)) in decoded.iter().enumerate() {
                assert_eq!(*got, records[i].0, "seed {seed}, cut {cut}, record {i}");
            }
        }
    }
}

#[test]
fn every_byte_truncation_of_a_file_replays_the_durable_prefix() {
    // Same property through the file path (`read_log`), sampling every
    // third offset to keep I/O sane.
    let dir = std::env::temp_dir().join(format!("mtkv-logprop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (buf, records) = random_stream(0xfeed_beef, 40);
    let path = dir.join("log-0");
    for cut in (0..=buf.len()).step_by(3) {
        std::fs::write(&path, &buf[..cut]).unwrap();
        let replayed = mtkv::read_log(&path).unwrap();
        let expected = records.iter().take_while(|(_, end)| *end <= cut).count();
        assert_eq!(replayed.len(), expected, "cut {cut}");
        for (i, got) in replayed.iter().enumerate() {
            assert_eq!(*got, records[i].0, "cut {cut}, record {i}");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corruption_anywhere_never_panics_and_never_fabricates_prefix_records() {
    // Flip one byte at every position: decoding must never panic, and
    // records *before* the corrupted frame must decode unchanged.
    let (buf, records) = random_stream(0x0bad_f00d, 24);
    for pos in 0..buf.len() {
        let mut mutated = buf.clone();
        mutated[pos] ^= 0x5a;
        let decoded = decode_all(&mutated);
        // Find the first frame the flipped byte belongs to.
        let victim = records.iter().position(|(_, end)| pos < *end).unwrap();
        assert!(
            decoded.len() >= victim,
            "pos {pos}: every record before the corrupted frame must decode"
        );
        for i in 0..victim {
            assert_eq!(
                decoded[i].0, records[i].0,
                "pos {pos}: record {i} precedes the corruption and must survive"
            );
        }
    }
}
