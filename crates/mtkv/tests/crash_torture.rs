//! Crash-torture suite for the online durability subsystem (§4.4, §5).
//!
//! Each seeded round runs several writer threads against a persistent
//! store with tiny log segments (so rotation happens constantly), keeps
//! an **acked-write journal** per writer, then simulates a crash at an
//! injected point — clean shutdown, process death (logger killed with
//! its buffers abandoned), machine death (unsynced log tails torn at a
//! seeded byte), mid-rotation (a sealed segment's sentinel lost),
//! mid-checkpoint (manifest never renamed), or mid-truncation (only a
//! subset of covered segments deleted) — recovers, and asserts:
//!
//! - **No acked write is lost**: for every key, the recovered state is
//!   the state after some prefix of that key's operations at or past the
//!   ack barrier. ("Acked" means issued before a *global* force barrier
//!   across every session: the recovery cutoff `t` is a min over crashed
//!   logs, so a single session's force alone cannot promise survival —
//!   group commit is a fleet property, exactly as in §5.)
//! - **No torn record surfaces**: every recovered value byte-for-byte
//!   equals a value some op actually wrote.
//! - **Recovery is repeatable**: a second recovery of the same directory
//!   reproduces the first (the sealing pass pins the cutoff decision).
//!
//! The acceptance bar from the issue: ≥ 20 seeded rounds, zero lost
//! acked writes.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mtkv::{recover, session_segments, write_checkpoint, DurabilityConfig, LogRecord, Store};

const ROUNDS: u64 = 24;
const WRITERS: usize = 3;
const KEYS_PER_WRITER: usize = 16;
const PHASES: usize = 3;
const OPS_PER_PHASE: usize = 80;

/// splitmix64: deterministic, seedable, no external deps.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Put,
    Remove,
}

/// One journaled operation of one writer.
#[derive(Debug, Clone)]
struct Op {
    key: usize, // index into the writer's key space
    kind: OpKind,
    value: Vec<u8>, // payload for puts (empty for removes)
}

fn key_bytes(writer: usize, key: usize) -> Vec<u8> {
    format!("w{writer}-k{key:04}").into_bytes()
}

fn value_bytes(writer: usize, op_index: usize, rng: &mut Rng) -> Vec<u8> {
    // Self-describing payload with deterministic filler: a torn or
    // mixed-up value cannot collide with any other op's bytes.
    let mut v = format!("w{writer}o{op_index:05}:").into_bytes();
    let len = 16 + (rng.below(32) as usize);
    while v.len() < len {
        v.push(b'a' + ((rng.next() % 26) as u8));
    }
    v
}

/// The states key `k` of `writer` may legally hold after recovery:
/// "state after the first `j` ops touching k", for every `j` from the
/// acked count to all of them. Returns (valid values, absent_allowed).
fn valid_states(ops: &[Op], acked_len: usize, key: usize) -> (Vec<&[u8]>, bool) {
    let touching: Vec<&Op> = ops.iter().filter(|o| o.key == key).collect();
    let acked_touching = ops[..acked_len].iter().filter(|o| o.key == key).count();
    let mut values = Vec::new();
    let mut absent_ok = false;
    for j in acked_touching..=touching.len() {
        if j == 0 {
            absent_ok = true;
        } else {
            match touching[j - 1].kind {
                OpKind::Put => values.push(touching[j - 1].value.as_slice()),
                OpKind::Remove => absent_ok = true,
            }
        }
    }
    (values, absent_ok)
}

struct RoundOutcome {
    /// Per-writer journals and their ack-barrier lengths.
    journals: Vec<(Vec<Op>, usize)>,
}

/// Runs the workload phase of one round and crashes it at the injected
/// point; on return the directory holds the simulated post-crash state.
fn run_round(dir: &Path, seed: u64) -> RoundOutcome {
    let mut rng = Rng(seed);
    let event = rng.below(4); // per-phase durability event selector
    let crash_mode = rng.below(4);
    let background = rng.below(2) == 0;

    let mut config = DurabilityConfig::tiny_segments(2048);
    config.checkpoint_threads = 2;
    if background {
        // Let the real background checkpointer race the writers too.
        config.checkpoint_interval = Some(std::time::Duration::from_millis(10));
    }
    let store = Store::persistent_with(dir, config).unwrap();

    let mut journals: Vec<(Vec<Op>, usize)> = (0..WRITERS).map(|_| (Vec::new(), 0)).collect();
    let mut sessions: Vec<Option<mtkv::Session>> = (0..WRITERS)
        .map(|_| Some(store.session().unwrap()))
        .collect();

    // Pre-plan every op so the journal exists even for ops the crash
    // swallows.
    let mut plans: Vec<Vec<Op>> = Vec::new();
    for w in 0..WRITERS {
        let mut r = Rng(seed ^ ((w as u64 + 1) * 0x1234_5678_9abc));
        let mut plan = Vec::new();
        for i in 0..PHASES * OPS_PER_PHASE {
            let key = r.below(KEYS_PER_WRITER as u64) as usize;
            let kind = if r.below(100) < 15 {
                OpKind::Remove
            } else {
                OpKind::Put
            };
            let value = match kind {
                OpKind::Put => value_bytes(w, i, &mut r),
                OpKind::Remove => Vec::new(),
            };
            plan.push(Op { key, kind, value });
        }
        plans.push(plan);
    }

    // A checkpoint whose manifest we may delete (mid-checkpoint crash),
    // or whose covered segments we partially delete (mid-truncation).
    let mut staged_ckpt = None;

    for phase in 0..PHASES {
        std::thread::scope(|scope| {
            for (w, session) in sessions.iter().enumerate() {
                let session = session.as_ref().unwrap();
                let plan = &plans[w];
                let force_every = 8 + (seed % 9) as usize;
                scope.spawn(move || {
                    let range = phase * OPS_PER_PHASE..(phase + 1) * OPS_PER_PHASE;
                    for (i, op) in plan[range.clone()]
                        .iter()
                        .enumerate()
                        .map(|(o, r)| (range.start + o, r))
                    {
                        let kb = key_bytes(w, op.key);
                        match op.kind {
                            OpKind::Put => {
                                session.put(&kb, &[(0, &op.value)]);
                            }
                            OpKind::Remove => {
                                session.remove(&kb);
                            }
                        }
                        if i % force_every == 0 {
                            assert!(session.force_log()); // per-session force: realistic I/O,
                                                          // but NOT an ack (see module docs)
                        }
                    }
                });
            }
        });
        for (w, j) in journals.iter_mut().enumerate() {
            j.0 = plans[w][..(phase + 1) * OPS_PER_PHASE].to_vec();
        }

        // Global ack barrier: every session forced after every op above
        // was issued. Only now do those ops count as acked.
        for s in sessions.iter().flatten() {
            assert!(s.force_log());
        }
        for j in journals.iter_mut() {
            j.1 = j.0.len();
        }

        // Mid-round durability event (between phases, writers quiet —
        // the background-checkpointer rounds cover racing cycles).
        if phase + 1 < PHASES {
            match event {
                1 => {
                    // Complete online cycle: checkpoint + truncate + prune.
                    store.checkpoint_now().unwrap();
                }
                2 => {
                    // Checkpoint that will "crash" before its manifest
                    // rename (we delete the manifest after the crash).
                    staged_ckpt = Some(write_checkpoint(&store, dir, 2).unwrap());
                }
                3 => {
                    // Checkpoint whose truncation will "crash" partway:
                    // manifest kept, a seeded subset of covered sealed
                    // segments deleted by hand below.
                    staged_ckpt = Some(write_checkpoint(&store, dir, 2).unwrap());
                }
                _ => {}
            }
        }
    }

    // ---- the crash ----
    store.stop_background_checkpointer();
    let mut crash_points = Vec::new();
    for s in sessions.iter_mut() {
        match crash_mode {
            0 => drop(s.take()), // clean shutdown: sentinel written, all durable
            _ => {
                if let Some(cp) = s.take().unwrap().simulate_crash() {
                    crash_points.push(cp);
                }
            }
        }
    }
    drop(store);

    if crash_mode >= 2 {
        // Machine crash: tear each active segment somewhere in its
        // unsynced tail — never below the durable watermark, which would
        // un-happen a completed sync.
        for cp in &crash_points {
            let Ok(data) = std::fs::read(&cp.active_segment) else {
                continue;
            };
            let lo = cp.durable_len.min(data.len() as u64);
            let cut = lo + rng.below(data.len() as u64 - lo + 1);
            std::fs::write(&cp.active_segment, &data[..cut as usize]).unwrap();
        }
    }
    if crash_mode == 3 {
        // Mid-rotation: one sealed segment's clean-close sentinel was in
        // the same unsynced window as the crash — strip it (data stays).
        let all: Vec<PathBuf> = session_segments(dir)
            .into_values()
            .flat_map(|segs| segs.into_iter().map(|(_, p)| p))
            .collect();
        let sealed: Vec<&PathBuf> = all
            .iter()
            .filter(|p| {
                let Ok(data) = std::fs::read(p) else {
                    return false;
                };
                let recs = decode_with_offsets(&data);
                matches!(recs.last(), Some((LogRecord::CleanClose { .. }, _)))
            })
            .collect();
        if !sealed.is_empty() {
            let victim = sealed[rng.below(sealed.len() as u64) as usize];
            let data = std::fs::read(victim).unwrap();
            let recs = decode_with_offsets(&data);
            let sentinel_start = if recs.len() >= 2 {
                recs[recs.len() - 2].1
            } else {
                0
            };
            std::fs::write(victim, &data[..sentinel_start]).unwrap();
        }
    }
    match (event, staged_ckpt) {
        (2, Some(meta)) => {
            // Mid-checkpoint crash: parts on disk, manifest never renamed.
            let ckpt = dir.join(format!("ckpt-{:020}", meta.start_ts));
            let _ = std::fs::remove_file(ckpt.join("MANIFEST"));
        }
        (3, Some(meta)) => {
            // Mid-truncation crash: delete a seeded subset of the sealed
            // segments the (complete, manifest-durable) checkpoint covers.
            let covered: Vec<PathBuf> = session_segments(dir)
                .into_values()
                .flat_map(|segs| {
                    let n = segs.len();
                    segs.into_iter()
                        .enumerate()
                        .filter(move |&(i, _)| i + 1 < n) // never the newest
                        .map(|(_, (_, p))| p)
                })
                .filter(|p| {
                    let Ok(data) = std::fs::read(p) else {
                        return false;
                    };
                    let recs = decode_with_offsets(&data);
                    matches!(recs.last(), Some((LogRecord::CleanClose { .. }, _)))
                        && recs
                            .iter()
                            .filter(|(r, _)| !r.is_marker())
                            .all(|(r, _)| r.timestamp() < meta.start_ts)
                })
                .collect();
            for p in covered {
                if rng.below(2) == 0 {
                    std::fs::remove_file(&p).unwrap();
                }
            }
        }
        _ => {}
    }

    RoundOutcome { journals }
}

fn decode_with_offsets(data: &[u8]) -> Vec<(LogRecord, usize)> {
    mtkv::log::decode_all(data)
}

/// Checks every key of every writer against its valid-state set.
fn assert_no_acked_loss(store: &Arc<Store>, outcome: &RoundOutcome, round: u64, tag: &str) {
    let session = store.session().unwrap();
    for (w, (ops, acked_len)) in outcome.journals.iter().enumerate() {
        for key in 0..KEYS_PER_WRITER {
            let kb = key_bytes(w, key);
            let recovered = session.get(&kb, Some(&[0])).map(|mut cols| cols.remove(0));
            let (values, absent_ok) = valid_states(ops, *acked_len, key);
            match &recovered {
                None => assert!(
                    absent_ok,
                    "round {round} [{tag}]: w{w} k{key}: key absent but an acked put \
                     was never followed by a possible remove; acked ops must survive"
                ),
                Some(v) => assert!(
                    values.contains(&v.as_slice()),
                    "round {round} [{tag}]: w{w} k{key}: recovered value {:?} matches no \
                     issued state at or past the ack barrier (torn or lost write)",
                    String::from_utf8_lossy(v)
                ),
            }
        }
    }
}

fn run_one(round: u64) {
    let dir = std::env::temp_dir().join(format!("mtkv-torture-{}-r{round}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let outcome = run_round(&dir, 0xdead_beef ^ (round * 0x9e37_79b9));

    let (store, report) = recover(&dir, &dir).unwrap();
    assert_no_acked_loss(&store, &outcome, round, "first recovery");
    let guard = masstree::pin();
    let keys1 = store.tree().count_keys(&guard);
    drop(guard);
    // The recovered store must be live: a fresh write round-trips.
    {
        let s = store.session().unwrap();
        s.put(b"post-recovery", &[(0, b"alive")]);
        assert!(s.force_log());
        assert_eq!(s.get(b"post-recovery", Some(&[0])).unwrap()[0], b"alive");
        s.remove(b"post-recovery");
    }
    drop(store);

    // Recovery must be repeatable: the sealing pass pinned the cutoff.
    let (store2, report2) = recover(&dir, &dir).unwrap();
    assert_no_acked_loss(&store2, &outcome, round, "second recovery");
    let guard = masstree::pin();
    let keys2 = store2.tree().count_keys(&guard);
    drop(guard);
    assert_eq!(
        keys1, keys2,
        "round {round}: repeated recovery diverged ({report:?} vs {report2:?})"
    );
    assert_eq!(
        report2.dropped_past_cutoff, 0,
        "round {round}: the first recovery's seal left past-cutoff records: {report2:?}"
    );
    drop(store2);
    let _ = std::fs::remove_dir_all(&dir);
}

// The rounds are split across a few #[test] fns so the harness runs them
// in parallel; together they cover ≥ 20 seeds (the acceptance bar), and
// every crash mode × durability event combination appears at least once.

#[test]
fn crash_torture_rounds_0_to_7() {
    for round in 0..8 {
        run_one(round);
    }
}

#[test]
fn crash_torture_rounds_8_to_15() {
    for round in 8..16 {
        run_one(round);
    }
}

#[test]
fn crash_torture_rounds_16_to_23() {
    for round in 16..ROUNDS {
        run_one(round);
    }
}

// ---- value-separation torture rounds ----
//
// Same acked-journal machinery, but the store runs with a low
// separation threshold and tiny value segments, so most payloads live
// in the cold tier and the WAL holds pointer records. Three extra
// crash families, selected per seed:
//
// - **Torn vseg tail**: the active value segment is cut at a seeded
//   byte at or past its durable watermark (never below — that would
//   un-happen a completed tier sync). Acked payloads sit below the
//   watermark because every ack path forces the tier *before* the WAL,
//   so only unacked values can tear.
// - **Pointer durable, payload not**: the final phase is left unacked;
//   a sleep lets the per-log 200 ms background force make WAL pointer
//   records durable (the background force deliberately does NOT force
//   the tier), then the vseg's whole unsynced tail is dropped. Recovery
//   meets durable pointers whose payloads never hit disk — it must
//   skip them (they were never acked) and count `values_unresolved`.
// - **Crash mid-GC**: heavy overwrites make segments mostly dead;
//   `checkpoint_now` relocates live values and condemns the sources,
//   and the crash lands before the *next* cycle would delete them —
//   old and new copies are both on disk, with the relocations in the
//   GC's own WAL chain. Version-gated replay must converge on one.
//
// Every round then asserts the same three properties as above: zero
// acked-write loss, no torn value surfacing, repeatable recovery.

const VALUE_ROUNDS: u64 = 12;

fn run_value_round(dir: &Path, seed: u64) -> RoundOutcome {
    let mut rng = Rng(seed);
    let vcrash = rng.below(3); // 0 torn tail, 1 ptr-durable/payload-not, 2 mid-GC
    let crash_mode = rng.below(2); // 0 process death, 1 machine death (WAL tails torn)

    let mut config = DurabilityConfig::tiny_segments(2048).with_value_separation(24, 4096);
    config.value_segment_bytes = 1024;
    config.gc_dead_fraction = 0.25;
    config.checkpoint_threads = 2;
    let store = Store::persistent_with(dir, config).unwrap();

    let mut journals: Vec<(Vec<Op>, usize)> = (0..WRITERS).map(|_| (Vec::new(), 0)).collect();
    let mut sessions: Vec<Option<mtkv::Session>> = (0..WRITERS)
        .map(|_| Some(store.session().unwrap()))
        .collect();

    let mut plans: Vec<Vec<Op>> = Vec::new();
    for w in 0..WRITERS {
        let mut r = Rng(seed ^ ((w as u64 + 1) * 0x1234_5678_9abc));
        let mut plan = Vec::new();
        for i in 0..PHASES * OPS_PER_PHASE {
            let key = r.below(KEYS_PER_WRITER as u64) as usize;
            let kind = if r.below(100) < 15 {
                OpKind::Remove
            } else {
                OpKind::Put
            };
            let value = match kind {
                OpKind::Put => value_bytes(w, i, &mut r),
                OpKind::Remove => Vec::new(),
            };
            plan.push(Op { key, kind, value });
        }
        plans.push(plan);
    }

    for phase in 0..PHASES {
        std::thread::scope(|scope| {
            for (w, session) in sessions.iter().enumerate() {
                let session = session.as_ref().unwrap();
                let plan = &plans[w];
                let force_every = 8 + (seed % 9) as usize;
                scope.spawn(move || {
                    let range = phase * OPS_PER_PHASE..(phase + 1) * OPS_PER_PHASE;
                    for (i, op) in plan[range.clone()]
                        .iter()
                        .enumerate()
                        .map(|(o, r)| (range.start + o, r))
                    {
                        let kb = key_bytes(w, op.key);
                        match op.kind {
                            OpKind::Put => {
                                session.put(&kb, &[(0, &op.value)]);
                            }
                            OpKind::Remove => {
                                session.remove(&kb);
                            }
                        }
                        if i % force_every == 0 {
                            assert!(session.force_log());
                        }
                    }
                });
            }
        });
        for (w, j) in journals.iter_mut().enumerate() {
            j.0 = plans[w][..(phase + 1) * OPS_PER_PHASE].to_vec();
        }

        // The final phase stays UNACKED: its ops are the torn-tail
        // candidates. Earlier phases end with the global ack barrier.
        if phase + 1 < PHASES {
            for s in sessions.iter().flatten() {
                assert!(s.force_log());
            }
            for j in journals.iter_mut() {
                j.1 = j.0.len();
            }
            // A full durability cycle between phases: with a quarter of
            // the round's overwrites behind it this relocates live
            // values out of mostly-dead segments and condemns them.
            store.checkpoint_now().unwrap();
        }
    }

    if vcrash == 1 {
        // Let the 200 ms background WAL force run: pointer records for
        // the unacked final phase become durable while the value tier's
        // tail stays unsynced.
        std::thread::sleep(std::time::Duration::from_millis(350));
    }

    let (vseg_active, vseg_durable) = store
        .value_tier()
        .expect("value separation is configured")
        .progress();

    // ---- the crash ----
    store.stop_background_checkpointer();
    let mut crash_points = Vec::new();
    for s in sessions.iter_mut() {
        if let Some(cp) = s.take().unwrap().simulate_crash() {
            crash_points.push(cp);
        }
    }
    drop(store);

    if crash_mode == 1 && vcrash != 1 {
        // Machine death: tear WAL tails in the unsynced window. For the
        // ptr-durable family the WAL is left whole — the background
        // force made it durable, that is the point of the scenario.
        for cp in &crash_points {
            let Ok(data) = std::fs::read(&cp.active_segment) else {
                continue;
            };
            let lo = cp.durable_len.min(data.len() as u64);
            let cut = lo + rng.below(data.len() as u64 - lo + 1);
            std::fs::write(&cp.active_segment, &data[..cut as usize]).unwrap();
        }
    }
    let vpath = mtkv::vtier::vseg_path(dir, vseg_active);
    match vcrash {
        0 => {
            // Torn vseg tail: cut at a seeded byte in [durable, len].
            if let Ok(data) = std::fs::read(&vpath) {
                let lo = vseg_durable.min(data.len() as u64);
                let cut = lo + rng.below(data.len() as u64 - lo + 1);
                std::fs::write(&vpath, &data[..cut as usize]).unwrap();
            }
        }
        1 => {
            // The whole unsynced payload tail is gone; durable WAL
            // pointer records past the watermark now dangle.
            if let Ok(data) = std::fs::read(&vpath) {
                let cut = vseg_durable.min(data.len() as u64);
                std::fs::write(&vpath, &data[..cut as usize]).unwrap();
            }
        }
        _ => {
            // Mid-GC: nothing to mutilate — the relocated copies and
            // their condemned-but-undeleted sources are both on disk
            // already; the torn WAL above may have eaten any suffix of
            // the relocation log.
        }
    }

    RoundOutcome { journals }
}

fn run_one_value(round: u64) {
    let dir = std::env::temp_dir().join(format!("mtkv-vtorture-{}-r{round}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let outcome = run_value_round(&dir, 0xc01d_f00d ^ (round * 0x9e37_79b9));

    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(
        store.value_tier().is_some(),
        "round {round}: recovery did not remount the value tier"
    );
    assert_no_acked_loss(&store, &outcome, round, "first recovery");
    let guard = masstree::pin();
    let keys1 = store.tree().count_keys(&guard);
    drop(guard);
    {
        let s = store.session().unwrap();
        s.put(b"post-recovery", &[(0, b"alive")]);
        assert!(s.force_log());
        assert_eq!(s.get(b"post-recovery", Some(&[0])).unwrap()[0], b"alive");
        s.remove(b"post-recovery");
    }
    drop(store);

    // Double recovery: vsegs are never modified by recovery and the
    // sealing pass pinned the WAL cutoff, so the second pass must
    // reproduce the first.
    let (store2, report2) = recover(&dir, &dir).unwrap();
    assert_no_acked_loss(&store2, &outcome, round, "second recovery");
    let guard = masstree::pin();
    let keys2 = store2.tree().count_keys(&guard);
    drop(guard);
    assert_eq!(
        keys1, keys2,
        "round {round}: repeated recovery diverged ({report:?} vs {report2:?})"
    );
    assert_eq!(
        report2.dropped_past_cutoff, 0,
        "round {round}: the first recovery's seal left past-cutoff records: {report2:?}"
    );
    drop(store2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn value_torture_rounds_0_to_5() {
    for round in 0..6 {
        run_one_value(round);
    }
}

#[test]
fn value_torture_rounds_6_to_11() {
    for round in 6..VALUE_ROUNDS {
        run_one_value(round);
    }
}
