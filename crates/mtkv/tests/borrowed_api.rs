//! Equivalence of the borrowed (`*_with`) session accessors and the
//! owning APIs they back: same hits, same columns, same ordering, over
//! multi-column values, column extension, overwrites and removes.

use mtkv::Store;

fn populated() -> std::sync::Arc<Store> {
    let store = Store::in_memory();
    let s = store.session().unwrap();
    for i in 0..500u32 {
        // Variable column counts: 1..=3 columns, with some columns empty.
        match i % 3 {
            0 => s.put(format!("bk{i:04}").as_bytes(), &[(0, &i.to_le_bytes()[..])]),
            1 => s.put(
                format!("bk{i:04}").as_bytes(),
                &[(0, b"x"), (1, &i.to_le_bytes()[..])],
            ),
            _ => s.put(
                format!("bk{i:04}").as_bytes(),
                &[(0, b""), (2, &i.to_le_bytes()[..])],
            ),
        };
    }
    s.remove(b"bk0100");
    s.put(b"bk0101", &[(1, b"overwritten")]);
    store
}

#[test]
fn get_with_matches_get() {
    let store = populated();
    let s = store.session().unwrap();
    for key in [&b"bk0000"[..], b"bk0001", b"bk0002", b"bk0100", b"missing"] {
        let owned = s.get(key, None);
        let borrowed = s.get_with(key, |hit| hit.map(|v| v.cols()));
        assert_eq!(owned, borrowed, "key {key:?}");
        // Column projection agrees too, including out-of-range columns.
        let owned = s.get(key, Some(&[2, 0]));
        let borrowed = s.get_with(key, |hit| {
            hit.map(|v| {
                [2usize, 0]
                    .iter()
                    .map(|&c| v.col(c).unwrap_or(&[]).to_vec())
                    .collect::<Vec<_>>()
            })
        });
        assert_eq!(owned, borrowed, "key {key:?}");
    }
}

#[test]
fn multi_get_with_matches_multi_get_and_get() {
    let store = populated();
    let s = store.session().unwrap();
    let keys: Vec<Vec<u8>> = (0..120u32)
        .map(|i| format!("bk{:04}", i * 5).into_bytes())
        .collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let owned = s.multi_get(&refs, None);
    let mut borrowed: Vec<Option<Vec<Vec<u8>>>> = Vec::new();
    s.multi_get_with(&refs, |i, hit| {
        assert_eq!(i, borrowed.len(), "visited in input order");
        borrowed.push(hit.map(|v| v.cols()));
    });
    assert_eq!(owned, borrowed);
    for (k, got) in refs.iter().zip(&borrowed) {
        assert_eq!(*got, s.get(k, None));
    }
}

#[test]
fn get_range_with_matches_get_range() {
    let store = populated();
    let s = store.session().unwrap();
    for (start, n) in [
        (&b"bk0000"[..], 40usize),
        (b"bk0099", 7),
        (b"zzz", 5),
        (b"", 1000),
    ] {
        let owned = s.get_range(start, n, None);
        let mut borrowed: Vec<(Vec<u8>, Vec<Vec<u8>>)> = Vec::new();
        let seen = s.get_range_with(start, n, |k, v| {
            borrowed.push((k.to_vec(), v.cols()));
        });
        assert_eq!(owned, borrowed, "start {start:?}");
        assert_eq!(seen, borrowed.len());
        assert!(seen <= n);
    }
    assert_eq!(s.get_range_with(b"", 0, |_, _| panic!("limit 0")), 0);
}
