//! Cold-tier equivalence: a store with value separation forced on hard
//! (threshold far below most values, a cache too small to hold the
//! working set, tiny segments so GC has material) must be
//! **observably identical** to the all-inline store under the same
//! workload — three concurrent writers with interleaved scans and
//! removes, a full crash/recover cycle mid-run, and a durability cycle
//! (checkpoint + value GC) between phases. Final states, point reads,
//! and scan orderings must match row for row and byte for byte.

use std::sync::Arc;

use mtkv::{recover_with, DurabilityConfig, Store};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const WRITERS: usize = 3;
const KEYS_PER_WRITER: usize = 24;
const PHASES: usize = 2;
const OPS_PER_PHASE: usize = 150;

#[derive(Clone)]
enum Op {
    Put(usize, Vec<u8>),
    Remove(usize),
    Scan(usize),
}

/// Writer `w` owns keys `w*KEYS..(w+1)*KEYS`: disjoint spaces make the
/// final state deterministic under any interleaving, so the two stores
/// are comparable even though the writers race.
fn key_bytes(writer: usize, key: usize) -> Vec<u8> {
    format!("eq-{:04}", writer * KEYS_PER_WRITER + key).into_bytes()
}

fn plan_ops(seed: u64, writer: usize) -> Vec<Op> {
    let mut rng = Rng(seed ^ ((writer as u64 + 1) * 0xfee1_d00d));
    let mut ops = Vec::new();
    for i in 0..PHASES * OPS_PER_PHASE {
        let key = rng.below(KEYS_PER_WRITER as u64) as usize;
        match rng.below(100) {
            0..=19 => ops.push(Op::Remove(key)),
            20..=29 => ops.push(Op::Scan(key)),
            _ => {
                // Values straddle the separation threshold (24): some
                // stay inline in the cold store too, most go indirect.
                let mut v = format!("w{writer}o{i:05}:").into_bytes();
                let len = 8 + (rng.below(112) as usize);
                while v.len() < len {
                    v.push(b'a' + ((rng.next() % 26) as u8));
                }
                ops.push(Op::Put(key, v));
            }
        }
    }
    ops
}

fn run_phase(store: &Arc<Store>, plans: &[Vec<Op>], phase: usize) {
    std::thread::scope(|scope| {
        for (w, plan) in plans.iter().enumerate() {
            let store = Arc::clone(store);
            scope.spawn(move || {
                let session = store.session().unwrap();
                for op in &plan[phase * OPS_PER_PHASE..(phase + 1) * OPS_PER_PHASE] {
                    match op {
                        Op::Put(k, v) => {
                            session.put(&key_bytes(w, *k), &[(0, v)]);
                        }
                        Op::Remove(k) => {
                            session.remove(&key_bytes(w, *k));
                        }
                        Op::Scan(k) => {
                            // Exercised for effect (cache pressure,
                            // cursor reuse), not compared mid-race.
                            session.get_range(&key_bytes(w, *k), 8, None);
                        }
                    }
                }
                assert!(session.force_log());
            });
        }
    });
}

fn snapshot(store: &Arc<Store>) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
    let session = store.session().unwrap();
    session.get_range(b"", usize::MAX, None)
}

/// Streams the whole store through a resumable cursor in small pages —
/// the ordering-sensitive path (validated-anchor resume).
fn paged_snapshot(store: &Arc<Store>) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
    let session = store.session().unwrap();
    let mut cursor = session.scan_cursor(b"");
    let mut out = Vec::new();
    loop {
        let n = session.get_range_resumed(&mut cursor, 7, |k, v| {
            out.push((k.to_vec(), v.cols()));
        });
        if n == 0 {
            break;
        }
    }
    out
}

fn cold_config() -> DurabilityConfig {
    let mut config = DurabilityConfig::tiny_segments(4096).with_value_separation(24, 512);
    config.value_segment_bytes = 2048;
    config.gc_dead_fraction = 0.3;
    config
}

#[test]
fn cold_tier_equals_all_inline_through_crash_and_gc() {
    let seed: u64 = 0x0e9_1bad_5eed;
    let base = std::env::temp_dir().join(format!("mtkv-coldeq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let inline_dir = base.join("inline");
    let cold_dir = base.join("cold");
    std::fs::create_dir_all(&inline_dir).unwrap();
    std::fs::create_dir_all(&cold_dir).unwrap();

    let plans: Vec<Vec<Op>> = (0..WRITERS).map(|w| plan_ops(seed, w)).collect();

    let mut inline =
        Store::persistent_with(&inline_dir, DurabilityConfig::tiny_segments(4096)).unwrap();
    let mut cold = Store::persistent_with(&cold_dir, cold_config()).unwrap();
    assert!(cold.value_tier().is_some());

    for phase in 0..PHASES {
        run_phase(&inline, &plans, phase);
        run_phase(&cold, &plans, phase);

        // A durability cycle on both: on the cold store this relocates
        // live values out of mostly-dead segments (GC) and proves the
        // pointer records survive the checkpoint round-trip.
        inline.checkpoint_now().unwrap();
        cold.checkpoint_now().unwrap();

        if phase + 1 < PHASES {
            // Mid-run crash/recover on both directories; the cold store
            // keeps its separation config so phase 2 stays indirect.
            drop(inline);
            drop(cold);
            let (i2, _) = recover_with(
                &inline_dir,
                &inline_dir,
                DurabilityConfig::tiny_segments(4096),
            )
            .unwrap();
            let (c2, _) = recover_with(&cold_dir, &cold_dir, cold_config()).unwrap();
            inline = i2;
            cold = c2;
        }
    }

    // Point reads: byte-identical, and the cold store's checked read
    // path agrees with the plain one.
    {
        let si = inline.session().unwrap();
        let sc = cold.session().unwrap();
        for w in 0..WRITERS {
            for k in 0..KEYS_PER_WRITER {
                let kb = key_bytes(w, k);
                let a = si.get(&kb, None);
                let b = sc.get(&kb, None);
                assert_eq!(
                    a,
                    b,
                    "point read diverged on {:?}",
                    String::from_utf8_lossy(&kb)
                );
                let checked = sc.get_checked(&kb, None).expect("forced values resolve");
                assert_eq!(b, checked, "checked read diverged on cold store");
            }
        }
    }

    // Full scans and paged cursor scans: identical rows in identical
    // order on both stores, and internally consistent per store.
    let flat_i = snapshot(&inline);
    let flat_c = snapshot(&cold);
    assert_eq!(flat_i, flat_c, "full scan diverged");
    let paged_i = paged_snapshot(&inline);
    let paged_c = paged_snapshot(&cold);
    assert_eq!(paged_i, flat_i, "inline paged scan diverged from flat scan");
    assert_eq!(paged_c, flat_c, "cold paged scan diverged from flat scan");

    // The cold store actually exercised the tier: indirect reads
    // happened, live bytes sit in segments, and the scans above went
    // through the leaf-batched readahead engine (the 512-byte cache
    // guarantees misses, so batches were clustered segment reads).
    let stats = cold.value_tier_stats();
    assert!(
        stats.live_segment_bytes > 0,
        "no live separated bytes: {stats:?}"
    );
    assert!(
        stats.readahead_batches > 0,
        "scans never batch-resolved cold pointers: {stats:?}"
    );

    drop(inline);
    drop(cold);
    let _ = std::fs::remove_dir_all(&base);
}

/// Readahead-specific equivalence: leaf-batched scans over a cold store
/// whose cache cannot hold the working set (every chunk goes through
/// clustered segment reads) must agree row for row and byte for byte
/// with point gets — through value-GC relocation, a crash/recover
/// cycle, and while a concurrent writer churns half the key space. The
/// per-row hazard this pins down is window carving: a clustered read
/// decodes many payloads out of one buffer by offset arithmetic, so a
/// mistake would splice one row's bytes into another — here every value
/// embeds its own key, and every emitted row is checked against it.
#[test]
fn readahead_scans_match_point_gets_through_gc_and_recovery() {
    let base = std::env::temp_dir().join(format!("mtkv-coldra-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    let nkeys: usize = 200;
    let key = |i: usize| format!("ra-{i:04}").into_bytes();
    let val = |i: usize, gen: usize| {
        let mut v = format!("ra-{i:04}#g{gen}:").into_bytes();
        while v.len() < 40 + (i % 80) {
            v.push(b'v');
        }
        v
    };

    let store = Store::persistent_with(&base, cold_config()).unwrap();
    {
        let session = store.session().unwrap();
        for i in 0..nkeys {
            session.put(&key(i), &[(0, &val(i, 0))]);
        }
        // Overwrites condemn the first generation's payloads: GC
        // material, so the checkpoint below relocates live values.
        for i in (0..nkeys).step_by(2) {
            session.put(&key(i), &[(0, &val(i, 1))]);
        }
        assert!(session.force_log());
    }
    store.checkpoint_now().unwrap();

    // Crash/recover: pointer records now name recovered, possibly
    // GC-relocated segments.
    drop(store);
    let (store, _) = recover_with(&base, &base, cold_config()).unwrap();

    // Phase 1 (quiescent): full readahead scan == point gets.
    {
        let session = store.session().unwrap();
        let mut rows = Vec::new();
        session.get_range_with(b"ra-", nkeys, |k, v| {
            rows.push((k.to_vec(), v.cols()));
        });
        assert_eq!(rows.len(), nkeys, "scan dropped rows");
        for (k, cols) in &rows {
            let point = session.get(k, None).expect("scanned key point-reads");
            assert_eq!(cols, &point, "scan/point divergence on {k:?}");
            assert!(
                cols[0].starts_with(&k[..]),
                "row carved from the wrong window offset: key {:?} got {:?}",
                String::from_utf8_lossy(k),
                String::from_utf8_lossy(&cols[0][..12.min(cols[0].len())])
            );
        }
    }

    // Phase 2 (churn): a writer rewrites odd keys (new generations →
    // fresh segments + condemnations) and checkpoints mid-way (GC
    // relocation races the scans) while a scanner streams the range in
    // small readahead chunks. Every emitted row must be self-consistent
    // — its value names its key — under any interleaving.
    std::thread::scope(|scope| {
        let writer_store = Arc::clone(&store);
        let writer = scope.spawn(move || {
            let session = writer_store.session().unwrap();
            for gen in 2..6 {
                for i in (1..nkeys).step_by(2) {
                    session.put(&key(i), &[(0, &val(i, gen))]);
                }
                if gen == 3 {
                    writer_store.checkpoint_now().unwrap();
                }
            }
            assert!(session.force_log());
        });
        let session = store.session().unwrap();
        for _ in 0..40 {
            let mut cursor = session.scan_cursor(b"ra-");
            loop {
                let n = session.get_range_resumed(&mut cursor, 9, |k, v| {
                    let col = v.col(0).expect("column 0 present");
                    assert!(
                        col.starts_with(k),
                        "torn/crossed row under churn: key {:?} got {:?}",
                        String::from_utf8_lossy(k),
                        String::from_utf8_lossy(&col[..12.min(col.len())])
                    );
                });
                if n == 0 {
                    break;
                }
            }
        }
        writer.join().unwrap();
    });

    // Phase 3: settle, then re-verify full equivalence at the final
    // state (generation 5 on odd keys, 1 on even).
    store.checkpoint_now().unwrap();
    {
        let session = store.session().unwrap();
        for i in 0..nkeys {
            let expect = if i % 2 == 1 { val(i, 5) } else { val(i, 1) };
            let got = session.get(&key(i), None).expect("key survives churn");
            assert_eq!(got[0], expect, "final point state wrong at {i}");
        }
        let mut rows = Vec::new();
        session.get_range_with(b"ra-", nkeys, |k, v| {
            rows.push((k.to_vec(), v.cols()));
        });
        assert_eq!(rows.len(), nkeys);
        for (i, (k, cols)) in rows.iter().enumerate() {
            assert_eq!(k, &key(i), "scan order broke");
            let expect = if i % 2 == 1 { val(i, 5) } else { val(i, 1) };
            assert_eq!(cols[0], expect, "final scan state wrong at {i}");
        }
    }

    let stats = store.value_tier_stats();
    assert!(
        stats.readahead_batches > 0 && stats.clustered_reads > 0,
        "the scans above never exercised clustered resolution: {stats:?}"
    );

    drop(store);
    let _ = std::fs::remove_dir_all(&base);
}

/// Store-level miss storm: many sessions hammering one evicted cold
/// key perform exactly **one** segment read per eviction — the first
/// resolver leads the fill, everyone else either joins it in flight
/// (`shared_misses`) or hits the cache it populated. The counters are
/// exhaustive: across all rounds every non-leading read lands in
/// exactly one of the two buckets.
#[test]
fn cold_miss_storm_is_one_segment_read_per_eviction() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 16;

    let base = std::env::temp_dir().join(format!("mtkv-coldstorm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    let mut config = DurabilityConfig::tiny_segments(1 << 20).with_value_separation(64, 1 << 20);
    config.value_segment_bytes = 1 << 20;
    let store = Store::persistent_with(&base, config).unwrap();
    let hot = vec![0xabu8; 4096];
    {
        let session = store.session().unwrap();
        session.put(b"storm-key", &[(0, &hot)]);
        assert!(session.force_log());
    }
    let tier = Arc::clone(store.value_tier().expect("separation on"));
    let base_stats = store.value_tier_stats();

    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let store = Arc::clone(&store);
            let tier = Arc::clone(&tier);
            let barrier = &barrier;
            let hot = &hot;
            handles.push(scope.spawn(move || {
                let session = store.session().unwrap();
                for _ in 0..ROUNDS {
                    // Every thread purges; extra purges before the
                    // round's first resolve are idempotent, and the
                    // barrier keeps purges out of the read window.
                    tier.purge_cache();
                    barrier.wait();
                    let got = session.get(b"storm-key", None).expect("present");
                    assert_eq!(got[0], *hot, "storm read returned wrong bytes");
                    barrier.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });

    let s = store.value_tier_stats();
    let reads = s.segment_reads - base_stats.segment_reads;
    let hits = s.value_cache_hits - base_stats.value_cache_hits;
    let shared = s.shared_misses - base_stats.shared_misses;
    // One leader per round reads the segment; the other THREADS-1
    // readers split exhaustively between joining the in-flight fill
    // and hitting the freshly filled cache.
    assert_eq!(reads, ROUNDS as u64, "stampede: >1 segment read/round");
    assert_eq!(
        hits + shared,
        ((THREADS - 1) * ROUNDS) as u64,
        "non-leader reads unaccounted: hits={hits} shared={shared}"
    );

    drop(store);
    let _ = std::fs::remove_dir_all(&base);
}
