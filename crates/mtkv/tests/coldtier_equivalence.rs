//! Cold-tier equivalence: a store with value separation forced on hard
//! (threshold far below most values, a cache too small to hold the
//! working set, tiny segments so GC has material) must be
//! **observably identical** to the all-inline store under the same
//! workload — three concurrent writers with interleaved scans and
//! removes, a full crash/recover cycle mid-run, and a durability cycle
//! (checkpoint + value GC) between phases. Final states, point reads,
//! and scan orderings must match row for row and byte for byte.

use std::sync::Arc;

use mtkv::{recover_with, DurabilityConfig, Store};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const WRITERS: usize = 3;
const KEYS_PER_WRITER: usize = 24;
const PHASES: usize = 2;
const OPS_PER_PHASE: usize = 150;

#[derive(Clone)]
enum Op {
    Put(usize, Vec<u8>),
    Remove(usize),
    Scan(usize),
}

/// Writer `w` owns keys `w*KEYS..(w+1)*KEYS`: disjoint spaces make the
/// final state deterministic under any interleaving, so the two stores
/// are comparable even though the writers race.
fn key_bytes(writer: usize, key: usize) -> Vec<u8> {
    format!("eq-{:04}", writer * KEYS_PER_WRITER + key).into_bytes()
}

fn plan_ops(seed: u64, writer: usize) -> Vec<Op> {
    let mut rng = Rng(seed ^ ((writer as u64 + 1) * 0xfee1_d00d));
    let mut ops = Vec::new();
    for i in 0..PHASES * OPS_PER_PHASE {
        let key = rng.below(KEYS_PER_WRITER as u64) as usize;
        match rng.below(100) {
            0..=19 => ops.push(Op::Remove(key)),
            20..=29 => ops.push(Op::Scan(key)),
            _ => {
                // Values straddle the separation threshold (24): some
                // stay inline in the cold store too, most go indirect.
                let mut v = format!("w{writer}o{i:05}:").into_bytes();
                let len = 8 + (rng.below(112) as usize);
                while v.len() < len {
                    v.push(b'a' + ((rng.next() % 26) as u8));
                }
                ops.push(Op::Put(key, v));
            }
        }
    }
    ops
}

fn run_phase(store: &Arc<Store>, plans: &[Vec<Op>], phase: usize) {
    std::thread::scope(|scope| {
        for (w, plan) in plans.iter().enumerate() {
            let store = Arc::clone(store);
            scope.spawn(move || {
                let session = store.session().unwrap();
                for op in &plan[phase * OPS_PER_PHASE..(phase + 1) * OPS_PER_PHASE] {
                    match op {
                        Op::Put(k, v) => {
                            session.put(&key_bytes(w, *k), &[(0, v)]);
                        }
                        Op::Remove(k) => {
                            session.remove(&key_bytes(w, *k));
                        }
                        Op::Scan(k) => {
                            // Exercised for effect (cache pressure,
                            // cursor reuse), not compared mid-race.
                            session.get_range(&key_bytes(w, *k), 8, None);
                        }
                    }
                }
                assert!(session.force_log());
            });
        }
    });
}

fn snapshot(store: &Arc<Store>) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
    let session = store.session().unwrap();
    session.get_range(b"", usize::MAX, None)
}

/// Streams the whole store through a resumable cursor in small pages —
/// the ordering-sensitive path (validated-anchor resume).
fn paged_snapshot(store: &Arc<Store>) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
    let session = store.session().unwrap();
    let mut cursor = session.scan_cursor(b"");
    let mut out = Vec::new();
    loop {
        let n = session.get_range_resumed(&mut cursor, 7, |k, v| {
            out.push((k.to_vec(), v.cols()));
        });
        if n == 0 {
            break;
        }
    }
    out
}

fn cold_config() -> DurabilityConfig {
    let mut config = DurabilityConfig::tiny_segments(4096).with_value_separation(24, 512);
    config.value_segment_bytes = 2048;
    config.gc_dead_fraction = 0.3;
    config
}

#[test]
fn cold_tier_equals_all_inline_through_crash_and_gc() {
    let seed: u64 = 0x0e9_1bad_5eed;
    let base = std::env::temp_dir().join(format!("mtkv-coldeq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let inline_dir = base.join("inline");
    let cold_dir = base.join("cold");
    std::fs::create_dir_all(&inline_dir).unwrap();
    std::fs::create_dir_all(&cold_dir).unwrap();

    let plans: Vec<Vec<Op>> = (0..WRITERS).map(|w| plan_ops(seed, w)).collect();

    let mut inline =
        Store::persistent_with(&inline_dir, DurabilityConfig::tiny_segments(4096)).unwrap();
    let mut cold = Store::persistent_with(&cold_dir, cold_config()).unwrap();
    assert!(cold.value_tier().is_some());

    for phase in 0..PHASES {
        run_phase(&inline, &plans, phase);
        run_phase(&cold, &plans, phase);

        // A durability cycle on both: on the cold store this relocates
        // live values out of mostly-dead segments (GC) and proves the
        // pointer records survive the checkpoint round-trip.
        inline.checkpoint_now().unwrap();
        cold.checkpoint_now().unwrap();

        if phase + 1 < PHASES {
            // Mid-run crash/recover on both directories; the cold store
            // keeps its separation config so phase 2 stays indirect.
            drop(inline);
            drop(cold);
            let (i2, _) = recover_with(
                &inline_dir,
                &inline_dir,
                DurabilityConfig::tiny_segments(4096),
            )
            .unwrap();
            let (c2, _) = recover_with(&cold_dir, &cold_dir, cold_config()).unwrap();
            inline = i2;
            cold = c2;
        }
    }

    // Point reads: byte-identical, and the cold store's checked read
    // path agrees with the plain one.
    {
        let si = inline.session().unwrap();
        let sc = cold.session().unwrap();
        for w in 0..WRITERS {
            for k in 0..KEYS_PER_WRITER {
                let kb = key_bytes(w, k);
                let a = si.get(&kb, None);
                let b = sc.get(&kb, None);
                assert_eq!(
                    a,
                    b,
                    "point read diverged on {:?}",
                    String::from_utf8_lossy(&kb)
                );
                let checked = sc.get_checked(&kb, None).expect("forced values resolve");
                assert_eq!(b, checked, "checked read diverged on cold store");
            }
        }
    }

    // Full scans and paged cursor scans: identical rows in identical
    // order on both stores, and internally consistent per store.
    let flat_i = snapshot(&inline);
    let flat_c = snapshot(&cold);
    assert_eq!(flat_i, flat_c, "full scan diverged");
    let paged_i = paged_snapshot(&inline);
    let paged_c = paged_snapshot(&cold);
    assert_eq!(paged_i, flat_i, "inline paged scan diverged from flat scan");
    assert_eq!(paged_c, flat_c, "cold paged scan diverged from flat scan");

    // The cold store actually exercised the tier: indirect reads
    // happened and live bytes sit in segments.
    let stats = cold.value_tier_stats();
    assert!(
        stats.live_segment_bytes > 0,
        "no live separated bytes: {stats:?}"
    );

    drop(inline);
    drop(cold);
    let _ = std::fs::remove_dir_all(&base);
}
