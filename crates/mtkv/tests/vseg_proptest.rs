//! Deterministic property test for the value-segment read path: for a
//! populated cold tier, truncating a vseg at **every** byte offset and
//! flipping **every** byte must yield a typed [`ValueError`] for every
//! pointer whose payload the mutation touches — never wrong bytes, and
//! never a torn prefix surfacing as a value. Recovery of the mutilated
//! directory must still mount and serve everything it installs
//! byte-for-byte correctly.
//!
//! (Deterministic by construction: seeded splitmix64, no `proptest`
//! crate — same discipline as `log_proptest.rs`.)

use std::path::{Path, PathBuf};

use mtkv::vtier::{encode_payload, vseg_ids, vseg_path, SegReader};
use mtkv::{DurabilityConfig, Store, ValuePtr};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One separated value's ground truth: key, the pointer the tree holds,
/// the column bytes, and the exact payload frame as appended.
struct Truth {
    key: Vec<u8>,
    ptr: ValuePtr,
    col: Vec<u8>,
    payload: Vec<u8>,
}

/// Populates `dir` with `n` separated values (threshold 8, every value
/// larger), forces everything durable, shuts down cleanly, and returns
/// the ground truth plus the path of the vseg holding the payloads.
fn build_tier(dir: &Path, seed: u64, n: usize) -> (Vec<Truth>, PathBuf) {
    let mut rng = Rng(seed);
    let config = DurabilityConfig::default().with_value_separation(8, 4096);
    let store = Store::persistent_with(dir, config).unwrap();
    let session = store.session().unwrap();
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        let key = format!("k{i:04}").into_bytes();
        let mut col = format!("v{i:04}:").into_bytes();
        let len = 16 + (rng.below(96) as usize);
        while col.len() < len {
            col.push(b'a' + ((rng.next() % 26) as u8));
        }
        session.put(&key, &[(0, &col)]);
        values.push((key, col));
    }
    assert!(session.force_log());
    let mut truths = Vec::with_capacity(n);
    {
        let guard = masstree::pin();
        for (key, col) in values {
            let ptr = store
                .tree()
                .get(&key, &guard)
                .and_then(|v| v.ptr())
                .expect("every value exceeds the threshold");
            let mut payload = Vec::new();
            encode_payload(&[&col], &mut payload);
            assert_eq!(payload.len() as u64, u64::from(ptr.len));
            truths.push(Truth {
                key,
                ptr,
                col,
                payload,
            });
        }
    }
    drop(session);
    drop(store);
    let segs = vseg_ids(dir);
    assert_eq!(segs.len(), 1, "one active segment holds every payload");
    (truths, vseg_path(dir, segs[0]))
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtkv-vsegprop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn every_byte_truncation_yields_typed_errors_never_wrong_bytes() {
    let dir = fresh_dir("trunc");
    let (truths, vpath) = build_tier(&dir, 0x5eed_0001, 48);
    let original = std::fs::read(&vpath).unwrap();
    for cut in 0..=original.len() {
        std::fs::write(&vpath, &original[..cut]).unwrap();
        let reader = SegReader::new(&dir);
        for t in &truths {
            let intact = t.ptr.off + u64::from(t.ptr.len) <= cut as u64;
            match reader.read(t.ptr) {
                Ok(bytes) => {
                    assert!(intact, "cut {cut}: a pointer past the cut produced bytes");
                    assert_eq!(
                        bytes, t.payload,
                        "cut {cut}: an intact frame must read back exactly"
                    );
                }
                Err(e) => assert!(!intact, "cut {cut}: intact frame refused with {e:?}"),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corruption_anywhere_yields_checksum_errors_never_wrong_bytes() {
    let dir = fresh_dir("flip");
    let (truths, vpath) = build_tier(&dir, 0x5eed_0002, 32);
    let original = std::fs::read(&vpath).unwrap();
    for pos in 0..original.len() {
        let mut mutated = original.clone();
        mutated[pos] ^= 0x5a;
        std::fs::write(&vpath, &mutated).unwrap();
        let reader = SegReader::new(&dir);
        for t in &truths {
            let hit = (t.ptr.off..t.ptr.off + u64::from(t.ptr.len)).contains(&(pos as u64));
            match reader.read(t.ptr) {
                Ok(bytes) => {
                    assert!(!hit, "pos {pos}: a corrupted frame produced bytes");
                    assert_eq!(bytes, t.payload, "pos {pos}: untouched frame changed");
                }
                Err(e) => {
                    assert!(hit, "pos {pos}: untouched frame refused with {e:?}");
                    assert_eq!(
                        e,
                        mtkv::ValueError::ChecksumMismatch,
                        "pos {pos}: a present-but-corrupt payload is a checksum error"
                    );
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mutilated_vseg_recovery_still_mounts_and_serves_checked_reads() {
    // Sampled offsets through the full stack: recovery must mount the
    // directory whatever we did to the vseg, and `get_checked` on the
    // recovered store returns the exact bytes, a typed error, or
    // (when replay verified and skipped the record) absence — never
    // wrong bytes.
    let dir = fresh_dir("recover");
    let (truths, vpath) = build_tier(&dir, 0x5eed_0003, 24);
    let original = std::fs::read(&vpath).unwrap();
    let checks = |label: &str| {
        let (store, _report) = mtkv::recover(&dir, &dir).unwrap();
        store.stop_background_checkpointer();
        let session = store.session().unwrap();
        for t in &truths {
            match session.get_checked(&t.key, None) {
                Ok(Some(cols)) => assert_eq!(
                    cols,
                    vec![t.col.clone()],
                    "{label}: recovered value for {:?} has wrong bytes",
                    String::from_utf8_lossy(&t.key)
                ),
                Ok(None) | Err(_) => {} // refused or skipped: both safe
            }
        }
    };
    for cut in (0..=original.len()).step_by(37) {
        std::fs::write(&vpath, &original[..cut]).unwrap();
        checks("truncation");
        std::fs::write(&vpath, &original).unwrap();
    }
    for pos in (0..original.len()).step_by(41) {
        let mut mutated = original.clone();
        mutated[pos] ^= 0x5a;
        std::fs::write(&vpath, &mutated).unwrap();
        checks("corruption");
        std::fs::write(&vpath, &original).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
