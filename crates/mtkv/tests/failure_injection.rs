//! Failure injection for the persistence layer: torn log tails, corrupted
//! records, missing checkpoint parts, and incomplete checkpoints. §5's
//! recovery must degrade gracefully — never panic, never resurrect
//! corrupt data, always keep the durable prefix.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use mtkv::{recover, write_checkpoint, Store};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mtkv-fi-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn build_store(dir: &Path, keys: u32) {
    let store = Store::persistent(dir).unwrap();
    let s = store.session().unwrap();
    for i in 0..keys {
        s.put(
            format!("key{i:06}").as_bytes(),
            &[(0, &i.to_le_bytes()[..])],
        );
    }
    s.force_log();
}

fn log_paths(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("log-"))
        })
        .collect();
    v.sort();
    v
}

#[test]
fn torn_log_tail_keeps_prefix() {
    let dir = tmpdir("torn");
    build_store(&dir, 2_000);
    // Tear the log mid-record: chop off the last 5 bytes.
    let log = &log_paths(&dir)[0];
    let data = std::fs::read(log).unwrap();
    std::fs::write(log, &data[..data.len() - 5]).unwrap();
    let (store, report) = recover(&dir, &dir).unwrap();
    // The prefix survives; only the torn record (and anything after it)
    // is lost.
    assert!(report.replayed >= 1_990, "{report:?}");
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"key000000", Some(&[0])).unwrap()[0],
        0u32.to_le_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_mid_log_record_truncates_from_there() {
    let dir = tmpdir("corrupt");
    build_store(&dir, 2_000);
    let log = &log_paths(&dir)[0];
    let mut data = std::fs::read(log).unwrap();
    // Flip a byte roughly in the middle: CRC fails there; recovery keeps
    // the prefix before the corruption.
    let mid = data.len() / 2;
    data[mid] ^= 0xff;
    std::fs::write(log, &data).unwrap();
    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(report.replayed > 100, "prefix survived: {report:?}");
    assert!(report.replayed < 2_000, "corrupt tail dropped: {report:?}");
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"key000000", Some(&[0])).unwrap()[0],
        0u32.to_le_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_log_recovers_empty() {
    let dir = tmpdir("garbage");
    std::fs::write(dir.join("log-0"), b"this is not a log at all").unwrap();
    let (store, report) = recover(&dir, &dir).unwrap();
    assert_eq!(report.replayed, 0);
    let guard = masstree::pin();
    assert_eq!(store.tree().count_keys(&guard), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_without_manifest_is_ignored() {
    let dir = tmpdir("nomanifest");
    build_store(&dir, 500);
    {
        let store = Store::persistent(&dir).unwrap();
        // Simulate a crash mid-checkpoint: parts exist, no MANIFEST.
        let meta = write_checkpoint(&store, &dir, 2).unwrap();
        let ckpts: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with("ckpt-"))
            .collect();
        assert_eq!(ckpts.len(), 1);
        std::fs::remove_file(ckpts[0].path().join("MANIFEST")).unwrap();
        let _ = meta;
    }
    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(!report.used_checkpoint, "incomplete checkpoint ignored");
    // Logs alone still reconstruct everything.
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"key000499", Some(&[0])).unwrap()[0],
        499u32.to_le_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_checkpoint_part_falls_back_to_logs() {
    let dir = tmpdir("truncpart");
    // One continuously-live store: build, checkpoint, force (so the log
    // cutoff covers the checkpoint), then "crash".
    {
        let store = Store::persistent(&dir).unwrap();
        let s = store.session().unwrap();
        for i in 0..2_000u32 {
            s.put(
                format!("key{i:06}").as_bytes(),
                &[(0, &i.to_le_bytes()[..])],
            );
        }
        s.force_log();
        let _ = write_checkpoint(&store, &dir, 2).unwrap();
        s.force_log();
    }
    // Damage one part file's tail (lost page-cache data the manifest
    // rename survived — rare but possible without fsync barriers).
    let ckpt = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .find(|e| e.file_name().to_string_lossy().starts_with("ckpt-"))
        .unwrap()
        .path();
    let part = ckpt.join("part-0001");
    let data = std::fs::read(&part).unwrap();
    assert!(data.len() > 64, "part must hold data for this test");
    std::fs::write(&part, &data[..data.len() - 40]).unwrap();
    let (store, report) = recover(&dir, &dir).unwrap();
    // Row count disagrees with the manifest: the checkpoint is abandoned
    // and the logs rebuild everything.
    assert!(!report.used_checkpoint, "{report:?}");
    assert!(report.replayed >= 2_000, "{report:?}");
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"key000000", Some(&[0])).unwrap()[0],
        0u32.to_le_bytes()
    );
    assert_eq!(
        s.get(b"key001999", Some(&[0])).unwrap()[0],
        1999u32.to_le_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_directory_recovers_to_empty_store() {
    let dir = tmpdir("empty");
    let (store, report) = recover(&dir, &dir).unwrap();
    assert_eq!(report.replayed, 0);
    assert!(!report.used_checkpoint);
    // And the recovered store is usable + persistent.
    let s = store.session().unwrap();
    s.put(b"fresh", &[(0, b"start")]);
    s.force_log();
    assert_eq!(s.get(b"fresh", Some(&[0])).unwrap()[0], b"start");
    drop(s);
    let (store2, _) = recover(&dir, &dir).unwrap();
    let s2 = store2.session().unwrap();
    assert_eq!(s2.get(b"fresh", Some(&[0])).unwrap()[0], b"start");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn appended_junk_after_valid_records() {
    let dir = tmpdir("junk");
    build_store(&dir, 1_000);
    let log = &log_paths(&dir)[0];
    let mut f = OpenOptions::new().append(true).open(log).unwrap();
    f.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02]).unwrap();
    drop(f);
    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(report.replayed >= 1_000);
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"key000999", Some(&[0])).unwrap()[0],
        999u32.to_le_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
