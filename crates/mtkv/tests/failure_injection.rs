//! Failure injection for the persistence layer: torn log tails, corrupted
//! records, missing checkpoint parts, incomplete checkpoints, and —
//! segment-era cases — crashes mid-rotation and mid-truncation. §5's
//! recovery must degrade gracefully — never panic, never resurrect
//! corrupt data, always keep the durable prefix.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use mtkv::log::decode_all;
use mtkv::{recover, write_checkpoint, DurabilityConfig, LogRecord, Store};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mtkv-fi-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn build_store(dir: &Path, keys: u32) {
    let store = Store::persistent(dir).unwrap();
    let s = store.session().unwrap();
    for i in 0..keys {
        s.put(
            format!("key{i:06}").as_bytes(),
            &[(0, &i.to_le_bytes()[..])],
        );
    }
    assert!(s.force_log());
}

fn log_paths(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("log-"))
        })
        .collect();
    v.sort();
    v
}

#[test]
fn torn_log_tail_keeps_prefix() {
    let dir = tmpdir("torn");
    build_store(&dir, 2_000);
    // Tear the log mid-record: chop off the last 5 bytes.
    let log = &log_paths(&dir)[0];
    let data = std::fs::read(log).unwrap();
    std::fs::write(log, &data[..data.len() - 5]).unwrap();
    let (store, report) = recover(&dir, &dir).unwrap();
    // The prefix survives; only the torn record (and anything after it)
    // is lost.
    assert!(report.replayed >= 1_990, "{report:?}");
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"key000000", Some(&[0])).unwrap()[0],
        0u32.to_le_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_mid_log_record_truncates_from_there() {
    let dir = tmpdir("corrupt");
    build_store(&dir, 2_000);
    let log = &log_paths(&dir)[0];
    let mut data = std::fs::read(log).unwrap();
    // Flip a byte roughly in the middle: CRC fails there; recovery keeps
    // the prefix before the corruption.
    let mid = data.len() / 2;
    data[mid] ^= 0xff;
    std::fs::write(log, &data).unwrap();
    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(report.replayed > 100, "prefix survived: {report:?}");
    assert!(report.replayed < 2_000, "corrupt tail dropped: {report:?}");
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"key000000", Some(&[0])).unwrap()[0],
        0u32.to_le_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_log_recovers_empty() {
    let dir = tmpdir("garbage");
    std::fs::write(dir.join("log-0"), b"this is not a log at all").unwrap();
    let (store, report) = recover(&dir, &dir).unwrap();
    assert_eq!(report.replayed, 0);
    let guard = masstree::pin();
    assert_eq!(store.tree().count_keys(&guard), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_without_manifest_is_ignored() {
    let dir = tmpdir("nomanifest");
    build_store(&dir, 500);
    {
        let store = Store::persistent(&dir).unwrap();
        // Simulate a crash mid-checkpoint: parts exist, no MANIFEST.
        let meta = write_checkpoint(&store, &dir, 2).unwrap();
        let ckpts: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with("ckpt-"))
            .collect();
        assert_eq!(ckpts.len(), 1);
        std::fs::remove_file(ckpts[0].path().join("MANIFEST")).unwrap();
        let _ = meta;
    }
    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(!report.used_checkpoint, "incomplete checkpoint ignored");
    // Logs alone still reconstruct everything.
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"key000499", Some(&[0])).unwrap()[0],
        499u32.to_le_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_checkpoint_part_falls_back_to_logs() {
    let dir = tmpdir("truncpart");
    // One continuously-live store: build, checkpoint, force (so the log
    // cutoff covers the checkpoint), then "crash".
    {
        let store = Store::persistent(&dir).unwrap();
        let s = store.session().unwrap();
        for i in 0..2_000u32 {
            s.put(
                format!("key{i:06}").as_bytes(),
                &[(0, &i.to_le_bytes()[..])],
            );
        }
        assert!(s.force_log());
        let _ = write_checkpoint(&store, &dir, 2).unwrap();
        assert!(s.force_log());
    }
    // Damage one part file's tail (lost page-cache data the manifest
    // rename survived — rare but possible without fsync barriers).
    let ckpt = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .find(|e| e.file_name().to_string_lossy().starts_with("ckpt-"))
        .unwrap()
        .path();
    let part = ckpt.join("part-0001");
    let data = std::fs::read(&part).unwrap();
    assert!(data.len() > 64, "part must hold data for this test");
    std::fs::write(&part, &data[..data.len() - 40]).unwrap();
    let (store, report) = recover(&dir, &dir).unwrap();
    // Row count disagrees with the manifest: the checkpoint is abandoned
    // and the logs rebuild everything.
    assert!(!report.used_checkpoint, "{report:?}");
    assert!(report.replayed >= 2_000, "{report:?}");
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"key000000", Some(&[0])).unwrap()[0],
        0u32.to_le_bytes()
    );
    assert_eq!(
        s.get(b"key001999", Some(&[0])).unwrap()[0],
        1999u32.to_le_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds a store with tiny segments so the workload rotates several
/// times; returns the number of keys written.
fn build_segmented_store(dir: &Path, keys: u32) {
    let store = Store::persistent_with(dir, DurabilityConfig::tiny_segments(2048)).unwrap();
    let s = store.session().unwrap();
    for i in 0..keys {
        s.put(
            format!("key{i:06}").as_bytes(),
            &[(0, &i.to_le_bytes()[..])],
        );
    }
    assert!(s.force_log());
    s.simulate_crash();
}

#[test]
fn crash_mid_rotation_unsealed_segment_keeps_prefix() {
    // Crash between "create successor" and "seal current": the sealed
    // segment's sentinel never hit the disk. Its data must still replay,
    // and the session must read as crashed (finite cutoff).
    let dir = tmpdir("midrotate");
    build_segmented_store(&dir, 1_500);
    let segs = mtkv::session_segments(&dir).remove(&0).unwrap();
    assert!(segs.len() >= 3, "need rotations: {}", segs.len());
    // Strip the sentinel off a mid-chain sealed segment.
    let (_, victim) = &segs[segs.len() / 2];
    let data = std::fs::read(victim).unwrap();
    let recs = decode_all(&data);
    assert!(matches!(
        recs.last(),
        Some((LogRecord::CleanClose { .. }, _))
    ));
    let sentinel_start = if recs.len() >= 2 {
        recs[recs.len() - 2].1
    } else {
        0
    };
    std::fs::write(victim, &data[..sentinel_start]).unwrap();

    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(
        report.cutoff < u64::MAX,
        "crashed session bounds the cutoff"
    );
    assert!(report.replayed >= 1_500, "{report:?}");
    let s = store.session().unwrap();
    for i in [0u32, 749, 1_499] {
        assert_eq!(
            s.get(format!("key{i:06}").as_bytes(), Some(&[0])).unwrap()[0],
            i.to_le_bytes()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_rotation_sealed_with_empty_successor() {
    // The other mid-rotation window: current sealed, successor created
    // but still empty. The session must read as crashed with the cutoff
    // at its last durable timestamp — not as cleanly closed (the sealed
    // segment ends in a sentinel, but it is not the newest).
    let dir = tmpdir("emptysucc");
    build_segmented_store(&dir, 800);
    let segs = mtkv::session_segments(&dir).remove(&0).unwrap();
    // Rebuild the on-disk state "as of" a rotation boundary: drop every
    // segment after the first sealed one, add the empty successor.
    let (first_seg, first_path) = &segs[0];
    for (_, p) in &segs[1..] {
        std::fs::remove_file(p).unwrap();
    }
    let succ = mtkv::segment_path(&dir, 0, first_seg + 1);
    std::fs::write(&succ, b"").unwrap();
    let kept = decode_all(&std::fs::read(first_path).unwrap())
        .iter()
        .filter(|(r, _)| !r.is_marker())
        .count();

    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(
        report.cutoff < u64::MAX,
        "an empty active segment is a crash, not a clean close: {report:?}"
    );
    assert_eq!(report.replayed, kept as u64, "{report:?}");
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"key000000", Some(&[0])).unwrap()[0],
        0u32.to_le_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_truncation_partial_deletion_recovers() {
    // Truncation deletes covered segments oldest-first; a crash partway
    // leaves an arbitrary subset deleted. The checkpoint (whose manifest
    // is durable before truncation starts) carries the deleted records.
    let dir = tmpdir("midtrunc");
    let meta;
    {
        let store = Store::persistent_with(&dir, DurabilityConfig::tiny_segments(2048)).unwrap();
        let s = store.session().unwrap();
        for i in 0..1_500u32 {
            s.put(
                format!("key{i:06}").as_bytes(),
                &[(0, &i.to_le_bytes()[..])],
            );
        }
        assert!(s.force_log());
        meta = write_checkpoint(&store, &dir, 2).unwrap();
        assert!(s.force_log()); // durable record past start_ts in every live log
        s.simulate_crash();
    }
    // Delete every *other* covered sealed segment — a truncation pass
    // that died in the middle.
    let segs = mtkv::session_segments(&dir).remove(&0).unwrap();
    let covered: Vec<&PathBuf> = segs
        .iter()
        .take(segs.len() - 1) // never the active segment
        .filter(|(_, p)| {
            let data = std::fs::read(p).unwrap();
            let recs = decode_all(&data);
            matches!(recs.last(), Some((LogRecord::CleanClose { .. }, _)))
                && recs
                    .iter()
                    .filter(|(r, _)| !r.is_marker())
                    .all(|(r, _)| r.timestamp() < meta.start_ts)
        })
        .map(|(_, p)| p)
        .collect();
    assert!(
        covered.len() >= 2,
        "need covered segments: {}",
        covered.len()
    );
    for p in covered.iter().step_by(2) {
        std::fs::remove_file(p).unwrap();
    }
    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(report.used_checkpoint, "{report:?}");
    let s = store.session().unwrap();
    for i in [0u32, 888, 1_499] {
        assert_eq!(
            s.get(format!("key{i:06}").as_bytes(), Some(&[0])).unwrap()[0],
            i.to_le_bytes(),
            "key{i:06}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_active_segment_after_rotations_keeps_sealed_data() {
    // Tear the active segment mid-record: every sealed segment's data
    // survives, only the active tail is lost.
    let dir = tmpdir("tornactive");
    build_segmented_store(&dir, 1_200);
    let segs = mtkv::session_segments(&dir).remove(&0).unwrap();
    assert!(segs.len() >= 2);
    let (_, active) = segs.last().unwrap();
    let data = std::fs::read(active).unwrap();
    if data.len() > 9 {
        std::fs::write(active, &data[..data.len() - 9]).unwrap();
    }
    let sealed_records: usize = segs[..segs.len() - 1]
        .iter()
        .map(|(_, p)| {
            decode_all(&std::fs::read(p).unwrap())
                .iter()
                .filter(|(r, _)| !r.is_marker())
                .count()
        })
        .sum();
    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(
        report.replayed >= sealed_records as u64,
        "sealed segments fully replay: {report:?} (sealed {sealed_records})"
    );
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"key000000", Some(&[0])).unwrap()[0],
        0u32.to_le_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_directory_recovers_to_empty_store() {
    let dir = tmpdir("empty");
    let (store, report) = recover(&dir, &dir).unwrap();
    assert_eq!(report.replayed, 0);
    assert!(!report.used_checkpoint);
    // And the recovered store is usable + persistent.
    let s = store.session().unwrap();
    s.put(b"fresh", &[(0, b"start")]);
    assert!(s.force_log());
    assert_eq!(s.get(b"fresh", Some(&[0])).unwrap()[0], b"start");
    drop(s);
    let (store2, _) = recover(&dir, &dir).unwrap();
    let s2 = store2.session().unwrap();
    assert_eq!(s2.get(b"fresh", Some(&[0])).unwrap()[0], b"start");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn appended_junk_after_valid_records() {
    let dir = tmpdir("junk");
    build_store(&dir, 1_000);
    let log = &log_paths(&dir)[0];
    let mut f = OpenOptions::new().append(true).open(log).unwrap();
    f.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02]).unwrap();
    drop(f);
    let (store, report) = recover(&dir, &dir).unwrap();
    assert!(report.replayed >= 1_000);
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"key000999", Some(&[0])).unwrap()[0],
        999u32.to_le_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
