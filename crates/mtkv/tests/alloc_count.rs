//! Proof that the borrowed read path is allocation-free in steady state.
//!
//! A counting global allocator wraps the system allocator for this test
//! binary; after warming every cache involved (epoch-GC thread
//! registration, scan scratch buffers, slab free lists) and draining all
//! deferred garbage, the hot read calls — `get_with`, `multi_get_with`,
//! `get_range_with` — must perform **zero** heap allocations. This is
//! the acceptance gate for the zero-copy read path: any future
//! regression that sneaks a `Vec`/`Box` back into `get`, the batch
//! engine, or the scanner trips this test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mtkv::Store;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers all real work to `System`; only adds counter bumps.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded verbatim.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded verbatim.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Pins and flushes the epoch GC until no deferred garbage can be left
/// (each flush attempts an epoch advance + collection; a handful of
/// rounds drains the three-epoch pipeline completely on an otherwise
/// idle process).
fn drain_gc() {
    for _ in 0..64 {
        masstree::pin().flush();
    }
}

#[test]
fn steady_state_borrowed_reads_do_not_allocate() {
    let store = Store::in_memory();
    let session = store.session().unwrap();

    // A mixed population: short keys (inline slices), long keys
    // (suffix blocks + deeper trie layers), multi-column values.
    let payload = [0x5au8; 64];
    for i in 0..10_000u32 {
        session.put(
            format!("k{i:06}").as_bytes(),
            &[(0, &payload[..]), (1, &i.to_le_bytes()[..])],
        );
    }
    for i in 0..2_000u32 {
        session.put(
            format!("shared/long/prefix/pushes/layers/{i:06}").as_bytes(),
            &[(0, &payload[..])],
        );
    }

    let point_key = b"k004242".as_slice();
    let batch_keys: Vec<Vec<u8>> = (0..16u32)
        .map(|i| format!("k{:06}", i * 577).into_bytes())
        .collect();
    let batch_refs: Vec<&[u8]> = batch_keys.iter().map(|k| k.as_slice()).collect();
    let range_start = b"shared/long/prefix/pushes/layers/000100".as_slice();

    let mut sink = 0usize;
    let run_reads = |sink: &mut usize| {
        session.get_with(point_key, |hit| {
            *sink += hit.map_or(0, |v| v.col(0).map_or(0, <[u8]>::len));
        });
        session.multi_get_with(&batch_refs, |_, hit| {
            *sink += hit.map_or(0, |v| v.col(1).map_or(0, <[u8]>::len));
        });
        session.get_range_with(range_start, 50, |k, v| {
            *sink += k.len() + v.ncols();
        });
    };

    // Warm-up: registers this thread with the epoch GC, grows the
    // thread-local scan scratch to steady-state capacity, and lets any
    // first-touch laziness happen off the measured path. Then drain all
    // garbage retired by the population phase so no deferred destructor
    // runs (and allocates bookkeeping) mid-measurement.
    for _ in 0..8 {
        run_reads(&mut sink);
    }
    drain_gc();
    run_reads(&mut sink);
    drain_gc();

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..200 {
        run_reads(&mut sink);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert!(sink > 0, "reads actually observed data");
    assert_eq!(
        allocs, 0,
        "steady-state get_with / multi_get_with / get_range_with must \
         perform zero heap allocations, found {allocs}"
    );
}

#[test]
fn instrumented_reads_record_histograms_without_allocating() {
    // The observability layer must be free on the read path: histogram
    // recording is two relaxed fetch-adds, and even with tracing forced
    // to sample EVERY op (production default is 1-in-1024) the span is
    // a fixed thread-local and the trace ring a preallocated array —
    // so instrumented steady-state reads stay at zero heap allocations
    // while provably recording (the snapshot delta is checked, so a
    // future change that silently disables recording also trips this).
    use mtkv::mtobs::{span, Kind, Stage};

    let store = Store::in_memory();
    let session = store.session().unwrap();

    let payload = [0x77u8; 64];
    for i in 0..10_000u32 {
        session.put(
            format!("o{i:06}").as_bytes(),
            &[(0, &payload[..]), (1, &i.to_le_bytes()[..])],
        );
    }

    // Worst-case tracing pressure: every request sampled.
    store.obs().set_sample_every(1);

    let point_key = b"o004242".as_slice();
    let batch_keys: Vec<Vec<u8>> = (0..16u32)
        .map(|i| format!("o{:06}", i * 577).into_bytes())
        .collect();
    let batch_refs: Vec<&[u8]> = batch_keys.iter().map(|k| k.as_slice()).collect();

    let mut sink = 0usize;
    let run_reads = |sink: &mut usize| {
        // The span root is what the server does per sampled request.
        let _g = span::begin();
        span::mark(Stage::Decode);
        session.get_with(point_key, |hit| {
            *sink += hit.map_or(0, |v| v.col(0).map_or(0, <[u8]>::len));
        });
        let _g = span::begin();
        session.multi_get_with(&batch_refs, |_, hit| {
            *sink += hit.map_or(0, |v| v.col(1).map_or(0, <[u8]>::len));
        });
    };

    for _ in 0..8 {
        run_reads(&mut sink);
    }
    drain_gc();
    run_reads(&mut sink);
    drain_gc();

    let before = store.obs().snapshot();
    const ROUNDS: u64 = 200;
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..ROUNDS {
        run_reads(&mut sink);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    let d = store.obs().snapshot().delta(&before);

    // Recording was demonstrably live during the measured window.
    // (Batch runs are timed at the server's run level, not per session
    // call, so only the point gets show up as histogram entries here —
    // the batch still exercises the instrumented read machinery.)
    let gets = d.kind(Kind::GetHit).count() + d.kind(Kind::GetDescent).count();
    assert_eq!(gets, ROUNDS, "every point get recorded: {d:?}");
    assert!(d.traces_sampled >= ROUNDS, "spans collected: {d:?}");
    assert!(sink > 0, "reads actually observed data");
    assert_eq!(
        allocs, 0,
        "instrumented steady-state reads (histograms + 1-in-1 sampled \
         tracing) must perform zero heap allocations, found {allocs}"
    );
}

#[test]
fn steady_state_overwrites_do_not_box_their_retirements() {
    // The update path retires the replaced value through the epoch GC.
    // With the unboxed `(fn, data)` deferred representation the retire
    // itself is allocation-free (the closure — one captured pointer —
    // is stored inline in the bag slot), so a steady-state overwrite
    // costs only the new value's own allocations plus amortized bag /
    // collection bookkeeping. The boxed representation this replaced
    // added exactly +1.0 allocations per put; the bound here sits well
    // below that delta, so a regression to boxing trips the assert.
    let store = Store::in_memory();
    let session = store.session().unwrap();

    let payload = [0x3cu8; 64];
    for i in 0..4_096u32 {
        session.put(format!("w{i:06}").as_bytes(), &[(0, &payload[..])]);
    }

    let keys: Vec<Vec<u8>> = (0..4_096u32)
        .map(|i| format!("w{i:06}").into_bytes())
        .collect();

    // Warm-up overwrites: epoch registration, bag bucket growth, slab
    // free lists; then drain retired garbage off the measured path.
    for k in &keys {
        session.put(k, &[(0, &payload[..])]);
    }
    drain_gc();

    const ROUNDS: u64 = 4;
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..ROUNDS {
        for k in &keys {
            session.put(k, &[(0, &payload[..])]);
        }
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    drain_gc();

    let puts = ROUNDS * keys.len() as u64;
    let per_put = allocs as f64 / puts as f64;
    // Measured baseline: ~3.3/put (the new value's own storage plus
    // amortized bag/collection bookkeeping). Boxing the deferred again
    // would add exactly +1.0/put (~4.3), so 3.8 cleanly separates the
    // two without being flaky about the amortized remainder.
    assert!(
        per_put < 3.8,
        "steady-state overwrite allocates too much: {allocs} allocations \
         over {puts} puts ({per_put:.3}/put) — did the epoch retire path \
         start boxing its deferreds again?"
    );
}

#[test]
fn steady_state_cold_readahead_scans_do_not_allocate() {
    // The leaf-batched readahead scan path (collect chunk → batch-
    // resolve cold pointers → emit in key order) must hold the same
    // zero-allocation guarantee once warm: the chunk scratch (key
    // bytes, value pointers, resolution requests) and the engine's
    // miss list keep their capacity, the spare scan cursor reuses its
    // bound buffer, and with every scanned payload resident in the
    // value cache `resolve_many` runs pure hits — Arc clones, no
    // segment reads, no inserts. Any future regression that sneaks a
    // per-chunk Vec or a per-row box into the batched cold path trips
    // this.
    let dir = std::env::temp_dir().join(format!("mtkv-alloc-ra-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = mtkv::Store::persistent_with(
            &dir,
            mtkv::DurabilityConfig::default().with_value_separation(32, 32 << 20),
        )
        .unwrap();
        let session = store.session().unwrap();

        let payload = [0xc3u8; 256]; // >= threshold: spilled to the tier
        for i in 0..2_000u32 {
            session.put(format!("r{i:06}").as_bytes(), &[(0, &payload[..])]);
        }
        assert!(session.force_log());

        let range_start = b"r000100".as_slice();
        let mut sink = 0usize;
        let run_reads = |sink: &mut usize| {
            session.get_range_with(range_start, 64, |k, v| {
                *sink += k.len() + v.col(0).map_or(0, <[u8]>::len);
            });
        };

        // Warm-up fills the value cache (clustered reads), grows every
        // scratch buffer to steady capacity, then drains deferred
        // garbage off the measured path.
        for _ in 0..8 {
            run_reads(&mut sink);
        }
        drain_gc();
        run_reads(&mut sink);
        drain_gc();

        let before = store.value_tier_stats();
        ALLOCS.store(0, Ordering::SeqCst);
        COUNTING.store(true, Ordering::SeqCst);
        for _ in 0..200 {
            run_reads(&mut sink);
        }
        COUNTING.store(false, Ordering::SeqCst);
        let allocs = ALLOCS.load(Ordering::SeqCst);
        let after = store.value_tier_stats();

        // The rounds really took the batched cold path: warm-up misses
        // were clustered, every measured row probed the tier, and the
        // measured window itself never left the value cache.
        assert!(
            before.readahead_batches > 0,
            "warm-up never batch-resolved: {before:?}"
        );
        assert_eq!(
            after.segment_reads, before.segment_reads,
            "measured scans missed the value cache"
        );
        assert!(
            after.indirect_reads >= before.indirect_reads + 200 * 64,
            "scans did not route through the value tier: {after:?}"
        );
        assert!(sink > 0, "reads actually observed data");
        assert_eq!(
            allocs, 0,
            "steady-state readahead scans over cached cold values must \
             perform zero heap allocations, found {allocs}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn steady_state_cached_session_reads_do_not_allocate() {
    // The cache-enabled read paths must hold the same zero-allocation
    // guarantee as the plain ones: the hinted batch read buffers its
    // results in the session's reusable scratch (guard-scoped raw
    // pointers, capacity kept across calls), and chunked range reads
    // recycle their scan cursors through the per-session cursor cache.
    let store = Store::in_memory();
    // adaptive_bypass off: the uniform one-shot population phase below
    // would otherwise engage bypass and leave the measured reads mostly
    // routed around the cache (the cached paths are what this test is
    // about; bypass's plain paths are covered by the test above).
    store.set_session_cache(Some(mtkv::CacheConfig {
        admit_threshold: 1,
        adaptive_bypass: false,
        ..mtkv::CacheConfig::default()
    }));
    let session = store.session().unwrap();

    let payload = [0xa5u8; 64];
    for i in 0..10_000u32 {
        session.put(
            format!("c{i:06}").as_bytes(),
            &[(0, &payload[..]), (1, &i.to_le_bytes()[..])],
        );
    }
    for i in 0..2_000u32 {
        session.put(
            format!("cached/long/prefix/pushes/layers/{i:06}").as_bytes(),
            &[(0, &payload[..])],
        );
    }

    let point_key = b"c004242".as_slice();
    let batch_keys: Vec<Vec<u8>> = (0..16u32)
        .map(|i| format!("c{:06}", i * 577).into_bytes())
        .collect();
    let batch_refs: Vec<&[u8]> = batch_keys.iter().map(|k| k.as_slice()).collect();
    let range_start = b"cached/long/prefix/pushes/layers/000100".as_slice();

    let mut sink = 0usize;
    let run_reads = |sink: &mut usize| {
        session.get_with(point_key, |hit| {
            *sink += hit.map_or(0, |v| v.col(0).map_or(0, <[u8]>::len));
        });
        session.multi_get_with(&batch_refs, |_, hit| {
            *sink += hit.map_or(0, |v| v.col(1).map_or(0, <[u8]>::len));
        });
        session.get_range_with(range_start, 50, |k, v| {
            *sink += k.len() + v.ncols();
        });
    };

    // Warm-up: admission (threshold 1 still needs a miss before the
    // capture), hint-table fill, batch scratch growth, cursor-cache
    // fill, epoch registration. Then drain deferred garbage.
    for _ in 0..8 {
        run_reads(&mut sink);
    }
    drain_gc();
    run_reads(&mut sink);
    drain_gc();

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..200 {
        run_reads(&mut sink);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    // The batch must actually be served by hints, not by luck.
    let stats = session.cache_stats().expect("cache attached");
    assert!(stats.hits > 0, "cached reads never hit: {stats:?}");
    assert!(sink > 0, "reads actually observed data");
    assert_eq!(
        allocs, 0,
        "steady-state cache-enabled get_with / multi_get_with / \
         get_range_with must perform zero heap allocations, found {allocs}"
    );
}
