//! Value logging (§5 of the paper).
//!
//! Each query worker owns a log file and an in-memory log buffer; a
//! logging thread per worker writes the buffer out in the background, so
//! a put appends and returns without waiting for storage. Loggers batch
//! for sequential throughput but force data out at least every 200 ms
//! ("for safety"). Different logs may live on different disks.
//!
//! Record wire format (little-endian):
//!
//! ```text
//! u32  payload length (from op byte through last column)
//! u8   op (1 = put, 2 = remove)
//! u64  timestamp     u64 value-version
//! u32  key length    key bytes
//! u16  column count  (column id: u16, len: u32, bytes)*
//! u32  CRC-32 of the payload
//! ```

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::crc32::crc32;

/// Force-to-storage interval (§5: "at least every 200 ms").
pub const FORCE_INTERVAL: Duration = Duration::from_millis(200);
/// Background write poll interval.
const WAKE_INTERVAL: Duration = Duration::from_millis(10);

/// A logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    Put {
        timestamp: u64,
        version: u64,
        key: Vec<u8>,
        cols: Vec<(u16, Vec<u8>)>,
    },
    Remove {
        timestamp: u64,
        version: u64,
        key: Vec<u8>,
    },
    /// Logger liveness marker: "this log contains every record this
    /// worker issued before `timestamp`". Written by the logger thread on
    /// each flush so an idle worker's log does not hold back the recovery
    /// cutoff `t` (§5). Skipped during replay.
    Heartbeat { timestamp: u64 },
    /// Clean-close sentinel: "this log is **complete** — its worker shut
    /// down cleanly and will never write again". Written as the final
    /// record when a [`LogWriter`] is dropped. A log ending in this
    /// record is excluded from the recovery cutoff `min` entirely: its
    /// silence after `timestamp` is complete knowledge, not missing
    /// data, so it must not freeze the cutoff at its close time and drop
    /// everything other workers logged afterwards. Skipped during
    /// replay.
    CleanClose { timestamp: u64 },
}

impl LogRecord {
    pub fn timestamp(&self) -> u64 {
        match self {
            LogRecord::Put { timestamp, .. }
            | LogRecord::Remove { timestamp, .. }
            | LogRecord::Heartbeat { timestamp }
            | LogRecord::CleanClose { timestamp } => *timestamp,
        }
    }

    pub fn version(&self) -> u64 {
        match self {
            LogRecord::Put { version, .. } | LogRecord::Remove { version, .. } => *version,
            LogRecord::Heartbeat { .. } | LogRecord::CleanClose { .. } => 0,
        }
    }

    pub fn key(&self) -> &[u8] {
        match self {
            LogRecord::Put { key, .. } | LogRecord::Remove { key, .. } => key,
            LogRecord::Heartbeat { .. } | LogRecord::CleanClose { .. } => &[],
        }
    }

    /// True for marker records (heartbeats, clean-close sentinels) that
    /// carry no data and are skipped during replay.
    pub fn is_marker(&self) -> bool {
        matches!(
            self,
            LogRecord::Heartbeat { .. } | LogRecord::CleanClose { .. }
        )
    }

    /// Serializes into `out` (framing + CRC).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // length placeholder
        let payload_start = out.len();
        match self {
            LogRecord::Put {
                timestamp,
                version,
                key,
                cols,
            } => {
                out.push(1);
                out.extend_from_slice(&timestamp.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
                for (id, data) in cols {
                    out.extend_from_slice(&id.to_le_bytes());
                    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                    out.extend_from_slice(data);
                }
            }
            LogRecord::Remove {
                timestamp,
                version,
                key,
            } => {
                out.push(2);
                out.extend_from_slice(&timestamp.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(&0u16.to_le_bytes());
            }
            LogRecord::Heartbeat { timestamp } => {
                out.push(3);
                out.extend_from_slice(&timestamp.to_le_bytes());
                out.extend_from_slice(&0u64.to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes());
            }
            LogRecord::CleanClose { timestamp } => {
                out.push(4);
                out.extend_from_slice(&timestamp.to_le_bytes());
                out.extend_from_slice(&0u64.to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes());
            }
        }
        let payload_len = (out.len() - payload_start) as u32;
        out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
        let crc = crc32(&out[payload_start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Decodes one record from `buf`, returning it and the bytes consumed.
    /// `None` on a torn or corrupt tail (recovery stops there, §5).
    pub fn decode(buf: &[u8]) -> Option<(LogRecord, usize)> {
        if buf.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(buf[..4].try_into().ok()?) as usize;
        if buf.len() < 4 + len + 4 {
            return None;
        }
        let payload = &buf[4..4 + len];
        let stored_crc = u32::from_le_bytes(buf[4 + len..4 + len + 4].try_into().ok()?);
        if crc32(payload) != stored_crc {
            return None;
        }
        let mut p = payload;
        let op = *p.first()?;
        p = &p[1..];
        let timestamp = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
        p = &p[8..];
        let version = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
        p = &p[8..];
        let klen = u32::from_le_bytes(p.get(..4)?.try_into().ok()?) as usize;
        p = &p[4..];
        let key = p.get(..klen)?.to_vec();
        p = &p[klen..];
        let ncols = u16::from_le_bytes(p.get(..2)?.try_into().ok()?) as usize;
        p = &p[2..];
        let rec = match op {
            1 => {
                let mut cols = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    let id = u16::from_le_bytes(p.get(..2)?.try_into().ok()?);
                    p = &p[2..];
                    let dlen = u32::from_le_bytes(p.get(..4)?.try_into().ok()?) as usize;
                    p = &p[4..];
                    cols.push((id, p.get(..dlen)?.to_vec()));
                    p = &p[dlen..];
                }
                LogRecord::Put {
                    timestamp,
                    version,
                    key,
                    cols,
                }
            }
            2 => LogRecord::Remove {
                timestamp,
                version,
                key,
            },
            3 => LogRecord::Heartbeat { timestamp },
            4 => LogRecord::CleanClose { timestamp },
            _ => return None,
        };
        Some((rec, 4 + len + 4))
    }
}

struct LogBuf {
    data: Vec<u8>,
    /// Monotone counter of force() requests.
    sync_requested: u64,
    /// Highest request known durable.
    sync_completed: u64,
}

struct LogShared {
    buffer: Mutex<LogBuf>,
    wake: Condvar,
    done: Condvar,
    stop: AtomicBool,
    /// Set (under the buffer lock) once the clean-close sentinel has
    /// been appended; the logger thread stops heart-beating so the
    /// sentinel stays the log's final record.
    closed: AtomicBool,
}

/// One worker's log: in-memory buffer + background logger thread.
pub struct LogWriter {
    shared: Arc<LogShared>,
    thread: Option<std::thread::JoinHandle<()>>,
    pub path: PathBuf,
}

impl LogWriter {
    /// Opens (appending) the log file and starts its logger thread.
    pub fn open(path: PathBuf) -> std::io::Result<LogWriter> {
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let shared = Arc::new(LogShared {
            buffer: Mutex::new(LogBuf {
                data: Vec::with_capacity(1 << 20),
                sync_requested: 0,
                sync_completed: 0,
            }),
            wake: Condvar::new(),
            done: Condvar::new(),
            stop: AtomicBool::new(false),
            closed: AtomicBool::new(false),
        });
        let s2 = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("mt-logger".into())
            .spawn(move || logger_loop(s2, file))?;
        Ok(LogWriter {
            shared,
            thread: Some(thread),
            path,
        })
    }

    /// Appends a record to the in-memory buffer (the put path: no I/O).
    ///
    /// Use [`LogWriter::append_now`] when the record's timestamp must be
    /// consistent with the heartbeat protocol; plain `append` is for
    /// pre-timestamped records (tests, bulk import).
    pub fn append(&self, rec: &LogRecord) {
        let mut buf = self.shared.buffer.lock();
        rec.encode(&mut buf.data);
        // Nudge the logger if the buffer is getting large.
        if buf.data.len() >= 1 << 20 {
            self.shared.wake.notify_one();
        }
    }

    /// Appends `make(timestamp)` with a timestamp drawn **under the
    /// buffer lock**. This is what makes heartbeats sound: a heartbeat's
    /// timestamp is also drawn under the lock during drain, so every
    /// record this worker stamped before a heartbeat is already in the
    /// buffer ahead of it — the log is always a timestamp-consistent
    /// prefix of this worker's history.
    pub fn append_now<F: FnOnce(u64) -> LogRecord>(&self, make: F) -> u64 {
        let mut buf = self.shared.buffer.lock();
        let ts = crate::clock::now();
        make(ts).encode(&mut buf.data);
        if buf.data.len() >= 1 << 20 {
            self.shared.wake.notify_one();
        }
        ts
    }

    /// Blocks until everything appended so far is durable (used by tests
    /// and clean shutdown; normal puts never wait, §5).
    pub fn force(&self) {
        let mut buf = self.shared.buffer.lock();
        buf.sync_requested += 1;
        let want = buf.sync_requested;
        self.shared.wake.notify_one();
        while buf.sync_completed < want {
            self.shared.done.wait(&mut buf);
        }
    }
}

impl Drop for LogWriter {
    fn drop(&mut self) {
        // Append the clean-close sentinel as this log's final record:
        // `closed` is set under the buffer lock, and the logger thread
        // checks it under the same lock before heart-beating, so nothing
        // can be stamped after the sentinel. A cleanly closed log is
        // thereby *complete* — recovery excludes it from the cutoff
        // `min` instead of letting its close time drop every record
        // other workers logged later (§5 cutoff vs short-lived
        // sessions).
        {
            let mut buf = self.shared.buffer.lock();
            self.shared.closed.store(true, Ordering::Release);
            let ts = crate::clock::now();
            LogRecord::CleanClose { timestamp: ts }.encode(&mut buf.data);
        }
        self.force();
        self.shared.stop.store(true, Ordering::Release);
        self.shared.wake.notify_one();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn logger_loop(shared: Arc<LogShared>, file: File) {
    let mut out = BufWriter::with_capacity(1 << 20, file);
    let mut last_force = Instant::now();
    let mut last_heartbeat = Instant::now();
    let mut dirty = false;
    loop {
        let (drained, sync_goal) = {
            let mut buf = shared.buffer.lock();
            if buf.data.is_empty()
                && buf.sync_requested == buf.sync_completed
                && !shared.stop.load(Ordering::Acquire)
            {
                shared.wake.wait_for(&mut buf, WAKE_INTERVAL);
            }
            // Liveness marker (see `append_now`), drawn under the lock:
            // whenever there is data, a sync was requested, or the
            // heartbeat interval lapsed on an idle log. Once the writer
            // has appended its clean-close sentinel (`closed`, checked
            // under the same lock) heart-beating stops so the sentinel
            // remains the final record.
            if !shared.closed.load(Ordering::Acquire)
                && (!buf.data.is_empty()
                    || buf.sync_requested > buf.sync_completed
                    || last_heartbeat.elapsed() >= FORCE_INTERVAL
                    || shared.stop.load(Ordering::Acquire))
            {
                let ts = crate::clock::now();
                LogRecord::Heartbeat { timestamp: ts }.encode(&mut buf.data);
                last_heartbeat = Instant::now();
            }
            (std::mem::take(&mut buf.data), buf.sync_requested)
        };
        if !drained.is_empty() {
            // Batched sequential write (§5: loggers batch updates).
            if out.write_all(&drained).is_err() {
                return;
            }
            dirty = true;
        }
        let mut acked = None;
        let force_due = dirty && last_force.elapsed() >= FORCE_INTERVAL;
        let sync_due = {
            let buf = shared.buffer.lock();
            buf.sync_completed < sync_goal
        };
        if force_due || sync_due {
            if out.flush().is_err() {
                return;
            }
            let _ = out.get_ref().sync_data();
            last_force = Instant::now();
            dirty = false;
            acked = Some(sync_goal);
        }
        if let Some(goal) = acked {
            let mut buf = shared.buffer.lock();
            if buf.sync_completed < goal {
                buf.sync_completed = goal;
                shared.done.notify_all();
            }
        }
        if shared.stop.load(Ordering::Acquire) {
            let _ = out.flush();
            let _ = out.get_ref().sync_data();
            return;
        }
    }
}

/// Reads every intact record from a log file, stopping at the first torn
/// or corrupt record (§5 recovery).
pub fn read_log(path: &Path) -> std::io::Result<Vec<LogRecord>> {
    let data = std::fs::read(path)?;
    let mut records = Vec::new();
    let mut off = 0;
    while let Some((rec, used)) = LogRecord::decode(&data[off..]) {
        records.push(rec);
        off += used;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64) -> LogRecord {
        LogRecord::Put {
            timestamp: ts,
            version: ts * 10,
            key: format!("key{ts}").into_bytes(),
            cols: vec![(0, b"aaaa".to_vec()), (3, b"d".to_vec())],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut buf = Vec::new();
        rec(1).encode(&mut buf);
        rec(2).encode(&mut buf);
        LogRecord::Remove {
            timestamp: 3,
            version: 30,
            key: b"gone".to_vec(),
        }
        .encode(&mut buf);
        let (r1, n1) = LogRecord::decode(&buf).unwrap();
        assert_eq!(r1, rec(1));
        let (r2, n2) = LogRecord::decode(&buf[n1..]).unwrap();
        assert_eq!(r2, rec(2));
        let (r3, n3) = LogRecord::decode(&buf[n1 + n2..]).unwrap();
        assert_eq!(r3.key(), b"gone");
        assert_eq!(n1 + n2 + n3, buf.len());
    }

    #[test]
    fn torn_tail_is_rejected() {
        let mut buf = Vec::new();
        rec(1).encode(&mut buf);
        let full = buf.len();
        rec(2).encode(&mut buf);
        // Truncate mid-record: decode of the tail must fail.
        let torn = &buf[..full + 7];
        let (_, n1) = LogRecord::decode(torn).unwrap();
        assert!(LogRecord::decode(&torn[n1..]).is_none());
    }

    #[test]
    fn heartbeat_roundtrip() {
        let mut buf = Vec::new();
        LogRecord::Heartbeat { timestamp: 777 }.encode(&mut buf);
        let (r, used) = LogRecord::decode(&buf).unwrap();
        assert_eq!(r, LogRecord::Heartbeat { timestamp: 777 });
        assert_eq!(used, buf.len());
        assert_eq!(r.timestamp(), 777);
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let mut buf = Vec::new();
        rec(1).encode(&mut buf);
        let mid = buf.len() / 2;
        buf[mid] ^= 0xff;
        assert!(LogRecord::decode(&buf).is_none());
    }

    #[test]
    fn writer_persists_records() {
        let dir = std::env::temp_dir().join(format!("mtkv-logtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log0");
        let _ = std::fs::remove_file(&path);
        {
            let w = LogWriter::open(path.clone()).unwrap();
            for i in 0..100 {
                w.append(&rec(i));
            }
            w.force();
        }
        let records = read_log(&path).unwrap();
        let puts: Vec<&LogRecord> = records.iter().filter(|r| !r.is_marker()).collect();
        assert_eq!(puts.len(), 100);
        assert_eq!(*puts[42], rec(42));
        assert!(
            records.len() > puts.len(),
            "liveness heartbeats are interleaved"
        );
        assert!(
            matches!(records.last(), Some(LogRecord::CleanClose { .. })),
            "a dropped writer seals its log with the clean-close sentinel"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_close_roundtrip() {
        let mut buf = Vec::new();
        LogRecord::CleanClose { timestamp: 888 }.encode(&mut buf);
        let (r, used) = LogRecord::decode(&buf).unwrap();
        assert_eq!(r, LogRecord::CleanClose { timestamp: 888 });
        assert_eq!(used, buf.len());
        assert_eq!(r.timestamp(), 888);
        assert!(r.is_marker());
    }
}
