//! Value logging (§5 of the paper) with online segment rotation.
//!
//! Each query worker owns a log and an in-memory log buffer; a logging
//! thread per worker writes the buffer out in the background, so a put
//! appends and returns without waiting for storage. Loggers batch for
//! sequential throughput but force data out at least every 200 ms
//! ("for safety"). Different logs may live on different disks.
//!
//! A session's log is a chain of numbered **segments**
//! (`log-<session>.<seg>`). When the active segment passes a size
//! threshold the logger *rotates*: it creates the successor file, seals
//! the current segment with a [`LogRecord::CleanClose`] sentinel, syncs
//! it, and switches. A sealed segment is immutable and — once a
//! checkpoint covers every record in it — can be deleted
//! ([`truncate_covered_segments`]), which is what keeps log space and
//! recovery time bounded while the store runs (§5: "log data older than
//! a completed checkpoint is truncated").
//!
//! Record wire format (little-endian):
//!
//! ```text
//! u32  payload length (from op byte through last column)
//! u8   op (1 = put, 2 = remove, 6 = indirect put: 24-byte value pointer
//!      tail in place of columns)
//! u64  timestamp     u64 value-version
//! u32  key length    key bytes
//! u16  column count  (column id: u16, len: u32, bytes)*
//! u32  CRC-32 of the payload
//! ```

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::crc32::crc32;
use crate::value::ValuePtr;

/// Force-to-storage interval (§5: "at least every 200 ms").
pub const FORCE_INTERVAL: Duration = Duration::from_millis(200);
/// Background write poll interval.
const WAKE_INTERVAL: Duration = Duration::from_millis(10);
/// Default rotation threshold for segmented session logs.
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 << 20;

/// A logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    Put {
        timestamp: u64,
        version: u64,
        key: Vec<u8>,
        /// The **full resulting value** (every column), not the update
        /// delta: version-gated replay runs out of order across
        /// segments, sessions, and replication streams, and a delta
        /// applied without the records it merged over would drop the
        /// untouched columns.
        cols: Vec<(u16, Vec<u8>)>,
    },
    /// A put whose value lives in the value-separation tier: the record
    /// carries the fixed-size [`ValuePtr`] instead of the column bytes.
    /// The tier is forced **before** any WAL force that could make this
    /// record durable, so a replayable pointer always names a payload
    /// that was at least written; replay still read-verifies it (crc +
    /// length) and skips the record — counting it — if the payload
    /// cannot be proven intact, which by that ordering can only happen
    /// to unacked tails.
    PutIndirect {
        timestamp: u64,
        version: u64,
        key: Vec<u8>,
        ptr: ValuePtr,
    },
    Remove {
        timestamp: u64,
        version: u64,
        key: Vec<u8>,
    },
    /// Logger liveness marker: "this log contains every record this
    /// worker issued before `timestamp`". Written by the logger thread on
    /// each flush so an idle worker's log does not hold back the recovery
    /// cutoff `t` (§5). Skipped during replay.
    Heartbeat { timestamp: u64 },
    /// Clean-close sentinel: "this segment is **complete** — nothing will
    /// ever be appended to it again". Written as the final record when a
    /// [`LogWriter`] is dropped *and* when the logger rotates to a new
    /// segment. A session whose newest segment ends in this record shut
    /// down cleanly and is excluded from the recovery cutoff `min`
    /// entirely: its silence after `timestamp` is complete knowledge, not
    /// missing data, so it must not freeze the cutoff at its close time
    /// and drop everything other workers logged afterwards. Skipped
    /// during replay.
    CleanClose { timestamp: u64 },
    /// Session-create journal entry: written (and **synced**) by
    /// `Store::session` before the session is handed to its worker, so
    /// every operation the session can ever perform happens-after this
    /// record is durable. Recovery's cutoff rule "an empty log chain
    /// constrains nothing" then holds *by evidence*: an empty chain can
    /// only mean session creation never completed, hence no operation —
    /// logged or lost — ever ran on it. Without this record the rule
    /// rested on trust (an empty file could equally be a session whose
    /// entire buffered history was lost). Skipped during replay.
    SessionCreate { timestamp: u64 },
}

impl LogRecord {
    pub fn timestamp(&self) -> u64 {
        match self {
            LogRecord::Put { timestamp, .. }
            | LogRecord::PutIndirect { timestamp, .. }
            | LogRecord::Remove { timestamp, .. }
            | LogRecord::Heartbeat { timestamp }
            | LogRecord::CleanClose { timestamp }
            | LogRecord::SessionCreate { timestamp } => *timestamp,
        }
    }

    pub fn version(&self) -> u64 {
        match self {
            LogRecord::Put { version, .. }
            | LogRecord::PutIndirect { version, .. }
            | LogRecord::Remove { version, .. } => *version,
            LogRecord::Heartbeat { .. }
            | LogRecord::CleanClose { .. }
            | LogRecord::SessionCreate { .. } => 0,
        }
    }

    pub fn key(&self) -> &[u8] {
        match self {
            LogRecord::Put { key, .. }
            | LogRecord::PutIndirect { key, .. }
            | LogRecord::Remove { key, .. } => key,
            LogRecord::Heartbeat { .. }
            | LogRecord::CleanClose { .. }
            | LogRecord::SessionCreate { .. } => &[],
        }
    }

    /// True for marker records (heartbeats, clean-close sentinels) that
    /// carry no data and are skipped during replay.
    pub fn is_marker(&self) -> bool {
        matches!(
            self,
            LogRecord::Heartbeat { .. }
                | LogRecord::CleanClose { .. }
                | LogRecord::SessionCreate { .. }
        )
    }

    /// Serializes into `out` (framing + CRC).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // length placeholder
        let payload_start = out.len();
        match self {
            LogRecord::Put {
                timestamp,
                version,
                key,
                cols,
            } => {
                out.push(1);
                out.extend_from_slice(&timestamp.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
                for (id, data) in cols {
                    out.extend_from_slice(&id.to_le_bytes());
                    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                    out.extend_from_slice(data);
                }
            }
            LogRecord::PutIndirect {
                timestamp,
                version,
                key,
                ptr,
            } => {
                out.push(6);
                out.extend_from_slice(&timestamp.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(&0u16.to_le_bytes());
                ptr.encode(out);
            }
            LogRecord::Remove {
                timestamp,
                version,
                key,
            } => {
                out.push(2);
                out.extend_from_slice(&timestamp.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(&0u16.to_le_bytes());
            }
            LogRecord::Heartbeat { timestamp } => {
                out.push(3);
                out.extend_from_slice(&timestamp.to_le_bytes());
                out.extend_from_slice(&0u64.to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes());
            }
            LogRecord::CleanClose { timestamp } => {
                out.push(4);
                out.extend_from_slice(&timestamp.to_le_bytes());
                out.extend_from_slice(&0u64.to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes());
            }
            LogRecord::SessionCreate { timestamp } => {
                out.push(5);
                out.extend_from_slice(&timestamp.to_le_bytes());
                out.extend_from_slice(&0u64.to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes());
            }
        }
        let payload_len = (out.len() - payload_start) as u32;
        out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
        let crc = crc32(&out[payload_start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Decodes one record from `buf`, returning it and the bytes consumed.
    /// `None` on a torn or corrupt tail (recovery stops there, §5).
    pub fn decode(buf: &[u8]) -> Option<(LogRecord, usize)> {
        if buf.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(buf[..4].try_into().ok()?) as usize;
        if buf.len() < 4 + len + 4 {
            return None;
        }
        let payload = &buf[4..4 + len];
        let stored_crc = u32::from_le_bytes(buf[4 + len..4 + len + 4].try_into().ok()?);
        if crc32(payload) != stored_crc {
            return None;
        }
        let mut p = payload;
        let op = *p.first()?;
        p = &p[1..];
        let timestamp = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
        p = &p[8..];
        let version = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
        p = &p[8..];
        let klen = u32::from_le_bytes(p.get(..4)?.try_into().ok()?) as usize;
        p = &p[4..];
        let key = p.get(..klen)?.to_vec();
        p = &p[klen..];
        let ncols = u16::from_le_bytes(p.get(..2)?.try_into().ok()?) as usize;
        p = &p[2..];
        let rec = match op {
            1 => {
                let mut cols = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    let id = u16::from_le_bytes(p.get(..2)?.try_into().ok()?);
                    p = &p[2..];
                    let dlen = u32::from_le_bytes(p.get(..4)?.try_into().ok()?) as usize;
                    p = &p[4..];
                    cols.push((id, p.get(..dlen)?.to_vec()));
                    p = &p[dlen..];
                }
                LogRecord::Put {
                    timestamp,
                    version,
                    key,
                    cols,
                }
            }
            2 => LogRecord::Remove {
                timestamp,
                version,
                key,
            },
            6 => LogRecord::PutIndirect {
                timestamp,
                version,
                key,
                ptr: ValuePtr::decode(&mut p)?,
            },
            3 => LogRecord::Heartbeat { timestamp },
            4 => LogRecord::CleanClose { timestamp },
            5 => LogRecord::SessionCreate { timestamp },
            _ => return None,
        };
        Some((rec, 4 + len + 4))
    }
}

/// The on-disk path of segment `seg` of session `session` under `dir`.
pub fn segment_path(dir: &Path, session: u64, seg: u64) -> PathBuf {
    dir.join(format!("log-{session}.{seg}"))
}

struct LogBuf {
    data: Vec<u8>,
    /// Monotone counter of force() requests.
    sync_requested: u64,
    /// Highest request known durable.
    sync_completed: u64,
}

struct LogShared {
    buffer: Mutex<LogBuf>,
    wake: Condvar,
    done: Condvar,
    stop: AtomicBool,
    /// Set (under the buffer lock) once the clean-close sentinel has
    /// been appended; the logger thread stops heart-beating so the
    /// sentinel stays the log's final record.
    closed: AtomicBool,
    /// Simulated crash: the logger thread exits immediately, abandoning
    /// its in-memory buffers exactly as a dying process would.
    crashed: AtomicBool,
    /// Active segment number.
    segment: AtomicU64,
    /// Bytes of the active segment known durable (synced). Sealed
    /// segments are always fully durable.
    durable: AtomicU64,
    /// Segments sealed by rotation over this writer's lifetime.
    sealed: AtomicU64,
    /// Path of the active segment.
    current_path: Mutex<PathBuf>,
    /// Shared with the owning store: set (permanently) when this logger
    /// dies without completing its shutdown protocol — I/O error or
    /// simulated crash. A dead logger leaves a torn chain on disk whose
    /// last durable timestamp may sit *below* any later checkpoint's
    /// `start_ts`; a future recovery cutoff would then reject that
    /// checkpoint, so the store must never again truncate log segments
    /// (the logs stay the authoritative copy) until a recovery reseals
    /// the directory. Tracked here — not per-handle — because the
    /// writer can be dropped (its weak handles going dead) before the
    /// store's next durability cycle ever observes the crash.
    poison: Arc<AtomicBool>,
}

/// Rotation configuration: `None` naming means a fixed single file that
/// never rotates (legacy [`LogWriter::open`]).
struct LoggerCfg {
    rotate: Option<(PathBuf, u64)>, // (dir, session)
    segment_bytes: u64,
}

/// Where the on-disk state of a crashed-and-abandoned log stands: the
/// segment that was being appended, and how many of its bytes were known
/// durable (synced) at the simulated crash. Earlier (sealed) segments
/// are always fully durable. Crash-torture tests tear the active segment
/// anywhere at or past `durable_len` to model the page-cache loss of a
/// machine crash — never below it, which would un-happen an acked sync.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPoint {
    pub active_segment: PathBuf,
    pub durable_len: u64,
}

/// One worker's log: in-memory buffer + background logger thread.
pub struct LogWriter {
    shared: Arc<LogShared>,
    thread: Option<std::thread::JoinHandle<()>>,
    /// Path of the first segment (or the fixed file for [`LogWriter::open`]).
    pub path: PathBuf,
}

impl LogWriter {
    /// Opens (appending) a single fixed log file that never rotates and
    /// starts its logger thread. Tests and bulk import use this; store
    /// sessions use [`LogWriter::open_segmented`].
    pub fn open(path: PathBuf) -> std::io::Result<LogWriter> {
        Self::start(
            path,
            LoggerCfg {
                rotate: None,
                segment_bytes: u64::MAX,
            },
            Arc::default(),
        )
    }

    /// Opens segment 0 of session `session`'s log chain under `dir` and
    /// starts its logger thread; the logger rotates to a fresh segment
    /// whenever the active one passes `segment_bytes`.
    pub fn open_segmented(
        dir: &Path,
        session: u64,
        segment_bytes: u64,
    ) -> std::io::Result<LogWriter> {
        Self::open_segmented_poisoned(dir, session, segment_bytes, Arc::default())
    }

    /// [`LogWriter::open_segmented`] wired to the owning store's poison
    /// flag: if this logger ever dies without completing its shutdown
    /// protocol, `poison` is set so the store stops truncating log
    /// segments (see `LogShared::poison`).
    pub(crate) fn open_segmented_poisoned(
        dir: &Path,
        session: u64,
        segment_bytes: u64,
        poison: Arc<AtomicBool>,
    ) -> std::io::Result<LogWriter> {
        Self::start(
            segment_path(dir, session, 0),
            LoggerCfg {
                rotate: Some((dir.to_path_buf(), session)),
                segment_bytes: segment_bytes.max(1),
            },
            poison,
        )
    }

    fn start(path: PathBuf, cfg: LoggerCfg, poison: Arc<AtomicBool>) -> std::io::Result<LogWriter> {
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let existing = file.metadata().map(|m| m.len()).unwrap_or(0);
        let shared = Arc::new(LogShared {
            buffer: Mutex::new(LogBuf {
                data: Vec::with_capacity(1 << 20),
                sync_requested: 0,
                sync_completed: 0,
            }),
            wake: Condvar::new(),
            done: Condvar::new(),
            stop: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            segment: AtomicU64::new(0),
            durable: AtomicU64::new(existing),
            sealed: AtomicU64::new(0),
            current_path: Mutex::new(path.clone()),
            poison,
        });
        let s2 = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("mt-logger".into())
            .spawn(move || logger_loop(s2, file, cfg, existing))?;
        Ok(LogWriter {
            shared,
            thread: Some(thread),
            path,
        })
    }

    /// Appends a record to the in-memory buffer (the put path: no I/O).
    ///
    /// Use [`LogWriter::append_now`] when the record's timestamp must be
    /// consistent with the heartbeat protocol; plain `append` is for
    /// pre-timestamped records (tests, bulk import).
    pub fn append(&self, rec: &LogRecord) {
        let mut buf = self.shared.buffer.lock();
        rec.encode(&mut buf.data);
        // Nudge the logger if the buffer is getting large.
        if buf.data.len() >= 1 << 20 {
            self.shared.wake.notify_one();
        }
    }

    /// Appends `make(timestamp)` with a timestamp drawn **under the
    /// buffer lock**. This is what makes heartbeats sound: a heartbeat's
    /// timestamp is also drawn under the lock during drain, so every
    /// record this worker stamped before a heartbeat is already in the
    /// buffer ahead of it — the log is always a timestamp-consistent
    /// prefix of this worker's history.
    pub fn append_now<F: FnOnce(u64) -> LogRecord>(&self, make: F) -> u64 {
        let mut buf = self.shared.buffer.lock();
        let ts = crate::clock::now();
        make(ts).encode(&mut buf.data);
        if buf.data.len() >= 1 << 20 {
            self.shared.wake.notify_one();
        }
        ts
    }

    /// Blocks until everything appended so far is durable (used by tests
    /// and clean shutdown; normal puts never wait, §5).
    ///
    /// Returns `true` only when the sync actually completed. `false`
    /// means the logger thread is dead — killed by
    /// [`LogWriter::simulate_crash`] or by an I/O error — and the
    /// appended records may never reach storage: a dead logger can never
    /// make anything durable, so waiting would hang forever, and callers
    /// acking durability to a client must propagate the failure instead.
    #[must_use = "false means the records were NOT made durable"]
    pub fn force(&self) -> bool {
        let mut buf = self.shared.buffer.lock();
        if self.shared.crashed.load(Ordering::Acquire) {
            return false;
        }
        buf.sync_requested += 1;
        let want = buf.sync_requested;
        self.shared.wake.notify_one();
        while buf.sync_completed < want {
            if self.shared.crashed.load(Ordering::Acquire) {
                return false;
            }
            self.shared.done.wait_for(&mut buf, WAKE_INTERVAL);
        }
        true
    }

    /// Active segment number of this writer's chain.
    pub fn current_segment(&self) -> u64 {
        self.shared.segment.load(Ordering::Acquire)
    }

    /// Segments sealed by rotation so far.
    pub fn segments_sealed(&self) -> u64 {
        self.shared.sealed.load(Ordering::Relaxed)
    }

    /// A weak handle the store keeps so a durability cycle can
    /// group-commit every live log before truncating (see
    /// [`LogForceHandle::barrier_force`]).
    pub(crate) fn force_handle(&self) -> LogForceHandle {
        LogForceHandle(Arc::downgrade(&self.shared))
    }

    /// Kills the logger thread **without** the clean-shutdown protocol:
    /// no final drain, no flush, no clean-close sentinel — the in-memory
    /// buffer and the `BufWriter`'s unflushed bytes are abandoned exactly
    /// as a dying process would abandon them. Returns where the on-disk
    /// state stands so crash-torture tests can additionally tear the
    /// active segment's unsynced tail (simulating a machine crash).
    pub fn simulate_crash(mut self) -> CrashPoint {
        self.shared.poison.store(true, Ordering::Release);
        self.shared.crashed.store(true, Ordering::Release);
        self.shared.stop.store(true, Ordering::Release);
        self.shared.wake.notify_one();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        // Unblock anyone waiting on a force this logger will never ack.
        self.shared.done.notify_all();
        CrashPoint {
            active_segment: self.shared.current_path.lock().clone(),
            durable_len: self.shared.durable.load(Ordering::Acquire),
        }
    }
}

/// Weak per-log handle held by the store's durability cycle: after a
/// checkpoint completes, the cycle forces every live log so each one
/// durably holds a record stamped after the checkpoint's `start_ts` —
/// only then is truncation safe, because any *future* recovery cutoff is
/// now at or past `start_ts` and the checkpoint can never be rejected
/// after its covered segments are gone.
pub(crate) struct LogForceHandle(Weak<LogShared>);

/// Result of the group-commit barrier on one log (see
/// [`LogForceHandle::barrier_force`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BarrierOutcome {
    /// Sync confirmed: the log durably holds a record stamped past the
    /// checkpoint's `start_ts`. Truncation-safe.
    Synced,
    /// The writer is gone — its drop protocol made the clean-close
    /// sentinel durable (a failed final sync would have set the store's
    /// poison flag instead). The session is excluded from any future
    /// cutoff, so it cannot reject the checkpoint; the handle can be
    /// dropped.
    Closed,
    /// Durability could not be confirmed this cycle: the logger is dead
    /// (I/O error, simulated crash) or a clean close is still in flight
    /// and its final sync has not landed. Truncating now could erase the
    /// only copy of records a future recovery cutoff would refuse the
    /// checkpoint for — the cycle must skip truncation.
    Unconfirmed,
}

impl LogForceHandle {
    /// Whether the writer behind this handle still exists (cheap; used
    /// to sweep dead handles from the store's registry).
    pub(crate) fn is_alive(&self) -> bool {
        self.0.strong_count() > 0
    }

    /// Durable shipping watermark of this log: `(active segment, bytes
    /// of it known synced)`. Sealed segments are always fully durable.
    /// `None` once the writer is gone (its whole chain is then static
    /// on disk and can be shipped at full length).
    ///
    /// Rotation publishes `segment + 1` before resetting `durable`, so
    /// a racing reader can briefly see the *new* segment paired with
    /// the old segment's byte count. Replication clamps every read to
    /// the segment file's actual length, so the worst case is shipping
    /// a few written-but-not-yet-synced bytes of the fresh segment —
    /// harmless for a replica, which is wiped on any primary restart.
    pub(crate) fn progress(&self) -> Option<(u64, u64)> {
        let shared = self.0.upgrade()?;
        loop {
            let seg = shared.segment.load(Ordering::Acquire);
            let durable = shared.durable.load(Ordering::Acquire);
            if shared.segment.load(Ordering::Acquire) == seg {
                return Some((seg, durable));
            }
        }
    }

    /// Group-commit barrier: forces the log and reports whether its
    /// durability past the barrier point is *confirmed* — anything less
    /// than [`BarrierOutcome::Synced`]/[`BarrierOutcome::Closed`] must
    /// block truncation (see [`BarrierOutcome::Unconfirmed`]).
    pub(crate) fn barrier_force(&self) -> BarrierOutcome {
        let Some(shared) = self.0.upgrade() else {
            return BarrierOutcome::Closed;
        };
        let mut buf = shared.buffer.lock();
        if shared.crashed.load(Ordering::Acquire) {
            return BarrierOutcome::Unconfirmed;
        }
        if shared.stop.load(Ordering::Acquire) || shared.closed.load(Ordering::Acquire) {
            // Close in flight: the sentinel is appended but its sync may
            // not have landed, and a machine crash before it lands would
            // leave this chain torn below `start_ts`. Don't truncate on
            // it this cycle; the next cycle sees the writer gone
            // (`Closed`) or the poison flag (final sync failed).
            return BarrierOutcome::Unconfirmed;
        }
        buf.sync_requested += 1;
        let want = buf.sync_requested;
        shared.wake.notify_one();
        while buf.sync_completed < want {
            if shared.crashed.load(Ordering::Acquire) {
                return BarrierOutcome::Unconfirmed;
            }
            // Timed wait, polling the flags: every logger exit path
            // either acks all outstanding requests (clean shutdown) or
            // sets `crashed` — but only after this request was filed, so
            // a concurrent drop cannot strand the wait.
            shared.done.wait_for(&mut buf, WAKE_INTERVAL);
        }
        BarrierOutcome::Synced
    }
}

impl Drop for LogWriter {
    fn drop(&mut self) {
        if self.shared.crashed.load(Ordering::Acquire) {
            if let Some(t) = self.thread.take() {
                let _ = t.join();
            }
            return;
        }
        // Append the clean-close sentinel as this log's final record:
        // `closed` is set under the buffer lock, and the logger thread
        // checks it under the same lock before heart-beating, so nothing
        // can be stamped after the sentinel. A cleanly closed log is
        // thereby *complete* — recovery excludes it from the cutoff
        // `min` instead of letting its close time drop every record
        // other workers logged later (§5 cutoff vs short-lived
        // sessions).
        {
            let mut buf = self.shared.buffer.lock();
            self.shared.closed.store(true, Ordering::Release);
            let ts = crate::clock::now();
            LogRecord::CleanClose { timestamp: ts }.encode(&mut buf.data);
        }
        let _ = self.force(); // best effort: drop has no error channel
        self.shared.stop.store(true, Ordering::Release);
        self.shared.wake.notify_one();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Marks the logger dead after an unrecoverable I/O error: `crashed`
/// makes `force` / `barrier_force` return instead of spinning forever
/// on an ack that will never come (which would wedge every durability
/// cycle behind the cycle lock), the poison flag permanently blocks the
/// owning store's truncation (the torn chain this logger leaves behind
/// may pin any future recovery cutoff below later checkpoints), and the
/// notify wakes current waiters.
fn mark_logger_dead(shared: &LogShared) {
    shared.poison.store(true, Ordering::Release);
    shared.crashed.store(true, Ordering::Release);
    shared.done.notify_all();
}

fn logger_loop(shared: Arc<LogShared>, file: File, cfg: LoggerCfg, existing: u64) {
    let mut out = BufWriter::with_capacity(1 << 20, file);
    let mut written = existing; // bytes handed to the active segment file
                                // Max timestamp among record frames written to this chain so far;
                                // rotation markers are stamped with it (never `clock::now()`, which
                                // would run ahead of records already stamped but not yet durable in
                                // the successor segment — see `rotate_segment`). Seeded from the
                                // pre-existing file when one is reopened, so the first rotation's
                                // markers are sound even then.
    let mut max_ts = match &cfg.rotate {
        Some((dir, session)) if existing > 0 => std::fs::read(segment_path(dir, *session, 0))
            .map(|data| {
                decode_all(&data)
                    .iter()
                    .map(|(r, _)| r.timestamp())
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0),
        _ => 0,
    };
    let mut seg = 0u64;
    let mut last_force = Instant::now();
    let mut last_heartbeat = Instant::now();
    let mut dirty = false;
    loop {
        let (drained, sync_goal) = {
            let mut buf = shared.buffer.lock();
            if buf.data.is_empty()
                && buf.sync_requested == buf.sync_completed
                && !shared.stop.load(Ordering::Acquire)
            {
                shared.wake.wait_for(&mut buf, WAKE_INTERVAL);
            }
            // Liveness marker (see `append_now`), drawn under the lock:
            // whenever there is data, a sync was requested, or the
            // heartbeat interval lapsed on an idle log. Once the writer
            // has appended its clean-close sentinel (`closed`, checked
            // under the same lock) heart-beating stops so the sentinel
            // remains the final record.
            if !shared.closed.load(Ordering::Acquire)
                && !shared.crashed.load(Ordering::Acquire)
                && (!buf.data.is_empty()
                    || buf.sync_requested > buf.sync_completed
                    || last_heartbeat.elapsed() >= FORCE_INTERVAL
                    || shared.stop.load(Ordering::Acquire))
            {
                let ts = crate::clock::now();
                LogRecord::Heartbeat { timestamp: ts }.encode(&mut buf.data);
                last_heartbeat = Instant::now();
            }
            (std::mem::take(&mut buf.data), buf.sync_requested)
        };
        if shared.crashed.load(Ordering::Acquire) {
            // Simulated crash: abandon the drained chunk and the
            // BufWriter's unflushed bytes (a dying process loses both);
            // only what already reached the file survives.
            let (file, _lost) = out.into_parts();
            drop(file);
            return;
        }
        if !drained.is_empty() {
            // Batched sequential write (§5: loggers batch updates) —
            // split at record-frame boundaries wherever the segment
            // threshold is crossed, sealing and rotating mid-chunk.
            // Rotation stops once the writer closed (the clean-close
            // sentinel must stay final).
            let mut off = 0usize;
            while off < drained.len() {
                let may_rotate = cfg.rotate.is_some() && !shared.closed.load(Ordering::Acquire);
                let rest = (drained.len() - off) as u64;
                if !may_rotate || written + rest < cfg.segment_bytes {
                    // The rest fits (or rotation is off): one write.
                    if out.write_all(&drained[off..]).is_err() {
                        mark_logger_dead(&shared);
                        return;
                    }
                    if cfg.rotate.is_some() {
                        max_ts = max_ts.max(max_frame_ts(&drained[off..]));
                    }
                    written += (drained.len() - off) as u64;
                    off = drained.len();
                } else {
                    let frame = frame_len(&drained[off..]);
                    if out.write_all(&drained[off..off + frame]).is_err() {
                        mark_logger_dead(&shared);
                        return;
                    }
                    max_ts = max_ts.max(frame_timestamp(&drained[off..off + frame]));
                    written += frame as u64;
                    off += frame;
                    if written >= cfg.segment_bytes {
                        let (dir, session) = cfg.rotate.as_ref().unwrap();
                        match rotate_segment(&shared, dir, *session, seg, &mut out, max_ts) {
                            Ok(hb_len) => {
                                seg += 1;
                                written = hb_len;
                                last_force = Instant::now();
                            }
                            Err(_) => {
                                mark_logger_dead(&shared);
                                return;
                            }
                        }
                    }
                }
            }
            dirty = true;
        }
        let mut acked = None;
        let force_due = dirty && last_force.elapsed() >= FORCE_INTERVAL;
        let sync_due = {
            let buf = shared.buffer.lock();
            buf.sync_completed < sync_goal
        };
        if force_due || sync_due {
            // A failed flush *or* sync must kill the logger, not ack:
            // acking would let `force` waiters report durability that
            // never happened.
            if out.flush().is_err() || out.get_ref().sync_data().is_err() {
                mark_logger_dead(&shared);
                return;
            }
            shared.durable.store(written, Ordering::Release);
            last_force = Instant::now();
            dirty = false;
            acked = Some(sync_goal);
        }
        if let Some(goal) = acked {
            let mut buf = shared.buffer.lock();
            if buf.sync_completed < goal {
                buf.sync_completed = goal;
                shared.done.notify_all();
            }
        }
        if shared.stop.load(Ordering::Acquire) {
            if out.flush().is_err() || out.get_ref().sync_data().is_err() {
                // Shutdown sync failed: die without acking, so any
                // concurrent `force` waiter reports the failure.
                mark_logger_dead(&shared);
                return;
            }
            shared.durable.store(written, Ordering::Release);
            // Everything drained above is now durable: ack any force
            // still outstanding so no waiter hangs across shutdown.
            let mut buf = shared.buffer.lock();
            if buf.sync_completed < buf.sync_requested {
                buf.sync_completed = buf.sync_requested;
            }
            shared.done.notify_all();
            return;
        }
    }
}

/// Byte length of the record frame at the head of `buf` (`u32` length
/// prefix + payload + CRC). The log buffer only ever holds whole frames
/// (records are encoded atomically under the buffer lock), so this is
/// how the logger splits a drained chunk at record boundaries; the
/// remainder is returned for a malformed head so a bad frame can never
/// wedge the loop.
fn frame_len(buf: &[u8]) -> usize {
    if buf.len() < 4 {
        return buf.len();
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    (4 + len + 4).min(buf.len())
}

/// Timestamp of the record frame at the head of `buf` (every record
/// starts `u32 length, u8 op, u64 timestamp` — see the module docs); 0
/// for a frame too short to carry one.
fn frame_timestamp(buf: &[u8]) -> u64 {
    buf.get(5..13)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or(0)
}

/// Max timestamp across all whole frames in `chunk`.
fn max_frame_ts(mut chunk: &[u8]) -> u64 {
    let mut max = 0u64;
    while !chunk.is_empty() {
        max = max.max(frame_timestamp(chunk));
        let n = frame_len(chunk);
        if n == 0 {
            break;
        }
        chunk = &chunk[n..];
    }
    max
}

/// Rotates the logger onto segment `seg + 1`, in the crash-safe order:
///
/// 1. **Create the successor file** (and sync it, plus the directory):
///    once the seal below lands, the successor's existence is what tells
///    recovery the session was still alive — a sealed newest segment
///    means a cleanly closed session.
/// 2. **Seal the current segment** with a [`LogRecord::CleanClose`]
///    sentinel, flush, and sync: the segment is now immutable and wholly
///    durable, so a later checkpoint can truncate it.
/// 3. **Switch**, writing an opening heartbeat so the fresh segment
///    carries liveness evidence as soon as the next force lands.
///
/// A crash inside this window only produces states recovery already
/// handles: an unsealed current segment (the session reads as crashed,
/// cutoff at its last record), or a sealed segment with an empty
/// successor (cutoff at the session's last durable timestamp).
///
/// Both markers are stamped `marker_ts` — the max timestamp among
/// frames already written to the chain — **never** `clock::now()`. A
/// now-stamp would run ahead of records stamped at put time but still
/// in flight to the (unsynced) successor: after a crash between the
/// seal's fsync and the successor's first sync, the surviving sentinel
/// would raise this session's contribution to the recovery cutoff past
/// its last durable record, keeping other sessions' records that may
/// depend on this session's lost ones (a prefix-consistency violation).
/// `marker_ts` only restates knowledge the durable file already
/// carries, so a crash at any point leaves the cutoff sound.
///
/// Returns the byte length of the opening heartbeat written to the new
/// segment.
fn rotate_segment(
    shared: &LogShared,
    dir: &Path,
    session: u64,
    seg: u64,
    out: &mut BufWriter<File>,
    marker_ts: u64,
) -> std::io::Result<u64> {
    let next_path = segment_path(dir, session, seg + 1);
    let next_file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&next_path)?;
    next_file.sync_all()?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all(); // make the new name durable (best effort)
    }
    let mut seal = Vec::with_capacity(64);
    LogRecord::CleanClose {
        timestamp: marker_ts,
    }
    .encode(&mut seal);
    out.write_all(&seal)?;
    out.flush()?;
    out.get_ref().sync_data()?;
    *shared.current_path.lock() = next_path;
    shared.segment.store(seg + 1, Ordering::Release);
    shared.sealed.fetch_add(1, Ordering::Relaxed);
    shared.durable.store(0, Ordering::Release);
    *out = BufWriter::with_capacity(1 << 20, next_file);
    let mut hb = Vec::with_capacity(64);
    LogRecord::Heartbeat {
        timestamp: marker_ts,
    }
    .encode(&mut hb);
    out.write_all(&hb)?;
    Ok(hb.len() as u64)
}

/// Decodes every intact record in `data`, returning each with its end
/// byte offset; parsing stops at the first torn or corrupt record.
pub fn decode_all(data: &[u8]) -> Vec<(LogRecord, usize)> {
    let mut records = Vec::new();
    let mut off = 0;
    while let Some((rec, used)) = LogRecord::decode(&data[off..]) {
        off += used;
        records.push((rec, off));
    }
    records
}

/// Reads every intact record from a log file, stopping at the first torn
/// or corrupt record (§5 recovery).
pub fn read_log(path: &Path) -> std::io::Result<Vec<LogRecord>> {
    let data = std::fs::read(path)?;
    Ok(decode_all(&data).into_iter().map(|(r, _)| r).collect())
}

/// What [`truncate_covered_segments`] reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TruncateReport {
    pub segments_deleted: u64,
    pub bytes_deleted: u64,
}

/// Deletes every log segment wholly covered by a checkpoint that began
/// at `cutoff_ts` — this is what keeps recovery bounded while the store
/// runs (§5: log data older than a completed checkpoint is reclaimed).
/// Equivalent to [`truncate_covered_segments_excluding`] with no live
/// sessions; use this form only on a quiescent directory (recovery,
/// tests).
pub fn truncate_covered_segments(dir: &Path, cutoff_ts: u64) -> std::io::Result<TruncateReport> {
    truncate_covered_segments_excluding(dir, cutoff_ts, &[])
}

/// [`truncate_covered_segments`] for a directory with live writers.
///
/// A segment is deleted only when all three hold:
///
/// - it is **sealed** (its final record is a [`LogRecord::CleanClose`]
///   sentinel): the writer will never touch the file again;
/// - every data record in it is stamped strictly before `cutoff_ts`, so
///   replay from the checkpoint would skip all of them anyway;
/// - it is either the newest segment of a session that is **not live**
///   (the sentinel then means the session closed cleanly, so deleting
///   its whole chain is fine) or some later segment of the session holds
///   at least one record — a crashed session must always retain on-disk
///   evidence of its last durable timestamp, which is what bounds the
///   recovery cutoff.
///
/// `live_sessions` names the sessions whose writers are still running.
/// The whole-chain rule is never applied to them: the directory listing
/// can race a concurrent rotation, making a just-sealed segment look
/// like the newest of a closed chain while the rotation's successor (and
/// its unsynced opening heartbeat) is the session's only other trace —
/// deleting it would erase exactly the evidence the third rule protects.
///
/// The caller must only pass `cutoff_ts` from a checkpoint whose
/// manifest is already durable: truncation erases the only other copy of
/// those records.
pub fn truncate_covered_segments_excluding(
    dir: &Path,
    cutoff_ts: u64,
    live_sessions: &[u64],
) -> std::io::Result<TruncateReport> {
    struct SegInfo {
        path: PathBuf,
        bytes: u64,
        nonempty: bool,
        sealed: bool,
        covered: bool,
    }
    let mut report = TruncateReport::default();
    for (session, segs) in crate::recovery::session_segments(dir) {
        // One read + decode pass per segment feeds every decision below.
        let infos: Vec<SegInfo> = segs
            .iter()
            .map(|(_, path)| {
                let data = std::fs::read(path).unwrap_or_default();
                let records = decode_all(&data);
                SegInfo {
                    path: path.clone(),
                    bytes: data.len() as u64,
                    nonempty: !records.is_empty(),
                    sealed: matches!(records.last(), Some((LogRecord::CleanClose { .. }, _))),
                    covered: records
                        .iter()
                        .filter(|(r, _)| !r.is_marker())
                        .all(|(r, _)| r.timestamp() < cutoff_ts),
                }
            })
            .collect();
        let live = live_sessions.contains(&session);
        for (i, info) in infos.iter().enumerate() {
            if !info.sealed || !info.covered {
                continue; // active, torn, or holding post-checkpoint data
            }
            let is_last = i + 1 == infos.len();
            let deletable = if is_last {
                !live // a live session's chain is still growing: the
                      // listing may have raced a rotation
            } else {
                // Keep the session's last durable-timestamp evidence.
                infos[i + 1..].iter().any(|s| s.nonempty)
            };
            if !deletable {
                continue;
            }
            std::fs::remove_file(&info.path)?;
            report.segments_deleted += 1;
            report.bytes_deleted += info.bytes;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64) -> LogRecord {
        LogRecord::Put {
            timestamp: ts,
            version: ts * 10,
            key: format!("key{ts}").into_bytes(),
            cols: vec![(0, b"aaaa".to_vec()), (3, b"d".to_vec())],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut buf = Vec::new();
        rec(1).encode(&mut buf);
        rec(2).encode(&mut buf);
        LogRecord::Remove {
            timestamp: 3,
            version: 30,
            key: b"gone".to_vec(),
        }
        .encode(&mut buf);
        let (r1, n1) = LogRecord::decode(&buf).unwrap();
        assert_eq!(r1, rec(1));
        let (r2, n2) = LogRecord::decode(&buf[n1..]).unwrap();
        assert_eq!(r2, rec(2));
        let (r3, n3) = LogRecord::decode(&buf[n1 + n2..]).unwrap();
        assert_eq!(r3.key(), b"gone");
        assert_eq!(n1 + n2 + n3, buf.len());
    }

    #[test]
    fn put_indirect_roundtrip() {
        let mut buf = Vec::new();
        let r = LogRecord::PutIndirect {
            timestamp: 11,
            version: 110,
            key: b"cold-key".to_vec(),
            ptr: ValuePtr {
                seg: 2,
                off: 8192,
                len: 4096,
                crc: 0x1234_5678,
            },
        };
        r.encode(&mut buf);
        rec(2).encode(&mut buf);
        let (d, n) = LogRecord::decode(&buf).unwrap();
        assert_eq!(d, r);
        assert_eq!(d.version(), 110);
        assert_eq!(d.key(), b"cold-key");
        assert!(!d.is_marker());
        let (d2, _) = LogRecord::decode(&buf[n..]).unwrap();
        assert_eq!(d2, rec(2));
    }

    #[test]
    fn torn_tail_is_rejected() {
        let mut buf = Vec::new();
        rec(1).encode(&mut buf);
        let full = buf.len();
        rec(2).encode(&mut buf);
        // Truncate mid-record: decode of the tail must fail.
        let torn = &buf[..full + 7];
        let (_, n1) = LogRecord::decode(torn).unwrap();
        assert!(LogRecord::decode(&torn[n1..]).is_none());
    }

    #[test]
    fn heartbeat_roundtrip() {
        let mut buf = Vec::new();
        LogRecord::Heartbeat { timestamp: 777 }.encode(&mut buf);
        let (r, used) = LogRecord::decode(&buf).unwrap();
        assert_eq!(r, LogRecord::Heartbeat { timestamp: 777 });
        assert_eq!(used, buf.len());
        assert_eq!(r.timestamp(), 777);
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let mut buf = Vec::new();
        rec(1).encode(&mut buf);
        let mid = buf.len() / 2;
        buf[mid] ^= 0xff;
        assert!(LogRecord::decode(&buf).is_none());
    }

    #[test]
    fn writer_persists_records() {
        let dir = std::env::temp_dir().join(format!("mtkv-logtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log0");
        let _ = std::fs::remove_file(&path);
        {
            let w = LogWriter::open(path.clone()).unwrap();
            for i in 0..100 {
                w.append(&rec(i));
            }
            assert!(w.force());
        }
        let records = read_log(&path).unwrap();
        let puts: Vec<&LogRecord> = records.iter().filter(|r| !r.is_marker()).collect();
        assert_eq!(puts.len(), 100);
        assert_eq!(*puts[42], rec(42));
        assert!(
            records.len() > puts.len(),
            "liveness heartbeats are interleaved"
        );
        assert!(
            matches!(records.last(), Some(LogRecord::CleanClose { .. })),
            "a dropped writer seals its log with the clean-close sentinel"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_close_roundtrip() {
        let mut buf = Vec::new();
        LogRecord::CleanClose { timestamp: 888 }.encode(&mut buf);
        let (r, used) = LogRecord::decode(&buf).unwrap();
        assert_eq!(r, LogRecord::CleanClose { timestamp: 888 });
        assert_eq!(used, buf.len());
        assert_eq!(r.timestamp(), 888);
        assert!(r.is_marker());
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mtkv-logseg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn segmented_writer_rotates_and_seals() {
        let dir = tmpdir("rotate");
        {
            let w = LogWriter::open_segmented(&dir, 7, 2048).unwrap();
            for i in 0..200 {
                w.append(&rec(i));
            }
            assert!(w.force());
            assert!(w.current_segment() > 0, "threshold crossed → rotated");
            assert_eq!(w.segments_sealed(), w.current_segment());
        }
        let segs = crate::recovery::session_segments(&dir).remove(&7).unwrap();
        assert!(segs.len() >= 2, "rotation produced multiple segments");
        let mut total_puts = 0;
        for (i, (seg, path)) in segs.iter().enumerate() {
            assert_eq!(*seg, i as u64, "contiguous segment numbering");
            let records = read_log(path).unwrap();
            assert!(
                matches!(records.last(), Some(LogRecord::CleanClose { .. })),
                "every segment (sealed or dropped) ends with the sentinel"
            );
            assert_eq!(
                records
                    .iter()
                    .filter(|r| matches!(r, LogRecord::CleanClose { .. }))
                    .count(),
                1,
                "exactly one sentinel per segment"
            );
            total_puts += records.iter().filter(|r| !r.is_marker()).count();
        }
        assert_eq!(total_puts, 200, "no record lost across rotation");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_markers_never_outrun_written_records() {
        // Regression: rotation used to stamp the seal sentinel and the
        // successor's opening heartbeat with `clock::now()`, which runs
        // ahead of records stamped at put time but still unsynced in the
        // successor. After a crash between the seal's fsync and the
        // successor's first sync, the surviving sentinel would inflate
        // the session's recovery-cutoff contribution past its last
        // durable record. Rotation markers must never carry a timestamp
        // later than the records written before them.
        let dir = tmpdir("marker-ts");
        {
            let w = LogWriter::open_segmented(&dir, 9, 1024).unwrap();
            for i in 0..200u64 {
                w.append_now(|timestamp| LogRecord::Put {
                    timestamp,
                    version: i,
                    key: format!("k{i}").into_bytes(),
                    cols: vec![(0, vec![0u8; 32])],
                });
            }
            assert!(w.force());
        }
        let segs = crate::recovery::session_segments(&dir).remove(&9).unwrap();
        assert!(segs.len() >= 3, "need several segments: {}", segs.len());
        let mut prev_max = 0u64; // max ts across all earlier segments
        for (i, (_, path)) in segs.iter().enumerate() {
            let records = read_log(path).unwrap();
            let is_last = i + 1 == segs.len();
            if i > 0 {
                let first = records.first().unwrap();
                assert!(
                    matches!(first, LogRecord::Heartbeat { .. }),
                    "rotated segment opens with a heartbeat: {first:?}"
                );
                assert!(
                    first.timestamp() <= prev_max,
                    "opening heartbeat ({}) claims knowledge past the \
                     records written before it ({prev_max})",
                    first.timestamp()
                );
            }
            let body_max = records
                .iter()
                .take(records.len() - 1)
                .map(|r| r.timestamp())
                .max()
                .unwrap_or(0);
            let seal = records.last().unwrap();
            assert!(matches!(seal, LogRecord::CleanClose { .. }));
            if !is_last {
                // Rotation seal (the final, drop-written seal goes
                // through the buffer in order, so now() is fine there).
                assert!(
                    seal.timestamp() <= prev_max.max(body_max),
                    "rotation seal ({}) claims knowledge past the records \
                     written before it ({})",
                    seal.timestamp(),
                    prev_max.max(body_max)
                );
            }
            prev_max = prev_max.max(body_max).max(seal.timestamp());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn simulate_crash_abandons_buffer_without_sentinel() {
        let dir = tmpdir("crash");
        let w = LogWriter::open_segmented(&dir, 0, u64::MAX).unwrap();
        for i in 0..50 {
            w.append(&rec(i));
        }
        assert!(w.force());
        // These records are appended but never forced: they may or may
        // not reach the file, and no sentinel must appear.
        for i in 50..60 {
            w.append(&rec(i));
        }
        let cp = w.simulate_crash();
        assert_eq!(cp.active_segment, segment_path(&dir, 0, 0));
        let data = std::fs::read(&cp.active_segment).unwrap();
        assert!(cp.durable_len <= data.len() as u64);
        let records = decode_all(&data);
        assert!(
            !matches!(records.last(), Some((LogRecord::CleanClose { .. }, _))),
            "a crashed log must not end in a clean-close sentinel"
        );
        let puts = records.iter().filter(|(r, _)| !r.is_marker()).count();
        assert!(puts >= 50, "forced records survive the crash: {puts}");
        // The durable watermark covers everything forced.
        let durable = decode_all(&data[..cp.durable_len as usize]);
        assert!(durable.iter().filter(|(r, _)| !r.is_marker()).count() >= 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_deletes_only_covered_sealed_segments() {
        let dir = tmpdir("trunc");
        {
            let w = LogWriter::open_segmented(&dir, 3, 1024).unwrap();
            for i in 0..120 {
                w.append_now(|timestamp| LogRecord::Put {
                    timestamp,
                    version: i,
                    key: format!("k{i}").into_bytes(),
                    cols: vec![(0, vec![0u8; 32])],
                });
            }
            assert!(w.force());
        }
        let segs = crate::recovery::session_segments(&dir).remove(&3).unwrap();
        assert!(segs.len() >= 3, "need several segments: {}", segs.len());
        // Cutoff past everything: every sealed segment is covered; the
        // chain closed cleanly so even the newest may go.
        let report = truncate_covered_segments(&dir, u64::MAX).unwrap();
        assert_eq!(report.segments_deleted, segs.len() as u64);
        assert!(crate::recovery::session_segments(&dir).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_spares_active_and_evidence_segments() {
        let dir = tmpdir("spare");
        let w = LogWriter::open_segmented(&dir, 5, 1024).unwrap();
        for i in 0..120 {
            w.append_now(|timestamp| LogRecord::Put {
                timestamp,
                version: i,
                key: format!("k{i}").into_bytes(),
                cols: vec![(0, vec![0u8; 32])],
            });
        }
        assert!(w.force());
        let before = crate::recovery::session_segments(&dir)
            .remove(&5)
            .unwrap()
            .len();
        assert!(before >= 3);
        // Writer still live: the active segment must survive, and
        // covered sealed segments may go.
        let report = truncate_covered_segments(&dir, u64::MAX).unwrap();
        assert!(report.segments_deleted >= 1);
        let after = crate::recovery::session_segments(&dir).remove(&5).unwrap();
        let active = segment_path(&dir, 5, w.current_segment());
        assert!(
            after.iter().any(|(_, p)| *p == active),
            "active segment never deleted"
        );
        // Cutoff below every record: nothing further is covered.
        let report = truncate_covered_segments(&dir, 0).unwrap();
        assert_eq!(report.segments_deleted, 0);
        drop(w);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
