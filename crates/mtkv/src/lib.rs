//! # mtkv — the Masstree storage system
//!
//! The full system from §3 and §5 of the paper around the `masstree`
//! index: multi-column versioned values with atomic multi-column puts,
//! per-worker value logging with group commit (≤200 ms force),
//! parallel fuzzy checkpointing, and parallel log recovery with a
//! prefix-consistent cutoff.
//!
//! ```no_run
//! use mtkv::Store;
//!
//! let store = Store::persistent(std::path::Path::new("/tmp/mtkv")).unwrap();
//! let session = store.session().unwrap();   // one per worker thread
//! session.put(b"user1", &[(0, b"alice"), (1, b"42")]);
//! assert_eq!(session.get(b"user1", Some(&[0])).unwrap()[0], b"alice");
//! ```

pub mod checkpoint;
pub mod clock;
pub mod crc32;
pub mod log;
pub mod recovery;
pub mod store;
pub mod value;
pub mod vtier;

pub use checkpoint::{
    latest_checkpoint, latest_checkpoint_at_or_before, prune_checkpoints, write_checkpoint,
    CheckpointMeta, CheckpointPayload,
};
pub use log::{
    read_log, segment_path, truncate_covered_segments, CrashPoint, LogRecord, LogWriter,
    TruncateReport,
};
pub use mtcache::{CacheConfig, CacheStats};
pub use mtobs;
pub use recovery::{
    log_files, parse_log_name, recover, recover_with, session_segments, RecoveryReport,
};
pub use store::{
    split_batch_runs, DurabilityConfig, DurabilityStats, PutOp, ReplStats, RunKind, ScanCursor,
    Session, Store,
};
pub use value::{ColValue, ValuePtr};
pub use vtier::{ValueError, ValueTier, ValueTierStats};
