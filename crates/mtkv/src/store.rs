//! The Masstree storage system (§3 and §5): `get_c`/`put_c`/`remove`/
//! `getrange_c` over multi-column values, with per-worker value logging
//! and an **online durability subsystem**.
//!
//! Workers register a [`Session`]; each session owns one segmented log
//! chain (per-core logs in the paper). Puts apply to the shared tree,
//! append to the session's log buffer, and return without waiting for
//! storage; logging threads batch and force every 200 ms (`log.rs`).
//!
//! A store configured with a checkpoint interval also owns a
//! **background checkpointer** thread (§4.4): it periodically writes a
//! fuzzy checkpoint of the live tree with the existing multi-threaded
//! checkpointer (writers keep logging throughout — no stalls), publishes
//! the manifest atomically, truncates every log segment the checkpoint
//! covers, and prunes superseded checkpoints. Log space and recovery
//! time are thereby bounded by the checkpoint cadence instead of process
//! uptime.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use masstree::hint::{HintResult, HintedGet};
use masstree::{AnchorStale, HintBatchScratch, LeafHint, Masstree};
use mtcache::{CacheConfig, CacheStats, CacheStatsShared, CursorCache, HintCache, Lookup};
use mtobs::{Kind as ObsKind, Obs, Recorder, Stage};
use parking_lot::{Condvar, Mutex};

use crate::checkpoint::{prune_checkpoints, write_checkpoint, CheckpointMeta};
use crate::log::{CrashPoint, LogRecord, LogWriter};
use crate::value::{ColValue, ValuePtr};
use crate::vtier::{self, ResolveScratch, ValueError, ValueTier, ValueTierStats};

/// Tuning for the online durability subsystem.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Rotation threshold for each session's log segments.
    pub segment_bytes: u64,
    /// How often the background checkpointer runs (`None`: no background
    /// thread; checkpoints happen only via [`Store::checkpoint_now`]).
    /// The paper checkpoints about once a minute.
    pub checkpoint_interval: Option<Duration>,
    /// Parallel writer threads per checkpoint.
    pub checkpoint_threads: usize,
    /// Complete checkpoints to keep on disk (older ones are pruned).
    pub keep_checkpoints: usize,
    /// Value-separation threshold: a put whose resulting value has at
    /// least this many data bytes goes to the value tier (the leaf
    /// keeps a fixed-size pointer record). `None` keeps every value
    /// inline — the pre-separation write path, byte for byte.
    pub value_threshold: Option<usize>,
    /// Rotation threshold for value segments.
    pub value_segment_bytes: u64,
    /// Byte budget of the in-memory cache indirect reads go through
    /// before touching disk.
    pub value_cache_bytes: usize,
    /// Dead fraction at which a sealed value segment becomes a GC
    /// rewrite candidate.
    pub gc_dead_fraction: f64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            segment_bytes: crate::log::DEFAULT_SEGMENT_BYTES,
            checkpoint_interval: None,
            checkpoint_threads: 4,
            keep_checkpoints: 2,
            value_threshold: None,
            value_segment_bytes: vtier::DEFAULT_VALUE_SEGMENT_BYTES,
            value_cache_bytes: vtier::DEFAULT_VALUE_CACHE_BYTES,
            gc_dead_fraction: 0.5,
        }
    }
}

impl DurabilityConfig {
    /// A config with a small rotation threshold (tests, benchmarks).
    pub fn tiny_segments(segment_bytes: u64) -> DurabilityConfig {
        DurabilityConfig {
            segment_bytes,
            ..DurabilityConfig::default()
        }
    }

    /// A config with the background checkpointer enabled.
    pub fn with_interval(mut self, interval: Duration) -> DurabilityConfig {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Enables the value-separation tier: values of at least
    /// `threshold` data bytes spill to value segments, and indirect
    /// reads go through a cache capped at `cache_bytes`.
    pub fn with_value_separation(mut self, threshold: usize, cache_bytes: usize) -> Self {
        self.value_threshold = Some(threshold);
        self.value_cache_bytes = cache_bytes;
        self
    }
}

/// A snapshot of the durability subsystem, served to clients through the
/// network `Stats`/`Flush` admin requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Checkpoints completed this store lifetime.
    pub checkpoints: u64,
    /// `start_ts` of the newest completed checkpoint (0 if none yet).
    pub last_checkpoint_start_ts: u64,
    /// Total bytes across the live log segments.
    pub log_bytes: u64,
    /// Live log segment files.
    pub log_segments: u64,
    /// Segments deleted by checkpoint truncation this lifetime.
    pub segments_truncated: u64,
}

/// Replication observability, shared between a store and the
/// replication endpoint attached to it (`mtnet`'s log-shipping source
/// or follower). Plain atomics so the hot paths that update them
/// (heartbeat/ack processing) never take a lock, and so the network
/// `Stats` request can snapshot them from any worker session.
#[derive(Debug, Default)]
pub struct ReplStats {
    /// 0 = replication off, 1 = primary (shipping), 2 = follower.
    pub role: AtomicU64,
    /// Connected followers (primary only).
    pub followers: AtomicU64,
    /// Replica lag in log bytes: on a primary, the worst lag across
    /// connected followers; on a follower, durable primary bytes not
    /// yet applied locally.
    pub lag_bytes: AtomicU64,
    /// Replica lag in primary clock microseconds (0 when fully caught
    /// up): on a primary, measured against follower ack echoes; on a
    /// follower, the newest primary heartbeat timestamp minus the
    /// timestamp of the last applied record.
    pub lag_ts_us: AtomicU64,
}

impl ReplStats {
    /// `(role, followers, lag_bytes, lag_ts_us)` in one call.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.role.load(Ordering::Relaxed),
            self.followers.load(Ordering::Relaxed),
            self.lag_bytes.load(Ordering::Relaxed),
            self.lag_ts_us.load(Ordering::Relaxed),
        )
    }
}

/// The background checkpointer thread's handle.
struct BgCheckpointer {
    thread: Option<std::thread::JoinHandle<()>>,
    thread_id: std::thread::ThreadId,
    signal: Arc<BgSignal>,
}

struct BgSignal {
    lock: Mutex<bool>, // true = stop requested
    cond: Condvar,
}

/// The shared store: one Masstree of [`ColValue`]s plus logging and
/// online durability state.
pub struct Store {
    pub(crate) tree: Masstree<ColValue>,
    /// Global value-version source: per-value versions are strictly
    /// increasing because every put draws a fresh version (§5).
    next_version: AtomicU64,
    log_dir: Option<PathBuf>,
    next_log_id: AtomicU64,
    config: DurabilityConfig,
    /// Checkpoints completed this lifetime (the "checkpoint epoch").
    ckpt_epoch: AtomicU64,
    /// `start_ts` of the newest completed checkpoint.
    last_ckpt_start_ts: AtomicU64,
    /// Segments deleted by truncation this lifetime.
    truncated: AtomicU64,
    /// Serializes durability cycles (background vs. `checkpoint_now`).
    cycle_lock: Mutex<()>,
    bg: Mutex<Option<BgCheckpointer>>,
    /// Weak handles to every session's log (tagged with the session id),
    /// so a durability cycle can group-commit all of them past a
    /// checkpoint before truncating, and exempt live sessions from the
    /// whole-chain truncation rule.
    log_handles: Mutex<Vec<(u64, crate::log::LogForceHandle)>>,
    /// Set (permanently) when any session's logger dies without
    /// completing its shutdown protocol — I/O error or simulated crash.
    /// The dead session's torn chain stays on disk with a last durable
    /// timestamp that may sit below any later checkpoint's `start_ts`,
    /// so a future recovery cutoff could reject that checkpoint;
    /// durability cycles therefore stop truncating log segments (the
    /// logs remain the authoritative copy) until a recovery reseals the
    /// directory. Shared with every logger via
    /// `LogWriter::open_segmented_poisoned` because the writer can be
    /// dropped before the next cycle would observe the crash.
    log_poison: Arc<AtomicBool>,
    /// Hot-path cache tier (`mtcache`): when set, every new [`Session`]
    /// gets its own per-worker leaf-hint cache with this tuning.
    session_cache: Mutex<Option<CacheConfig>>,
    /// Store-wide aggregation sink for the per-session cache counters
    /// (served through the network `Stats` request).
    cache_shared: Arc<CacheStatsShared>,
    /// Weak handles to every live session's cache, so a store-level
    /// stats read ([`Store::cache_stats`]) can flush **all** sessions'
    /// batched local counters into the shared sink — not just the
    /// requesting session's.
    cache_registry: Mutex<Vec<Weak<SessionCache>>>,
    /// Replication observability (role, follower count, lag), written
    /// by the attached replication endpoint and served through `Stats`.
    repl: Arc<ReplStats>,
    /// Set while a log-shipping source is attached: durability cycles
    /// keep checkpointing but skip segment truncation, because the log
    /// chains are the replication feed — a truncated segment could be
    /// exactly the one a reconnecting follower still needs.
    repl_pin: AtomicBool,
    /// Latency observability hub (`mtobs`): every session registers a
    /// per-worker histogram recorder here (the [`Store::cache_stats`]
    /// registry discipline), background subsystems record into its
    /// global set, and wire-level `StatsEx` / the metrics endpoint
    /// snapshot-merge the lot.
    obs: Arc<Obs>,
    /// The value-separation tier (`vtier`): cold value segments, the
    /// budgeted resolution cache, and segment liveness accounting.
    /// `None` when separation is off and no value segments exist.
    vtier: Option<Arc<ValueTier>>,
    /// The GC relocator's own log chain, created lazily on the first
    /// relocation: rewritten pointers are WAL-logged like any other
    /// put, so a crash mid-GC replays them (version-gated) instead of
    /// leaving the tree pointing into a segment a later pass deletes.
    gc_log: Mutex<Option<LogWriter>>,
}

impl Store {
    /// An in-memory store (no logging) — used for tree-only benchmarks.
    pub fn in_memory() -> Arc<Store> {
        Arc::new(Store::new_with(
            Masstree::new(),
            1,
            None,
            DurabilityConfig::default(),
        ))
    }

    /// An in-memory replica store with a **reader-only** value tier
    /// over `dir` (replication followers: the WAL and value-segment
    /// mirrors live there, but the replica itself never logs). Indirect
    /// values applied via [`Store::replay_put_indirect`] resolve
    /// through the mirrored segments.
    pub fn replica(dir: &Path) -> std::io::Result<Arc<Store>> {
        let mut store = Store::new_with(Masstree::new(), 1, None, DurabilityConfig::default());
        store.attach_value_reader(dir)?;
        Ok(Arc::new(store))
    }

    /// A persistent store logging into `dir` (one segmented log chain
    /// per session), with default durability tuning (64 MiB segments, no
    /// background checkpointer).
    pub fn persistent(dir: &Path) -> std::io::Result<Arc<Store>> {
        Self::persistent_with(dir, DurabilityConfig::default())
    }

    /// A persistent store with explicit durability tuning. When
    /// `config.checkpoint_interval` is set, a background checkpointer
    /// thread runs the checkpoint → truncate → prune cycle on that
    /// cadence until the store is dropped.
    pub fn persistent_with(dir: &Path, config: DurabilityConfig) -> std::io::Result<Arc<Store>> {
        std::fs::create_dir_all(dir)?;
        let mut store = Store::new_with(Masstree::new(), 1, Some(dir.to_path_buf()), config);
        store.attach_value_tier()?;
        let store = Arc::new(store);
        store.spawn_background_checkpointer();
        Ok(store)
    }

    fn new_with(
        tree: Masstree<ColValue>,
        next_version: u64,
        log_dir: Option<PathBuf>,
        config: DurabilityConfig,
    ) -> Store {
        let next_log_id = log_dir.as_deref().map(next_log_id_in).unwrap_or(0);
        Store {
            tree,
            next_version: AtomicU64::new(next_version),
            log_dir,
            next_log_id: AtomicU64::new(next_log_id),
            config,
            ckpt_epoch: AtomicU64::new(0),
            last_ckpt_start_ts: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            cycle_lock: Mutex::new(()),
            bg: Mutex::new(None),
            log_handles: Mutex::new(Vec::new()),
            log_poison: Arc::default(),
            session_cache: Mutex::new(None),
            cache_shared: Arc::default(),
            cache_registry: Mutex::new(Vec::new()),
            repl: Arc::default(),
            repl_pin: AtomicBool::new(false),
            obs: Arc::default(),
            vtier: None,
            gc_log: Mutex::new(None),
        }
    }

    /// The store's observability hub: per-worker latency histograms,
    /// background-subsystem timings, sampled traces.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    pub(crate) fn with_state(
        tree: Masstree<ColValue>,
        next_version: u64,
        config: DurabilityConfig,
    ) -> Store {
        Store::new_with(tree, next_version, None, config)
    }

    /// Re-attaches logging (used after recovery).
    pub(crate) fn set_log_dir(&mut self, dir: PathBuf) {
        self.next_log_id
            .store(next_log_id_in(&dir), Ordering::Relaxed);
        self.log_dir = Some(dir);
    }

    /// Mounts the value tier over the log directory when the config
    /// enables separation **or** value segments already exist on disk
    /// (a recovered store must keep resolving old pointers even with
    /// the threshold now off). No-op for in-memory stores and when
    /// neither condition holds — the all-inline path stays untouched.
    pub(crate) fn attach_value_tier(&mut self) -> std::io::Result<()> {
        let Some(dir) = self.log_dir.clone() else {
            return Ok(());
        };
        if self.config.value_threshold.is_none() && vtier::vseg_ids(&dir).is_empty() {
            return Ok(());
        }
        let tier = ValueTier::open(
            &dir,
            self.config.value_segment_bytes,
            self.config.value_cache_bytes,
            true,
        )?;
        tier.set_obs(Arc::clone(&self.obs));
        self.vtier = Some(Arc::new(tier));
        Ok(())
    }

    /// Mounts a **reader-only** value tier over `dir` (replication
    /// followers: segment bytes arrive by mirroring, never by local
    /// appends, and local appends would collide with shipped ids).
    pub fn attach_value_reader(&mut self, dir: &Path) -> std::io::Result<()> {
        let tier = ValueTier::open(
            dir,
            self.config.value_segment_bytes,
            self.config.value_cache_bytes,
            false,
        )?;
        tier.set_obs(Arc::clone(&self.obs));
        self.vtier = Some(Arc::new(tier));
        Ok(())
    }

    /// The mounted value tier, if any.
    pub fn value_tier(&self) -> Option<&Arc<ValueTier>> {
        self.vtier.as_ref()
    }

    /// Value-tier observability counters (zeros when no tier mounted).
    pub fn value_tier_stats(&self) -> ValueTierStats {
        self.vtier.as_ref().map(|t| t.stats()).unwrap_or_default()
    }

    /// Resolves an indirect value's payload through the tier cache.
    pub(crate) fn resolve_indirect(
        &self,
        ptr: ValuePtr,
        version: u64,
    ) -> Result<Arc<ColValue>, ValueError> {
        match &self.vtier {
            Some(t) => t.resolve(ptr, version),
            None => Err(ValueError::TornOrMissing),
        }
    }

    /// Batched [`Store::resolve_indirect`]: one cache probe per request,
    /// misses coalesced into clustered segment reads (see
    /// [`ValueTier::resolve_many`]). Without a mounted tier every
    /// request resolves to `None`, matching the single-resolve error.
    pub(crate) fn resolve_indirect_many(
        &self,
        reqs: &[(ValuePtr, u64)],
        out: &mut Vec<Option<Arc<ColValue>>>,
        scratch: &mut ResolveScratch,
    ) {
        match &self.vtier {
            Some(t) => t.resolve_many(reqs, out, scratch),
            None => {
                out.clear();
                out.resize(reqs.len(), None);
            }
        }
    }

    /// Forces the value tier (ordered **before** any WAL force on every
    /// ack path: a durable pointer record then always names a durable
    /// payload). Trivially true when no tier is mounted.
    #[must_use]
    pub fn force_value_tier(&self) -> bool {
        self.vtier.as_ref().map(|t| t.force()).unwrap_or(true)
    }

    /// Builds the inline result of applying `updates` over `old`,
    /// resolving an indirect base through the tier first so column
    /// merges see the real columns (and reporting the superseded
    /// pointer through `dead_ptr` for liveness accounting). An
    /// unresolvable base — torn or corrupt payload — is treated as
    /// absent rather than failing the put: the write is the newest
    /// intent and wins.
    fn build_value(
        &self,
        old: Option<&ColValue>,
        updates: &[(usize, &[u8])],
        version: u64,
        dead_ptr: &mut Option<ValuePtr>,
    ) -> ColValue {
        match old {
            None => ColValue::from_updates(version, updates),
            Some(prev) => match prev.ptr() {
                None => prev.with_updates(version, updates),
                Some(p) => {
                    *dead_ptr = Some(p);
                    match self.resolve_indirect(p, prev.version()) {
                        Ok(base) => base.with_updates(version, updates),
                        Err(_) => ColValue::from_updates(version, updates),
                    }
                }
            },
        }
    }

    /// Spills `newval` to the value tier when separation is on and the
    /// value's data bytes reach the threshold: the payload is appended
    /// to the active value segment and an indirect pointer record is
    /// installed in its place (reported through `out_ptr` so the WAL
    /// logs a `PutIndirect`). Below the threshold — or with separation
    /// off, or on an append failure — the value stays inline, which is
    /// always correct.
    fn separate_value(
        &self,
        newval: ColValue,
        version: u64,
        out_ptr: &mut Option<ValuePtr>,
    ) -> ColValue {
        *out_ptr = None;
        let (Some(threshold), Some(tier)) = (self.config.value_threshold, &self.vtier) else {
            return newval;
        };
        if newval.is_indirect() || newval.data_bytes() < threshold {
            return newval;
        }
        let cols: Vec<&[u8]> = (0..newval.ncols())
            .map(|i| newval.col(i).unwrap_or(&[]))
            .collect();
        let mut payload = Vec::with_capacity(newval.data_bytes() + 4 * cols.len() + 2);
        vtier::encode_payload(&cols, &mut payload);
        match tier.append(&payload) {
            Ok(ptr) => {
                *out_ptr = Some(ptr);
                ColValue::indirect(version, ptr)
            }
            Err(_) => newval,
        }
    }

    /// Credits a superseded pointer's bytes to its segment's dead count.
    fn note_dead_ptr(&self, ptr: Option<ValuePtr>) {
        if let (Some(p), Some(t)) = (ptr, &self.vtier) {
            t.note_dead(p);
        }
    }

    /// Starts the background checkpointer if the config asks for one.
    /// The thread holds only a `Weak` reference, so it never keeps the
    /// store alive; it exits when the store is dropped or stopped.
    pub(crate) fn spawn_background_checkpointer(self: &Arc<Store>) {
        let Some(interval) = self.config.checkpoint_interval else {
            return;
        };
        if self.log_dir.is_none() {
            return;
        }
        let signal = Arc::new(BgSignal {
            lock: Mutex::new(false),
            cond: Condvar::new(),
        });
        let sig2 = Arc::clone(&signal);
        let weak: Weak<Store> = Arc::downgrade(self);
        let thread = std::thread::Builder::new()
            .name("mt-checkpointer".into())
            .spawn(move || loop {
                {
                    let mut stop = sig2.lock.lock();
                    if !*stop {
                        sig2.cond.wait_for(&mut stop, interval);
                    }
                    if *stop {
                        return;
                    }
                }
                let Some(store) = weak.upgrade() else { return };
                // Errors are not fatal to the loop: a transient I/O
                // failure just means this cycle's checkpoint is skipped
                // and the logs keep everything.
                let _ = store.run_durability_cycle();
            })
            .expect("spawn checkpointer");
        *self.bg.lock() = Some(BgCheckpointer {
            thread_id: thread.thread().id(),
            thread: Some(thread),
            signal,
        });
    }

    /// Stops the background checkpointer (idempotent). Called on drop;
    /// also usable by tests that want a quiescent store.
    pub fn stop_background_checkpointer(&self) {
        let Some(mut bg) = self.bg.lock().take() else {
            return;
        };
        *bg.signal.lock.lock() = true;
        bg.signal.cond.notify_all();
        if let Some(t) = bg.thread.take() {
            // The last Arc can be dropped *by* the checkpointer thread
            // itself (it upgrades its Weak for the duration of a cycle);
            // a thread cannot join itself, so detach in that case — the
            // stop flag above makes it exit on its next loop iteration.
            if bg.thread_id == std::thread::current().id() {
                drop(t);
            } else {
                let _ = t.join();
            }
        }
    }

    /// One durability cycle (§4.4, run by the background checkpointer
    /// and by [`Store::checkpoint_now`]): write a fuzzy checkpoint of
    /// the live tree in parallel with request processing, publish its
    /// manifest atomically, truncate every log segment it covers, and
    /// prune superseded checkpoints.
    fn run_durability_cycle(self: &Arc<Self>) -> std::io::Result<CheckpointMeta> {
        let dir = self
            .log_dir
            .clone()
            .ok_or_else(|| std::io::Error::other("in-memory store has no durability"))?;
        let _cycle = self.cycle_lock.lock();
        let ckpt_t0 = Instant::now();
        let meta = write_checkpoint(self, &dir, self.config.checkpoint_threads)?;
        self.obs
            .global()
            .record(ObsKind::Checkpoint, ckpt_t0.elapsed().as_nanos() as u64);
        // Publish the epoch only after the manifest rename: `Flush`
        // waiters observing the new epoch may rely on the checkpoint
        // being durable.
        self.last_ckpt_start_ts
            .store(meta.start_ts, Ordering::Release);
        self.ckpt_epoch.fetch_add(1, Ordering::Release);
        // Group-commit barrier before truncation: force every live log
        // so each durably holds a record stamped after `start_ts`. Any
        // future recovery cutoff is then ≥ start_ts, so the checkpoint
        // we are about to make the *only* copy of the covered records
        // can never be rejected. Cleanly closed logs are excluded from
        // the cutoff and need no barrier (their handles are pruned as a
        // side effect); a log whose durability the barrier could NOT
        // confirm — dead on an I/O error, or a close whose final sync is
        // still in flight — blocks truncation for this cycle, because a
        // crash would leave its chain's last durable timestamp below
        // `start_ts` and recovery would reject the checkpoint.
        use crate::log::BarrierOutcome;
        // Payloads before pointers: any WAL record the barrier is about
        // to make durable may carry a value pointer.
        let tier_forced = self.force_value_tier();
        let barrier_t0 = Instant::now();
        let mut barrier_confirmed = true;
        let live_sessions: Vec<u64> = {
            let mut handles = self.log_handles.lock();
            // The per-session forces are independent syncs on different
            // files, so issue them **concurrently**: the barrier then
            // costs the slowest single sync instead of the sum over all
            // sessions (which used to serialize one force per session
            // per cycle). The fan-out is bounded: the server holds one
            // log per connection, so an unbounded spawn would burst one
            // OS thread (and one in-flight fsync) per client every
            // cycle. Scoped threads borrow the handles in place; a
            // panicked force counts as Unconfirmed, which blocks
            // truncation — the safe direction.
            const BARRIER_FANOUT: usize = 16;
            let mut outcomes: Vec<BarrierOutcome> = Vec::with_capacity(handles.len());
            for chunk in handles.chunks(BARRIER_FANOUT) {
                outcomes.extend(std::thread::scope(|s| {
                    let joins: Vec<_> = chunk
                        .iter()
                        .map(|(_, h)| s.spawn(move || h.barrier_force()))
                        .collect();
                    joins
                        .into_iter()
                        .map(|j| j.join().unwrap_or(BarrierOutcome::Unconfirmed))
                        .collect::<Vec<_>>()
                }));
            }
            let mut outcomes = outcomes.into_iter();
            handles.retain(
                |_| match outcomes.next().expect("one barrier outcome per handle") {
                    BarrierOutcome::Synced => true,
                    BarrierOutcome::Closed => false,
                    BarrierOutcome::Unconfirmed => {
                        barrier_confirmed = false;
                        true
                    }
                },
            );
            handles.iter().map(|&(id, _)| id).collect()
        };
        self.obs
            .global()
            .record(ObsKind::Barrier, barrier_t0.elapsed().as_nanos() as u64);
        // The poison flag covers crashes the barrier can no longer see
        // (a logger that died and whose writer was already dropped): its
        // torn chain pins future cutoffs, so truncation stays off until
        // a recovery reseals the directory. Pruning stays off with it:
        // records truncated in earlier *healthy* cycles now exist only
        // in the checkpoints of that era, and an older checkpoint may be
        // the only one whose `start_ts` a post-crash cutoff accepts
        // (recovery falls back to the newest checkpoint at or before the
        // cutoff) — deleting it would orphan those records.
        let gates_held = tier_forced
            && barrier_confirmed
            && !self.log_poison.load(Ordering::Acquire)
            && !self.repl_pin.load(Ordering::Acquire);
        if gates_held {
            let tr = crate::log::truncate_covered_segments_excluding(
                &dir,
                meta.start_ts,
                &live_sessions,
            )?;
            self.truncated
                .fetch_add(tr.segments_deleted, Ordering::Relaxed);
            prune_checkpoints(&dir, self.config.keep_checkpoints.max(1))?;
        }
        // Value-segment GC rides the same cadence and the same gates.
        self.run_value_gc(gates_held, meta.start_ts);
        Ok(meta)
    }

    /// One value-tier GC pass, run under the cycle lock after the
    /// checkpoint publishes.
    ///
    /// **Deletion** (phase A) enforces the liveness rule: a condemned
    /// segment is deleted only once a confirmed-barrier checkpoint with
    /// `start_ts ≥` its condemn time has published — every relocation
    /// out of it was then visible to that checkpoint's scan, its WAL
    /// records are stamped before `start_ts`, and no future recovery
    /// cutoff (all ≥ `start_ts` by the barrier) can replay a pointer
    /// into it. The gates match truncation's exactly: an unconfirmed
    /// barrier, a poisoned log, or a replication pin all mean old log
    /// records — which may hold old pointers — can still replay.
    ///
    /// **Relocation** (phase B) rewrites the still-live values of
    /// mostly-dead sealed segments to the active segment via hinted
    /// conditional updates (`update_at_hint`: the pointer is installed
    /// only if the key still holds the exact version the scan saw — a
    /// plain put would resurrect concurrently removed keys), logs each
    /// rewrite as a `PutIndirect` to the GC's own log chain, and
    /// condemns segments that relocated cleanly.
    fn run_value_gc(self: &Arc<Self>, gates_held: bool, covered_ts: u64) {
        let Some(tier) = self.vtier.clone() else {
            return;
        };
        let gc_t0 = Instant::now();
        // The whole pass (delete + scan + relocate) counts as one GC
        // timing sample, recorded even for trivial passes so the
        // histogram reflects the real cadence.
        let _gc_timer = ScopeTimer {
            obs: &self.obs,
            kind: ObsKind::GcPass,
            t0: gc_t0,
        };
        if gates_held {
            tier.delete_condemned(covered_ts);
        }
        let candidates = tier.gc_candidates(self.config.gc_dead_fraction);
        if candidates.is_empty() {
            return;
        }
        let cand: std::collections::HashSet<u64> = candidates.iter().copied().collect();
        // One scan collects every live reference into a candidate
        // segment; the relocations then validate per key.
        let mut refs: Vec<(Vec<u8>, u64, ValuePtr)> = Vec::new();
        {
            let guard = masstree::pin();
            self.tree.scan(b"", &guard, |k, v| {
                if let Some(p) = v.ptr() {
                    if cand.contains(&p.seg) {
                        refs.push((k.to_vec(), v.version(), p));
                    }
                }
                true
            });
        }
        let mut clean: std::collections::HashMap<u64, bool> =
            candidates.iter().map(|&s| (s, true)).collect();
        let mut relocated = 0u64;
        for (key, seen_version, p) in refs {
            let payload = match tier.read_raw(p) {
                Ok(b) => b,
                Err(_) => {
                    // Unreadable live value: the segment must survive
                    // (the pointer still resolves nowhere else).
                    clean.insert(p.seg, false);
                    continue;
                }
            };
            let np = match tier.append(&payload) {
                Ok(np) => np,
                Err(_) => {
                    clean.insert(p.seg, false);
                    continue;
                }
            };
            let guard = masstree::pin();
            let mut new_version = None;
            let mut relocate = |old: &ColValue| {
                if old.version() == seen_version && old.is_indirect() {
                    let nv = self.draw_version();
                    new_version = Some(nv);
                    Some(ColValue::indirect(nv, np))
                } else {
                    None // a concurrent writer already superseded it
                }
            };
            let (_, hint) = self.tree.get_capturing_hint(&key, &guard);
            let outcome = match self.tree.update_at_hint(&key, &hint, &mut relocate, &guard) {
                Ok((u, _)) => u,
                Err(AnchorStale) => self.tree.update_with(&key, &mut relocate, &guard),
            };
            let replaced = matches!(outcome, masstree::Update::Replaced(_));
            drop(guard);
            if replaced {
                let version = new_version.expect("replacement drew a version");
                let logged = self.with_gc_log(|log| {
                    log.append_now(|timestamp| LogRecord::PutIndirect {
                        timestamp,
                        version,
                        key: key.clone(),
                        ptr: np,
                    });
                });
                if !logged {
                    // Unlogged relocation: recovery would replay the
                    // old pointer. Both copies stay; the segment
                    // cannot be condemned this pass.
                    clean.insert(p.seg, false);
                    continue;
                }
                tier.note_dead(p);
                tier.note_rewritten(p.len as u64);
                relocated += 1;
            } else {
                // Lost the race (Kept/Absent): our fresh copy is
                // garbage.
                tier.note_dead(np);
            }
        }
        if relocated > 0 {
            // Durability order as on the ack path: payloads first, then
            // the WAL records whose pointers name them. A failed force
            // leaves both copies in place — safe, just not reclaimable.
            if !tier.force() {
                return;
            }
            let mut wal_ok = false;
            if !self.with_gc_log(|log| wal_ok = log.force()) || !wal_ok {
                return;
            }
        }
        let now = crate::clock::now();
        for seg in candidates {
            if clean.get(&seg).copied().unwrap_or(false) {
                tier.condemn(seg, now);
            }
        }
    }

    /// Runs `f` with the GC's log writer, creating the chain on first
    /// use (its own session id, with the same durably-synced
    /// `SessionCreate` journal entry as a worker session). Returns
    /// false — and skips `f` — when the chain cannot be established.
    fn with_gc_log(&self, f: impl FnOnce(&LogWriter)) -> bool {
        let Some(dir) = &self.log_dir else {
            return false;
        };
        let mut slot = self.gc_log.lock();
        if slot.is_none() {
            let id = self.next_log_id.fetch_add(1, Ordering::Relaxed);
            let Ok(log) = LogWriter::open_segmented_poisoned(
                dir,
                id,
                self.config.segment_bytes,
                Arc::clone(&self.log_poison),
            ) else {
                return false;
            };
            log.append_now(|timestamp| LogRecord::SessionCreate { timestamp });
            if !log.force() {
                return false;
            }
            let mut handles = self.log_handles.lock();
            handles.retain(|(_, h)| h.is_alive());
            handles.push((id, log.force_handle()));
            *slot = Some(log);
        }
        f(slot.as_ref().expect("created above"));
        true
    }

    /// Runs one full durability cycle synchronously: checkpoint,
    /// truncate covered segments, prune old checkpoints. Serialized with
    /// the background checkpointer. Errors for in-memory stores.
    pub fn checkpoint_now(self: &Arc<Self>) -> std::io::Result<CheckpointMeta> {
        self.run_durability_cycle()
    }

    /// Checkpoints completed this store lifetime.
    pub fn checkpoint_epoch(&self) -> u64 {
        self.ckpt_epoch.load(Ordering::Acquire)
    }

    /// A snapshot of the durability subsystem (log bytes are measured
    /// from the directory, so the numbers reflect truncation).
    pub fn durability_stats(&self) -> DurabilityStats {
        let mut stats = DurabilityStats {
            checkpoints: self.ckpt_epoch.load(Ordering::Acquire),
            last_checkpoint_start_ts: self.last_ckpt_start_ts.load(Ordering::Acquire),
            segments_truncated: self.truncated.load(Ordering::Relaxed),
            ..DurabilityStats::default()
        };
        if let Some(dir) = &self.log_dir {
            for path in crate::recovery::log_files(dir) {
                stats.log_segments += 1;
                stats.log_bytes += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            }
        }
        stats
    }

    /// The directory this store logs into (`None` for in-memory stores).
    pub fn log_dir(&self) -> Option<&Path> {
        self.log_dir.as_deref()
    }

    /// Replication observability counters (role / followers / lag),
    /// written by the attached replication endpoint.
    pub fn repl_stats(&self) -> Arc<ReplStats> {
        Arc::clone(&self.repl)
    }

    /// Pins (or unpins) checkpoint-driven log truncation. A log-shipping
    /// source pins while attached: the segment chains are its feed, and
    /// a reconnecting follower may still need any of them.
    pub fn pin_log_truncation(&self, pinned: bool) {
        self.repl_pin.store(pinned, Ordering::Release);
    }

    /// Per-session durable shipping watermarks for every *live* log:
    /// `(session id, active segment, durable bytes of that segment)`.
    /// Segments below the active one are sealed and fully durable.
    /// Sessions whose writer is gone are omitted — their whole chain is
    /// static on disk and can be shipped at full length.
    pub fn shipping_watermarks(&self) -> Vec<(u64, u64, u64)> {
        self.log_handles
            .lock()
            .iter()
            .filter_map(|(id, h)| h.progress().map(|(seg, durable)| (*id, seg, durable)))
            .collect()
    }

    /// Applies a replicated put. Version-gated exactly like recovery
    /// replay: a value already at or past `version` is kept, so
    /// re-replaying a re-sent log tail is idempotent. Log records carry
    /// the full resulting value (not a delta), so a newer record simply
    /// replaces whatever is resident. Only a replica's single apply
    /// thread calls this — the store has no local writers.
    pub fn replay_put(&self, key: &[u8], version: u64, cols: &[(u16, Vec<u8>)]) {
        let guard = masstree::pin();
        self.tree.put_with(
            key,
            |old| match old {
                // Keep-by-clone, not by column rebuild: the resident
                // value may be an indirect pointer record (zero
                // columns), which a rebuild would silently destroy.
                Some(prev) if prev.version() >= version => prev.clone(),
                _ => {
                    let updates: Vec<(usize, &[u8])> = cols
                        .iter()
                        .map(|(i, d)| (*i as usize, d.as_slice()))
                        .collect();
                    ColValue::from_updates(version, &updates)
                }
            },
            &guard,
        );
        self.next_version.fetch_max(version + 1, Ordering::Relaxed);
    }

    /// Applies a replicated indirect put: installs the pointer record
    /// version-gated, exactly like [`Store::replay_put`]. The payload
    /// is **not** verified here — follower apply threads run behind
    /// segment mirroring, and every read through the tier re-checks the
    /// pointer's crc/length before serving a byte.
    pub fn replay_put_indirect(&self, key: &[u8], version: u64, ptr: ValuePtr) {
        let guard = masstree::pin();
        self.tree.put_with(
            key,
            |old| match old {
                Some(prev) if prev.version() >= version => prev.clone(),
                _ => ColValue::indirect(version, ptr),
            },
            &guard,
        );
        self.next_version.fetch_max(version + 1, Ordering::Relaxed);
    }

    /// Applies a replicated remove: drops the key iff the resident value
    /// is older than the remove's `version`. Unlike recovery replay this
    /// leaves **no tombstone** — the replica's apply thread is the only
    /// writer and keeps its own anti-resurrection map keyed by remove
    /// version, so scans never have to filter zero-column values.
    pub fn replay_remove(&self, key: &[u8], version: u64) {
        let guard = masstree::pin();
        let newer = self
            .tree
            .get(key, &guard)
            .is_some_and(|v| v.version() >= version);
        if !newer {
            self.tree.remove(key, &guard);
        }
        self.next_version.fetch_max(version + 1, Ordering::Relaxed);
    }

    /// Empties the tree in place (replica full-resync after a primary
    /// epoch change: the old replicated state may not be a prefix of the
    /// new primary's log, so it is discarded wholesale).
    pub fn reset_replica(&self) {
        // Epoch resync re-mirrors the value segments from scratch, and
        // segment ids restart — a cached (seg, off) payload from the
        // old epoch would serve wrong bytes for a new-epoch pointer.
        if let Some(t) = &self.vtier {
            t.purge_cache();
        }
        let guard = masstree::pin();
        loop {
            let mut keys: Vec<Vec<u8>> = Vec::new();
            self.tree.scan(b"", &guard, |k, _| {
                keys.push(k.to_vec());
                keys.len() < 4096
            });
            if keys.is_empty() {
                return;
            }
            for k in &keys {
                self.tree.remove(k, &guard);
            }
        }
    }

    /// Enables (or disables, with `None`) the hot-path cache tier for
    /// **future** sessions: each one gets its own per-worker leaf-hint
    /// cache (`mtcache`) consulted by `get`/`get_with`/`multi_get*` and
    /// maintained by `put`/`remove`. Existing sessions are unaffected;
    /// the network server creates one session per connection, so setting
    /// this before `Server::start` gives every connection a cache.
    pub fn set_session_cache(&self, config: Option<CacheConfig>) {
        *self.session_cache.lock() = config;
    }

    /// Aggregated cache counters across **every live session** plus
    /// everything already-closed sessions flushed: live sessions'
    /// batched local counters are flushed into the shared sink first
    /// (via the registry of weak cache handles), so the snapshot
    /// reflects all traffic up to this call — not just traffic that
    /// happened to cross a session's 256-event flush threshold.
    pub fn cache_stats(&self) -> CacheStats {
        self.flush_session_caches();
        self.cache_shared.snapshot()
    }

    /// Counts scan-token cursor evictions (the network server's
    /// per-connection LRU cap) into the store-wide cache stats, where
    /// they surface as `cache_scan_evictions`.
    pub fn note_scan_evictions(&self, n: u64) {
        self.cache_shared.add_scan_evictions(n);
    }

    /// Flushes every live session's local cache counters to the shared
    /// sink. Each flush takes that session's (uncontended) cache lock
    /// briefly; dead registry entries are pruned as a side effect.
    pub fn flush_session_caches(&self) {
        let mut registry = self.cache_registry.lock();
        registry.retain(|weak| match weak.upgrade() {
            Some(sc) => {
                sc.table.lock().flush_stats();
                true
            }
            None => false,
        });
    }

    /// Registers a worker, creating its segmented log chain if the store
    /// is persistent.
    ///
    /// The new log chain opens with a **durably synced**
    /// [`LogRecord::SessionCreate`] entry before this returns: every
    /// operation the session can ever perform therefore happens-after a
    /// nonempty chain exists on disk, which is what lets recovery treat
    /// an *empty* chain as evidence (not trust) that the session never
    /// ran anything — see `recovery.rs`'s cutoff rule. Errors if the
    /// entry cannot be made durable (the session would be unaccountable).
    pub fn session(self: &Arc<Store>) -> std::io::Result<Session> {
        let log = match &self.log_dir {
            None => None,
            Some(dir) => {
                let id = self.next_log_id.fetch_add(1, Ordering::Relaxed);
                let log = LogWriter::open_segmented_poisoned(
                    dir,
                    id,
                    self.config.segment_bytes,
                    Arc::clone(&self.log_poison),
                )?;
                log.append_now(|timestamp| LogRecord::SessionCreate { timestamp });
                if !log.force() {
                    return Err(std::io::Error::other(
                        "session-create journal entry could not be made durable",
                    ));
                }
                let mut handles = self.log_handles.lock();
                // Opportunistic sweep: without it a store that never
                // checkpoints would accumulate one dead handle per
                // session forever.
                handles.retain(|(_, h)| h.is_alive());
                handles.push((id, log.force_handle()));
                Some(log)
            }
        };
        let mut session = Session {
            store: Arc::clone(self),
            log,
            cache: None,
            obs: self.obs.recorder(),
            readahead: Mutex::new(ReadaheadScratch::default()),
        };
        if let Some(cfg) = self.session_cache.lock().clone() {
            session.enable_cache(cfg);
        }
        Ok(session)
    }

    /// Direct tree access (benchmarks, checkpointer).
    pub fn tree(&self) -> &Masstree<ColValue> {
        &self.tree
    }

    pub(crate) fn draw_version(&self) -> u64 {
        self.next_version.fetch_add(1, Ordering::Relaxed)
    }

    /// Highest version handed out so far.
    pub fn current_version(&self) -> u64 {
        self.next_version.load(Ordering::Relaxed)
    }

    /// Runs one structural maintenance pass (empty-layer GC, §4.6.5).
    pub fn maintain(&self) {
        let guard = masstree::pin();
        self.tree.maintain(&guard);
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        self.stop_background_checkpointer();
    }
}

/// First unused session id in `dir`: one past the highest session
/// appearing in any existing `log-<session>.<seg>` (or legacy
/// `log-<session>`) file.
///
/// Session ids (and so log files) are **never reused** across store
/// lifetimes: recovery trusts a trailing clean-close sentinel to mean
/// "this file is complete", so appending a new session to an old file
/// would be unsound — a crash before the new writer's first flush would
/// leave the previous lifetime's sentinel as the final on-disk record,
/// wrongly excluding the (actually crashed) log from the recovery
/// cutoff.
fn next_log_id_in(dir: &Path) -> u64 {
    crate::recovery::session_segments(dir)
        .keys()
        .last()
        .map(|s| s + 1)
        .unwrap_or(0)
}

/// Records one background timing sample into the store's global
/// recorder on scope exit, so early returns inside the timed region
/// still count.
struct ScopeTimer<'a> {
    obs: &'a Arc<Obs>,
    kind: ObsKind,
    t0: Instant,
}

impl Drop for ScopeTimer<'_> {
    fn drop(&mut self) {
        self.obs
            .global()
            .record(self.kind, self.t0.elapsed().as_nanos() as u64);
    }
}

/// One batched put: a key and its column updates.
pub type PutOp<'a> = (&'a [u8], &'a [(usize, &'a [u8])]);

/// How one operation in a mixed batch is executed by the batched path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunKind {
    /// Point read — groupable into an interleaved `multi_get`.
    Get,
    /// Point write — groupable into an interleaved `multi_put`, but a
    /// run must not contain the same key twice (within one interleaved
    /// group, duplicate-key order is unspecified).
    Put,
    /// Everything else — executed one at a time, in place.
    Other,
}

/// Splits a mixed batch into maximal runs executable as one interleaved
/// group, preserving batch semantics: runs never span different kinds,
/// and a `Put` run is split at a duplicate key so per-key batch order
/// holds. Returns `(kind, index range)` pairs covering `ops` in order.
///
/// Shared by the network server's batch executor and the batched-YCSB
/// driver so both apply the same grouping rules.
pub fn split_batch_runs<T>(
    ops: &[T],
    kind: impl Fn(&T) -> RunKind,
    key: impl Fn(&T) -> &[u8],
) -> Vec<(RunKind, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        let k = kind(&ops[i]);
        let mut j = i + 1;
        match k {
            RunKind::Get => {
                while j < ops.len() && kind(&ops[j]) == RunKind::Get {
                    j += 1;
                }
            }
            RunKind::Put => {
                let mut seen: std::collections::HashSet<&[u8]> =
                    std::collections::HashSet::from([key(&ops[i])]);
                while j < ops.len() && kind(&ops[j]) == RunKind::Put && seen.insert(key(&ops[j])) {
                    j += 1;
                }
            }
            RunKind::Other => {}
        }
        out.push((k, i..j));
        i = j;
    }
    out
}

/// A resumable-scan cursor over the store's tree (see
/// [`Session::scan_cursor`] / [`Session::get_range_resumed`]).
pub type ScanCursor = masstree::ScanCursor<ColValue>;

/// A session's hint-cache state: the table plus a lock-free mirror of
/// its adaptive-bypass recommendation, so reuse-free workloads pay one
/// relaxed counter bump instead of a lock + probe per get — and the
/// per-session scan-cursor cache and reusable batch scratch that ride
/// along with it.
struct SessionCache {
    /// Mirror of [`HintCache::bypass_recommended`], refreshed after
    /// every locked cache interaction.
    bypass: AtomicBool,
    /// Sampling counter while bypassed: every 64th operation still goes
    /// through the table so a workload that turns skewed is noticed.
    probe_tick: AtomicU64,
    /// The table itself. The mutex exists only to keep `Session: Sync`;
    /// a session is a per-worker handle, so the lock is uncontended on
    /// the hot path. It is never held while user callbacks run.
    table: Mutex<HintCache<ColValue>>,
    /// Whether writes consult the table ([`CacheConfig::cache_writes`]).
    cache_writes: bool,
    /// Reusable buffers for the cached batch read path (guarded
    /// separately from the table so results can outlive the table
    /// lock); `try_lock`-ed, with an allocating fallback for reentrant
    /// batch reads from inside a visitor.
    batch: Mutex<BatchScratch>,
    /// Per-session resumable-scan cursors, keyed by expected start key.
    cursors: Mutex<CursorCache<ColValue>>,
}

/// Reusable buffers for the cached `multi_get_with`: lookup results
/// (hints + admission flags), the tree-side hinted-batch scratch, and
/// the type-erased result pointers handed to the visitor after the
/// cache lock is released. All retain capacity across batches, making
/// the cached batch read allocation-free in steady state (the raw
/// pointers are written and read back within one epoch-pinned call, and
/// cleared at the top of the next — see `tests/alloc_count.rs`).
#[derive(Default)]
struct BatchScratch {
    admits: Vec<bool>,
    hints: Vec<Option<LeafHint<ColValue>>>,
    engine: HintBatchScratch<ColValue>,
    out: Vec<*const ColValue>,
    /// The batch's cold pointers, fed through one
    /// [`ValueTier::resolve_many`] (clustered segment reads on misses)
    /// instead of one segment read per key — the server's per-wakeup
    /// merged get runs land here.
    cold_reqs: Vec<(ValuePtr, u64)>,
    cold_out: Vec<Option<Arc<ColValue>>>,
    resolve: ResolveScratch,
}

// SAFETY: the raw pointers are inert between calls (never dereferenced
// outside the pinned call that wrote them); ColValue is Send + Sync.
unsafe impl Send for BatchScratch {}

/// Reusable buffers for the leaf-batched scan readahead path
/// ([`Session::get_range_with`] / [`Session::get_range_resumed`]): one
/// chunk's row keys (copied out — the scan's assembled key bytes are
/// valid only per visitor call), type-erased value pointers (written
/// and read back under the collecting call's epoch guard, like
/// [`BatchScratch::out`]), and the value tier's batched-resolution
/// requests/results. All retain capacity across chunks, keeping warm
/// readahead scans allocation-free (tests/alloc_count.rs).
#[derive(Default)]
struct ReadaheadScratch {
    /// Collected row keys, concatenated; row `i` ends at `key_ends[i]`.
    keys: Vec<u8>,
    key_ends: Vec<usize>,
    /// One pointer per collected row (null = indirect row with a
    /// malformed pointer record, skipped at emit like the inline path).
    vals: Vec<*const ColValue>,
    /// The chunk's cold pointers and their row indices, in row order.
    reqs: Vec<(ValuePtr, u64)>,
    req_rows: Vec<u32>,
    resolved: Vec<Option<Arc<ColValue>>>,
    engine: ResolveScratch,
    /// Reused cursor for cursor-less `get_range_with` calls (no cursor
    /// cache attached): `ScanCursor::reset` keeps its bound buffer's
    /// capacity, so one-shot scans stay allocation-free too.
    spare_cursor: Option<ScanCursor>,
}

// SAFETY: same contract as BatchScratch — the raw pointers are inert
// between calls.
unsafe impl Send for ReadaheadScratch {}

impl SessionCache {
    /// True when this operation should skip the cache entirely (bypass
    /// engaged and this is not one of the 1-in-64 samples).
    #[inline]
    fn skip_this_op(&self) -> bool {
        self.bypass.load(Ordering::Relaxed)
            && self.probe_tick.fetch_add(1, Ordering::Relaxed) & 63 != 0
    }

    #[inline]
    fn sync_bypass(&self, table: &HintCache<ColValue>) {
        self.bypass
            .store(table.bypass_recommended(), Ordering::Relaxed);
    }
}

/// A per-worker handle: operations + this worker's log + (optionally)
/// this worker's hot-path hint cache.
pub struct Session {
    store: Arc<Store>,
    log: Option<LogWriter>,
    /// Per-worker leaf-hint cache (`mtcache`). `Arc` so the store's
    /// registry can flush counters without owning the session.
    cache: Option<Arc<SessionCache>>,
    /// Per-worker latency recorder (`mtobs`): wait-free histogram
    /// recording on this worker's own cache lines; merged store-wide
    /// on stats reads. Folds into the hub's retained sink on drop.
    obs: Recorder,
    /// Reusable scan-readahead buffers (`try_lock`ed per range read; a
    /// reentrant scan from inside a visitor falls back to row-at-a-time
    /// resolution). Lives on the session, not the optional hint cache:
    /// readahead applies to cache-less sessions too.
    readahead: Mutex<ReadaheadScratch>,
}

impl Session {
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// This session's latency recorder — the network server records
    /// its merged-run timings (`MultiGet`/`MultiPut`) here so they
    /// land on the same per-worker cache lines as the session's own
    /// op recordings.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Attaches a per-worker hint cache to this session: point lookups
    /// (`get`/`get_with`/`multi_get*`) consult it, writes
    /// (`put`/`remove`/`multi_put`, when [`CacheConfig::cache_writes`])
    /// start their locked border entry at cached anchors, and chunked
    /// range reads resume at cached scan cursors — all falling back to
    /// a full descent on validation failure and refreshing the cache
    /// with the descent's endpoint. See `mtcache` and
    /// `masstree::anchor` for why no hinted operation can ever be
    /// stale.
    pub fn enable_cache(&mut self, config: CacheConfig) {
        let sc = Arc::new(SessionCache {
            bypass: AtomicBool::new(false),
            probe_tick: AtomicU64::new(0),
            table: Mutex::new(HintCache::with_shared(
                &config,
                Arc::clone(&self.store.cache_shared),
            )),
            cache_writes: config.cache_writes,
            batch: Mutex::new(BatchScratch::default()),
            cursors: Mutex::new(CursorCache::new()),
        });
        let mut registry = self.store.cache_registry.lock();
        registry.retain(|w| w.strong_count() > 0);
        registry.push(Arc::downgrade(&sc));
        self.cache = Some(sc);
    }

    /// The session cache, if writes should route through it this op.
    #[inline]
    fn write_cache(&self) -> Option<&SessionCache> {
        let sc = self.cache.as_deref()?;
        if !sc.cache_writes || sc.skip_this_op() {
            return None;
        }
        Some(sc)
    }

    /// This session's local cache counters (`None` when no cache is
    /// attached). Flushes to the store-wide sink as a side effect.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|sc| {
            let mut c = sc.table.lock();
            c.flush_stats();
            c.stats()
        })
    }

    /// Completes a point read: an indirect hit is resolved through the
    /// value tier before the callback sees it, so user callbacks only
    /// ever observe real columns. An unresolvable payload (torn or
    /// corrupt — counted in the tier's `unresolved_reads`) reads as
    /// absent here; [`Session::get_checked`] surfaces the typed error.
    /// Inline values pass straight through — one branch, no copy.
    #[inline]
    fn with_resolved<R>(
        &self,
        hit: Option<&ColValue>,
        f: impl FnOnce(Option<&ColValue>) -> R,
    ) -> R {
        match hit {
            Some(v) if v.is_indirect() => {
                let resolved = v.ptr().map(|p| self.store.resolve_indirect(p, v.version()));
                mtobs::span::mark(Stage::ValueResolve);
                match resolved {
                    Some(Ok(arc)) => f(Some(&arc)),
                    _ => f(None),
                }
            }
            other => f(other),
        }
    }

    /// Completes one scan row, resolving indirect values; returns
    /// whether the row was visited (an unresolvable payload is skipped
    /// — scans deliver only rows whose bytes are integrity-checked).
    #[inline]
    fn visit_row(&self, k: &[u8], v: &ColValue, f: &mut impl FnMut(&[u8], &ColValue)) -> bool {
        if !v.is_indirect() {
            f(k, v);
            return true;
        }
        match v.ptr().map(|p| self.store.resolve_indirect(p, v.version())) {
            Some(Ok(arc)) => {
                f(k, &arc);
                true
            }
            _ => false,
        }
    }

    /// One leaf-batched readahead scan round: collects up to `want`
    /// rows from `cursor` into the session's readahead scratch (key
    /// bytes copied, value refs type-erased — both consumed below under
    /// this call's `guard`), batch-resolves the chunk's cold pointers
    /// through [`ValueTier::resolve_many`] (clustered segment reads on
    /// misses), then emits the rows to `f` in original key order. Rows
    /// whose payload cannot be verified are skipped, exactly as the
    /// row-at-a-time path skips them. Returns `(rows collected, rows
    /// emitted, scan resumed at its anchor)`; collected < want with an
    /// un-done cursor never happens, so callers loop on the emit
    /// deficit without re-checking.
    fn scan_round_readahead<F>(
        &self,
        cursor: &mut ScanCursor,
        want: usize,
        ra: &mut ReadaheadScratch,
        guard: &masstree::Guard,
        f: &mut F,
    ) -> (usize, usize, bool)
    where
        F: FnMut(&[u8], &ColValue),
    {
        ra.keys.clear();
        ra.key_ends.clear();
        ra.vals.clear();
        ra.reqs.clear();
        ra.req_rows.clear();
        let out = self.store.tree.scan_resume(cursor, guard, |k, v| {
            ra.keys.extend_from_slice(k);
            ra.key_ends.push(ra.keys.len());
            if v.is_indirect() {
                match v.ptr() {
                    Some(p) => {
                        ra.req_rows.push(ra.vals.len() as u32);
                        ra.reqs.push((p, v.version()));
                        ra.vals.push(v as *const ColValue);
                    }
                    // Malformed pointer record: unresolvable, skipped.
                    None => ra.vals.push(core::ptr::null()),
                }
            } else {
                ra.vals.push(v as *const ColValue);
            }
            ra.vals.len() < want
        });
        if !ra.reqs.is_empty() {
            self.store
                .resolve_indirect_many(&ra.reqs, &mut ra.resolved, &mut ra.engine);
            mtobs::span::mark(Stage::ValueResolve);
        }
        let mut emitted = 0usize;
        let mut r = 0usize;
        let mut key_start = 0usize;
        for (i, &end) in ra.key_ends.iter().enumerate() {
            let key = &ra.keys[key_start..end];
            key_start = end;
            if r < ra.req_rows.len() && ra.req_rows[r] as usize == i {
                if let Some(v) = &ra.resolved[r] {
                    f(key, v);
                    emitted += 1;
                }
                r += 1;
            } else if !ra.vals[i].is_null() {
                // SAFETY: collected above under this call's pinned
                // guard; epoch reclamation keeps the value live.
                let v = unsafe { &*ra.vals[i] };
                f(key, v);
                emitted += 1;
            }
        }
        (ra.vals.len(), emitted, out.resumed)
    }

    /// `get_c(k)`: reads the requested columns (all if `cols` is `None`).
    /// Returns `None` if the key is absent.
    ///
    /// Copies every selected column; use [`Session::get_with`] on hot
    /// paths that only need to *look at* the value.
    pub fn get(&self, key: &[u8], cols: Option<&[usize]>) -> Option<Vec<Vec<u8>>> {
        self.get_with(key, |hit| {
            hit.map(|v| match cols {
                None => v.cols(),
                Some(ids) => ids
                    .iter()
                    .map(|&i| v.col(i).unwrap_or(&[]).to_vec())
                    .collect(),
            })
        })
    }

    /// Borrowed `get_c(k)`: runs `f` against the live [`ColValue`] (or
    /// `None` if the key is absent) **without copying anything** — column
    /// slices come straight out of the value's single allocation
    /// (§4.7).
    ///
    /// The borrow is scoped to the callback because it is protected by an
    /// epoch guard pinned for the duration of the call: the value cannot
    /// be reclaimed while `f` runs, even if a concurrent put replaces it
    /// or a remove unlinks it, and it may be reclaimed as soon as `f`
    /// returns. In steady state this path performs **zero heap
    /// allocations** (see `tests/alloc_count.rs`).
    pub fn get_with<R>(&self, key: &[u8], f: impl FnOnce(Option<&ColValue>) -> R) -> R {
        let t0 = Instant::now();
        let guard = masstree::pin();
        // `hinted` classifies the op for the latency histograms: a
        // validated zero-descent hit records as `get_hit`, everything
        // else as `get_descent` (or `get_cold` when the value resolves
        // through the value tier).
        let mut hinted = false;
        let hit = 'probe: {
            let Some(sc) = &self.cache else {
                break 'probe self.store.tree.get(key, &guard);
            };
            if sc.skip_this_op() {
                break 'probe self.store.tree.get(key, &guard);
            }
            // Hot-path cache tier: try the remembered border node first —
            // a validated hint serves the value with zero descent; any
            // validation failure falls back to the normal descent and
            // refreshes the hint. The cache lock is released before `f`
            // runs (callbacks may re-enter the session).
            let mut c = sc.table.lock();
            let probe = c.lookup(key);
            mtobs::span::mark(Stage::CacheLookup);
            let hit = match probe {
                Lookup::Hit(hint) => match self.store.tree.get_at_hint(key, &hint, &guard) {
                    HintedGet::Hit(v) => {
                        c.note_hit();
                        hinted = true;
                        v
                    }
                    HintedGet::Stale => {
                        c.note_stale();
                        let (v, fresh) = self.store.tree.get_capturing_hint(key, &guard);
                        c.record(key, fresh);
                        v
                    }
                },
                // Admitted keys capture a hint on the way down; cold keys
                // take the plain descent untaxed.
                Lookup::Miss { admit: true } => {
                    let (v, fresh) = self.store.tree.get_capturing_hint(key, &guard);
                    c.record(key, fresh);
                    v
                }
                Lookup::Miss { admit: false } => self.store.tree.get(key, &guard),
            };
            sc.sync_bypass(&c);
            drop(c);
            hit
        };
        let cold = hit.is_some_and(|v| v.is_indirect());
        let r = self.with_resolved(hit, f);
        let kind = if cold {
            ObsKind::GetCold
        } else if hinted {
            ObsKind::GetHit
        } else {
            ObsKind::GetDescent
        };
        self.obs.record_op(kind, t0.elapsed().as_nanos() as u64);
        r
    }

    /// `put_c(k, v)`: atomically updates the given columns, copying the
    /// rest from the current value (§4.7). Returns the value version.
    ///
    /// The version is drawn inside the tree's per-key critical section,
    /// so version order equals the tree's serialization order — which is
    /// what makes version-ordered log replay reconstruct exactly the
    /// pre-crash state (§5).
    ///
    /// With a write-enabled session cache, the put first tries the
    /// key's cached anchor ([`masstree::Masstree::put_at_hint`]): a
    /// validated anchor starts the locked border entry directly at the
    /// remembered node, skipping the descent; a stale one falls back to
    /// a full put that refreshes the cache.
    pub fn put(&self, key: &[u8], updates: &[(usize, &[u8])]) -> u64 {
        let t0 = Instant::now();
        let mut version = 0;
        // Log the full resulting value, not the update delta: replay is
        // version-gated and order-insensitive (parallel recovery,
        // replica apply), and a delta applied without the records it
        // merged over would silently drop the other columns.
        let logging = self.log.is_some();
        let mut logged_cols: Vec<(u16, Vec<u8>)> = Vec::new();
        let mut logged_ptr: Option<ValuePtr> = None;
        let mut dead_ptr: Option<ValuePtr> = None;
        {
            let guard = masstree::pin();
            let mut write = |old: Option<&ColValue>| {
                version = self.store.draw_version();
                let newval = self.store.build_value(old, updates, version, &mut dead_ptr);
                let newval = self.store.separate_value(newval, version, &mut logged_ptr);
                if logging && logged_ptr.is_none() {
                    logged_cols = (0..newval.ncols())
                        .map(|i| (i as u16, newval.col(i).unwrap_or(&[]).to_vec()))
                        .collect();
                }
                newval
            };
            match self.write_cache() {
                None => {
                    self.store.tree.put_with(key, &mut write, &guard);
                }
                Some(sc) => {
                    let mut c = sc.table.lock();
                    match c.lookup_write(key) {
                        Lookup::Hit(h) => {
                            match self.store.tree.put_at_hint(key, &h, &mut write, &guard) {
                                Ok((_prev, fresh)) => {
                                    c.note_write_hit();
                                    // The write itself can stale the hint
                                    // it used (freed-slot insert, split);
                                    // keep the entry fresh for readers.
                                    if let Some(h) = fresh {
                                        c.record(key, h);
                                    }
                                }
                                Err(AnchorStale) => {
                                    c.note_write_stale();
                                    let (_, fresh) =
                                        self.store.tree.put_with_capture(key, &mut write, &guard);
                                    if let Some(h) = fresh {
                                        c.record(key, h);
                                    }
                                }
                            }
                        }
                        Lookup::Miss { admit } => {
                            let (_, fresh) =
                                self.store.tree.put_with_capture(key, &mut write, &guard);
                            if admit {
                                if let Some(h) = fresh {
                                    c.record(key, h);
                                }
                            }
                        }
                    }
                    sc.sync_bypass(&c);
                }
            }
        }
        self.store.note_dead_ptr(dead_ptr);
        if let Some(log) = &self.log {
            match logged_ptr {
                Some(ptr) => log.append_now(|timestamp| LogRecord::PutIndirect {
                    timestamp,
                    version,
                    key: key.to_vec(),
                    ptr,
                }),
                None => log.append_now(|timestamp| LogRecord::Put {
                    timestamp,
                    version,
                    key: key.to_vec(),
                    cols: std::mem::take(&mut logged_cols),
                }),
            };
        }
        self.obs
            .record_op(ObsKind::Put, t0.elapsed().as_nanos() as u64);
        version
    }

    /// Whole-value put with a single column (plain key-value usage).
    pub fn put_single(&self, key: &[u8], data: &[u8]) -> u64 {
        self.put(key, &[(0, data)])
    }

    /// Batched `get_c`: looks up every key with one interleaved,
    /// software-pipelined tree traversal (see `masstree::batch`), under a
    /// single epoch pin. Results are positionally matched to `keys`;
    /// column selection follows [`Session::get`].
    pub fn multi_get(&self, keys: &[&[u8]], cols: Option<&[usize]>) -> Vec<Option<Vec<Vec<u8>>>> {
        self.multi_get_project(keys, |_, v| match cols {
            None => v.cols(),
            Some(ids) => ids
                .iter()
                .map(|&i| v.col(i).unwrap_or(&[]).to_vec())
                .collect(),
        })
    }

    /// Batched whole-value `get_c` (all columns).
    pub fn multi_get_full(&self, keys: &[&[u8]]) -> Vec<Option<Vec<Vec<u8>>>> {
        self.multi_get(keys, None)
    }

    /// Batched lookup with per-key column projection: `project(i, value)`
    /// runs against the live value (no intermediate whole-value copy), so
    /// callers with heterogeneous column selections — the network server —
    /// copy only the bytes each request asked for.
    pub fn multi_get_project<F>(&self, keys: &[&[u8]], mut project: F) -> Vec<Option<Vec<Vec<u8>>>>
    where
        F: FnMut(usize, &ColValue) -> Vec<Vec<u8>>,
    {
        let mut out = Vec::with_capacity(keys.len());
        self.multi_get_with(keys, |i, hit| out.push(hit.map(|v| project(i, v))));
        out
    }

    /// Borrowed batched `get_c`: one interleaved, software-pipelined tree
    /// traversal under a single epoch pin, visiting `f(i, hit)` once per
    /// key in input order with the value borrowed in place — the batch
    /// analogue of [`Session::get_with`], and like it **zero-allocation**
    /// in steady state (cursors live on the stack, nothing is copied).
    /// The network server serializes responses straight out of this
    /// visitor.
    ///
    /// Each borrowed value is valid only for its `f` call (the guard is
    /// released when `multi_get_with` returns; copy out anything that
    /// must outlive it).
    pub fn multi_get_with<F>(&self, keys: &[&[u8]], mut f: F)
    where
        F: FnMut(usize, Option<&ColValue>),
    {
        let guard = masstree::pin();
        let Some(sc) = &self.cache else {
            self.store
                .tree
                .multi_get_with(keys, &guard, |i, hit| self.with_resolved(hit, |h| f(i, h)));
            return;
        };
        if sc.skip_this_op() {
            self.store
                .tree
                .multi_get_with(keys, &guard, |i, hit| self.with_resolved(hit, |h| f(i, h)));
            return;
        }
        // Hinted batch: keys with valid hints complete with zero
        // descent; the misses run through the interleaved traversal
        // engine and refresh their hints. Results are buffered as
        // type-erased pointers in the session's reusable batch scratch
        // (they are only read back below, under this same guard) so `f`
        // runs in input order *after* the cache lock is released —
        // keeping the cached batch path **zero-allocation** in steady
        // state, like the uncached one (tests/alloc_count.rs covers
        // both). A reentrant batch read from inside a visitor finds the
        // scratch busy and takes the allocating fallback.
        let Some(mut bs) = sc.batch.try_lock() else {
            self.multi_get_with_cached_alloc(keys, sc, &guard, f);
            return;
        };
        let BatchScratch {
            admits,
            hints,
            engine,
            out,
            cold_reqs,
            cold_out,
            resolve,
        } = &mut *bs;
        admits.clear();
        admits.resize(keys.len(), false);
        hints.clear();
        hints.resize(keys.len(), None);
        out.clear();
        {
            let mut c = sc.table.lock();
            for (i, k) in keys.iter().enumerate() {
                match c.lookup(k) {
                    Lookup::Hit(h) => hints[i] = Some(h),
                    Lookup::Miss { admit } => admits[i] = admit,
                }
            }
            self.store
                .tree
                .multi_get_hinted_with(keys, hints, engine, &guard, |i, v, fate| {
                    match fate {
                        HintResult::Hit => c.note_hit(),
                        HintResult::Refreshed(h) => {
                            if hints[i].is_some() {
                                c.note_stale();
                                c.record(keys[i], h);
                            } else if admits[i] {
                                c.record(keys[i], h);
                            }
                        }
                    }
                    out.push(v.map_or(core::ptr::null(), |r| r as *const ColValue));
                });
            sc.sync_bypass(&c);
        }
        // Batch the cold pointers: every indirect hit in this run
        // resolves through one `resolve_many` — concurrent cold keys
        // coalesce into clustered segment reads instead of stampeding
        // the tier with one read per key.
        cold_reqs.clear();
        for p in out.iter() {
            if p.is_null() {
                continue;
            }
            // SAFETY: written above under this call's pinned guard;
            // epoch reclamation keeps the value live until it drops.
            let v = unsafe { &**p };
            if v.is_indirect() {
                if let Some(ptr) = v.ptr() {
                    cold_reqs.push((ptr, v.version()));
                }
            }
        }
        if !cold_reqs.is_empty() {
            self.store.resolve_indirect_many(cold_reqs, cold_out, resolve);
            mtobs::span::mark(Stage::ValueResolve);
        }
        let mut r = 0usize;
        for (i, p) in out.iter().enumerate() {
            // SAFETY: as above — same pinned guard.
            let hit = if p.is_null() {
                None
            } else {
                Some(unsafe { &**p })
            };
            match hit {
                Some(v) if v.is_indirect() => {
                    // Resolution order matches collection order; a
                    // malformed pointer record never made it into the
                    // batch and reads as absent, like `with_resolved`.
                    let resolved = if v.ptr().is_some() {
                        let x = cold_out.get(r).and_then(|o| o.as_deref());
                        r += 1;
                        x
                    } else {
                        None
                    };
                    f(i, resolved);
                }
                other => f(i, other),
            }
        }
    }

    /// The allocating fallback of the cached batch read, used when the
    /// reusable scratch is busy (a visitor re-entered `multi_get_with`).
    #[cold]
    fn multi_get_with_cached_alloc<F>(
        &self,
        keys: &[&[u8]],
        sc: &SessionCache,
        guard: &masstree::Guard,
        mut f: F,
    ) where
        F: FnMut(usize, Option<&ColValue>),
    {
        let mut c = sc.table.lock();
        let mut admits = vec![false; keys.len()];
        let hints: Vec<Option<LeafHint<ColValue>>> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| match c.lookup(k) {
                Lookup::Hit(h) => Some(h),
                Lookup::Miss { admit } => {
                    admits[i] = admit;
                    None
                }
            })
            .collect();
        let mut out: Vec<Option<&ColValue>> = Vec::with_capacity(keys.len());
        self.store
            .tree
            .multi_get_hinted(keys, &hints, guard, |i, v, fate| {
                match fate {
                    HintResult::Hit => c.note_hit(),
                    HintResult::Refreshed(h) => {
                        if hints[i].is_some() {
                            c.note_stale();
                            c.record(keys[i], h);
                        } else if admits[i] {
                            c.record(keys[i], h);
                        }
                    }
                }
                out.push(v);
            });
        sc.sync_bypass(&c);
        drop(c);
        for (i, v) in out.into_iter().enumerate() {
            self.with_resolved(v, |h| f(i, h));
        }
    }

    /// Batched `put_c`: applies every `(key, column updates)` pair with
    /// one interleaved tree traversal, drawing each value version inside
    /// that key's critical section (so version order still equals the
    /// tree's serialization order, as replay requires — §5). Returns one
    /// version per op, positionally matched.
    ///
    /// Within one batch the order in which *duplicate* keys apply is
    /// unspecified; callers needing per-key ordering (the network server)
    /// split batches at duplicates. Log records carry versions, and
    /// replay is version-ordered, so recovery is unaffected either way.
    pub fn multi_put(&self, ops: &[PutOp<'_>]) -> Vec<u64> {
        let keys: Vec<&[u8]> = ops.iter().map(|&(k, _)| k).collect();
        let mut versions = vec![0u64; ops.len()];
        // Full resulting values for the log, not deltas (see `put`).
        let logging = self.log.is_some();
        let mut logged_cols: Vec<Vec<(u16, Vec<u8>)>> = vec![Vec::new(); ops.len()];
        let mut logged_ptrs: Vec<Option<ValuePtr>> = vec![None; ops.len()];
        let mut dead_ptrs: Vec<Option<ValuePtr>> = vec![None; ops.len()];
        {
            let guard = masstree::pin();
            let store = &self.store;
            let mut factory = |i: usize, old: Option<&ColValue>| {
                let version = store.draw_version();
                versions[i] = version;
                let newval = store.build_value(old, ops[i].1, version, &mut dead_ptrs[i]);
                let newval = store.separate_value(newval, version, &mut logged_ptrs[i]);
                if logging && logged_ptrs[i].is_none() {
                    logged_cols[i] = (0..newval.ncols())
                        .map(|c| (c as u16, newval.col(c).unwrap_or(&[]).to_vec()))
                        .collect();
                }
                newval
            };
            match self.write_cache() {
                None => {
                    self.store.tree.multi_put_with(&keys, &mut factory, &guard);
                }
                Some(sc) => {
                    // Hinted batch write: anchored ops skip their
                    // descents; the rest run through the interleaved
                    // engine and refresh their anchors.
                    let mut c = sc.table.lock();
                    let mut admits = vec![false; keys.len()];
                    let hints: Vec<Option<LeafHint<ColValue>>> = keys
                        .iter()
                        .enumerate()
                        .map(|(i, k)| match c.lookup_write(k) {
                            Lookup::Hit(h) => Some(h),
                            Lookup::Miss { admit } => {
                                admits[i] = admit;
                                None
                            }
                        })
                        .collect();
                    self.store.tree.multi_put_hinted(
                        &keys,
                        &hints,
                        &mut factory,
                        &guard,
                        |i, hinted_hit, fresh| {
                            if hinted_hit {
                                c.note_write_hit();
                                // Refresh in place: the hit may have
                                // staled its own hint (see put_at_hint).
                                if let Some(h) = fresh {
                                    c.record(keys[i], h);
                                }
                            } else if hints[i].is_some() {
                                c.note_write_stale();
                                if let Some(h) = fresh {
                                    c.record(keys[i], h);
                                }
                            } else if admits[i] {
                                if let Some(h) = fresh {
                                    c.record(keys[i], h);
                                }
                            }
                        },
                    );
                    sc.sync_bypass(&c);
                }
            }
        }
        for dead in dead_ptrs {
            self.store.note_dead_ptr(dead);
        }
        if let Some(log) = &self.log {
            for (i, (&(key, _), &version)) in ops.iter().zip(&versions).enumerate() {
                match logged_ptrs[i] {
                    Some(ptr) => log.append_now(|timestamp| LogRecord::PutIndirect {
                        timestamp,
                        version,
                        key: key.to_vec(),
                        ptr,
                    }),
                    None => log.append_now(|timestamp| LogRecord::Put {
                        timestamp,
                        version,
                        key: key.to_vec(),
                        cols: std::mem::take(&mut logged_cols[i]),
                    }),
                };
            }
        }
        versions
    }

    /// `remove(k)`. Returns true if the key existed.
    ///
    /// Drops the key's hint-cache entry (if any): a removed key's hint
    /// would never be *wrong* — hinted reads search the node's live
    /// state, so they'd correctly report absence — but it is dead weight
    /// in the table. Puts, by contrast, deliberately leave hints alone:
    /// a value update keeps the hint valid (it points at the same border
    /// node), and an insert that splits the node bumps the version the
    /// next hinted read validates against.
    pub fn remove(&self, key: &[u8]) -> bool {
        let t0 = Instant::now();
        let guard = masstree::pin();
        // Draw the version at the removal's linearization point (under
        // the node lock) so replay ordering matches live ordering.
        let removed = match self.write_cache() {
            None => {
                if let Some(sc) = &self.cache {
                    sc.table.lock().invalidate(key);
                }
                self.store
                    .tree
                    .remove_with(key, |_| self.store.draw_version(), &guard)
            }
            Some(sc) => {
                // Hinted remove: the cached anchor locates the border
                // node with zero descent; a stale anchor falls back.
                // Either way the entry is dropped afterwards.
                let mut c = sc.table.lock();
                let removed = match c.lookup_write(key) {
                    Lookup::Hit(h) => match self.store.tree.remove_at_hint(
                        key,
                        &h,
                        |_| self.store.draw_version(),
                        &guard,
                    ) {
                        Ok(r) => {
                            c.note_write_hit();
                            r
                        }
                        Err(AnchorStale) => {
                            c.note_write_stale();
                            self.store
                                .tree
                                .remove_with(key, |_| self.store.draw_version(), &guard)
                        }
                    },
                    Lookup::Miss { .. } => {
                        self.store
                            .tree
                            .remove_with(key, |_| self.store.draw_version(), &guard)
                    }
                };
                c.invalidate(key);
                sc.sync_bypass(&c);
                removed
            }
        };
        let existed = match removed {
            None => false,
            Some((prev, version)) => {
                // A removed indirect value's payload bytes are dead.
                self.store.note_dead_ptr(prev.ptr());
                if let Some(log) = &self.log {
                    log.append_now(|timestamp| LogRecord::Remove {
                        timestamp,
                        version,
                        key: key.to_vec(),
                    });
                }
                true
            }
        };
        self.obs
            .record_op(ObsKind::Remove, t0.elapsed().as_nanos() as u64);
        existed
    }

    /// `getrange_c(k, n)`: up to `n` key/column rows at or after `key`,
    /// in key order. Not atomic w.r.t. concurrent writers (§3).
    ///
    /// Copies every row; use [`Session::get_range_with`] on hot paths.
    pub fn get_range(
        &self,
        key: &[u8],
        n: usize,
        cols: Option<&[usize]>,
    ) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
        let mut out = Vec::with_capacity(n.min(1024));
        self.get_range_with(key, n, |k, v| {
            let row = match cols {
                None => v.cols(),
                Some(ids) => ids
                    .iter()
                    .map(|&i| v.col(i).unwrap_or(&[]).to_vec())
                    .collect(),
            };
            out.push((k.to_vec(), row));
        });
        out
    }

    /// Borrowed `getrange_c(k, n)`: visits up to `n` rows at or after
    /// `key` in key order as `f(key, value)`, with both the key bytes
    /// (assembled in the scan's reusable scratch) and the value borrowed
    /// — nothing is copied and, with a warm scratch, nothing is
    /// allocated. Returns the number of rows visited.
    ///
    /// With a session cache attached, chunked sequential range reads
    /// resume transparently: each call leaves a [`ScanCursor`] in the
    /// per-session cursor cache keyed by the key the *next* chunk is
    /// expected to start from, and a call starting exactly there
    /// re-enters the tree at the remembered border node (validated
    /// anchor, zero descent) instead of descending from the root. A
    /// failed validation — or a non-sequential start — is just a normal
    /// descent; results are always identical to an uncached scan.
    ///
    /// Both borrows are valid only for the duration of each `f` call.
    /// Not atomic w.r.t. concurrent writers (§3), like
    /// [`Session::get_range`].
    pub fn get_range_with<F>(&self, key: &[u8], n: usize, mut f: F) -> usize
    where
        F: FnMut(&[u8], &ColValue),
    {
        if n == 0 {
            return 0;
        }
        let t0 = Instant::now();
        let guard = masstree::pin();
        // Leaf-batched readahead wants the session scratch; a reentrant
        // scan from inside a visitor finds it busy and takes the
        // row-at-a-time path below.
        if let Some(mut ra) = self.readahead.try_lock() {
            // The cursor comes from the per-session cache when attached
            // (taken OUT for the duration, lock released before the
            // visitor runs — a matching chunked-scan resume re-enters
            // the tree at the validated anchor with zero descent) and
            // is a fresh descent otherwise.
            // Cursor-less calls recycle the scratch's spare cursor so
            // the reset reuses its bound buffer (no per-call Vec).
            let spare = |ra: &mut ReadaheadScratch| match ra.spare_cursor.take() {
                Some(mut c) => {
                    c.reset(key, false);
                    c
                }
                None => ScanCursor::forward(key),
            };
            let (mut cur, matched, cached) = match &self.cache {
                Some(sc) if !sc.skip_this_op() => {
                    match sc.cursors.try_lock().map(|mut cc| cc.take_or_start(key, false)) {
                        Some((cur, matched)) => (cur, matched, true),
                        None => (spare(&mut ra), false, false),
                    }
                }
                _ => (spare(&mut ra), false, false),
            };
            let mut seen = 0usize;
            let mut first = true;
            // One round in the common case; extra rounds only refill
            // the deficit when unresolvable rows were skipped.
            while seen < n && !cur.is_done() {
                let (collected, emitted, resumed) =
                    self.scan_round_readahead(&mut cur, n - seen, &mut ra, &guard, &mut f);
                if first {
                    if let Some(sc) = &self.cache {
                        let mut c = sc.table.lock();
                        if resumed {
                            c.note_scan_resumed();
                        } else if matched {
                            c.note_scan_fallback();
                        }
                    }
                    first = false;
                }
                seen += emitted;
                if collected == 0 {
                    break;
                }
            }
            if cached {
                if let Some(sc) = &self.cache {
                    if let Some(mut cc) = sc.cursors.try_lock() {
                        cc.put(cur);
                    }
                }
            } else {
                ra.spare_cursor = Some(cur);
            }
            self.obs
                .record_op(ObsKind::Scan, t0.elapsed().as_nanos() as u64);
            return seen;
        }
        let mut seen = 0usize;
        self.store.tree.scan(key, &guard, |k, v| {
            if self.visit_row(k, v, &mut f) {
                seen += 1;
            }
            seen < n
        });
        self.obs
            .record_op(ObsKind::Scan, t0.elapsed().as_nanos() as u64);
        seen
    }

    /// Creates an explicit resumable-scan cursor starting at `start`
    /// (inclusive, ascending). Feed it to
    /// [`Session::get_range_resumed`] repeatedly to stream a range in
    /// chunks without paying a descent per chunk.
    pub fn scan_cursor(&self, start: &[u8]) -> ScanCursor {
        ScanCursor::forward(start)
    }

    /// A descending resumable-scan cursor starting at `start`
    /// (inclusive).
    pub fn scan_cursor_rev(&self, start: &[u8]) -> ScanCursor {
        ScanCursor::reverse_from(start)
    }

    /// Borrowed chunked `getrange_c`: visits up to `n` rows continuing
    /// from `cursor` (in the cursor's direction), advancing it to the
    /// new stop point. When the cursor's validated anchor holds, the
    /// chunk starts at the remembered border node with zero descent;
    /// otherwise it descends from the cursor's bound — either way the
    /// rows are exactly what a fresh scan from that bound would yield.
    /// Returns the number of rows visited (0 once the cursor
    /// [`ScanCursor::is_done`]).
    pub fn get_range_resumed<F>(&self, cursor: &mut ScanCursor, n: usize, mut f: F) -> usize
    where
        F: FnMut(&[u8], &ColValue),
    {
        if n == 0 || cursor.is_done() {
            return 0;
        }
        let t0 = Instant::now();
        let guard = masstree::pin();
        let had_anchor = cursor.has_anchor();
        let mut seen = 0usize;
        if let Some(mut ra) = self.readahead.try_lock() {
            // Leaf-batched readahead (see `get_range_with`): collect the
            // chunk, batch-resolve its cold pointers, emit in order.
            let mut first = true;
            while seen < n && !cursor.is_done() {
                let (collected, emitted, resumed) =
                    self.scan_round_readahead(cursor, n - seen, &mut ra, &guard, &mut f);
                if first {
                    if let Some(sc) = &self.cache {
                        let mut c = sc.table.lock();
                        if resumed {
                            c.note_scan_resumed();
                        } else if had_anchor {
                            c.note_scan_fallback();
                        }
                    }
                    first = false;
                }
                seen += emitted;
                if collected == 0 {
                    break;
                }
            }
        } else {
            let out = self.store.tree.scan_resume(cursor, &guard, |k, v| {
                if self.visit_row(k, v, &mut f) {
                    seen += 1;
                }
                seen < n
            });
            if let Some(sc) = &self.cache {
                let mut c = sc.table.lock();
                if out.resumed {
                    c.note_scan_resumed();
                } else if had_anchor {
                    c.note_scan_fallback();
                }
            }
        }
        self.obs
            .record_op(ObsKind::Scan, t0.elapsed().as_nanos() as u64);
        seen
    }

    /// Blocks until everything this session logged is durable.
    ///
    /// Returns `true` when the sync completed (trivially so for
    /// in-memory sessions, which have nothing to flush). `false` means
    /// the logger thread died — on an I/O error such as a full disk, or
    /// a simulated crash — and the logged records may never reach
    /// storage; callers acking durability (the network `Flush` handler)
    /// must report the failure instead of swallowing it.
    #[must_use = "false means the records were NOT made durable"]
    pub fn force_log(&self) -> bool {
        let t0 = Instant::now();
        // Tier first, WAL second: when this ack lands, every durable
        // pointer record names an already-durable payload. The converse
        // order could ack a pointer whose payload a crash then tears —
        // an acked-write loss the recovery read-verify can't repair.
        if !self.store.force_value_tier() {
            return false;
        }
        let ok = match &self.log {
            Some(log) => log.force(),
            None => true,
        };
        mtobs::span::mark(Stage::WalAck);
        self.obs
            .record(ObsKind::WalForce, t0.elapsed().as_nanos() as u64);
        ok
    }

    /// `get_c(k)` with typed value-tier errors: like [`Session::get`],
    /// but an indirect value whose payload cannot be verified reports
    /// **which way it failed** ([`ValueError`]) instead of reading as
    /// absent. The property suite drives every-byte corruption through
    /// this: wrong bytes are never returned, only typed errors.
    pub fn get_checked(
        &self,
        key: &[u8],
        cols: Option<&[usize]>,
    ) -> Result<Option<Vec<Vec<u8>>>, ValueError> {
        let project = |v: &ColValue| match cols {
            None => v.cols(),
            Some(ids) => ids
                .iter()
                .map(|&i| v.col(i).unwrap_or(&[]).to_vec())
                .collect(),
        };
        let guard = masstree::pin();
        match self.store.tree.get(key, &guard) {
            None => Ok(None),
            Some(v) => match v.ptr() {
                None => Ok(Some(project(v))),
                Some(p) => {
                    let arc = self.store.resolve_indirect(p, v.version())?;
                    Ok(Some(project(&arc)))
                }
            },
        }
    }

    /// Active log segment number (0 for in-memory sessions).
    pub fn current_log_segment(&self) -> u64 {
        self.log.as_ref().map(|l| l.current_segment()).unwrap_or(0)
    }

    /// Kills this session's logger **without** the clean-shutdown
    /// protocol — no final drain, no clean-close sentinel — abandoning
    /// the in-memory log buffer exactly as a dying process would. For
    /// crash-torture tests; see [`LogWriter::simulate_crash`]. Returns
    /// where the on-disk state stands (`None` for in-memory sessions).
    pub fn simulate_crash(mut self) -> Option<CrashPoint> {
        self.log.take().map(|l| l.simulate_crash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_put_get() {
        let store = Store::in_memory();
        let s = store.session().unwrap();
        s.put(b"k1", &[(0, b"hello"), (1, b"world")]);
        assert_eq!(
            s.get(b"k1", None),
            Some(vec![b"hello".to_vec(), b"world".to_vec()])
        );
        assert_eq!(s.get(b"k1", Some(&[1])), Some(vec![b"world".to_vec()]));
        assert_eq!(s.get(b"nope", None), None);
    }

    #[test]
    fn column_update_preserves_others() {
        let store = Store::in_memory();
        let s = store.session().unwrap();
        s.put(b"k", &[(0, b"a"), (1, b"b")]);
        s.put(b"k", &[(1, b"B!")]);
        assert_eq!(s.get(b"k", None), Some(vec![b"a".to_vec(), b"B!".to_vec()]));
    }

    #[test]
    fn versions_increase() {
        let store = Store::in_memory();
        let s = store.session().unwrap();
        let v1 = s.put(b"k", &[(0, b"1")]);
        let v2 = s.put(b"k", &[(0, b"2")]);
        assert!(v2 > v1);
    }

    #[test]
    fn remove_reports_existence() {
        let store = Store::in_memory();
        let s = store.session().unwrap();
        assert!(!s.remove(b"k"));
        s.put_single(b"k", b"v");
        assert!(s.remove(b"k"));
        assert_eq!(s.get(b"k", None), None);
    }

    #[test]
    fn get_range_returns_rows_in_order() {
        let store = Store::in_memory();
        let s = store.session().unwrap();
        for i in 0..100u32 {
            s.put(format!("key{i:03}").as_bytes(), &[(0, &i.to_le_bytes())]);
        }
        let rows = s.get_range(b"key010", 5, Some(&[0]));
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].0, b"key010");
        assert_eq!(rows[4].0, b"key014");
        assert_eq!(rows[2].1[0], 12u32.to_le_bytes());
    }

    #[test]
    fn split_batch_runs_groups_and_splits() {
        // (kind, key) pairs: g=Get, p=Put, o=Other.
        let ops: Vec<(char, &[u8])> = vec![
            ('g', b"a"),
            ('g', b"b"),
            ('p', b"x"),
            ('p', b"y"),
            ('p', b"x"), // duplicate: forces a split
            ('o', b""),
            ('g', b"c"),
        ];
        let runs = split_batch_runs(
            &ops,
            |&(k, _)| match k {
                'g' => RunKind::Get,
                'p' => RunKind::Put,
                _ => RunKind::Other,
            },
            |&(_, key)| key,
        );
        assert_eq!(
            runs,
            vec![
                (RunKind::Get, 0..2),
                (RunKind::Put, 2..4),
                (RunKind::Put, 4..5),
                (RunKind::Other, 5..6),
                (RunKind::Get, 6..7),
            ]
        );
        assert!(split_batch_runs(
            &Vec::<(char, &[u8])>::new(),
            |_| RunKind::Get,
            |_| b"".as_slice()
        )
        .is_empty());
    }

    #[test]
    fn multi_get_matches_sequential_get() {
        let store = Store::in_memory();
        let s = store.session().unwrap();
        for i in 0..200u32 {
            s.put(
                format!("mk{i:04}").as_bytes(),
                &[(0, &i.to_le_bytes()), (1, b"x")],
            );
        }
        let keys: Vec<Vec<u8>> = (0..250u32)
            .map(|i| format!("mk{i:04}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let batch = s.multi_get(&refs, Some(&[0]));
        for (k, got) in refs.iter().zip(batch) {
            assert_eq!(got, s.get(k, Some(&[0])));
        }
        // Full-value variant matches too.
        let full = s.multi_get_full(&refs);
        for (k, got) in refs.iter().zip(full) {
            assert_eq!(got, s.get(k, None));
        }
    }

    #[test]
    fn multi_put_draws_increasing_versions_and_applies() {
        let store = Store::in_memory();
        let s = store.session().unwrap();
        let keys: Vec<Vec<u8>> = (0..64u32)
            .map(|i| format!("bp{i:03}").into_bytes())
            .collect();
        let payloads: Vec<[u8; 4]> = (0..64u32).map(|i| i.to_le_bytes()).collect();
        let updates: Vec<[(usize, &[u8]); 1]> =
            payloads.iter().map(|p| [(0usize, p.as_slice())]).collect();
        let ops: Vec<PutOp<'_>> = keys
            .iter()
            .zip(&updates)
            .map(|(k, u)| (k.as_slice(), u.as_slice()))
            .collect();
        let versions = s.multi_put(&ops);
        assert_eq!(versions.len(), 64);
        let mut sorted = versions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "every op drew a distinct version");
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(
                s.get(k, Some(&[0])),
                Some(vec![(i as u32).to_le_bytes().to_vec()])
            );
        }
        // A second batch over the same keys updates and draws later versions.
        let versions2 = s.multi_put(&ops);
        assert!(versions2.iter().min() > versions.iter().max());
    }

    #[test]
    fn cached_session_matches_uncached() {
        let store = Store::in_memory();
        let plain = store.session().unwrap();
        store.set_session_cache(Some(CacheConfig {
            admit_threshold: 1,
            ..CacheConfig::default()
        }));
        let cached = store.session().unwrap();
        assert!(cached.cache_stats().is_some(), "config applied to session");
        assert!(plain.cache_stats().is_none(), "older session unaffected");
        for i in 0..500u32 {
            cached.put(format!("ck{i:04}").as_bytes(), &[(0, &i.to_le_bytes())]);
        }
        // Repeated point gets: second pass must be served by hints and
        // agree with the uncached session.
        for _pass in 0..2 {
            for i in 0..500u32 {
                let k = format!("ck{i:04}");
                assert_eq!(
                    plain.get(k.as_bytes(), None),
                    cached.get(k.as_bytes(), None)
                );
            }
        }
        // Absent keys too.
        assert_eq!(cached.get(b"ck9999", None), None);
        // Batched path consults the same cache.
        let keys: Vec<Vec<u8>> = (0..600u32)
            .map(|i| format!("ck{i:04}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        assert_eq!(cached.multi_get_full(&refs), plain.multi_get_full(&refs));
        let s = cached.cache_stats().unwrap();
        assert!(s.hits > 0, "repeat gets must hit: {s:?}");
        assert_eq!(s.lookups, s.hits + s.stale + s.misses);

        // remove() drops the entry and subsequent reads agree.
        assert!(cached.remove(b"ck0001"));
        assert_eq!(cached.get(b"ck0001", None), None);
        assert_eq!(plain.get(b"ck0001", None), None);
        let s = cached.cache_stats().unwrap();
        assert!(s.invalidated >= 1);

        // Updates through ANOTHER session are visible to hinted reads
        // immediately (version validation, not message passing).
        plain.put(b"ck0002", &[(0, b"fresh")]);
        assert_eq!(
            cached.get(b"ck0002", Some(&[0])).unwrap()[0],
            b"fresh".to_vec()
        );

        // Store-wide counters aggregate this session's flushed stats.
        drop(cached);
        let agg = store.cache_stats();
        assert!(agg.lookups > 0 && agg.hits > 0, "{agg:?}");
    }

    #[test]
    fn durability_cycle_with_many_sessions_uses_concurrent_barrier() {
        let dir = std::env::temp_dir().join(format!("mtkv-conc-barrier-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::persistent_with(&dir, DurabilityConfig::tiny_segments(4096)).unwrap();
        let sessions: Vec<Session> = (0..8).map(|_| store.session().unwrap()).collect();
        for (i, s) in sessions.iter().enumerate() {
            for j in 0..50u32 {
                s.put(format!("b{i}-{j:03}").as_bytes(), &[(0, &[0u8; 64])]);
            }
        }
        // The cycle's group-commit barrier forces all 8 live logs
        // concurrently; the checkpoint must land and truncation stay
        // safe (all barriers confirmed).
        let meta = store.checkpoint_now().unwrap();
        assert!(meta.start_ts > 0);
        assert_eq!(store.checkpoint_epoch(), 1);
        for (i, s) in sessions.iter().enumerate() {
            assert!(s.force_log(), "session {i} log alive after barrier");
        }
        drop(sessions);
        drop(store);
        let (store, _report) = crate::recovery::recover(&dir, &dir).unwrap();
        let s = store.session().unwrap();
        for i in 0..8 {
            assert!(s.get(format!("b{i}-049").as_bytes(), None).is_some());
        }
        drop(s);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_column_updates_do_not_tear() {
        // Two writers update different columns of one key; every observed
        // value must contain a valid (col0, col1) pair — all-or-nothing
        // multi-column puts (§4.7).
        let store = Store::in_memory();
        let w1 = store.session().unwrap();
        let w2 = store.session().unwrap();
        w1.put(b"k", &[(0, b"0"), (1, b"0")]);
        let t1 = std::thread::spawn(move || {
            for i in 0..20_000u32 {
                w1.put(b"k", &[(0, format!("{i}").as_bytes())]);
            }
        });
        let t2 = std::thread::spawn(move || {
            for i in 0..20_000u32 {
                w2.put(b"k", &[(1, format!("{i}").as_bytes())]);
            }
        });
        let reader = store.session().unwrap();
        for _ in 0..10_000 {
            let cols = reader.get(b"k", None).unwrap();
            assert_eq!(cols.len(), 2);
            // Both columns always parse: no torn/missing column states.
            let _: u32 = std::str::from_utf8(&cols[0]).unwrap().parse().unwrap();
            let _: u32 = std::str::from_utf8(&cols[1]).unwrap().parse().unwrap();
        }
        t1.join().unwrap();
        t2.join().unwrap();
        let cols = reader.get(b"k", None).unwrap();
        assert_eq!(cols[0], b"19999");
        assert_eq!(cols[1], b"19999");
    }
}
