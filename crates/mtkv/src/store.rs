//! The Masstree storage system (§3 and §5): `get_c`/`put_c`/`remove`/
//! `getrange_c` over multi-column values, with per-worker value logging.
//!
//! Workers register a [`Session`]; each session owns one log (per-core
//! logs in the paper). Puts apply to the shared tree, append to the
//! session's log buffer, and return without waiting for storage; logging
//! threads batch and force every 200 ms (`log.rs`).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use masstree::Masstree;

use crate::log::{LogRecord, LogWriter};
use crate::value::ColValue;

/// The shared store: one Masstree of [`ColValue`]s plus logging state.
pub struct Store {
    pub(crate) tree: Masstree<ColValue>,
    /// Global value-version source: per-value versions are strictly
    /// increasing because every put draws a fresh version (§5).
    next_version: AtomicU64,
    log_dir: Option<PathBuf>,
    next_log_id: AtomicU64,
}

impl Store {
    /// An in-memory store (no logging) — used for tree-only benchmarks.
    pub fn in_memory() -> Arc<Store> {
        Arc::new(Store {
            tree: Masstree::new(),
            next_version: AtomicU64::new(1),
            log_dir: None,
            next_log_id: AtomicU64::new(0),
        })
    }

    /// A persistent store logging into `dir` (one log file per session).
    pub fn persistent(dir: &Path) -> std::io::Result<Arc<Store>> {
        std::fs::create_dir_all(dir)?;
        Ok(Arc::new(Store {
            tree: Masstree::new(),
            next_version: AtomicU64::new(1),
            log_dir: Some(dir.to_path_buf()),
            next_log_id: AtomicU64::new(0),
        }))
    }

    pub(crate) fn with_state(tree: Masstree<ColValue>, next_version: u64) -> Store {
        Store {
            tree,
            next_version: AtomicU64::new(next_version),
            log_dir: None,
            next_log_id: AtomicU64::new(0),
        }
    }

    /// Re-attaches logging (used after recovery).
    pub(crate) fn set_log_dir(&mut self, dir: PathBuf) {
        self.log_dir = Some(dir);
    }

    /// Registers a worker, creating its log if the store is persistent.
    pub fn session(self: &Arc<Store>) -> std::io::Result<Session> {
        let log = match &self.log_dir {
            None => None,
            Some(dir) => {
                let id = self.next_log_id.fetch_add(1, Ordering::Relaxed);
                Some(LogWriter::open(dir.join(format!("log-{id}")))?)
            }
        };
        Ok(Session {
            store: Arc::clone(self),
            log,
        })
    }

    /// Direct tree access (benchmarks, checkpointer).
    pub fn tree(&self) -> &Masstree<ColValue> {
        &self.tree
    }

    pub(crate) fn draw_version(&self) -> u64 {
        self.next_version.fetch_add(1, Ordering::Relaxed)
    }

    /// Highest version handed out so far.
    pub fn current_version(&self) -> u64 {
        self.next_version.load(Ordering::Relaxed)
    }

    /// Runs one structural maintenance pass (empty-layer GC, §4.6.5).
    pub fn maintain(&self) {
        let guard = masstree::pin();
        self.tree.maintain(&guard);
    }
}

/// A per-worker handle: operations + this worker's log.
pub struct Session {
    store: Arc<Store>,
    log: Option<LogWriter>,
}

impl Session {
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// `get_c(k)`: reads the requested columns (all if `cols` is `None`).
    /// Returns `None` if the key is absent.
    pub fn get(&self, key: &[u8], cols: Option<&[usize]>) -> Option<Vec<Vec<u8>>> {
        let guard = masstree::pin();
        let v = self.store.tree.get(key, &guard)?;
        Some(match cols {
            None => v.cols(),
            Some(ids) => ids
                .iter()
                .map(|&i| v.col(i).unwrap_or(&[]).to_vec())
                .collect(),
        })
    }

    /// `put_c(k, v)`: atomically updates the given columns, copying the
    /// rest from the current value (§4.7). Returns the value version.
    ///
    /// The version is drawn inside the tree's per-key critical section,
    /// so version order equals the tree's serialization order — which is
    /// what makes version-ordered log replay reconstruct exactly the
    /// pre-crash state (§5).
    pub fn put(&self, key: &[u8], updates: &[(usize, &[u8])]) -> u64 {
        let mut version = 0;
        let guard = masstree::pin();
        self.store.tree.put_with(
            key,
            |old| {
                version = self.store.draw_version();
                match old {
                    None => ColValue::from_updates(version, updates),
                    Some(prev) => prev.with_updates(version, updates),
                }
            },
            &guard,
        );
        if let Some(log) = &self.log {
            log.append_now(|timestamp| LogRecord::Put {
                timestamp,
                version,
                key: key.to_vec(),
                cols: updates
                    .iter()
                    .map(|&(i, d)| (i as u16, d.to_vec()))
                    .collect(),
            });
        }
        version
    }

    /// Whole-value put with a single column (plain key-value usage).
    pub fn put_single(&self, key: &[u8], data: &[u8]) -> u64 {
        self.put(key, &[(0, data)])
    }

    /// `remove(k)`. Returns true if the key existed.
    pub fn remove(&self, key: &[u8]) -> bool {
        let guard = masstree::pin();
        // Draw the version at the removal's linearization point (under
        // the node lock) so replay ordering matches live ordering.
        let removed =
            self.store
                .tree
                .remove_with(key, |_| self.store.draw_version(), &guard);
        match removed {
            None => false,
            Some((_, version)) => {
                if let Some(log) = &self.log {
                    log.append_now(|timestamp| LogRecord::Remove {
                        timestamp,
                        version,
                        key: key.to_vec(),
                    });
                }
                true
            }
        }
    }

    /// `getrange_c(k, n)`: up to `n` key/column rows at or after `key`,
    /// in key order. Not atomic w.r.t. concurrent writers (§3).
    pub fn get_range(
        &self,
        key: &[u8],
        n: usize,
        cols: Option<&[usize]>,
    ) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
        let guard = masstree::pin();
        let mut out = Vec::with_capacity(n.min(1024));
        self.store.tree.scan(key, &guard, |k, v| {
            let row = match cols {
                None => v.cols(),
                Some(ids) => ids
                    .iter()
                    .map(|&i| v.col(i).unwrap_or(&[]).to_vec())
                    .collect(),
            };
            out.push((k.to_vec(), row));
            out.len() < n
        });
        out
    }

    /// Blocks until everything this session logged is durable.
    pub fn force_log(&self) {
        if let Some(log) = &self.log {
            log.force();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_put_get() {
        let store = Store::in_memory();
        let s = store.session().unwrap();
        s.put(b"k1", &[(0, b"hello"), (1, b"world")]);
        assert_eq!(
            s.get(b"k1", None),
            Some(vec![b"hello".to_vec(), b"world".to_vec()])
        );
        assert_eq!(s.get(b"k1", Some(&[1])), Some(vec![b"world".to_vec()]));
        assert_eq!(s.get(b"nope", None), None);
    }

    #[test]
    fn column_update_preserves_others() {
        let store = Store::in_memory();
        let s = store.session().unwrap();
        s.put(b"k", &[(0, b"a"), (1, b"b")]);
        s.put(b"k", &[(1, b"B!")]);
        assert_eq!(s.get(b"k", None), Some(vec![b"a".to_vec(), b"B!".to_vec()]));
    }

    #[test]
    fn versions_increase() {
        let store = Store::in_memory();
        let s = store.session().unwrap();
        let v1 = s.put(b"k", &[(0, b"1")]);
        let v2 = s.put(b"k", &[(0, b"2")]);
        assert!(v2 > v1);
    }

    #[test]
    fn remove_reports_existence() {
        let store = Store::in_memory();
        let s = store.session().unwrap();
        assert!(!s.remove(b"k"));
        s.put_single(b"k", b"v");
        assert!(s.remove(b"k"));
        assert_eq!(s.get(b"k", None), None);
    }

    #[test]
    fn get_range_returns_rows_in_order() {
        let store = Store::in_memory();
        let s = store.session().unwrap();
        for i in 0..100u32 {
            s.put(format!("key{i:03}").as_bytes(), &[(0, &i.to_le_bytes())]);
        }
        let rows = s.get_range(b"key010", 5, Some(&[0]));
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].0, b"key010");
        assert_eq!(rows[4].0, b"key014");
        assert_eq!(rows[2].1[0], 12u32.to_le_bytes());
    }

    #[test]
    fn concurrent_column_updates_do_not_tear() {
        // Two writers update different columns of one key; every observed
        // value must contain a valid (col0, col1) pair — all-or-nothing
        // multi-column puts (§4.7).
        let store = Store::in_memory();
        let w1 = store.session().unwrap();
        let w2 = store.session().unwrap();
        w1.put(b"k", &[(0, b"0"), (1, b"0")]);
        let t1 = std::thread::spawn(move || {
            for i in 0..20_000u32 {
                w1.put(b"k", &[(0, format!("{i}").as_bytes())]);
            }
        });
        let t2 = std::thread::spawn(move || {
            for i in 0..20_000u32 {
                w2.put(b"k", &[(1, format!("{i}").as_bytes())]);
            }
        });
        let reader = store.session().unwrap();
        for _ in 0..10_000 {
            let cols = reader.get(b"k", None).unwrap();
            assert_eq!(cols.len(), 2);
            // Both columns always parse: no torn/missing column states.
            let _: u32 = std::str::from_utf8(&cols[0]).unwrap().parse().unwrap();
            let _: u32 = std::str::from_utf8(&cols[1]).unwrap().parse().unwrap();
        }
        t1.join().unwrap();
        t2.join().unwrap();
        let cols = reader.get(b"k", None).unwrap();
        assert_eq!(cols[0], b"19999");
        assert_eq!(cols[1], b"19999");
    }
}
