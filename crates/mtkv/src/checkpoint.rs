//! Checkpointing (§5 of the paper).
//!
//! Masstree periodically writes out a checkpoint containing all keys and
//! values: it speeds recovery and allows log space to be reclaimed.
//! Checkpoints run in parallel with request processing (they are *fuzzy*:
//! concurrent puts may or may not be included; recovery fixes this up by
//! replaying the log from the checkpoint's start timestamp, applying
//! records in value-version order).
//!
//! The key space is split into byte-prefix ranges, one per checkpointer
//! thread, each writing its own part file; a manifest written last (via
//! atomic rename) makes the checkpoint complete.

use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::clock;
use crate::store::Store;
use crate::value::ValuePtr;

/// Part-file row sentinel in the `ncols` field marking an **indirect**
/// row: the 24-byte [`ValuePtr`] follows instead of column data. Inline
/// rows can never reach this count (`ncols` is bounded far below it).
const NCOLS_INDIRECT: u16 = u16::MAX;

/// Description of a completed checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Timestamp at which the checkpoint began; recovery replays logs
    /// from here.
    pub start_ts: u64,
    /// Timestamp at which it finished.
    pub end_ts: u64,
    /// Number of part files.
    pub parts: usize,
    /// Keys written.
    pub keys: u64,
}

impl CheckpointMeta {
    fn manifest_bytes(&self) -> String {
        format!(
            "masstree-checkpoint-v1\nstart_ts {}\nend_ts {}\nparts {}\nkeys {}\n",
            self.start_ts, self.end_ts, self.parts, self.keys
        )
    }

    fn parse(s: &str) -> Option<CheckpointMeta> {
        let mut lines = s.lines();
        if lines.next()? != "masstree-checkpoint-v1" {
            return None;
        }
        let mut meta = CheckpointMeta {
            start_ts: 0,
            end_ts: 0,
            parts: 0,
            keys: 0,
        };
        for line in lines {
            let (k, v) = line.split_once(' ')?;
            match k {
                "start_ts" => meta.start_ts = v.parse().ok()?,
                "end_ts" => meta.end_ts = v.parse().ok()?,
                "parts" => meta.parts = v.parse().ok()?,
                "keys" => meta.keys = v.parse().ok()?,
                _ => {}
            }
        }
        Some(meta)
    }
}

/// Directory name of a checkpoint started at `ts`.
fn ckpt_dir(base: &Path, ts: u64) -> PathBuf {
    base.join(format!("ckpt-{ts:020}"))
}

/// Writes a checkpoint of `store` into `base/ckpt-<ts>/` using `threads`
/// parallel writers over sampled-quantile partitions of the key space.
///
/// Partition boundaries come from a sampling pre-scan (every 256th key),
/// so writers stay balanced whatever the key distribution — the paper
/// names parallelization imbalance as the checkpoint bottleneck (§5).
pub fn write_checkpoint(
    store: &Arc<Store>,
    base: &Path,
    threads: usize,
) -> std::io::Result<CheckpointMeta> {
    let threads = threads.clamp(1, 256);
    let start_ts = clock::now();
    let dir = ckpt_dir(base, start_ts);
    std::fs::create_dir_all(&dir)?;

    // Sampling pre-scan: every 256th key becomes a boundary candidate.
    let samples: Vec<Vec<u8>> = {
        let guard = masstree::pin();
        let mut s = Vec::new();
        let mut i = 0usize;
        store.tree().scan(b"", &guard, |key, _| {
            if i.is_multiple_of(256) {
                s.push(key.to_vec());
            }
            i += 1;
            true
        });
        s
    };
    // Thread `t` owns keys in [bound[t], bound[t+1]); empty bound = ±∞.
    let bounds: Vec<Option<Vec<u8>>> = (0..=threads)
        .map(|t| {
            if t == 0 || t == threads || samples.is_empty() {
                None
            } else {
                Some(samples[t * samples.len() / threads].clone())
            }
        })
        .collect();

    let mut handles = Vec::new();
    for t in 0..threads {
        let store = Arc::clone(store);
        let path = dir.join(format!("part-{t:04}"));
        let lo = bounds[t].clone();
        let hi = bounds[t + 1].clone();
        handles.push(std::thread::spawn(move || -> std::io::Result<u64> {
            let file = std::fs::File::create(&path)?;
            let mut out = BufWriter::with_capacity(1 << 20, file);
            let guard = masstree::pin();
            let mut written = 0u64;
            let start_key = lo.unwrap_or_default();
            let mut io_err = None;
            store.tree().scan(&start_key, &guard, |key, value| {
                if let Some(hi) = &hi {
                    if key >= hi.as_slice() {
                        return false; // past this partition
                    }
                }
                let mut rec = Vec::with_capacity(key.len() + 64);
                rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
                rec.extend_from_slice(key);
                rec.extend_from_slice(&value.version().to_le_bytes());
                if let Some(p) = value.ptr() {
                    // Indirect row: the checkpoint records the pointer,
                    // not the payload — the payload's segment is kept
                    // alive by the GC deletion rule (no segment a
                    // durable checkpoint references is ever reclaimed).
                    rec.extend_from_slice(&NCOLS_INDIRECT.to_le_bytes());
                    p.encode(&mut rec);
                } else {
                    let ncols = value.ncols();
                    rec.extend_from_slice(&(ncols as u16).to_le_bytes());
                    for i in 0..ncols {
                        let c = value.col(i).unwrap();
                        rec.extend_from_slice(&(c.len() as u32).to_le_bytes());
                        rec.extend_from_slice(c);
                    }
                }
                let crc = crate::crc32::crc32(&rec);
                rec.extend_from_slice(&crc.to_le_bytes());
                if let Err(e) = out.write_all(&rec) {
                    io_err = Some(e);
                    return false;
                }
                written += 1;
                true
            });
            if let Some(e) = io_err {
                return Err(e);
            }
            out.flush()?;
            out.get_ref().sync_data()?;
            Ok(written)
        }));
    }
    let mut keys = 0u64;
    for h in handles {
        keys += h.join().expect("checkpointer thread panicked")?;
    }
    // The parts may reference value-tier payloads appended after the
    // last WAL-driven force; make the tier durable BEFORE the manifest
    // rename publishes those references, or a crash could leave a valid
    // checkpoint whose pointers name torn payloads.
    if !store.force_value_tier() {
        return Err(std::io::Error::other("value tier force failed"));
    }
    let meta = CheckpointMeta {
        start_ts,
        end_ts: clock::now(),
        parts: threads,
        keys,
    };
    // Manifest written last, atomically: its presence = checkpoint
    // valid. Every step is fsynced — the manifest bytes before the
    // rename, then the checkpoint directory (the rename) and the base
    // directory (the ckpt-<ts> entry itself) — because the caller may
    // truncate the covered log segments the moment this returns: a
    // machine crash must never lose the manifest while the only other
    // copy of the covered records is already gone.
    let tmp = dir.join("MANIFEST.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(meta.manifest_bytes().as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join("MANIFEST"))?;
    std::fs::File::open(&dir)?.sync_all()?;
    std::fs::File::open(base)?.sync_all()?;
    Ok(meta)
}

/// A checkpoint row's payload: inline column data, or (for a
/// value-separated row) the pointer into the value tier.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckpointPayload {
    Inline(Vec<Vec<u8>>),
    Indirect(ValuePtr),
}

/// One `(key, version, payload)` row from a checkpoint part file.
pub type CheckpointRow = (Vec<u8>, u64, CheckpointPayload);

/// Reads one part file; stops at the first corrupt record.
pub fn read_part(path: &Path) -> std::io::Result<Vec<CheckpointRow>> {
    let data = std::fs::read(path)?;
    let mut rows = Vec::new();
    let mut p = &data[..];
    loop {
        if p.len() < 4 {
            break;
        }
        let total_start = p;
        let klen = u32::from_le_bytes(p[..4].try_into().unwrap()) as usize;
        p = &p[4..];
        if p.len() < klen + 8 + 2 {
            break;
        }
        let key = p[..klen].to_vec();
        p = &p[klen..];
        let version = u64::from_le_bytes(p[..8].try_into().unwrap());
        p = &p[8..];
        let ncols = u16::from_le_bytes(p[..2].try_into().unwrap());
        p = &p[2..];
        let payload = if ncols == NCOLS_INDIRECT {
            match ValuePtr::decode(&mut p) {
                Some(ptr) => CheckpointPayload::Indirect(ptr),
                None => break,
            }
        } else {
            let mut cols = Vec::with_capacity(ncols as usize);
            let mut ok = true;
            for _ in 0..ncols {
                if p.len() < 4 {
                    ok = false;
                    break;
                }
                let dlen = u32::from_le_bytes(p[..4].try_into().unwrap()) as usize;
                p = &p[4..];
                if p.len() < dlen {
                    ok = false;
                    break;
                }
                cols.push(p[..dlen].to_vec());
                p = &p[dlen..];
            }
            if !ok {
                break;
            }
            CheckpointPayload::Inline(cols)
        };
        if p.len() < 4 {
            break;
        }
        let stored = u32::from_le_bytes(p[..4].try_into().unwrap());
        let body_len = total_start.len() - p.len();
        if crate::crc32::crc32(&total_start[..body_len]) != stored {
            break;
        }
        p = &p[4..];
        rows.push((key, version, payload));
    }
    Ok(rows)
}

/// Finds the newest complete checkpoint under `base`.
pub fn latest_checkpoint(base: &Path) -> Option<(PathBuf, CheckpointMeta)> {
    latest_checkpoint_at_or_before(base, u64::MAX)
}

/// Finds the newest complete checkpoint under `base` that *began* at or
/// before `cutoff`. Recovery uses this rather than [`latest_checkpoint`]
/// because newer checkpoints are not always usable: a store that stopped
/// truncating after a logger death keeps writing checkpoints whose
/// `start_ts` the eventual recovery cutoff may reject, while an older
/// retained checkpoint still pairs exactly with the surviving segments.
pub fn latest_checkpoint_at_or_before(
    base: &Path,
    cutoff: u64,
) -> Option<(PathBuf, CheckpointMeta)> {
    let mut best: Option<(PathBuf, CheckpointMeta)> = None;
    let entries = std::fs::read_dir(base).ok()?;
    for e in entries.flatten() {
        let path = e.path();
        if !path.is_dir() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.starts_with("ckpt-") {
            continue;
        }
        let Ok(manifest) = std::fs::read_to_string(path.join("MANIFEST")) else {
            continue; // incomplete checkpoint: ignore
        };
        let Some(meta) = CheckpointMeta::parse(&manifest) else {
            continue;
        };
        if meta.start_ts > cutoff {
            continue; // began past the cutoff: recovery would reject it
        }
        if best
            .as_ref()
            .is_none_or(|(_, m)| meta.start_ts > m.start_ts)
        {
            best = Some((path, meta));
        }
    }
    best
}

/// Deletes superseded checkpoints, keeping the newest `keep` complete
/// ones. Incomplete (manifest-less) directories older than the newest
/// complete checkpoint are crash debris and are deleted too; newer ones
/// are left alone — they may be a checkpoint currently being written.
/// Returns the number of checkpoint directories removed.
pub fn prune_checkpoints(base: &Path, keep: usize) -> std::io::Result<usize> {
    let keep = keep.max(1);
    let mut complete: Vec<(u64, PathBuf)> = Vec::new();
    let mut incomplete: Vec<(u64, PathBuf)> = Vec::new();
    let Ok(entries) = std::fs::read_dir(base) else {
        return Ok(0);
    };
    for e in entries.flatten() {
        let path = e.path();
        if !path.is_dir() {
            continue;
        }
        let Some(ts) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("ckpt-"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let manifest_ok = std::fs::read_to_string(path.join("MANIFEST"))
            .ok()
            .and_then(|m| CheckpointMeta::parse(&m))
            .is_some();
        if manifest_ok {
            complete.push((ts, path));
        } else {
            incomplete.push((ts, path));
        }
    }
    complete.sort_by_key(|&(ts, _)| ts);
    let mut removed = 0;
    if complete.len() > keep {
        let cut = complete.len() - keep;
        for (_, path) in complete.drain(..cut) {
            std::fs::remove_dir_all(&path)?;
            removed += 1;
        }
    }
    if let Some(&(newest_ts, _)) = complete.last() {
        for (ts, path) in incomplete {
            if ts < newest_ts {
                std::fs::remove_dir_all(&path)?;
                removed += 1;
            }
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mtkv-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn checkpoint_roundtrip() {
        let dir = tmpdir("rt");
        let store = Store::in_memory();
        let s = store.session().unwrap();
        for i in 0..5_000u32 {
            s.put(
                format!("key{i:06}").as_bytes(),
                &[(0, &i.to_le_bytes()[..]), (1, b"x")],
            );
        }
        let meta = write_checkpoint(&store, &dir, 4).unwrap();
        assert_eq!(meta.keys, 5_000);
        assert_eq!(meta.parts, 4);
        let (path, found) = latest_checkpoint(&dir).unwrap();
        assert_eq!(found, meta);
        // All rows present across parts.
        let mut rows = Vec::new();
        for t in 0..4 {
            rows.extend(read_part(&path.join(format!("part-{t:04}"))).unwrap());
        }
        assert_eq!(rows.len(), 5_000);
        rows.sort();
        assert_eq!(rows[0].0, b"key000000");
        match &rows[0].2 {
            CheckpointPayload::Inline(cols) => assert_eq!(cols.len(), 2),
            other => panic!("expected inline row, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_picks_newest_complete() {
        let dir = tmpdir("newest");
        let store = Store::in_memory();
        let s = store.session().unwrap();
        s.put_single(b"a", b"1");
        let m1 = write_checkpoint(&store, &dir, 2).unwrap();
        s.put_single(b"b", b"2");
        let m2 = write_checkpoint(&store, &dir, 2).unwrap();
        assert!(m2.start_ts > m1.start_ts);
        // An incomplete (manifest-less) newer directory must be ignored.
        std::fs::create_dir_all(dir.join("ckpt-99999999999999999999")).unwrap();
        let (_, found) = latest_checkpoint(&dir).unwrap();
        assert_eq!(found, m2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_newest_and_sweeps_debris() {
        let dir = tmpdir("prune");
        let store = Store::in_memory();
        let s = store.session().unwrap();
        let mut metas = Vec::new();
        for i in 0..4u32 {
            s.put_single(format!("k{i}").as_bytes(), b"v");
            metas.push(write_checkpoint(&store, &dir, 1).unwrap());
        }
        // Crash debris: an old incomplete dir and a newer-than-everything
        // incomplete dir (a checkpoint "currently being written").
        std::fs::create_dir_all(dir.join("ckpt-00000000000000000001")).unwrap();
        let inflight = ckpt_dir(&dir, u64::MAX - 1);
        std::fs::create_dir_all(&inflight).unwrap();
        let removed = prune_checkpoints(&dir, 2).unwrap();
        assert_eq!(removed, 3, "two old complete + one old incomplete");
        let (_, newest) = latest_checkpoint(&dir).unwrap();
        assert_eq!(newest, metas[3]);
        assert!(inflight.is_dir(), "in-flight checkpoint left alone");
        // The second-newest complete one also survived.
        assert!(ckpt_dir(&dir, metas[2].start_ts).is_dir());
        assert!(!ckpt_dir(&dir, metas[0].start_ts).is_dir());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_checkpoint() {
        let dir = tmpdir("empty");
        let store = Store::in_memory();
        let meta = write_checkpoint(&store, &dir, 3).unwrap();
        assert_eq!(meta.keys, 0);
        let (path, _) = latest_checkpoint(&dir).unwrap();
        for t in 0..3 {
            assert!(read_part(&path.join(format!("part-{t:04}")))
                .unwrap()
                .is_empty());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
