//! Crash recovery (§5 of the paper), segment-aware.
//!
//! A session's log is a chain of segments (`log-<session>.<seg>`, see
//! `log.rs`); within a session, records are timestamp-ordered across the
//! chain, and every sealed segment ends in a clean-close sentinel.
//!
//! Recovery first computes the cutoff `t = min over *crashed* sessions
//! of the session's max record timestamp (across all its surviving
//! segments)`: records after `t` may be missing from other logs (their
//! group commits never completed), so they are dropped to keep the
//! recovered state prefix-consistent. A session whose **newest** segment
//! ends in a clean-close sentinel is complete by construction and is
//! excluded from the `min` — a cleanly closed session must not freeze
//! the cutoff at its close time (see `LogRecord::CleanClose`). It then
//! loads the newest checkpoint that *began* before `t` and replays the
//! surviving segments in parallel from the checkpoint's start timestamp,
//! applying each value's updates in increasing version order (replays
//! are idempotent: a record is applied only if its version exceeds the
//! stored value's). Segments wholly covered by the checkpoint were
//! already truncated online, so the replay work is bounded by the
//! checkpoint cadence, not by process uptime.
//!
//! Finally, recovery **seals** what it consumed: every log file is
//! trimmed to the records at or before the cutoff and terminated with a
//! clean-close sentinel. This makes recovery repeatable — without it, a
//! second crash would let this crash's torn logs clamp the *next*
//! recovery's cutoff into the past (dropping acked writes), and records
//! this recovery dropped past the cutoff could resurrect later.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use masstree::Masstree;

use crate::checkpoint::{latest_checkpoint_at_or_before, read_part, CheckpointPayload};
use crate::log::{decode_all, LogRecord};
use crate::store::{DurabilityConfig, Store};
use crate::value::ColValue;

/// Outcome of a recovery run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The cutoff timestamp `t` (`u64::MAX` when unconstrained — no
    /// logs, or every session closed cleanly).
    pub cutoff: u64,
    /// Records replayed (within the cutoff and checkpoint window).
    pub replayed: u64,
    /// Records dropped because they were past the cutoff.
    pub dropped_past_cutoff: u64,
    /// Keys loaded from the checkpoint.
    pub checkpoint_keys: u64,
    /// Whether a checkpoint was used.
    pub used_checkpoint: bool,
    /// Log segment files read.
    pub log_segments: u64,
    /// Log files rewritten by the post-recovery sealing pass (torn
    /// tails trimmed, past-cutoff records dropped, sentinel appended).
    pub sealed_logs: u64,
    /// Indirect (value-separated) records whose payload could not be
    /// verified in the value tier and were therefore skipped. Always 0
    /// for acked writes: every ack path forces the value tier before
    /// the WAL, so a durable pointer record implies a durable payload —
    /// an unresolved pointer can only come from an unacked tail.
    pub values_unresolved: u64,
}

/// All log files in `dir` (files named `log-*`).
pub fn log_files(dir: &Path) -> Vec<PathBuf> {
    let mut logs = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_file()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("log-"))
            {
                logs.push(p);
            }
        }
    }
    logs.sort();
    logs
}

/// Parses a log file name into `(session, segment)`. Both the segmented
/// form `log-<session>.<seg>` and the legacy single-file form
/// `log-<session>` (segment 0) are accepted.
pub fn parse_log_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("log-")?;
    match rest.split_once('.') {
        None => Some((rest.parse().ok()?, 0)),
        Some((s, g)) => Some((s.parse().ok()?, g.parse().ok()?)),
    }
}

/// Groups the log files in `dir` by session, each session's segments
/// sorted by segment number.
pub fn session_segments(dir: &Path) -> BTreeMap<u64, Vec<(u64, PathBuf)>> {
    let mut out: BTreeMap<u64, Vec<(u64, PathBuf)>> = BTreeMap::new();
    for path in log_files(dir) {
        let Some((session, seg)) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_log_name)
        else {
            continue;
        };
        out.entry(session).or_default().push((seg, path));
    }
    for segs in out.values_mut() {
        segs.sort_by_key(|&(seg, _)| seg);
    }
    out
}

/// One parsed segment file.
struct Segment {
    path: PathBuf,
    records: Vec<(LogRecord, usize)>,
}

/// Rebuilds a store from `log_dir` (logs) and `ckpt_dir` (checkpoints;
/// may equal `log_dir`). The returned store has logging re-attached to
/// `log_dir` so new sessions keep appending.
///
/// Recovery requires exclusive ownership of `log_dir`: it rewrites
/// (seals) the log files it consumed, so it must never run against a
/// directory a live store is still logging into.
pub fn recover(log_dir: &Path, ckpt_dir: &Path) -> std::io::Result<(Arc<Store>, RecoveryReport)> {
    recover_with(log_dir, ckpt_dir, DurabilityConfig::default())
}

/// [`recover`], attaching `config` to the rebuilt store (and starting
/// its background checkpointer when the config asks for one).
pub fn recover_with(
    log_dir: &Path,
    ckpt_dir: &Path,
    config: DurabilityConfig,
) -> std::io::Result<(Arc<Store>, RecoveryReport)> {
    let mut report = RecoveryReport::default();

    // Read every segment of every session fully (tolerating torn tails).
    let mut sessions: Vec<Vec<Segment>> = Vec::new();
    for (_session, segs) in session_segments(log_dir) {
        let mut parsed = Vec::with_capacity(segs.len());
        for (_seg, path) in segs {
            let data = std::fs::read(&path)?;
            parsed.push(Segment {
                path,
                records: decode_all(&data),
            });
            report.log_segments += 1;
        }
        sessions.push(parsed);
    }

    // Cutoff: min over *crashed* sessions of the session's max record
    // timestamp across all surviving segments. A session with no records
    // at all contributes nothing — **by evidence**, not trust: session
    // creation durably syncs a `SessionCreate` journal entry before the
    // session is handed out (`Store::session`), so an empty chain can
    // only belong to a session whose creation never completed and that
    // therefore never executed (let alone lost) any operation. A
    // just-created session that crashed carries at least that entry, so
    // its unaccounted window correctly clamps the cutoff at its creation
    // time (until its heartbeats advance it). A session whose newest
    // segment ends in a
    // clean-close sentinel closed cleanly: its silence past the sentinel
    // is complete knowledge — not missing data — and must not freeze the
    // cutoff at the close time (which would drop everything other
    // sessions logged afterwards). Note the sentinel must terminate the
    // *newest* segment: every sealed (rotated-out) segment also ends in
    // one, which says nothing about how the session ended. If every
    // session closed cleanly there is no cutoff at all (`u64::MAX`):
    // nothing was lost, everything replays.
    let cutoff = sessions
        .iter()
        .filter_map(|segs| {
            if segs.iter().all(|s| s.records.is_empty()) {
                return None;
            }
            let newest = segs.last().unwrap();
            if matches!(
                newest.records.last(),
                Some((LogRecord::CleanClose { .. }, _))
            ) {
                return None;
            }
            segs.iter()
                .flat_map(|s| s.records.iter().map(|(r, _)| r.timestamp()))
                .max()
        })
        .min()
        .unwrap_or(u64::MAX);
    report.cutoff = cutoff;

    // Newest complete checkpoint that began before the cutoff — NOT
    // "the newest, if it qualifies": a store whose truncation froze
    // after a logger death keeps writing checkpoints that a post-crash
    // cutoff may reject, and only an older retained checkpoint pairs
    // with segments truncated back when the store was healthy. Falling
    // back to it is sound: truncation under checkpoint C only ever
    // removes records stamped before C.start_ts, so the logs still hold
    // everything from any retained checkpoint's start onward.
    let ckpt = latest_checkpoint_at_or_before(ckpt_dir, cutoff);

    let mut tree: Masstree<ColValue> = Masstree::new();
    let mut max_version = 0u64;
    let mut replay_from = 0u64;
    if let Some((path, meta)) = &ckpt {
        // Parallel checkpoint load: one thread per part. Rows are counted
        // against the manifest: a short count means a damaged or
        // truncated part, in which case the checkpoint is abandoned and
        // the logs alone rebuild the store (slower but complete).
        let mut loaded_rows = 0u64;
        std::thread::scope(|scope| -> std::io::Result<()> {
            let mut handles = Vec::new();
            for t in 0..meta.parts {
                let part = path.join(format!("part-{t:04}"));
                let tree = &tree;
                handles.push(scope.spawn(move || -> std::io::Result<(u64, u64)> {
                    let rows = read_part(&part)?;
                    let guard = masstree::pin();
                    let mut maxv = 0u64;
                    let n = rows.len() as u64;
                    for (key, version, payload) in rows {
                        maxv = maxv.max(version);
                        let value = match payload {
                            CheckpointPayload::Inline(cols) => {
                                let refs: Vec<&[u8]> = cols.iter().map(|c| c.as_slice()).collect();
                                ColValue::new(version, &refs)
                            }
                            // The checkpoint forced the value tier
                            // before publishing its manifest, so the
                            // pointed-to payload is durable; reads
                            // still re-verify its checksum.
                            CheckpointPayload::Indirect(ptr) => ColValue::indirect(version, ptr),
                        };
                        tree.put(&key, value, &guard);
                    }
                    Ok((maxv, n))
                }));
            }
            for h in handles {
                let (maxv, n) = h.join().expect("loader panicked").unwrap_or((0, 0));
                max_version = max_version.max(maxv);
                loaded_rows += n;
            }
            Ok(())
        })?;
        if loaded_rows == meta.keys {
            report.used_checkpoint = true;
            report.checkpoint_keys = meta.keys;
            replay_from = meta.start_ts;
        } else {
            // Damaged checkpoint: start over from the logs.
            tree = Masstree::new();
            max_version = 0;
        }
    }

    // Replay the surviving segments in parallel (one thread per
    // segment), applying each record only if it advances the key's value
    // version — this makes replay order-insensitive across logs *and*
    // across one session's segments, as §5 requires.
    //
    // Indirect records are **read-verified** against the value tier
    // before their pointer is installed: the segments are never
    // modified by recovery, so a pointer that verifies now verifies on
    // every future recovery too (double recovery stays repeatable).
    let vreader = crate::vtier::SegReader::new(log_dir);
    let mut totals = (0u64, 0u64, 0u64, 0u64); // replayed, dropped, max_version, unresolved
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for segment in sessions.iter().flatten() {
            let tree = &tree;
            let records = &segment.records;
            let vreader = &vreader;
            handles.push(scope.spawn(move || {
                let guard = masstree::pin();
                let mut replayed = 0u64;
                let mut dropped = 0u64;
                let mut maxv = 0u64;
                let mut unresolved = 0u64;
                for (rec, _) in records {
                    if rec.is_marker() {
                        continue; // heartbeat / clean-close marker only
                    }
                    let ts = rec.timestamp();
                    if ts > cutoff {
                        dropped += 1;
                        continue;
                    }
                    if ts < replay_from {
                        // Covered by the checkpoint: a record's timestamp
                        // is drawn after its tree operation completes, so
                        // anything stamped before the checkpoint began was
                        // visible to the checkpoint scan (§5).
                        continue;
                    }
                    maxv = maxv.max(rec.version());
                    match rec {
                        LogRecord::Put {
                            version, key, cols, ..
                        } => {
                            tree.put_with(
                                key,
                                |old| match old {
                                    // Already newer: keep. Clone, don't
                                    // rebuild from columns — a rebuild
                                    // would destroy an indirect pointer
                                    // record (its payload lives in the
                                    // value tier, not in columns).
                                    Some(prev) if prev.version() >= *version => prev.clone(),
                                    // Records carry the full resulting
                                    // value (not an update delta), so a
                                    // newer record replaces outright —
                                    // this is what makes out-of-order
                                    // replay across segments and
                                    // sessions safe.
                                    _ => {
                                        let updates: Vec<(usize, &[u8])> = cols
                                            .iter()
                                            .map(|(i, d)| (*i as usize, d.as_slice()))
                                            .collect();
                                        ColValue::from_updates(*version, &updates)
                                    }
                                },
                                &guard,
                            );
                            replayed += 1;
                        }
                        LogRecord::PutIndirect {
                            version, key, ptr, ..
                        } => {
                            // Verify the payload exists and checks out
                            // BEFORE installing the pointer: a pointer
                            // whose payload is torn or missing belongs
                            // to an unacked tail (every ack forces the
                            // tier before the WAL) and is skipped, not
                            // trusted.
                            match vreader.read(*ptr) {
                                Ok(_) => {
                                    tree.put_with(
                                        key,
                                        |old| match old {
                                            Some(prev) if prev.version() >= *version => {
                                                prev.clone()
                                            }
                                            _ => ColValue::indirect(*version, *ptr),
                                        },
                                        &guard,
                                    );
                                    replayed += 1;
                                }
                                Err(_) => unresolved += 1,
                            }
                        }
                        LogRecord::Remove { version, key, .. } => {
                            // A remove must leave a versioned tombstone:
                            // another log's older put for the same key may
                            // be replayed *after* this remove, and must
                            // not resurrect it. Tombstones (zero-column
                            // inline values) are swept after replay.
                            tree.put_with(
                                key,
                                |old| match old {
                                    Some(prev) if prev.version() >= *version => prev.clone(),
                                    _ => ColValue::new(*version, &[]),
                                },
                                &guard,
                            );
                            replayed += 1;
                        }
                        LogRecord::Heartbeat { .. }
                        | LogRecord::CleanClose { .. }
                        | LogRecord::SessionCreate { .. } => {
                            unreachable!("markers skipped above")
                        }
                    }
                }
                (replayed, dropped, maxv, unresolved)
            }));
        }
        for h in handles {
            let (r, d, m, u) = h.join().expect("replayer panicked");
            totals.0 += r;
            totals.1 += d;
            totals.2 = totals.2.max(m);
            totals.3 += u;
        }
    });
    report.replayed = totals.0;
    report.dropped_past_cutoff = totals.1;
    max_version = max_version.max(totals.2);
    report.values_unresolved = totals.3;
    drop(vreader);

    // Sweep remove tombstones (zero-column values) left by replay.
    // Indirect values also report zero columns (their payload lives in
    // the value tier) — they are live data, not tombstones.
    let mut live_by_seg: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    {
        let guard = masstree::pin();
        let mut dead: Vec<Vec<u8>> = Vec::new();
        tree.scan(b"", &guard, |k, v| {
            if let Some(p) = v.ptr() {
                *live_by_seg.entry(p.seg).or_default() += u64::from(p.len);
            } else if v.ncols() == 0 {
                dead.push(k.to_vec());
            }
            true
        });
        for k in &dead {
            tree.remove(k, &guard);
        }
    }

    // Seal what was consumed: trim every log file to the records at or
    // before the cutoff (torn tails and junk included) and terminate it
    // with a clean-close sentinel. The disk now states exactly what this
    // recovery decided, so a *second* crash cannot re-litigate it: these
    // files no longer constrain the next recovery's cutoff (which would
    // drop writes acked after this recovery), and the records this
    // recovery dropped past the cutoff can never resurrect.
    report.sealed_logs = seal_segments_to_cutoff(sessions.iter().flatten(), cutoff)?;

    let mut store = Store::with_state(tree, max_version + 1, config);
    store.set_log_dir(log_dir.to_path_buf());
    store.attach_value_tier()?;
    let store = Arc::new(store);
    // Rebuild per-segment live-byte accounts from the recovered tree so
    // GC's dead-fraction candidacy starts from truth, not zero.
    if let Some(tier) = store.value_tier() {
        tier.rebuild_accounts(&live_by_seg);
    }
    store.spawn_background_checkpointer();
    Ok((store, report))
}

/// Rewrites each file as exactly its records stamped at or before
/// `cutoff`, terminated by a clean-close sentinel, and reports how many
/// files changed. The filter is per-record, not a prefix cut: rotation
/// markers are stamped with the max timestamp already written (never
/// ahead of in-flight data — see `rotate_segment`), but logs written
/// before that stamping rule may still carry an out-of-band marker
/// ahead of data drained after it, and a prefix cut there could drop
/// durable data the replay above kept. (Per-session *data* records are
/// always in timestamp order — they are stamped under the buffer
/// lock.)
///
/// The rewrite goes through a temp file + rename, and each touched
/// directory is fsynced before returning, so a machine crash at any
/// point can neither lose the kept (acked, durable) records nor
/// resurrect the pre-seal torn log (which would clamp the next
/// recovery's cutoff).
fn seal_segments_to_cutoff<'a>(
    segments: impl Iterator<Item = &'a Segment>,
    cutoff: u64,
) -> std::io::Result<u64> {
    let mut sealed = 0u64;
    let mut dirs = std::collections::BTreeSet::new();
    for seg in segments {
        let data = std::fs::read(&seg.path)?;
        let records = decode_all(&data);
        let mut kept = Vec::with_capacity(data.len());
        let mut prev_end = 0usize;
        let mut last_kept: Option<&LogRecord> = None;
        for (rec, end) in &records {
            if rec.timestamp() <= cutoff {
                kept.extend_from_slice(&data[prev_end..*end]);
                last_kept = Some(rec);
            }
            prev_end = *end;
        }
        let ends_clean = matches!(last_kept, Some(LogRecord::CleanClose { .. }));
        if ends_clean && kept.len() == data.len() {
            continue; // already exactly a sealed record sequence
        }
        if !ends_clean {
            let ts = if cutoff != u64::MAX {
                cutoff
            } else {
                crate::clock::now()
            };
            LogRecord::CleanClose { timestamp: ts }.encode(&mut kept);
        }
        // Dotfile prefix: a crash mid-seal must not leave a file the
        // `log-*` listing would pick up.
        let name = seg
            .path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("seg");
        let tmp = seg
            .path
            .parent()
            .unwrap_or(Path::new("."))
            .join(format!(".seal-{name}"));
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&kept)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &seg.path)?;
        if let Some(parent) = seg.path.parent() {
            dirs.insert(parent.to_path_buf());
        }
        sealed += 1;
    }
    // Fsync each touched directory once (not per rename), or a machine
    // crash shortly after recovery can lose a rename and resurrect the
    // pre-seal torn log — reintroducing the repeated-crash cutoff
    // clamping this seal exists to prevent. Recovery has not returned
    // yet, so no post-recovery write can be acked before this lands.
    for dir in dirs {
        std::fs::File::open(&dir)?.sync_all()?;
    }
    Ok(sealed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::write_checkpoint;
    use crate::log::read_log;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mtkv-rec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn recover_from_logs_only() {
        let dir = tmpdir("logs");
        {
            let store = Store::persistent(&dir).unwrap();
            let s = store.session().unwrap();
            for i in 0..1000u32 {
                s.put(
                    format!("key{i:04}").as_bytes(),
                    &[(0, &i.to_le_bytes()[..])],
                );
            }
            s.remove(b"key0007");
            assert!(s.force_log());
        }
        let (store, report) = recover(&dir, &dir).unwrap();
        assert!(!report.used_checkpoint);
        assert!(report.replayed >= 1000);
        let s = store.session().unwrap();
        assert_eq!(
            s.get(b"key0000", Some(&[0])).unwrap()[0],
            0u32.to_le_bytes()
        );
        assert_eq!(
            s.get(b"key0999", Some(&[0])).unwrap()[0],
            999u32.to_le_bytes()
        );
        assert_eq!(s.get(b"key0007", None), None, "remove replayed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_multiple_logs_respects_versions() {
        let dir = tmpdir("multi");
        {
            let store = Store::persistent(&dir).unwrap();
            let s1 = store.session().unwrap();
            let s2 = store.session().unwrap();
            // Interleaved updates to one key from two logged sessions.
            for i in 0..100u32 {
                if i % 2 == 0 {
                    s1.put(b"contended", &[(0, format!("{i}").as_bytes())]);
                } else {
                    s2.put(b"contended", &[(0, format!("{i}").as_bytes())]);
                }
            }
            assert!(s1.force_log());
            assert!(s2.force_log());
        }
        let (store, report) = recover(&dir, &dir).unwrap();
        // Both logs heartbeat at shutdown, so the cutoff t covers every
        // record and nothing is dropped (without heartbeats, the even
        // log's earlier last-timestamp would have cut off i = 99).
        assert_eq!(report.dropped_past_cutoff, 0);
        let s = store.session().unwrap();
        assert_eq!(s.get(b"contended", Some(&[0])).unwrap()[0], b"99");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_checkpoint_plus_tail() {
        let dir = tmpdir("ckpt");
        {
            let store = Store::persistent(&dir).unwrap();
            let s = store.session().unwrap();
            for i in 0..2_000u32 {
                s.put(
                    format!("key{i:05}").as_bytes(),
                    &[(0, &i.to_le_bytes()[..])],
                );
            }
            assert!(s.force_log());
            write_checkpoint(&store, &dir, 3).unwrap();
            // Post-checkpoint tail.
            for i in 2_000..2_500u32 {
                s.put(
                    format!("key{i:05}").as_bytes(),
                    &[(0, &i.to_le_bytes()[..])],
                );
            }
            s.put(b"key00000", &[(0, &u32::MAX.to_le_bytes()[..])]);
            assert!(s.force_log());
        }
        let (store, report) = recover(&dir, &dir).unwrap();
        assert!(report.used_checkpoint);
        assert_eq!(report.checkpoint_keys, 2_000);
        let s = store.session().unwrap();
        assert_eq!(
            s.get(b"key02499", Some(&[0])).unwrap()[0],
            2499u32.to_le_bytes()
        );
        assert_eq!(
            s.get(b"key00000", Some(&[0])).unwrap()[0],
            u32::MAX.to_le_bytes(),
            "post-checkpoint update wins over checkpointed value"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_chain_constrains_nothing_by_evidence() {
        // A session whose creation never completed leaves an empty log
        // chain (crash before the synced SessionCreate entry). With the
        // create-journal protocol, such a chain is *proof* the session
        // never ran anything, so it must not constrain the cutoff.
        let dir = tmpdir("empty-evidence");
        {
            let store = Store::persistent(&dir).unwrap();
            let s = store.session().unwrap();
            s.put(b"survivor", &[(0, b"v")]);
            assert!(s.force_log());
            // Simulate the half-created session: an empty segment file
            // with no records at all.
            std::fs::write(crate::log::segment_path(&dir, 99, 0), b"").unwrap();
        }
        let (store, report) = recover(&dir, &dir).unwrap();
        assert_eq!(
            report.cutoff,
            u64::MAX,
            "an empty chain (and cleanly closed sessions) constrain nothing"
        );
        let s = store.session().unwrap();
        assert_eq!(s.get(b"survivor", Some(&[0])).unwrap()[0], b"v");
        drop(s);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn session_create_entry_closes_the_cutoff_sliver() {
        // The sliver the create journal closes: a session that crashes
        // right after creation COULD have buffered (and lost) puts, so
        // it must clamp the cutoff at its creation time — before the
        // create entry, its empty file was indistinguishable from
        // "never ran anything" and the cutoff wrongly ignored it,
        // replaying other sessions' later (possibly dependent) records.
        let dir = tmpdir("create-sliver");
        {
            let store = Store::persistent(&dir).unwrap();
            let crashed = store.session().unwrap();
            crashed.simulate_crash();
            // Every record of the crashed session is now older than
            // anything logged from here on.
            let s = store.session().unwrap();
            s.put(b"after-crash", &[(0, b"v")]);
            assert!(s.force_log());
        }
        {
            // The crashed chain holds its create entry (and possibly
            // heartbeats) but no clean close.
            let records = read_log(&crate::log::segment_path(&dir, 0, 0)).unwrap();
            assert!(
                records
                    .iter()
                    .any(|r| matches!(r, LogRecord::SessionCreate { .. })),
                "creation journaled durably: {records:?}"
            );
            assert!(
                !records
                    .iter()
                    .any(|r| matches!(r, LogRecord::CleanClose { .. })),
                "simulated crash must not close cleanly"
            );
        }
        let (store, report) = recover(&dir, &dir).unwrap();
        assert_ne!(
            report.cutoff,
            u64::MAX,
            "a crashed just-created session must constrain the cutoff"
        );
        // The put happened after every timestamp the crashed session
        // durably wrote, so the (conservative, correct) cutoff drops it.
        let s = store.session().unwrap();
        assert_eq!(
            s.get(b"after-crash", None),
            None,
            "records beyond a crashed session's evidence horizon are dropped"
        );
        drop(s);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn puts_after_session_close_survive_recovery() {
        // Regression for the ROADMAP "recovery cutoff vs short-lived
        // sessions" bug: session A closes early; without the clean-close
        // sentinel the cutoff froze at A's close time, dropping
        // everything session B logged afterwards and rejecting the later
        // checkpoint (observed live: 50k-key checkpoint + 50k logged
        // puts recovered as 1 key).
        let dir = tmpdir("cutoff");
        {
            let store = Store::persistent(&dir).unwrap();
            {
                // Session A: one early put, then a clean close.
                let a = store.session().unwrap();
                a.put(b"early", &[(0, b"from-A")]);
                assert!(a.force_log());
            }
            // Session B logs on, well past A's close.
            let b = store.session().unwrap();
            for i in 0..2_000u32 {
                b.put(
                    format!("late{i:05}").as_bytes(),
                    &[(0, &i.to_le_bytes()[..])],
                );
            }
            assert!(b.force_log());
            // A checkpoint *begun after A closed* must stay usable.
            write_checkpoint(&store, &dir, 2).unwrap();
            for i in 2_000..2_500u32 {
                b.put(
                    format!("late{i:05}").as_bytes(),
                    &[(0, &i.to_le_bytes()[..])],
                );
            }
            assert!(b.force_log());
        }
        let (store, report) = recover(&dir, &dir).unwrap();
        assert!(
            report.used_checkpoint,
            "checkpoint began after A's clean close and must not be \
             rejected by a frozen cutoff"
        );
        assert_eq!(report.dropped_past_cutoff, 0, "no session crashed");
        let s = store.session().unwrap();
        assert_eq!(s.get(b"early", Some(&[0])).unwrap()[0], b"from-A");
        for i in [0u32, 1_999, 2_000, 2_499] {
            assert_eq!(
                s.get(format!("late{i:05}").as_bytes(), Some(&[0]))
                    .unwrap_or_else(|| panic!("late{i:05} lost"))[0],
                i.to_le_bytes(),
                "post-close put late{i:05} must survive recovery"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_log_still_bounds_cleanly_closed_ones() {
        // A torn (crashed) log must keep constraining the cutoff even
        // when other logs closed cleanly: records stamped after the
        // crash point are dropped everywhere.
        let dir = tmpdir("crashed");
        let crashed_path;
        {
            let store = Store::persistent(&dir).unwrap();
            let a = store.session().unwrap();
            let b = store.session().unwrap();
            a.put(b"a-key", &[(0, b"1")]);
            assert!(a.force_log());
            b.put(b"b-key", &[(0, b"1")]);
            assert!(b.force_log());
            crashed_path = log_files(&dir)[0].clone();
        }
        // Simulate a crash of log A: truncate off its clean-close
        // sentinel (and anything after the first record).
        let data = std::fs::read(&crashed_path).unwrap();
        let (_, first) = crate::log::LogRecord::decode(&data).unwrap();
        std::fs::write(&crashed_path, &data[..first]).unwrap();
        let (_, report) = recover(&dir, &dir).unwrap();
        assert!(
            report.cutoff < u64::MAX,
            "a crashed log must still impose a finite cutoff"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn new_store_lifetimes_never_reuse_closed_log_files() {
        // A clean-close sentinel is trusted to be the final record of a
        // *complete* log, so a later store lifetime must not append to
        // the file: a crash before its first flush would leave the stale
        // sentinel terminal and recovery would wrongly exclude the
        // crashed log from the cutoff. Fresh lifetimes (both
        // `Store::persistent` and post-`recover` stores) therefore
        // allocate log ids past every existing file.
        let dir = tmpdir("reuse");
        {
            let store = Store::persistent(&dir).unwrap();
            let s = store.session().unwrap();
            s.put_single(b"k1", b"run1");
            assert!(s.force_log());
        }
        {
            let store = Store::persistent(&dir).unwrap();
            let s = store.session().unwrap();
            s.put_single(b"k2", b"run2");
            assert!(s.force_log());
        }
        let (store, _) = recover(&dir, &dir).unwrap();
        {
            let s = store.session().unwrap();
            s.put_single(b"k3", b"run3");
            assert!(s.force_log());
        }
        let logs = log_files(&dir);
        assert_eq!(logs.len(), 3, "one fresh log file per lifetime");
        for path in &logs {
            let records = read_log(path).unwrap();
            let closes = records
                .iter()
                .filter(|r| matches!(r, LogRecord::CleanClose { .. }))
                .count();
            assert!(closes <= 1, "{path:?}: one writer, at most one sentinel");
            if closes == 1 {
                assert!(
                    matches!(records.last(), Some(LogRecord::CleanClose { .. })),
                    "{path:?}: a sentinel can only be the final record"
                );
            }
        }
        let (store, _) = recover(&dir, &dir).unwrap();
        let s = store.session().unwrap();
        for (k, v) in [
            (&b"k1"[..], &b"run1"[..]),
            (b"k2", b"run2"),
            (b"k3", b"run3"),
        ] {
            assert_eq!(s.get(k, Some(&[0])).unwrap()[0], v);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_after_recovery_get_fresh_versions() {
        let dir = tmpdir("fresh");
        {
            let store = Store::persistent(&dir).unwrap();
            let s = store.session().unwrap();
            s.put_single(b"k", b"old");
            assert!(s.force_log());
        }
        let (store, _) = recover(&dir, &dir).unwrap();
        let s = store.session().unwrap();
        let v = s.put_single(b"k", b"new");
        assert!(v > 1, "versions continue past recovered state");
        assert_eq!(s.get(b"k", Some(&[0])).unwrap()[0], b"new");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_name_parsing() {
        assert_eq!(parse_log_name("log-0"), Some((0, 0)));
        assert_eq!(parse_log_name("log-17"), Some((17, 0)));
        assert_eq!(parse_log_name("log-3.9"), Some((3, 9)));
        assert_eq!(parse_log_name("log-12.345"), Some((12, 345)));
        assert_eq!(parse_log_name("log-x"), None);
        assert_eq!(parse_log_name("log-1.b"), None);
        assert_eq!(parse_log_name("ckpt-1"), None);
    }

    #[test]
    fn rotated_session_recovers_across_segments() {
        // Records written before and after rotations all survive, and
        // the sealed mid-chain segments (which end in clean-close
        // sentinels) do not make the *session* read as cleanly closed:
        // only the newest segment's tail decides that.
        let dir = tmpdir("segments");
        {
            let store = Store::persistent_with(&dir, DurabilityConfig::tiny_segments(512)).unwrap();
            let s = store.session().unwrap();
            for i in 0..400u32 {
                s.put(
                    format!("seg{i:05}").as_bytes(),
                    &[(0, &i.to_le_bytes()[..])],
                );
            }
            assert!(s.force_log());
        }
        assert!(
            session_segments(&dir).values().next().unwrap().len() >= 3,
            "rotation must have produced several segments"
        );
        let (store, report) = recover(&dir, &dir).unwrap();
        assert!(report.log_segments >= 3);
        let s = store.session().unwrap();
        for i in [0u32, 199, 399] {
            assert_eq!(
                s.get(format!("seg{i:05}").as_bytes(), Some(&[0])).unwrap()[0],
                i.to_le_bytes()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_seals_crashed_logs_for_the_next_crash() {
        // The repeated-crash hazard: a crashed (torn) log consumed by one
        // recovery must not clamp the cutoff of the *next* recovery —
        // otherwise every write acked after the first recovery would be
        // dropped by the second.
        let dir = tmpdir("reseal");
        {
            let store = Store::persistent(&dir).unwrap();
            let s = store.session().unwrap();
            s.put_single(b"old", b"1");
            assert!(s.force_log());
            // Crash: no sentinel, old log stays torn-looking.
            s.simulate_crash();
        }
        let (store, r1) = recover(&dir, &dir).unwrap();
        assert!(r1.cutoff < u64::MAX, "first recovery saw the crash");
        assert!(r1.sealed_logs >= 1, "crashed log sealed: {r1:?}");
        // Life goes on: new writes, then a second crash.
        {
            let s = store.session().unwrap();
            s.put_single(b"new", b"2");
            assert!(s.force_log());
            s.simulate_crash();
        }
        drop(store);
        let (store, r2) = recover(&dir, &dir).unwrap();
        let s = store.session().unwrap();
        assert_eq!(s.get(b"old", Some(&[0])).unwrap()[0], b"1");
        assert_eq!(
            s.get(b"new", Some(&[0]))
                .expect("write acked after the first recovery must survive the second")[0],
            b"2"
        );
        assert_eq!(r2.dropped_past_cutoff, 0, "{r2:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_is_repeatable_after_sealing() {
        // Two consecutive recoveries of the same directory must agree:
        // sealing pins the first recovery's cutoff decision to disk.
        let dir = tmpdir("idem");
        {
            let store = Store::persistent(&dir).unwrap();
            let a = store.session().unwrap();
            let b = store.session().unwrap();
            for i in 0..300u32 {
                a.put(format!("a{i:04}").as_bytes(), &[(0, &i.to_le_bytes()[..])]);
                b.put(format!("b{i:04}").as_bytes(), &[(0, &i.to_le_bytes()[..])]);
            }
            assert!(a.force_log());
            assert!(b.force_log());
            // a crashes mid-air, b unforced tail beyond the crash point.
            a.simulate_crash();
            b.simulate_crash();
        }
        // Tear b's tail mid-record to make it interesting.
        let logs = log_files(&dir);
        let data = std::fs::read(&logs[1]).unwrap();
        std::fs::write(&logs[1], &data[..data.len() - 3]).unwrap();
        let (store1, r1) = recover(&dir, &dir).unwrap();
        let guard = masstree::pin();
        let keys1 = store1.tree().count_keys(&guard);
        drop(guard);
        drop(store1);
        let (store2, r2) = recover(&dir, &dir).unwrap();
        let guard = masstree::pin();
        let keys2 = store2.tree().count_keys(&guard);
        drop(guard);
        assert_eq!(keys1, keys2, "{r1:?} vs {r2:?}");
        assert_eq!(r2.replayed, r1.replayed, "same records replay");
        assert_eq!(r2.dropped_past_cutoff, 0, "nothing left past the seal");
        assert_eq!(r2.sealed_logs, 0, "second recovery rewrites nothing");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
