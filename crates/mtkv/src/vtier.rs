//! The value-separation tier: append-only **value segments** for
//! values past the separation threshold (WiscKey-style key/value
//! separation grafted onto Masstree).
//!
//! The tree leaf keeps a fixed-size [`ValuePtr`] record; the column
//! bytes live in `vseg-<seg>` files in the store's log directory,
//! reusing the segmented-log discipline: append-only writes, rotation
//! at a size threshold, fsync-before-ack ordering (the tier is forced
//! **before** the write-ahead log on every durability path, so a
//! durable pointer record always names durable payload bytes), and
//! evidence-based reclamation (a segment is deleted only once a
//! durable checkpoint provably supersedes every pointer into it — see
//! `Store::run_durability_cycle`).
//!
//! Payload encoding: `ncols u16 | ncols × (len u32) | column bytes`.
//! The pointer carries the payload length and CRC32, so the segment
//! files need no framing of their own and every read is
//! integrity-checked end to end: a torn tail, a hole, or a flipped bit
//! yields a typed [`ValueError`], never wrong bytes.
//!
//! Reads resolve through a budgeted **value cache** of decoded
//! values, so a hot working set larger than RAM still serves point
//! gets mostly from memory (ZipCache's DRAM-over-SSD model).

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::crc32::crc32;
use crate::value::{ColValue, ValuePtr};

/// Default rotation threshold for value segments.
pub const DEFAULT_VALUE_SEGMENT_BYTES: u64 = 64 << 20;
/// Default decoded-value cache budget.
pub const DEFAULT_VALUE_CACHE_BYTES: usize = 64 << 20;

/// Why an indirect value could not be served. Every variant means the
/// bytes were **refused**, never silently wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueError {
    /// The segment file is missing, or the pointer reaches past its
    /// end — the classic crash shape "pointer durable, payload fsync
    /// lost", which by the tier-before-log force ordering can only
    /// happen to writes that were never acked.
    TornOrMissing,
    /// The payload bytes are present and checksum-clean but their
    /// column framing is inconsistent with the pointer's length.
    BadLength,
    /// The payload bytes disagree with the pointer's CRC32.
    ChecksumMismatch,
    /// The segment file could not be read (I/O error).
    Io,
}

impl std::fmt::Display for ValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValueError::TornOrMissing => write!(f, "value segment torn or missing"),
            ValueError::BadLength => write!(f, "value payload length inconsistent"),
            ValueError::ChecksumMismatch => write!(f, "value payload checksum mismatch"),
            ValueError::Io => write!(f, "value segment read error"),
        }
    }
}

impl std::error::Error for ValueError {}

/// The on-disk path of value segment `seg` under `dir`. The `vseg-`
/// prefix keeps these files invisible to `recovery::log_files` (log
/// logic never touches them) while sharing the directory.
pub fn vseg_path(dir: &Path, seg: u64) -> PathBuf {
    dir.join(format!("vseg-{seg}"))
}

/// Makes a newly created segment's name durable.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Value-segment ids present in `dir`, ascending.
pub fn vseg_ids(dir: &Path) -> Vec<u64> {
    let mut ids = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            if let Some(rest) = e.file_name().to_str().and_then(|n| n.strip_prefix("vseg-")) {
                if let Ok(id) = rest.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
    }
    ids.sort_unstable();
    ids
}

/// Encodes a payload (`ncols u16 | ncols × len u32 | bytes`) from
/// column slices.
pub fn encode_payload(cols: &[&[u8]], out: &mut Vec<u8>) {
    out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
    for c in cols {
        out.extend_from_slice(&(c.len() as u32).to_le_bytes());
    }
    for c in cols {
        out.extend_from_slice(c);
    }
}

/// Decodes a payload into borrowed column slices. `None` when the
/// framing is inconsistent with the buffer length (surfaced as
/// [`ValueError::BadLength`]).
pub fn decode_payload(buf: &[u8]) -> Option<Vec<&[u8]>> {
    let ncols = u16::from_le_bytes(buf.get(..2)?.try_into().ok()?) as usize;
    let mut p = buf.get(2..)?;
    let mut lens = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        lens.push(u32::from_le_bytes(p.get(..4)?.try_into().ok()?) as usize);
        p = &p[4..];
    }
    let mut cols = Vec::with_capacity(ncols);
    for len in lens {
        cols.push(p.get(..len)?);
        p = &p[len..];
    }
    if !p.is_empty() {
        return None; // trailing garbage: framing inconsistent
    }
    Some(cols)
}

/// Decodes a payload straight into a [`ColValue`] — the bulk twin of
/// [`decode_payload`] for the cache-miss read path: the column bytes
/// are copied once from the read buffer into the value's single block,
/// with no intermediate slice vector.
fn decode_payload_value(buf: &[u8], version: u64) -> Option<ColValue> {
    let ncols = u16::from_le_bytes(buf.get(..2)?.try_into().ok()?) as usize;
    let lens = buf.get(2..2 + 4 * ncols)?;
    let data = &buf[2 + 4 * ncols..];
    ColValue::from_packed(
        version,
        lens.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        data,
    )
}

/// Per-segment payload byte accounting, driving GC candidate selection
/// and the `live_segment_bytes` stat.
#[derive(Debug, Default, Clone, Copy)]
struct SegAccount {
    /// Total payload bytes ever appended to the segment.
    total: u64,
    /// Bytes whose pointer record has been superseded (replaced,
    /// removed, or relocated by GC).
    dead: u64,
}

/// The active segment's appender.
struct Appender {
    file: File,
    seg: u64,
    /// Bytes written to the active segment (page cache; ≥ durable).
    written: u64,
    /// Bytes of the active segment known durable (post-fsync).
    durable: u64,
}

/// A standalone value-segment reader with a per-segment handle cache —
/// used by recovery (before a store exists) and embedded in
/// [`ValueTier`] for the read path.
pub struct SegReader {
    dir: PathBuf,
    handles: Mutex<FxMap<u64, Arc<File>>>,
}

impl SegReader {
    pub fn new(dir: &Path) -> SegReader {
        SegReader {
            dir: dir.to_path_buf(),
            handles: Mutex::new(FxMap::default()),
        }
    }

    fn handle(&self, seg: u64) -> Result<Arc<File>, ValueError> {
        let mut handles = self.handles.lock();
        if let Some(f) = handles.get(&seg) {
            return Ok(Arc::clone(f));
        }
        let f = match File::open(vseg_path(&self.dir, seg)) {
            Ok(f) => Arc::new(f),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ValueError::TornOrMissing)
            }
            Err(_) => return Err(ValueError::Io),
        };
        handles.insert(seg, Arc::clone(&f));
        Ok(f)
    }

    /// Drops the cached handle for `seg` (after segment deletion, and
    /// on follower resync so a re-created mirror reopens fresh).
    pub fn forget(&self, seg: u64) {
        self.handles.lock().remove(&seg);
    }

    /// Drops every cached handle.
    pub fn forget_all(&self) {
        self.handles.lock().clear();
    }

    /// Reads and integrity-checks the payload `ptr` names. The returned
    /// bytes are exactly what was appended or a typed error — never a
    /// prefix, never corrupt.
    pub fn read(&self, ptr: ValuePtr) -> Result<Vec<u8>, ValueError> {
        let f = self.handle(ptr.seg)?;
        let mut buf = vec![0u8; ptr.len as usize];
        match f.read_exact_at(&mut buf, ptr.off) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(ValueError::TornOrMissing)
            }
            Err(_) => return Err(ValueError::Io),
        }
        if crc32(&buf) != ptr.crc {
            return Err(ValueError::ChecksumMismatch);
        }
        Ok(buf)
    }

    /// [`SegReader::read`] decoded into a [`ColValue`] at `version`.
    pub fn read_value(&self, ptr: ValuePtr, version: u64) -> Result<ColValue, ValueError> {
        let buf = self.read(ptr)?;
        decode_payload_value(&buf, version).ok_or(ValueError::BadLength)
    }
}

/// The budgeted cache of decoded indirect values, keyed by
/// `(seg, off)`. Segment ids are never reused within a store lifetime,
/// so a key can never alias two different payloads; follower epoch
/// resyncs (which may reuse ids) purge the cache wholesale.
///
/// Sharded second-chance (CLOCK) replacement rather than strict LRU:
/// the hit path — the hot path of every indirect read — is one sharded
/// lock, one hash lookup, and a flag store. A strict LRU's per-hit
/// recency reordering costs two ordered-map updates under one global
/// lock and dominates cache-hit latency at point-get rates.
struct ValueCache {
    shards: Vec<Mutex<CacheShard>>,
}

struct CacheShard {
    map: FxMap<(u64, u64), CacheEntry>,
    /// Clock ring of insertion order. May hold stale keys (evicted or
    /// removed out of band) — they are skipped when the hand passes.
    ring: VecDeque<(u64, u64)>,
    bytes: usize,
    budget: usize,
}

struct CacheEntry {
    val: Arc<ColValue>,
    bytes: usize,
    /// Second-chance bit: set on hit, cleared (once) by the clock hand
    /// before the entry becomes evictable.
    referenced: bool,
}

const CACHE_SHARDS: usize = 16;

/// Multiply-xor hasher (FxHash-style) for maps keyed by fixed-width
/// internal ids. SipHash costs more than the rest of the lookup on the
/// cache and segment-handle maps, which sit on the indirect read path.
/// Not DoS-resistant — the keys are internally generated segment ids
/// and offsets, never attacker-chosen bytes.
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, i: u64) {
        self.0 = (self.0.rotate_left(5) ^ i).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

type FxMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;

fn shard_of(key: (u64, u64)) -> usize {
    let mix = (key.0 ^ key.1.rotate_left(32)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (mix >> 60) as usize % CACHE_SHARDS
}

impl ValueCache {
    fn new(budget: usize) -> ValueCache {
        let per_shard = budget / CACHE_SHARDS;
        ValueCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| {
                    Mutex::new(CacheShard {
                        map: FxMap::default(),
                        ring: VecDeque::new(),
                        bytes: 0,
                        budget: per_shard,
                    })
                })
                .collect(),
        }
    }

    fn get(&self, key: (u64, u64)) -> Option<Arc<ColValue>> {
        let mut shard = self.shards[shard_of(key)].lock();
        let e = shard.map.get_mut(&key)?;
        e.referenced = true;
        Some(Arc::clone(&e.val))
    }

    fn insert(&self, key: (u64, u64), val: Arc<ColValue>) {
        let bytes = val.heap_bytes();
        let mut shard = self.shards[shard_of(key)].lock();
        if shard.budget == 0 {
            return;
        }
        let old = shard.map.insert(
            key,
            CacheEntry {
                val,
                bytes,
                referenced: false,
            },
        );
        match old {
            // Replacing in place: the key is already on the ring.
            Some(old) => shard.bytes -= old.bytes,
            None => shard.ring.push_back(key),
        }
        shard.bytes += bytes;
        // Advance the clock hand until back under budget: a stale ring
        // key is dropped, a referenced entry gets its second chance, an
        // unreferenced one is evicted. Terminates: every step either
        // shrinks the ring or clears a flag that is never re-set here.
        let CacheShard {
            map,
            ring,
            bytes,
            budget,
        } = &mut *shard;
        while *bytes > *budget && map.len() > 1 {
            let Some(k) = ring.pop_front() else {
                break;
            };
            match map.entry(k) {
                std::collections::hash_map::Entry::Vacant(_) => {}
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if e.get().referenced {
                        e.get_mut().referenced = false;
                        ring.push_back(k);
                    } else {
                        *bytes -= e.remove().bytes;
                    }
                }
            }
        }
    }

    fn remove(&self, key: (u64, u64)) {
        let mut shard = self.shards[shard_of(key)].lock();
        if let Some(e) = shard.map.remove(&key) {
            shard.bytes -= e.bytes;
        }
        // The ring entry goes stale and is skipped by the clock hand.
    }

    fn purge(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.map.clear();
            s.ring.clear();
            s.bytes = 0;
        }
    }
}

/// Value-tier observability counters, served through the network
/// `Stats` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValueTierStats {
    /// Reads that resolved an indirect value (cache hit or disk).
    pub indirect_reads: u64,
    /// Indirect reads served by the decoded-value cache.
    pub value_cache_hits: u64,
    /// Live payload bytes GC has relocated out of condemned segments.
    pub gc_rewritten_bytes: u64,
    /// Payload bytes still referenced across all value segments.
    pub live_segment_bytes: u64,
    /// Indirect reads that failed integrity checks (typed error).
    pub unresolved_reads: u64,
    /// Value segments on disk.
    pub segments: u64,
}

/// The value tier attached to a store: appender + reader + cache +
/// per-segment accounting.
pub struct ValueTier {
    dir: PathBuf,
    segment_bytes: u64,
    /// `None` for a reader-only tier (replication follower mirrors).
    appender: Mutex<Option<Appender>>,
    reader: SegReader,
    cache: ValueCache,
    accounts: Mutex<HashMap<u64, SegAccount>>,
    /// GC-condemned segments: seg → condemn timestamp (`clock::now`).
    /// Deleted once a durable checkpoint with `start_ts ≥` the stamp
    /// exists (see `Store::run_durability_cycle` for the proof).
    condemned: Mutex<HashMap<u64, u64>>,
    /// Active segment id (shipping watermark for replication).
    active_seg: AtomicU64,
    /// Durable bytes of the active segment.
    active_durable: AtomicU64,
    indirect_reads: AtomicU64,
    cache_hits: AtomicU64,
    gc_rewritten: AtomicU64,
    unresolved: AtomicU64,
    /// Observability hub of the owning store (set at attach time):
    /// cache-miss fills record their segment-read + decode latency as
    /// `vseg_fill`.
    obs: std::sync::OnceLock<Arc<mtobs::Obs>>,
}

impl ValueTier {
    /// Mounts the tier over `dir`. A writable tier opens a **fresh**
    /// active segment one past the highest existing id — old tails are
    /// never appended to (their durable length is crash evidence, and
    /// pointers into them must stay byte-stable for replication
    /// mirrors). A reader-only tier (`writable: false`) serves
    /// resolutions from whatever segment files are present.
    pub fn open(
        dir: &Path,
        segment_bytes: u64,
        cache_budget: usize,
        writable: bool,
    ) -> std::io::Result<ValueTier> {
        std::fs::create_dir_all(dir)?;
        let ids = vseg_ids(dir);
        let mut accounts = HashMap::new();
        for &id in &ids {
            let total = std::fs::metadata(vseg_path(dir, id))
                .map(|m| m.len())
                .unwrap_or(0);
            accounts.insert(id, SegAccount { total, dead: 0 });
        }
        let next = ids.last().map(|&i| i + 1).unwrap_or(0);
        let appender = if writable {
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(vseg_path(dir, next))?;
            fsync_dir(dir)?;
            accounts.insert(next, SegAccount::default());
            Some(Appender {
                file,
                seg: next,
                written: 0,
                durable: 0,
            })
        } else {
            None
        };
        Ok(ValueTier {
            dir: dir.to_path_buf(),
            segment_bytes: segment_bytes.max(1),
            active_seg: AtomicU64::new(appender.as_ref().map(|a| a.seg).unwrap_or(0)),
            active_durable: AtomicU64::new(0),
            appender: Mutex::new(appender),
            reader: SegReader::new(dir),
            cache: ValueCache::new(cache_budget),
            accounts: Mutex::new(accounts),
            condemned: Mutex::new(HashMap::new()),
            indirect_reads: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            gc_rewritten: AtomicU64::new(0),
            unresolved: AtomicU64::new(0),
            obs: std::sync::OnceLock::new(),
        })
    }

    /// Attaches the owning store's observability hub (first call wins).
    pub fn set_obs(&self, obs: Arc<mtobs::Obs>) {
        let _ = self.obs.set(obs);
    }

    /// Appends a payload to the active segment (page cache only — call
    /// [`ValueTier::force`] before acking any pointer that names it).
    /// Rotates past the size threshold, fsyncing the sealed segment so
    /// "below the active segment" always means "fully durable".
    pub fn append(&self, payload: &[u8]) -> std::io::Result<ValuePtr> {
        let mut guard = self.appender.lock();
        let ap = guard
            .as_mut()
            .ok_or_else(|| std::io::Error::other("value tier is reader-only"))?;
        if ap.written > 0 && ap.written + payload.len() as u64 > self.segment_bytes {
            ap.file.sync_data()?;
            let next = ap.seg + 1;
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(vseg_path(&self.dir, next))?;
            fsync_dir(&self.dir)?;
            *ap = Appender {
                file,
                seg: next,
                written: 0,
                durable: 0,
            };
            self.accounts.lock().insert(next, SegAccount::default());
            self.active_seg.store(next, Ordering::Release);
            self.active_durable.store(0, Ordering::Release);
        }
        ap.file.write_all(payload)?;
        let ptr = ValuePtr {
            seg: ap.seg,
            off: ap.written,
            len: payload.len() as u32,
            crc: crc32(payload),
        };
        ap.written += payload.len() as u64;
        if let Some(acct) = self.accounts.lock().get_mut(&ap.seg) {
            acct.total += payload.len() as u64;
        }
        Ok(ptr)
    }

    /// Forces the active segment to storage. Must complete **before**
    /// the write-ahead log force on every durability-ack path: a
    /// durable pointer record then always names durable payload bytes.
    /// Returns false on failure (callers must not ack).
    pub fn force(&self) -> bool {
        let mut guard = self.appender.lock();
        let Some(ap) = guard.as_mut() else {
            return true; // reader-only tier: nothing to flush
        };
        if ap.durable == ap.written {
            return true;
        }
        match ap.file.sync_data() {
            Ok(()) => {
                ap.durable = ap.written;
                self.active_durable.store(ap.durable, Ordering::Release);
                true
            }
            Err(_) => false,
        }
    }

    /// `(active segment, durable bytes of it)` — the shipping watermark
    /// for replication. Segments below the active one are sealed and
    /// fully durable.
    pub fn progress(&self) -> (u64, u64) {
        (
            self.active_seg.load(Ordering::Acquire),
            self.active_durable.load(Ordering::Acquire),
        )
    }

    /// Resolves an indirect value: decoded-value cache first, then an
    /// integrity-checked segment read. Errors are typed and counted;
    /// wrong bytes are impossible (CRC + length cover every path).
    pub fn resolve(&self, ptr: ValuePtr, version: u64) -> Result<Arc<ColValue>, ValueError> {
        self.indirect_reads.fetch_add(1, Ordering::Relaxed);
        let key = (ptr.seg, ptr.off);
        if let Some(v) = self.cache.get(key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        let fill_t0 = std::time::Instant::now();
        let out = match self.reader.read_value(ptr, version) {
            Ok(v) => {
                let arc = Arc::new(v);
                self.cache.insert(key, Arc::clone(&arc));
                Ok(arc)
            }
            Err(e) => {
                self.unresolved.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        };
        if let Some(obs) = self.obs.get() {
            obs.global()
                .record(mtobs::Kind::VsegFill, fill_t0.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Reads a payload without touching the cache (GC relocation).
    pub fn read_raw(&self, ptr: ValuePtr) -> Result<Vec<u8>, ValueError> {
        self.reader.read(ptr)
    }

    /// Marks the payload `ptr` names as dead (its pointer record was
    /// replaced, removed, or relocated) and drops any cached copy.
    pub fn note_dead(&self, ptr: ValuePtr) {
        if let Some(acct) = self.accounts.lock().get_mut(&ptr.seg) {
            acct.dead = (acct.dead + ptr.len as u64).min(acct.total);
        }
        self.cache.remove((ptr.seg, ptr.off));
    }

    /// Counts `n` relocated payload bytes (GC observability).
    pub fn note_rewritten(&self, n: u64) {
        self.gc_rewritten.fetch_add(n, Ordering::Relaxed);
    }

    /// Replaces the per-segment live accounting wholesale (recovery:
    /// totals come from the file lengths, live bytes from a tree scan).
    pub fn rebuild_accounts(&self, live_by_seg: &HashMap<u64, u64>) {
        let mut accounts = self.accounts.lock();
        for (seg, acct) in accounts.iter_mut() {
            let live = live_by_seg.get(seg).copied().unwrap_or(0).min(acct.total);
            acct.dead = acct.total - live;
        }
    }

    /// Sealed segments (below the active one) whose dead fraction is at
    /// least `dead_fraction`, worst first — GC rewrite candidates.
    /// Already-condemned segments are excluded.
    pub fn gc_candidates(&self, dead_fraction: f64) -> Vec<u64> {
        let active = self.active_seg.load(Ordering::Acquire);
        let condemned = self.condemned.lock();
        let accounts = self.accounts.lock();
        let mut out: Vec<(u64, f64)> = accounts
            .iter()
            .filter(|(&seg, acct)| seg < active && acct.total > 0 && !condemned.contains_key(&seg))
            .map(|(&seg, acct)| (seg, acct.dead as f64 / acct.total as f64))
            .filter(|&(_, frac)| frac >= dead_fraction)
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out.into_iter().map(|(seg, _)| seg).collect()
    }

    /// Condemns `seg` at timestamp `now`: every live pointer into it
    /// has been relocated (and the relocations logged), so once a
    /// durable checkpoint with `start_ts ≥ now` exists, no recovery or
    /// replay can reference it again and the file may be deleted.
    pub fn condemn(&self, seg: u64, now: u64) {
        self.condemned.lock().insert(seg, now);
    }

    /// Deletes condemned segments whose stamp is at or before
    /// `covered_ts` (the just-published checkpoint's `start_ts`).
    /// Returns the number of files removed.
    pub fn delete_condemned(&self, covered_ts: u64) -> u64 {
        let ripe: Vec<u64> = self
            .condemned
            .lock()
            .iter()
            .filter(|&(_, &ts)| ts <= covered_ts)
            .map(|(&seg, _)| seg)
            .collect();
        let mut deleted = 0;
        for seg in ripe {
            if std::fs::remove_file(vseg_path(&self.dir, seg)).is_ok() {
                deleted += 1;
            }
            self.condemned.lock().remove(&seg);
            self.accounts.lock().remove(&seg);
            self.reader.forget(seg);
        }
        deleted
    }

    /// Purges the decoded-value cache and reader handles (follower
    /// epoch resync: a new primary epoch may reuse segment ids, and a
    /// stale cached decode keyed by `(seg, off)` would serve the old
    /// epoch's bytes).
    pub fn purge_cache(&self) {
        self.cache.purge();
        self.reader.forget_all();
    }

    /// Current counters + derived live/segment totals.
    pub fn stats(&self) -> ValueTierStats {
        let accounts = self.accounts.lock();
        let live: u64 = accounts.values().map(|a| a.total - a.dead).sum();
        let segments = accounts.len() as u64;
        ValueTierStats {
            indirect_reads: self.indirect_reads.load(Ordering::Relaxed),
            value_cache_hits: self.cache_hits.load(Ordering::Relaxed),
            gc_rewritten_bytes: self.gc_rewritten.load(Ordering::Relaxed),
            live_segment_bytes: live,
            unresolved_reads: self.unresolved.load(Ordering::Relaxed),
            segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mtkv-vtier-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn payload_roundtrip() {
        let mut buf = Vec::new();
        encode_payload(&[b"alpha", b"", b"gamma-gamma"], &mut buf);
        let cols = decode_payload(&buf).unwrap();
        assert_eq!(cols, vec![&b"alpha"[..], &b""[..], &b"gamma-gamma"[..]]);
        // Trailing garbage is refused, not ignored.
        buf.push(0);
        assert!(decode_payload(&buf).is_none());
    }

    #[test]
    fn append_read_rotate() {
        let dir = tmpdir("rot");
        let tier = ValueTier::open(&dir, 64, 1 << 20, true).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..10u32 {
            let mut p = Vec::new();
            encode_payload(&[&i.to_le_bytes(), &[i as u8; 30]], &mut p);
            ptrs.push(tier.append(&p).unwrap());
        }
        assert!(tier.force());
        assert!(
            ptrs.last().unwrap().seg > ptrs[0].seg,
            "rotation happened: {ptrs:?}"
        );
        for (i, ptr) in ptrs.iter().enumerate() {
            let v = tier.resolve(*ptr, i as u64).unwrap();
            assert_eq!(v.col(0), Some(&(i as u32).to_le_bytes()[..]));
            assert_eq!(v.col(1), Some(&[i as u8; 30][..]));
        }
        let s = tier.stats();
        assert_eq!(s.indirect_reads, 10);
        assert!(s.segments >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn typed_errors_never_wrong_bytes() {
        let dir = tmpdir("err");
        let tier = ValueTier::open(&dir, 1 << 20, 0, true).unwrap();
        let mut p = Vec::new();
        encode_payload(&[b"payload-bytes"], &mut p);
        let ptr = tier.append(&p).unwrap();
        assert!(tier.force());
        // Checksum mismatch.
        let bad = ValuePtr {
            crc: ptr.crc ^ 1,
            ..ptr
        };
        assert_eq!(
            tier.resolve(bad, 1).unwrap_err(),
            ValueError::ChecksumMismatch
        );
        // Past the end of the segment.
        let torn = ValuePtr {
            off: ptr.off + 7,
            ..ptr
        };
        assert!(matches!(
            tier.resolve(torn, 1).unwrap_err(),
            ValueError::TornOrMissing | ValueError::ChecksumMismatch
        ));
        // Missing segment.
        let gone = ValuePtr {
            seg: ptr.seg + 99,
            ..ptr
        };
        assert_eq!(
            tier.resolve(gone, 1).unwrap_err(),
            ValueError::TornOrMissing
        );
        assert_eq!(tier.stats().unresolved_reads, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_budget_evicts_lru() {
        let dir = tmpdir("lru");
        // Budget fits roughly two decoded values.
        let tier = ValueTier::open(&dir, 1 << 20, 700, true).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..4u8 {
            let mut p = Vec::new();
            encode_payload(&[&[i; 256]], &mut p);
            ptrs.push(tier.append(&p).unwrap());
        }
        assert!(tier.force());
        for (i, ptr) in ptrs.iter().enumerate() {
            tier.resolve(*ptr, i as u64).unwrap();
        }
        // Hot key stays cached; re-resolving the cold first one misses.
        tier.resolve(ptrs[3], 3).unwrap();
        let before = tier.stats().value_cache_hits;
        tier.resolve(ptrs[3], 3).unwrap();
        assert_eq!(tier.stats().value_cache_hits, before + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn condemn_delete_cycle() {
        let dir = tmpdir("gc");
        let tier = ValueTier::open(&dir, 32, 0, true).unwrap();
        let mut p = Vec::new();
        encode_payload(&[&[7u8; 40]], &mut p);
        let a = tier.append(&p).unwrap(); // fills segment, next append rotates
        let b = tier.append(&p).unwrap();
        assert!(tier.force());
        assert_ne!(a.seg, b.seg);
        tier.note_dead(a);
        assert_eq!(tier.gc_candidates(0.99), vec![a.seg]);
        tier.condemn(a.seg, 100);
        assert_eq!(tier.delete_condemned(50), 0, "not yet covered");
        assert_eq!(tier.delete_condemned(100), 1);
        assert!(!vseg_path(&dir, a.seg).exists());
        assert_eq!(
            tier.resolve(a, 1).unwrap_err(),
            ValueError::TornOrMissing,
            "deleted segment reads are typed errors"
        );
        assert!(tier.resolve(b, 2).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
