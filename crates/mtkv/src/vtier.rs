//! The value-separation tier: append-only **value segments** for
//! values past the separation threshold (WiscKey-style key/value
//! separation grafted onto Masstree).
//!
//! The tree leaf keeps a fixed-size [`ValuePtr`] record; the column
//! bytes live in `vseg-<seg>` files in the store's log directory,
//! reusing the segmented-log discipline: append-only writes, rotation
//! at a size threshold, fsync-before-ack ordering (the tier is forced
//! **before** the write-ahead log on every durability path, so a
//! durable pointer record always names durable payload bytes), and
//! evidence-based reclamation (a segment is deleted only once a
//! durable checkpoint provably supersedes every pointer into it — see
//! `Store::run_durability_cycle`).
//!
//! Payload encoding: `ncols u16 | ncols × (len u32) | column bytes`.
//! The pointer carries the payload length and CRC32, so the segment
//! files need no framing of their own and every read is
//! integrity-checked end to end: a torn tail, a hole, or a flipped bit
//! yields a typed [`ValueError`], never wrong bytes.
//!
//! Reads resolve through a budgeted **value cache** of decoded
//! values, so a hot working set larger than RAM still serves point
//! gets mostly from memory (ZipCache's DRAM-over-SSD model).

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::crc32::crc32;
use crate::value::{ColValue, ValuePtr};

/// Default rotation threshold for value segments.
pub const DEFAULT_VALUE_SEGMENT_BYTES: u64 = 64 << 20;
/// Default decoded-value cache budget.
pub const DEFAULT_VALUE_CACHE_BYTES: usize = 64 << 20;

/// Misses within this many bytes of each other coalesce into one
/// clustered segment read ([`ValueTier::resolve_many`]): the gap bytes
/// are other rows' payloads, and dragging them through one `pread`
/// costs far less than a second syscall. One page covers the common
/// "adjacent rows, small interleaved writes" shape without inflating
/// windows across unrelated regions.
const COALESCE_GAP: u64 = 4096;

/// Upper bound on a single clustered read's window — the readahead
/// byte budget. Bounds the reusable scratch buffer against a
/// pathological batch whose misses span a whole segment.
const READAHEAD_WINDOW_BYTES: u64 = 1 << 20;

/// Why an indirect value could not be served. Every variant means the
/// bytes were **refused**, never silently wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueError {
    /// The segment file is missing, or the pointer reaches past its
    /// end — the classic crash shape "pointer durable, payload fsync
    /// lost", which by the tier-before-log force ordering can only
    /// happen to writes that were never acked.
    TornOrMissing,
    /// The payload bytes are present and checksum-clean but their
    /// column framing is inconsistent with the pointer's length.
    BadLength,
    /// The payload bytes disagree with the pointer's CRC32.
    ChecksumMismatch,
    /// The segment file could not be read (I/O error).
    Io,
}

impl std::fmt::Display for ValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValueError::TornOrMissing => write!(f, "value segment torn or missing"),
            ValueError::BadLength => write!(f, "value payload length inconsistent"),
            ValueError::ChecksumMismatch => write!(f, "value payload checksum mismatch"),
            ValueError::Io => write!(f, "value segment read error"),
        }
    }
}

impl std::error::Error for ValueError {}

/// The on-disk path of value segment `seg` under `dir`. The `vseg-`
/// prefix keeps these files invisible to `recovery::log_files` (log
/// logic never touches them) while sharing the directory.
pub fn vseg_path(dir: &Path, seg: u64) -> PathBuf {
    dir.join(format!("vseg-{seg}"))
}

/// Makes a newly created segment's name durable.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Value-segment ids present in `dir`, ascending.
pub fn vseg_ids(dir: &Path) -> Vec<u64> {
    let mut ids = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            if let Some(rest) = e.file_name().to_str().and_then(|n| n.strip_prefix("vseg-")) {
                if let Ok(id) = rest.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
    }
    ids.sort_unstable();
    ids
}

/// Encodes a payload (`ncols u16 | ncols × len u32 | bytes`) from
/// column slices.
pub fn encode_payload(cols: &[&[u8]], out: &mut Vec<u8>) {
    out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
    for c in cols {
        out.extend_from_slice(&(c.len() as u32).to_le_bytes());
    }
    for c in cols {
        out.extend_from_slice(c);
    }
}

/// Decodes a payload into borrowed column slices. `None` when the
/// framing is inconsistent with the buffer length (surfaced as
/// [`ValueError::BadLength`]).
pub fn decode_payload(buf: &[u8]) -> Option<Vec<&[u8]>> {
    let ncols = u16::from_le_bytes(buf.get(..2)?.try_into().ok()?) as usize;
    let mut p = buf.get(2..)?;
    let mut lens = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        lens.push(u32::from_le_bytes(p.get(..4)?.try_into().ok()?) as usize);
        p = &p[4..];
    }
    let mut cols = Vec::with_capacity(ncols);
    for len in lens {
        cols.push(p.get(..len)?);
        p = &p[len..];
    }
    if !p.is_empty() {
        return None; // trailing garbage: framing inconsistent
    }
    Some(cols)
}

/// Decodes a payload straight into a [`ColValue`] — the bulk twin of
/// [`decode_payload`] for the cache-miss read path: the column bytes
/// are copied once from the read buffer into the value's single block,
/// with no intermediate slice vector. `spare` is recycled as the
/// value's backing block when it fits (see
/// [`ColValue::from_packed_reusing`]).
fn decode_payload_value_reusing(
    buf: &[u8],
    version: u64,
    spare: Option<Box<[u8]>>,
) -> Option<ColValue> {
    let ncols = u16::from_le_bytes(buf.get(..2)?.try_into().ok()?) as usize;
    let lens = buf.get(2..2 + 4 * ncols)?;
    let data = &buf[2 + 4 * ncols..];
    ColValue::from_packed_reusing(
        version,
        lens.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        data,
        spare,
    )
}

/// Per-segment payload byte accounting, driving GC candidate selection
/// and the `live_segment_bytes` stat.
#[derive(Debug, Default, Clone, Copy)]
struct SegAccount {
    /// Total payload bytes ever appended to the segment.
    total: u64,
    /// Bytes whose pointer record has been superseded (replaced,
    /// removed, or relocated by GC).
    dead: u64,
}

/// The active segment's appender.
struct Appender {
    file: File,
    seg: u64,
    /// Bytes written to the active segment (page cache; ≥ durable).
    written: u64,
    /// Bytes of the active segment known durable (post-fsync).
    durable: u64,
}

/// A read-only shared mapping of one value-segment file, established
/// lazily on the first clustered read. Serving windows from the page
/// cache through a mapping removes the `pread` syscall and its kernel
/// copy from every cache miss — payloads are CRC-checked and decoded
/// straight out of the mapped bytes.
///
/// Safety invariant: accesses are bounds-checked against `len`, the
/// file's size when the mapping was made. Segment files only ever grow
/// (append-only, never truncated), so a mapped byte can never be
/// beyond end-of-file — the SIGBUS case is structurally unreachable.
/// Reads past `len` (a pointer into bytes appended after mapping) fall
/// back to `pread`, or remap at the new length.
struct SegMap {
    ptr: *const u8,
    len: usize,
}

// The mapping is immutable shared memory; the raw pointer is only a
// lifetime-erased &[u8].
unsafe impl Send for SegMap {}
unsafe impl Sync for SegMap {}

#[cfg(unix)]
mod sys_mmap {
    // Bound by hand (the workspace carries no libc crate): these two
    // symbols come from the C library every binary already links.
    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }
    pub const PROT_READ: i32 = 1;
    pub const MAP_SHARED: i32 = 1;
}

impl SegMap {
    #[cfg(unix)]
    fn new(file: &File, len: usize) -> Option<SegMap> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None;
        }
        let ptr = unsafe {
            sys_mmap::mmap(
                std::ptr::null_mut(),
                len,
                sys_mmap::PROT_READ,
                sys_mmap::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return None;
        }
        Some(SegMap {
            ptr: ptr as *const u8,
            len,
        })
    }

    #[cfg(not(unix))]
    fn new(_file: &File, _len: usize) -> Option<SegMap> {
        None
    }

    fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for SegMap {
    fn drop(&mut self) {
        #[cfg(unix)]
        unsafe {
            sys_mmap::munmap(self.ptr as *mut core::ffi::c_void, self.len);
        }
    }
}

/// One cached open segment: the file handle plus its lazily-established
/// mapping (grown by remapping when reads reach appended bytes).
struct SegHandle {
    file: Arc<File>,
    map: Option<Arc<SegMap>>,
}

/// A standalone value-segment reader with a per-segment handle cache —
/// used by recovery (before a store exists) and embedded in
/// [`ValueTier`] for the read path.
pub struct SegReader {
    dir: PathBuf,
    handles: Mutex<FxMap<u64, SegHandle>>,
    /// Bumped whenever cached handles are dropped ([`SegReader::forget`]
    /// / [`SegReader::forget_all`]: segment deletion, follower epoch
    /// resync). Externally held mapping caches ([`ResolveScratch`])
    /// compare against this to detect that a segment id may have been
    /// re-created with different bytes underneath them.
    gen: AtomicU64,
}

impl SegReader {
    pub fn new(dir: &Path) -> SegReader {
        SegReader {
            dir: dir.to_path_buf(),
            handles: Mutex::new(FxMap::default()),
            gen: AtomicU64::new(0),
        }
    }

    /// Invalidation generation for externally cached mappings: any
    /// `Arc<SegMap>` obtained under an older generation may map a
    /// deleted or re-created segment file and must be dropped.
    fn generation(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    fn handle(&self, seg: u64) -> Result<Arc<File>, ValueError> {
        let mut handles = self.handles.lock();
        if let Some(h) = handles.get(&seg) {
            return Ok(Arc::clone(&h.file));
        }
        let f = match File::open(vseg_path(&self.dir, seg)) {
            Ok(f) => Arc::new(f),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ValueError::TornOrMissing)
            }
            Err(_) => return Err(ValueError::Io),
        };
        handles.insert(
            seg,
            SegHandle {
                file: Arc::clone(&f),
                map: None,
            },
        );
        Ok(f)
    }

    /// A mapping of segment `seg` covering bytes `..end`, or `None`
    /// when the tier must fall back to `pread` (file shorter than
    /// `end` — bytes appended after the handle was mapped and not yet
    /// remapped-over, or mmap unavailable). An existing mapping is
    /// replaced only once the file has outgrown it by a full remap
    /// stride: reads chasing a growing active tail `pread` instead of
    /// thrashing `mmap`/`munmap` on every fresh append.
    fn mapped(&self, seg: u64, end: u64) -> Option<Arc<SegMap>> {
        /// File growth required before an existing mapping is redone.
        /// ≤16 remaps over a default segment's lifetime, while at most
        /// this many tail bytes are served by `pread` in the meantime.
        const REMAP_STRIDE: u64 = 4 << 20;
        self.handle(seg).ok()?;
        let mut handles = self.handles.lock();
        let h = handles.get_mut(&seg)?;
        if let Some(m) = &h.map {
            if end <= m.len as u64 {
                return Some(Arc::clone(m));
            }
        }
        let flen = h.file.metadata().ok()?.len();
        if end > flen {
            return None;
        }
        if let Some(m) = &h.map {
            if flen < m.len as u64 + REMAP_STRIDE {
                return None;
            }
        }
        let m = Arc::new(SegMap::new(&h.file, flen as usize)?);
        h.map = Some(Arc::clone(&m));
        Some(m)
    }

    /// Drops the cached handle for `seg` (after segment deletion, and
    /// on follower resync so a re-created mirror reopens fresh).
    pub fn forget(&self, seg: u64) {
        self.handles.lock().remove(&seg);
        self.gen.fetch_add(1, Ordering::Release);
    }

    /// Drops every cached handle.
    pub fn forget_all(&self) {
        self.handles.lock().clear();
        self.gen.fetch_add(1, Ordering::Release);
    }

    /// Reads and integrity-checks the payload `ptr` names. The returned
    /// bytes are exactly what was appended or a typed error — never a
    /// prefix, never corrupt.
    pub fn read(&self, ptr: ValuePtr) -> Result<Vec<u8>, ValueError> {
        let f = self.handle(ptr.seg)?;
        let mut buf = vec![0u8; ptr.len as usize];
        match f.read_exact_at(&mut buf, ptr.off) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(ValueError::TornOrMissing)
            }
            Err(_) => return Err(ValueError::Io),
        }
        if crc32(&buf) != ptr.crc {
            return Err(ValueError::ChecksumMismatch);
        }
        Ok(buf)
    }

    /// [`SegReader::read`] decoded into a [`ColValue`] at `version`.
    /// Prefers the segment mapping — CRC and decode run straight over
    /// the mapped bytes, skipping the syscall and the staging `Vec`.
    pub fn read_value(&self, ptr: ValuePtr, version: u64) -> Result<ColValue, ValueError> {
        self.read_value_reusing(ptr, version, None)
    }

    /// [`SegReader::read_value`] with a recycled backing block for the
    /// decoded value (see [`ColValue::from_packed_reusing`]).
    fn read_value_reusing(
        &self,
        ptr: ValuePtr,
        version: u64,
        spare: Option<Box<[u8]>>,
    ) -> Result<ColValue, ValueError> {
        if let Some(m) = self.mapped(ptr.seg, ptr.off + u64::from(ptr.len)) {
            let payload = &m.bytes()[ptr.off as usize..][..ptr.len as usize];
            if crc32(payload) != ptr.crc {
                return Err(ValueError::ChecksumMismatch);
            }
            return decode_payload_value_reusing(payload, version, spare)
                .ok_or(ValueError::BadLength);
        }
        let buf = self.read(ptr)?;
        decode_payload_value_reusing(&buf, version, spare).ok_or(ValueError::BadLength)
    }

    /// Reads a raw clustered window (`buf.len()` bytes at `off`) from
    /// segment `seg` — the readahead primitive under
    /// [`ValueTier::resolve_many`]. No integrity check here: the window
    /// spans several payloads plus the gaps between them; each payload
    /// is CRC-checked individually as it is carved out.
    pub fn read_clustered(&self, seg: u64, off: u64, buf: &mut [u8]) -> Result<(), ValueError> {
        let f = self.handle(seg)?;
        match f.read_exact_at(buf, off) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(ValueError::TornOrMissing)
            }
            Err(_) => Err(ValueError::Io),
        }
    }
}

/// The budgeted cache of decoded indirect values, keyed by
/// `(seg, off)`. Segment ids are never reused within a store lifetime,
/// so a key can never alias two different payloads; follower epoch
/// resyncs (which may reuse ids) purge the cache wholesale.
///
/// Sharded second-chance (CLOCK) replacement rather than strict LRU:
/// the hit path — the hot path of every indirect read — is one sharded
/// lock, one hash lookup, and a flag store. A strict LRU's per-hit
/// recency reordering costs two ordered-map updates under one global
/// lock and dominates cache-hit latency at point-get rates.
struct ValueCache {
    shards: Vec<Mutex<CacheShard>>,
}

/// One *contended* in-flight cold-pointer fill, shared by every
/// concurrent reader of the same pointer: the first reader (the
/// leader) performs the segment read and publishes the result; the
/// rest block on the condvar and receive the same `Result` — a miss
/// storm on one evicted key costs exactly one segment read.
///
/// The uncontended path never allocates one of these: a leader
/// registers a free `None` marker in its shard's fill table, and this
/// rendezvous block is created lazily by the **first waiter** to join
/// (see [`CacheShard::fills`]). Solo misses — the overwhelmingly
/// common case — pay two map operations and nothing else.
struct InFlight {
    done: Mutex<Option<Result<Arc<ColValue>, ValueError>>>,
    cv: Condvar,
}

impl InFlight {
    fn wait(&self) -> Result<Arc<ColValue>, ValueError> {
        let mut done = self.done.lock();
        while done.is_none() {
            self.cv.wait(&mut done);
        }
        done.clone().unwrap()
    }
}

/// Leader-side completion obligation for an in-flight fill: if the
/// leader unwinds before publishing (a panic inside the segment read),
/// the drop publishes an I/O error so waiters wake with a typed
/// failure instead of blocking forever on an abandoned entry.
struct LeadGuard<'a> {
    cache: &'a ValueCache,
    key: (u64, u64),
    published: bool,
}

impl LeadGuard<'_> {
    fn publish(mut self, res: &Result<Arc<ColValue>, ValueError>) {
        self.cache.finish_lead(self.key, res);
        self.published = true;
    }
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.cache.finish_lead(self.key, &Err(ValueError::Io));
        }
    }
}

/// What an atomic probe-and-register found for a cold pointer.
enum Probe {
    /// Decoded value already cached.
    Hit(Arc<ColValue>),
    /// Another reader is filling this pointer; wait on the rendezvous.
    Join(Arc<InFlight>),
    /// This caller leads the fill: read, decode, then
    /// [`LeadGuard::publish`] (cache insert + marker removal are one
    /// atomic step, so later probes can never re-read). Carries a
    /// recycled backing block for the decode when the shard pool had
    /// one of the right size.
    Lead(Option<Box<[u8]>>),
}

struct CacheShard {
    map: FxMap<(u64, u64), CacheEntry>,
    /// In-flight fills by pointer key. `None` until a waiter actually
    /// joins: the rendezvous block (and its condvar) is lazily created
    /// by the first joiner, so an uncontended miss registers and
    /// removes a bare marker under the locks it was already taking.
    fills: FxMap<(u64, u64), Option<Arc<InFlight>>>,
    /// Clock ring of insertion order. May hold stale keys (evicted or
    /// removed out of band) — they are skipped when the hand passes.
    ring: VecDeque<(u64, u64)>,
    bytes: usize,
    budget: usize,
    /// Backing blocks harvested from evicted values the sweep held the
    /// last reference to, recycled into new fills of the same size —
    /// at steady state (evict one ≈1 KB value, decode another) the
    /// allocator drops out of the miss path entirely.
    pool: Vec<Box<[u8]>>,
}

/// Per-shard cap on pooled backing blocks. Bounds idle pool memory at
/// `CACHE_SHARDS × cap × payload size` while still covering a whole
/// clustered window's worth of fills per shard.
const POOL_CAP: usize = 16;

struct CacheEntry {
    val: Arc<ColValue>,
    bytes: usize,
    /// Second-chance bit: set on hit, cleared (once) by the clock hand
    /// before the entry becomes evictable.
    referenced: bool,
}

impl CacheShard {
    /// Probe under an already-held lock — callers batch several probes
    /// of one shard (a clustered window's worth) per lock hold.
    fn get_locked(&mut self, key: (u64, u64)) -> Option<Arc<ColValue>> {
        let e = self.map.get_mut(&key)?;
        e.referenced = true;
        Some(Arc::clone(&e.val))
    }

    /// Inserts (or replaces) without sweeping — callers batch several
    /// inserts under one lock hold and call [`CacheShard::sweep`] once.
    fn insert_locked(&mut self, key: (u64, u64), val: Arc<ColValue>) {
        if self.budget == 0 {
            return;
        }
        let bytes = val.heap_bytes();
        let old = self.map.insert(
            key,
            CacheEntry {
                val,
                bytes,
                referenced: false,
            },
        );
        match old {
            // Replacing in place: the key is already on the ring.
            Some(old) => self.bytes -= old.bytes,
            None => self.ring.push_back(key),
        }
        self.bytes += bytes;
    }

    /// Advances the clock hand until back under budget: a stale ring
    /// key is dropped, a referenced entry gets its second chance, an
    /// unreferenced one is evicted. Terminates: every step either
    /// shrinks the ring or clears a flag that is never re-set here.
    /// An evicted value nobody else holds surrenders its backing block
    /// to the shard's recycling pool.
    fn sweep(&mut self) {
        while self.bytes > self.budget && self.map.len() > 1 {
            let Some(k) = self.ring.pop_front() else {
                break;
            };
            match self.map.entry(k) {
                std::collections::hash_map::Entry::Vacant(_) => {}
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if e.get().referenced {
                        e.get_mut().referenced = false;
                        self.ring.push_back(k);
                    } else {
                        let ent = e.remove();
                        self.bytes -= ent.bytes;
                        if self.pool.len() < POOL_CAP {
                            if let Ok(v) = Arc::try_unwrap(ent.val) {
                                self.pool.push(v.into_buf());
                            }
                        }
                    }
                }
            }
        }
    }

    /// Takes a pooled backing block of exactly `need` bytes, if one is
    /// on hand (linear scan — the pool is tiny and shards see uniform
    /// payload sizes in practice).
    fn pool_take(&mut self, need: usize) -> Option<Box<[u8]>> {
        let i = self.pool.iter().position(|b| b.len() == need)?;
        Some(self.pool.swap_remove(i))
    }
}

const CACHE_SHARDS: usize = 16;

/// Multiply-xor hasher (FxHash-style) for maps keyed by fixed-width
/// internal ids. SipHash costs more than the rest of the lookup on the
/// cache and segment-handle maps, which sit on the indirect read path.
/// Not DoS-resistant — the keys are internally generated segment ids
/// and offsets, never attacker-chosen bytes.
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, i: u64) {
        self.0 = (self.0.rotate_left(5) ^ i).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

type FxMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;

/// Shards by segment id and **64 KiB offset region**, not the exact
/// offset: a leaf-sized clustered window (~tens of KB) spans one or
/// two regions, so the batched probe and fill passes run whole windows
/// under one or two lock acquisitions instead of one per payload. The
/// region is deliberately small — a 64 MB segment holds ~1000 of them,
/// so shard budgets stay balanced (coarser regions measurably skew
/// per-shard load and shrink the effective cache).
fn shard_of(key: (u64, u64)) -> usize {
    let mix = (key.0 ^ (key.1 >> 16).rotate_left(32)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (mix >> 60) as usize % CACHE_SHARDS
}

impl ValueCache {
    fn new(budget: usize) -> ValueCache {
        let per_shard = budget / CACHE_SHARDS;
        ValueCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| {
                    Mutex::new(CacheShard {
                        map: FxMap::default(),
                        fills: FxMap::default(),
                        ring: VecDeque::new(),
                        bytes: 0,
                        budget: per_shard,
                        pool: Vec::new(),
                    })
                })
                .collect(),
        }
    }

    /// Atomically probes the cache and, on a miss, joins or starts the
    /// in-flight fill for `key` — one shard lock for both steps, so a
    /// probe can never slip between another leader's insert and its
    /// marker removal (those are also one atomic step,
    /// [`ValueCache::finish_lead`]): every reader sees a hit, an
    /// in-flight fill to join, or cleanly leads a fresh fill. `need`
    /// is the decoded block size the fill would build, so a leader can
    /// take a recycled block from the shard pool under the same lock.
    fn probe_or_lead(&self, key: (u64, u64), need: usize) -> Probe {
        let mut shard = self.shards[shard_of(key)].lock();
        if let Some(e) = shard.map.get_mut(&key) {
            e.referenced = true;
            return Probe::Hit(Arc::clone(&e.val));
        }
        match shard.fills.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                // First joiner materializes the rendezvous block; the
                // leader only ever pays for it when contention is real.
                let fl = e.get_mut().get_or_insert_with(|| {
                    Arc::new(InFlight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    })
                });
                return Probe::Join(Arc::clone(fl));
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(None);
            }
        }
        Probe::Lead(shard.pool_take(need))
    }

    /// Publishes the leader's result: inserts the decoded value (on
    /// success) and removes the fill marker in **one** locked step, so
    /// any probe ordered after this sees the cache hit; then wakes
    /// waiters, if the marker ever grew a rendezvous block.
    fn finish_lead(&self, key: (u64, u64), res: &Result<Arc<ColValue>, ValueError>) {
        let waiters = {
            let mut shard = self.shards[shard_of(key)].lock();
            if let Ok(v) = res {
                shard.insert_locked(key, Arc::clone(v));
                shard.sweep();
            }
            shard.fills.remove(&key).flatten()
        };
        if let Some(fl) = waiters {
            let mut done = fl.done.lock();
            *done = Some(res.clone());
            fl.cv.notify_all();
        }
    }

    fn insert(&self, key: (u64, u64), val: Arc<ColValue>) {
        let mut shard = self.shards[shard_of(key)].lock();
        shard.insert_locked(key, val);
        shard.sweep();
    }

    fn remove(&self, key: (u64, u64)) {
        let mut shard = self.shards[shard_of(key)].lock();
        if let Some(e) = shard.map.remove(&key) {
            shard.bytes -= e.bytes;
        }
        // The ring entry goes stale and is skipped by the clock hand.
    }

    fn purge(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.map.clear();
            s.ring.clear();
            s.bytes = 0;
        }
    }
}

/// Value-tier observability counters, served through the network
/// `Stats` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValueTierStats {
    /// Reads that resolved an indirect value (cache hit or disk).
    pub indirect_reads: u64,
    /// Indirect reads served by the decoded-value cache.
    pub value_cache_hits: u64,
    /// Live payload bytes GC has relocated out of condemned segments.
    pub gc_rewritten_bytes: u64,
    /// Payload bytes still referenced across all value segments.
    pub live_segment_bytes: u64,
    /// Indirect reads that failed integrity checks (typed error).
    pub unresolved_reads: u64,
    /// Value segments on disk.
    pub segments: u64,
    /// Batched resolutions ([`ValueTier::resolve_many`] calls) that had
    /// at least one cache miss and issued clustered reads.
    pub readahead_batches: u64,
    /// Clustered segment reads: one `pread` covering a coalesced run of
    /// missed pointers (plus the gaps between them).
    pub clustered_reads: u64,
    /// Bytes fetched by clustered reads — payloads and skipped gaps.
    pub coalesced_bytes: u64,
    /// Cold misses that piggybacked on another reader's in-flight
    /// segment read instead of issuing their own (miss coalescing).
    pub shared_misses: u64,
    /// Segment `pread`s actually issued, across single fills, clustered
    /// windows, and torn-window fallbacks. Under a miss storm on one
    /// key this advances once while `shared_misses` counts the crowd.
    pub segment_reads: u64,
}

/// Reusable buffers for [`ValueTier::resolve_many`], owned by the
/// caller (one per session scratch) so the all-hit steady state
/// allocates nothing: the miss list and the clustered-window read
/// buffer both retain capacity across batches.
#[derive(Default)]
pub struct ResolveScratch {
    /// Cache misses: `(ptr, version, index into the request batch)`,
    /// sorted by `(seg, off)` before coalescing.
    misses: Vec<(ValuePtr, u64, u32)>,
    /// One clustered window's raw segment bytes (`pread` fallback when
    /// the segment has no mapping).
    buf: Vec<u8>,
    /// Last segment mapping used, keyed by `(reader generation,
    /// segment id)` — consecutive windows usually hit the same segment,
    /// skipping the reader's handle-table locks. Replaced whenever a
    /// window needs a different (or longer) mapping, and **discarded**
    /// when the reader's generation has moved ([`SegReader::forget`] /
    /// `forget_all`: GC deletion, follower epoch resync) — a new epoch
    /// may reuse the segment id over different bytes, and a stale
    /// mapping would serve the old epoch's payloads.
    map: Option<(u64, u64, Arc<SegMap>)>,
}

/// The value tier attached to a store: appender + reader + cache +
/// per-segment accounting.
pub struct ValueTier {
    dir: PathBuf,
    segment_bytes: u64,
    /// `None` for a reader-only tier (replication follower mirrors).
    appender: Mutex<Option<Appender>>,
    reader: SegReader,
    cache: ValueCache,
    accounts: Mutex<HashMap<u64, SegAccount>>,
    /// GC-condemned segments: seg → condemn timestamp (`clock::now`).
    /// Deleted once a durable checkpoint with `start_ts ≥` the stamp
    /// exists (see `Store::run_durability_cycle` for the proof).
    condemned: Mutex<HashMap<u64, u64>>,
    /// Active segment id (shipping watermark for replication).
    active_seg: AtomicU64,
    /// Durable bytes of the active segment.
    active_durable: AtomicU64,
    indirect_reads: AtomicU64,
    cache_hits: AtomicU64,
    gc_rewritten: AtomicU64,
    unresolved: AtomicU64,
    readahead_batches: AtomicU64,
    clustered_reads: AtomicU64,
    coalesced_bytes: AtomicU64,
    shared_misses: AtomicU64,
    segment_reads: AtomicU64,
    /// Observability hub of the owning store (set at attach time):
    /// cache-miss fills record their segment-read + decode latency as
    /// `vseg_fill`.
    obs: std::sync::OnceLock<Arc<mtobs::Obs>>,
}

impl ValueTier {
    /// Mounts the tier over `dir`. A writable tier opens a **fresh**
    /// active segment one past the highest existing id — old tails are
    /// never appended to (their durable length is crash evidence, and
    /// pointers into them must stay byte-stable for replication
    /// mirrors). A reader-only tier (`writable: false`) serves
    /// resolutions from whatever segment files are present.
    pub fn open(
        dir: &Path,
        segment_bytes: u64,
        cache_budget: usize,
        writable: bool,
    ) -> std::io::Result<ValueTier> {
        std::fs::create_dir_all(dir)?;
        let ids = vseg_ids(dir);
        let mut accounts = HashMap::new();
        for &id in &ids {
            let total = std::fs::metadata(vseg_path(dir, id))
                .map(|m| m.len())
                .unwrap_or(0);
            accounts.insert(id, SegAccount { total, dead: 0 });
        }
        let next = ids.last().map(|&i| i + 1).unwrap_or(0);
        let appender = if writable {
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(vseg_path(dir, next))?;
            fsync_dir(dir)?;
            accounts.insert(next, SegAccount::default());
            Some(Appender {
                file,
                seg: next,
                written: 0,
                durable: 0,
            })
        } else {
            None
        };
        Ok(ValueTier {
            dir: dir.to_path_buf(),
            segment_bytes: segment_bytes.max(1),
            active_seg: AtomicU64::new(appender.as_ref().map(|a| a.seg).unwrap_or(0)),
            active_durable: AtomicU64::new(0),
            appender: Mutex::new(appender),
            reader: SegReader::new(dir),
            cache: ValueCache::new(cache_budget),
            accounts: Mutex::new(accounts),
            condemned: Mutex::new(HashMap::new()),
            indirect_reads: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            gc_rewritten: AtomicU64::new(0),
            unresolved: AtomicU64::new(0),
            readahead_batches: AtomicU64::new(0),
            clustered_reads: AtomicU64::new(0),
            coalesced_bytes: AtomicU64::new(0),
            shared_misses: AtomicU64::new(0),
            segment_reads: AtomicU64::new(0),
            obs: std::sync::OnceLock::new(),
        })
    }

    /// Attaches the owning store's observability hub (first call wins).
    pub fn set_obs(&self, obs: Arc<mtobs::Obs>) {
        let _ = self.obs.set(obs);
    }

    /// Appends a payload to the active segment (page cache only — call
    /// [`ValueTier::force`] before acking any pointer that names it).
    /// Rotates past the size threshold, fsyncing the sealed segment so
    /// "below the active segment" always means "fully durable".
    pub fn append(&self, payload: &[u8]) -> std::io::Result<ValuePtr> {
        let mut guard = self.appender.lock();
        let ap = guard
            .as_mut()
            .ok_or_else(|| std::io::Error::other("value tier is reader-only"))?;
        if ap.written > 0 && ap.written + payload.len() as u64 > self.segment_bytes {
            ap.file.sync_data()?;
            let next = ap.seg + 1;
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(vseg_path(&self.dir, next))?;
            fsync_dir(&self.dir)?;
            *ap = Appender {
                file,
                seg: next,
                written: 0,
                durable: 0,
            };
            self.accounts.lock().insert(next, SegAccount::default());
            self.active_seg.store(next, Ordering::Release);
            self.active_durable.store(0, Ordering::Release);
        }
        ap.file.write_all(payload)?;
        let ptr = ValuePtr {
            seg: ap.seg,
            off: ap.written,
            len: payload.len() as u32,
            crc: crc32(payload),
        };
        ap.written += payload.len() as u64;
        if let Some(acct) = self.accounts.lock().get_mut(&ap.seg) {
            acct.total += payload.len() as u64;
        }
        Ok(ptr)
    }

    /// Forces the active segment to storage. Must complete **before**
    /// the write-ahead log force on every durability-ack path: a
    /// durable pointer record then always names durable payload bytes.
    /// Returns false on failure (callers must not ack).
    pub fn force(&self) -> bool {
        let mut guard = self.appender.lock();
        let Some(ap) = guard.as_mut() else {
            return true; // reader-only tier: nothing to flush
        };
        if ap.durable == ap.written {
            return true;
        }
        match ap.file.sync_data() {
            Ok(()) => {
                ap.durable = ap.written;
                self.active_durable.store(ap.durable, Ordering::Release);
                true
            }
            Err(_) => false,
        }
    }

    /// `(active segment, durable bytes of it)` — the shipping watermark
    /// for replication. Segments below the active one are sealed and
    /// fully durable.
    pub fn progress(&self) -> (u64, u64) {
        (
            self.active_seg.load(Ordering::Acquire),
            self.active_durable.load(Ordering::Acquire),
        )
    }

    /// Resolves an indirect value: decoded-value cache first, then an
    /// integrity-checked segment read shared through the per-shard
    /// in-flight table — concurrent readers of the same cold pointer
    /// join the first reader's read instead of stampeding the segment
    /// file. Errors are typed and counted; wrong bytes are impossible
    /// (CRC + length cover every path).
    pub fn resolve(&self, ptr: ValuePtr, version: u64) -> Result<Arc<ColValue>, ValueError> {
        self.indirect_reads.fetch_add(1, Ordering::Relaxed);
        let key = (ptr.seg, ptr.off);
        let obs = self.obs.get();
        let fill_t0 = obs.map(|_| std::time::Instant::now());
        match self.cache.probe_or_lead(key, (ptr.len as usize).saturating_sub(2)) {
            Probe::Hit(v) => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                Ok(v)
            }
            Probe::Join(fl) => {
                // Another reader is already filling this pointer: share
                // its one segment read instead of issuing a duplicate.
                self.shared_misses.fetch_add(1, Ordering::Relaxed);
                let out = fl.wait();
                if out.is_err() {
                    self.unresolved.fetch_add(1, Ordering::Relaxed);
                }
                if let (Some(obs), Some(t0)) = (obs, fill_t0) {
                    obs.global()
                        .record(mtobs::Kind::VsegSharedMiss, t0.elapsed().as_nanos() as u64);
                }
                out
            }
            Probe::Lead(spare) => {
                // Leading the fill: publish on every exit — the guard
                // covers unwinds — so waiters can never block on an
                // abandoned marker. The publish itself performs the
                // cache insert, atomically with the marker removal.
                let lead = LeadGuard {
                    cache: &self.cache,
                    key,
                    published: false,
                };
                self.segment_reads.fetch_add(1, Ordering::Relaxed);
                let out = match self.reader.read_value_reusing(ptr, version, spare) {
                    Ok(v) => Ok(Arc::new(v)),
                    Err(e) => {
                        self.unresolved.fetch_add(1, Ordering::Relaxed);
                        Err(e)
                    }
                };
                lead.publish(&out);
                if let (Some(obs), Some(t0)) = (obs, fill_t0) {
                    obs.global()
                        .record(mtobs::Kind::VsegFill, t0.elapsed().as_nanos() as u64);
                }
                out
            }
        }
    }

    /// Batched [`ValueTier::resolve`]: probes the cache for every
    /// request, then resolves the misses with **clustered segment
    /// reads** — misses sorted by `(seg, off)`, adjacent and
    /// near-adjacent ranges (gap ≤ one page) coalesced into a single
    /// `pread` per window bounded by the readahead byte budget, each
    /// payload CRC-checked and decoded out of the window into the
    /// cache. Results land in `out` positionally; `None` means the
    /// payload was unresolvable (counted in `unresolved_reads`),
    /// exactly as a single resolve would have failed. With warm
    /// `out`/`scratch` buffers the all-hit path allocates nothing.
    pub fn resolve_many(
        &self,
        reqs: &[(ValuePtr, u64)],
        out: &mut Vec<Option<Arc<ColValue>>>,
        scratch: &mut ResolveScratch,
    ) {
        out.clear();
        scratch.misses.clear();
        self.indirect_reads
            .fetch_add(reqs.len() as u64, Ordering::Relaxed);
        let mut hits = 0u64;
        // Locked-run probing: requests arrive in key order, which for
        // clustered payloads is near offset order, and region sharding
        // maps an offset run to one shard — so consecutive probes
        // usually reuse the held guard instead of relocking per row.
        let mut cur: Option<(usize, parking_lot::MutexGuard<CacheShard>)> = None;
        for (i, &(ptr, version)) in reqs.iter().enumerate() {
            let key = (ptr.seg, ptr.off);
            let s = shard_of(key);
            match &cur {
                Some((held, _)) if *held == s => {}
                _ => {
                    // Release the held shard *before* acquiring the next
                    // one: a plain `cur = Some(..)` evaluates the new
                    // lock first, holding two shards at once — two
                    // batches whose probe sequences cross shards in
                    // opposite orders (shard_of is a hash) would
                    // deadlock ABBA-style.
                    drop(cur.take());
                    cur = Some((s, self.cache.shards[s].lock()));
                }
            }
            match cur.as_mut().unwrap().1.get_locked(key) {
                Some(v) => {
                    hits += 1;
                    out.push(Some(v));
                }
                None => {
                    scratch.misses.push((ptr, version, i as u32));
                    out.push(None);
                }
            }
        }
        drop(cur);
        if hits > 0 {
            self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        }
        if scratch.misses.is_empty() {
            return;
        }
        let obs = self.obs.get();
        let t0 = obs.map(|_| std::time::Instant::now());
        scratch
            .misses
            .sort_unstable_by_key(|&(p, _, _)| (p.seg, p.off));
        let mut w = 0;
        while w < scratch.misses.len() {
            let (p0, _, _) = scratch.misses[w];
            let (seg, start) = (p0.seg, p0.off);
            let mut end = p0.off + p0.len as u64;
            let mut x = w + 1;
            while x < scratch.misses.len() {
                let (p, _, _) = scratch.misses[x];
                let pend = p.off + p.len as u64;
                if p.seg != seg || p.off > end + COALESCE_GAP || pend - start > READAHEAD_WINDOW_BYTES
                {
                    break;
                }
                end = end.max(pend);
                x += 1;
            }
            self.fill_window(
                &scratch.misses[w..x],
                seg,
                start,
                end,
                &mut scratch.buf,
                &mut scratch.map,
                out,
            );
            w = x;
        }
        self.readahead_batches.fetch_add(1, Ordering::Relaxed);
        if let (Some(obs), Some(t0)) = (obs, t0) {
            obs.global()
                .record(mtobs::Kind::VsegReadahead, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Resolves one coalesced run of misses with a single clustered
    /// segment read, carving, CRC-checking, and caching each payload
    /// out of the window. A failed window read falls back to
    /// per-pointer reads: a tear inside the window must not condemn the
    /// intact payloads before it.
    fn fill_window(
        &self,
        misses: &[(ValuePtr, u64, u32)],
        seg: u64,
        start: u64,
        end: u64,
        buf: &mut Vec<u8>,
        map_cache: &mut Option<(u64, u64, Arc<SegMap>)>,
        out: &mut [Option<Arc<ColValue>>],
    ) {
        let len = (end - start) as usize;
        self.segment_reads.fetch_add(1, Ordering::Relaxed);
        self.clustered_reads.fetch_add(1, Ordering::Relaxed);
        self.coalesced_bytes.fetch_add(len as u64, Ordering::Relaxed);
        // Mapped segments serve the window with zero copies — carve,
        // CRC, and decode run directly over the page cache. Otherwise
        // `pread` into the reusable scratch buffer (grow-only: the read
        // overwrites `..len` in full, so re-zeroing a previously larger
        // window would only burn memory bandwidth on bytes about to be
        // replaced). The cached mapping is honored only while the
        // reader's generation stands still: `forget`/`forget_all` (GC
        // deletion, follower epoch resync) may let the segment id be
        // re-created over different bytes, and the scratch must not
        // outlive that.
        let gen = self.reader.generation();
        let mapped = match &*map_cache {
            Some((mgen, mseg, m)) if *mgen == gen && *mseg == seg && end <= m.len as u64 => {
                Some(Arc::clone(m))
            }
            _ => {
                let m = self.reader.mapped(seg, end);
                if let Some(m) = &m {
                    // `gen` was loaded before `mapped()`: if a purge
                    // raced in between, the stale stamp just makes the
                    // next window re-fetch — never serves old bytes.
                    *map_cache = Some((gen, seg, Arc::clone(m)));
                }
                m
            }
        };
        if mapped.is_none() {
            if buf.len() < len {
                buf.resize(len, 0);
            }
            if self.reader.read_clustered(seg, start, &mut buf[..len]).is_err() {
                for &(ptr, version, i) in misses {
                    self.fill_single(ptr, version, i, out);
                }
                return;
            }
        }
        let window: &[u8] = match &mapped {
            Some(m) => &m.bytes()[start as usize..end as usize],
            None => &buf[..len],
        };
        // One pass — CRC, decode, insert — under locked shard runs:
        // region sharding puts a whole window's keys in one or two
        // shards, so a run holds one lock, recycles evicted backing
        // blocks through the shard pool into the decodes, and pays one
        // eviction sweep per run instead of one per payload. A payload
        // that fails CRC or decode inside the window retries through a
        // fresh per-pointer read (symmetric with the torn-window
        // fallback above): window-local damage — or a mapping that went
        // stale mid-batch — must not condemn a payload the segment can
        // still serve. The shard guard is dropped first; no disk I/O
        // under a cache lock.
        let mut cur: Option<(usize, parking_lot::MutexGuard<CacheShard>)> = None;
        for &(ptr, version, i) in misses {
            let lo = (ptr.off - start) as usize;
            let payload = &window[lo..lo + ptr.len as usize];
            if crc32(payload) != ptr.crc {
                if let Some((_, mut done)) = cur.take() {
                    done.sweep();
                }
                self.fill_single(ptr, version, i, out);
                continue;
            }
            let key = (ptr.seg, ptr.off);
            let s = shard_of(key);
            match &cur {
                Some((held, _)) if *held == s => {}
                _ => {
                    if let Some((_, mut done)) = cur.take() {
                        done.sweep();
                    }
                    cur = Some((s, self.cache.shards[s].lock()));
                }
            }
            let guard = &mut cur.as_mut().unwrap().1;
            let spare = guard.pool_take(payload.len().saturating_sub(2));
            match decode_payload_value_reusing(payload, version, spare) {
                Some(v) => {
                    let arc = Arc::new(v);
                    guard.insert_locked(key, Arc::clone(&arc));
                    out[i as usize] = Some(arc);
                }
                None => {
                    if let Some((_, mut done)) = cur.take() {
                        done.sweep();
                    }
                    self.fill_single(ptr, version, i, out);
                }
            }
        }
        if let Some((_, mut done)) = cur.take() {
            done.sweep();
        }
    }

    /// Per-pointer fallback fill: one fresh segment read through
    /// [`SegReader::read_value`] (which re-resolves the handle and
    /// mapping, so it heals stale-mapping failures), caching on success
    /// and counting `unresolved_reads` on failure — the same outcome a
    /// single [`ValueTier::resolve`] miss would produce.
    fn fill_single(
        &self,
        ptr: ValuePtr,
        version: u64,
        i: u32,
        out: &mut [Option<Arc<ColValue>>],
    ) {
        self.segment_reads.fetch_add(1, Ordering::Relaxed);
        match self.reader.read_value(ptr, version) {
            Ok(v) => {
                let arc = Arc::new(v);
                self.cache.insert((ptr.seg, ptr.off), Arc::clone(&arc));
                out[i as usize] = Some(arc);
            }
            Err(_) => {
                self.unresolved.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Reads a payload without touching the cache (GC relocation).
    pub fn read_raw(&self, ptr: ValuePtr) -> Result<Vec<u8>, ValueError> {
        self.reader.read(ptr)
    }

    /// Marks the payload `ptr` names as dead (its pointer record was
    /// replaced, removed, or relocated) and drops any cached copy.
    pub fn note_dead(&self, ptr: ValuePtr) {
        if let Some(acct) = self.accounts.lock().get_mut(&ptr.seg) {
            acct.dead = (acct.dead + ptr.len as u64).min(acct.total);
        }
        self.cache.remove((ptr.seg, ptr.off));
    }

    /// Counts `n` relocated payload bytes (GC observability).
    pub fn note_rewritten(&self, n: u64) {
        self.gc_rewritten.fetch_add(n, Ordering::Relaxed);
    }

    /// Replaces the per-segment live accounting wholesale (recovery:
    /// totals come from the file lengths, live bytes from a tree scan).
    pub fn rebuild_accounts(&self, live_by_seg: &HashMap<u64, u64>) {
        let mut accounts = self.accounts.lock();
        for (seg, acct) in accounts.iter_mut() {
            let live = live_by_seg.get(seg).copied().unwrap_or(0).min(acct.total);
            acct.dead = acct.total - live;
        }
    }

    /// Sealed segments (below the active one) whose dead fraction is at
    /// least `dead_fraction`, worst first — GC rewrite candidates.
    /// Already-condemned segments are excluded.
    pub fn gc_candidates(&self, dead_fraction: f64) -> Vec<u64> {
        let active = self.active_seg.load(Ordering::Acquire);
        let condemned = self.condemned.lock();
        let accounts = self.accounts.lock();
        let mut out: Vec<(u64, f64)> = accounts
            .iter()
            .filter(|(&seg, acct)| seg < active && acct.total > 0 && !condemned.contains_key(&seg))
            .map(|(&seg, acct)| (seg, acct.dead as f64 / acct.total as f64))
            .filter(|&(_, frac)| frac >= dead_fraction)
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out.into_iter().map(|(seg, _)| seg).collect()
    }

    /// Condemns `seg` at timestamp `now`: every live pointer into it
    /// has been relocated (and the relocations logged), so once a
    /// durable checkpoint with `start_ts ≥ now` exists, no recovery or
    /// replay can reference it again and the file may be deleted.
    pub fn condemn(&self, seg: u64, now: u64) {
        self.condemned.lock().insert(seg, now);
    }

    /// Deletes condemned segments whose stamp is at or before
    /// `covered_ts` (the just-published checkpoint's `start_ts`).
    /// Returns the number of files removed.
    pub fn delete_condemned(&self, covered_ts: u64) -> u64 {
        let ripe: Vec<u64> = self
            .condemned
            .lock()
            .iter()
            .filter(|&(_, &ts)| ts <= covered_ts)
            .map(|(&seg, _)| seg)
            .collect();
        let mut deleted = 0;
        for seg in ripe {
            if std::fs::remove_file(vseg_path(&self.dir, seg)).is_ok() {
                deleted += 1;
            }
            self.condemned.lock().remove(&seg);
            self.accounts.lock().remove(&seg);
            self.reader.forget(seg);
        }
        deleted
    }

    /// Purges the decoded-value cache and reader handles (follower
    /// epoch resync: a new primary epoch may reuse segment ids, and a
    /// stale cached decode keyed by `(seg, off)` would serve the old
    /// epoch's bytes).
    pub fn purge_cache(&self) {
        self.cache.purge();
        self.reader.forget_all();
    }

    /// Current counters + derived live/segment totals.
    pub fn stats(&self) -> ValueTierStats {
        let accounts = self.accounts.lock();
        let live: u64 = accounts.values().map(|a| a.total - a.dead).sum();
        let segments = accounts.len() as u64;
        ValueTierStats {
            indirect_reads: self.indirect_reads.load(Ordering::Relaxed),
            value_cache_hits: self.cache_hits.load(Ordering::Relaxed),
            gc_rewritten_bytes: self.gc_rewritten.load(Ordering::Relaxed),
            live_segment_bytes: live,
            unresolved_reads: self.unresolved.load(Ordering::Relaxed),
            segments,
            readahead_batches: self.readahead_batches.load(Ordering::Relaxed),
            clustered_reads: self.clustered_reads.load(Ordering::Relaxed),
            coalesced_bytes: self.coalesced_bytes.load(Ordering::Relaxed),
            shared_misses: self.shared_misses.load(Ordering::Relaxed),
            segment_reads: self.segment_reads.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mtkv-vtier-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn payload_roundtrip() {
        let mut buf = Vec::new();
        encode_payload(&[b"alpha", b"", b"gamma-gamma"], &mut buf);
        let cols = decode_payload(&buf).unwrap();
        assert_eq!(cols, vec![&b"alpha"[..], &b""[..], &b"gamma-gamma"[..]]);
        // Trailing garbage is refused, not ignored.
        buf.push(0);
        assert!(decode_payload(&buf).is_none());
    }

    #[test]
    fn append_read_rotate() {
        let dir = tmpdir("rot");
        let tier = ValueTier::open(&dir, 64, 1 << 20, true).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..10u32 {
            let mut p = Vec::new();
            encode_payload(&[&i.to_le_bytes(), &[i as u8; 30]], &mut p);
            ptrs.push(tier.append(&p).unwrap());
        }
        assert!(tier.force());
        assert!(
            ptrs.last().unwrap().seg > ptrs[0].seg,
            "rotation happened: {ptrs:?}"
        );
        for (i, ptr) in ptrs.iter().enumerate() {
            let v = tier.resolve(*ptr, i as u64).unwrap();
            assert_eq!(v.col(0), Some(&(i as u32).to_le_bytes()[..]));
            assert_eq!(v.col(1), Some(&[i as u8; 30][..]));
        }
        let s = tier.stats();
        assert_eq!(s.indirect_reads, 10);
        assert!(s.segments >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn typed_errors_never_wrong_bytes() {
        let dir = tmpdir("err");
        let tier = ValueTier::open(&dir, 1 << 20, 0, true).unwrap();
        let mut p = Vec::new();
        encode_payload(&[b"payload-bytes"], &mut p);
        let ptr = tier.append(&p).unwrap();
        assert!(tier.force());
        // Checksum mismatch.
        let bad = ValuePtr {
            crc: ptr.crc ^ 1,
            ..ptr
        };
        assert_eq!(
            tier.resolve(bad, 1).unwrap_err(),
            ValueError::ChecksumMismatch
        );
        // Past the end of the segment.
        let torn = ValuePtr {
            off: ptr.off + 7,
            ..ptr
        };
        assert!(matches!(
            tier.resolve(torn, 1).unwrap_err(),
            ValueError::TornOrMissing | ValueError::ChecksumMismatch
        ));
        // Missing segment.
        let gone = ValuePtr {
            seg: ptr.seg + 99,
            ..ptr
        };
        assert_eq!(
            tier.resolve(gone, 1).unwrap_err(),
            ValueError::TornOrMissing
        );
        assert_eq!(tier.stats().unresolved_reads, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_budget_evicts_lru() {
        let dir = tmpdir("lru");
        // Budget fits roughly two decoded values.
        let tier = ValueTier::open(&dir, 1 << 20, 700, true).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..4u8 {
            let mut p = Vec::new();
            encode_payload(&[&[i; 256]], &mut p);
            ptrs.push(tier.append(&p).unwrap());
        }
        assert!(tier.force());
        for (i, ptr) in ptrs.iter().enumerate() {
            tier.resolve(*ptr, i as u64).unwrap();
        }
        // Hot key stays cached; re-resolving the cold first one misses.
        tier.resolve(ptrs[3], 3).unwrap();
        let before = tier.stats().value_cache_hits;
        tier.resolve(ptrs[3], 3).unwrap();
        assert_eq!(tier.stats().value_cache_hits, before + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_many_clusters_contiguous_misses() {
        let dir = tmpdir("many");
        let tier = ValueTier::open(&dir, 1 << 20, 1 << 20, true).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..32u32 {
            let mut p = Vec::new();
            encode_payload(&[&i.to_le_bytes(), &[i as u8; 100]], &mut p);
            ptrs.push(tier.append(&p).unwrap());
        }
        assert!(tier.force());
        let reqs: Vec<(ValuePtr, u64)> = ptrs.iter().map(|&p| (p, 7)).collect();
        let mut out = Vec::new();
        let mut scratch = ResolveScratch::default();
        tier.resolve_many(&reqs, &mut out, &mut scratch);
        assert_eq!(out.len(), 32);
        for (i, v) in out.iter().enumerate() {
            let v = v.as_ref().expect("all resolvable");
            assert_eq!(v.col(0), Some(&(i as u32).to_le_bytes()[..]));
            assert_eq!(v.col(1), Some(&[i as u8; 100][..]));
        }
        let s = tier.stats();
        // All 32 payloads are contiguous in one segment: one clustered
        // read covers them all.
        assert_eq!(s.clustered_reads, 1, "{s:?}");
        assert_eq!(s.segment_reads, 1, "{s:?}");
        assert_eq!(s.readahead_batches, 1);
        assert!(s.coalesced_bytes >= 32 * 100);
        // Second pass: pure cache hits, no new reads.
        tier.resolve_many(&reqs, &mut out, &mut scratch);
        let s2 = tier.stats();
        assert_eq!(s2.segment_reads, 1);
        assert_eq!(s2.value_cache_hits, s.value_cache_hits + 32);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_many_gap_and_budget_split_windows() {
        let dir = tmpdir("gap");
        let tier = ValueTier::open(&dir, 64 << 20, 1 << 20, true).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..3u8 {
            let mut p = Vec::new();
            encode_payload(&[&[i; 64]], &mut p);
            ptrs.push(tier.append(&p).unwrap());
            // Pad past the coalescing gap so each miss is its own window.
            let mut pad = Vec::new();
            encode_payload(&[&vec![0xEE; COALESCE_GAP as usize + 64]], &mut pad);
            tier.append(&pad).unwrap();
        }
        assert!(tier.force());
        let reqs: Vec<(ValuePtr, u64)> = ptrs.iter().map(|&p| (p, 1)).collect();
        let mut out = Vec::new();
        let mut scratch = ResolveScratch::default();
        tier.resolve_many(&reqs, &mut out, &mut scratch);
        assert!(out.iter().all(|v| v.is_some()));
        let s = tier.stats();
        assert_eq!(s.clustered_reads, 3, "gap splits windows: {s:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_many_torn_window_falls_back_per_pointer() {
        let dir = tmpdir("torn");
        let tier = ValueTier::open(&dir, 1 << 20, 0, true).unwrap();
        let mut p = Vec::new();
        encode_payload(&[b"intact-payload"], &mut p);
        let good = tier.append(&p).unwrap();
        assert!(tier.force());
        // A pointer reaching past the segment end tears any window that
        // includes it; the intact payload before it must still resolve.
        let torn = ValuePtr {
            off: good.off + good.len as u64,
            len: 512,
            ..good
        };
        let mut out = Vec::new();
        let mut scratch = ResolveScratch::default();
        tier.resolve_many(&[(good, 1), (torn, 1)], &mut out, &mut scratch);
        assert!(out[0].is_some(), "intact payload survives the torn window");
        assert!(out[1].is_none());
        assert_eq!(tier.stats().unresolved_reads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_many_opposing_probe_orders_do_not_deadlock() {
        // Regression: the probe loop must drop its held shard guard
        // before locking the next shard. Holding-while-acquiring lets
        // two batches whose key sequences cross shards in opposite
        // orders deadlock ABBA-style — this hammers exactly that shape
        // (forward vs reverse key order over a warm cache, so both
        // threads live entirely in the locked-run probe loop).
        let dir = tmpdir("abba");
        let tier = Arc::new(ValueTier::open(&dir, 1 << 20, 1 << 20, true).unwrap());
        let mut ptrs = Vec::new();
        for i in 0..64u8 {
            let mut p = Vec::new();
            encode_payload(&[&[i; 64]], &mut p);
            ptrs.push(tier.append(&p).unwrap());
        }
        assert!(tier.force());
        let fwd: Vec<(ValuePtr, u64)> = ptrs.iter().map(|&p| (p, 1)).collect();
        let rev: Vec<(ValuePtr, u64)> = ptrs.iter().rev().map(|&p| (p, 1)).collect();
        let mut out = Vec::new();
        let mut scratch = ResolveScratch::default();
        tier.resolve_many(&fwd, &mut out, &mut scratch);
        std::thread::scope(|s| {
            for reqs in [&fwd, &rev] {
                let tier = Arc::clone(&tier);
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut scratch = ResolveScratch::default();
                    for _ in 0..500 {
                        tier.resolve_many(reqs, &mut out, &mut scratch);
                        assert!(out.iter().all(|v| v.is_some()));
                    }
                });
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_many_scratch_map_invalidated_by_purge() {
        let dir = tmpdir("scratchmap");
        let tier = ValueTier::open(&dir, 1 << 20, 1 << 20, true).unwrap();
        let mut p = Vec::new();
        encode_payload(&[&[1u8; 256]], &mut p);
        let old = tier.append(&p).unwrap();
        assert!(tier.force());
        let mut out = Vec::new();
        let mut scratch = ResolveScratch::default();
        // Warm the per-session mapping cache with the old epoch's bytes.
        tier.resolve_many(&[(old, 1)], &mut out, &mut scratch);
        assert!(out[0].is_some());
        // Follower epoch resync: the segment id is re-created over
        // different bytes and the tier's caches are purged — but this
        // session's scratch still holds a mapping of the *deleted*
        // inode, which must not serve the old epoch's payloads.
        let seg_file = vseg_path(&dir, old.seg);
        std::fs::remove_file(&seg_file).unwrap();
        let mut p2 = Vec::new();
        encode_payload(&[b"new-epoch-bytes"], &mut p2);
        std::fs::write(&seg_file, &p2).unwrap();
        tier.purge_cache();
        let new = ValuePtr {
            seg: old.seg,
            off: 0,
            len: p2.len() as u32,
            crc: crc32(&p2),
        };
        tier.resolve_many(&[(new, 2)], &mut out, &mut scratch);
        let v = out[0].as_ref().expect("new epoch bytes resolve");
        assert_eq!(v.col(0), Some(&b"new-epoch-bytes"[..]));
        assert_eq!(tier.stats().unresolved_reads, 0, "no stale-map failures");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn miss_storm_shares_one_segment_read() {
        let dir = tmpdir("storm");
        let tier = Arc::new(ValueTier::open(&dir, 1 << 20, 1 << 20, true).unwrap());
        let mut p = Vec::new();
        encode_payload(&[&[42u8; 4096]], &mut p);
        let ptr = tier.append(&p).unwrap();
        assert!(tier.force());
        const THREADS: usize = 8;
        const ROUNDS: usize = 16;
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        for _ in 0..ROUNDS {
            tier.purge_cache();
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let tier = Arc::clone(&tier);
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        barrier.wait();
                        let v = tier.resolve(ptr, 9).unwrap();
                        assert_eq!(v.col(0), Some(&[42u8; 4096][..]));
                    });
                }
            });
        }
        let s = tier.stats();
        // Exactly one segment read per purge, however the storm
        // interleaved; everyone else hit the cache or shared the read.
        assert_eq!(s.segment_reads, ROUNDS as u64, "{s:?}");
        assert_eq!(
            s.value_cache_hits + s.shared_misses,
            ((THREADS - 1) * ROUNDS) as u64,
            "{s:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn condemn_delete_cycle() {
        let dir = tmpdir("gc");
        let tier = ValueTier::open(&dir, 32, 0, true).unwrap();
        let mut p = Vec::new();
        encode_payload(&[&[7u8; 40]], &mut p);
        let a = tier.append(&p).unwrap(); // fills segment, next append rotates
        let b = tier.append(&p).unwrap();
        assert!(tier.force());
        assert_ne!(a.seg, b.seg);
        tier.note_dead(a);
        assert_eq!(tier.gc_candidates(0.99), vec![a.seg]);
        tier.condemn(a.seg, 100);
        assert_eq!(tier.delete_condemned(50), 0, "not yet covered");
        assert_eq!(tier.delete_condemned(100), 1);
        assert!(!vseg_path(&dir, a.seg).exists());
        assert_eq!(
            tier.resolve(a, 1).unwrap_err(),
            ValueError::TornOrMissing,
            "deleted segment reads are typed errors"
        );
        assert!(tier.resolve(b, 2).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
