//! CRC-32 (IEEE 802.3 polynomial) for log-record and value-payload
//! integrity, implemented in-crate to stay within the approved
//! dependency set. The value-tier read path checksums every cache
//! miss — whole payloads, often kilobytes — so this is a hot path:
//! buffers of 128 bytes and up take a carry-less-multiply folding
//! routine (PCLMULQDQ, ~16 bytes per cycle) when the CPU has it;
//! everything else goes through slicing-by-8, whose eight derived
//! tables fold eight bytes per step with independent lookups instead
//! of the classic one-lookup-per-byte dependency chain.

const POLY: u32 = 0xEDB88320;

fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, e) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xff) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// Advances the raw CRC state `c` (inverted convention: start from
/// `!0`, finish with `!c`) across `data` — slicing-by-8.
fn update(mut c: u32, data: &[u8]) -> u32 {
    let t = tables();
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes(ch[..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(ch[4..].try_into().unwrap());
        c = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if data.len() >= 128
        && std::is_x86_feature_detected!("pclmulqdq")
        && std::is_x86_feature_detected!("sse4.1")
    {
        let split = data.len() & !15;
        // SAFETY: required CPU features verified just above; the slice
        // passed is a multiple of 16 bytes and at least 128 long.
        let folded = unsafe { pclmul::crc32_fold(&data[..split]) };
        return !update(!folded, &data[split..]);
    }
    !update(!0, data)
}

/// Carry-less-multiply CRC folding — Intel's "Fast CRC Computation for
/// Generic Polynomials Using PCLMULQDQ" applied to the bit-reflected
/// IEEE polynomial; the folding constants are the well-known ones also
/// used by zlib and the Linux kernel. Four 128-bit lanes fold 64 input
/// bytes per iteration; the lanes are then folded together, reduced to
/// 64 bits, and finished with a Barrett reduction.
#[cfg(target_arch = "x86_64")]
mod pclmul {
    use std::arch::x86_64::*;

    // x^t mod P (bit-reflected) for the folding distances.
    const K1: i64 = 0x154442bd4; // t = 4·128 + 64
    const K2: i64 = 0x1c6e41596; // t = 4·128
    const K3: i64 = 0x1751997d0; // t = 128 + 64
    const K4: i64 = 0x0ccaa009e; // t = 128
    const K5: i64 = 0x163cd6124; // t = 64
    const P_X: i64 = 0x1DB710641; // P(x), reflected, with the x^32 term
    const U_PRIME: i64 = 0x1F7011641; // floor(x^64 / P(x)), reflected

    #[inline]
    unsafe fn take16(data: &mut &[u8]) -> __m128i {
        let v = _mm_loadu_si128(data.as_ptr() as *const __m128i);
        *data = &data[16..];
        v
    }

    /// Folds 128-bit lane `a` forward across 16 bytes into `b`.
    #[inline]
    unsafe fn fold16(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
        let lo = _mm_clmulepi64_si128(a, keys, 0x00);
        let hi = _mm_clmulepi64_si128(a, keys, 0x11);
        _mm_xor_si128(_mm_xor_si128(b, lo), hi)
    }

    /// CRC-32 of `data` from initial state `!0` (the one-shot value).
    /// `data.len()` must be a multiple of 16 and at least 128.
    #[target_feature(enable = "sse2", enable = "sse4.1", enable = "pclmulqdq")]
    pub unsafe fn crc32_fold(mut data: &[u8]) -> u32 {
        debug_assert!(data.len() >= 128 && data.len().is_multiple_of(16));
        let mut x3 = take16(&mut data);
        let mut x2 = take16(&mut data);
        let mut x1 = take16(&mut data);
        let mut x0 = take16(&mut data);
        // Fold the initial state into the first lane.
        x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(!0i32));
        let k1k2 = _mm_set_epi64x(K2, K1);
        while data.len() >= 64 {
            x3 = fold16(x3, take16(&mut data), k1k2);
            x2 = fold16(x2, take16(&mut data), k1k2);
            x1 = fold16(x1, take16(&mut data), k1k2);
            x0 = fold16(x0, take16(&mut data), k1k2);
        }
        let k3k4 = _mm_set_epi64x(K4, K3);
        let mut x = fold16(x3, x2, k3k4);
        x = fold16(x, x1, k3k4);
        x = fold16(x, x0, k3k4);
        while data.len() >= 16 {
            x = fold16(x, take16(&mut data), k3k4);
        }
        // Reduce 128 → 64 bits.
        let low32 = _mm_set_epi32(0, 0, 0, !0);
        let x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        let x = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x, low32), _mm_set_epi64x(0, K5), 0x00),
            _mm_srli_si128(x, 4),
        );
        // Barrett reduction 64 → 32 bits (bit-reflected variant: the
        // result sits in the upper half of the 64-bit product).
        let pu = _mm_set_epi64x(U_PRIME, P_X);
        let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, low32), pu, 0x10);
        let t2 = _mm_clmulepi64_si128(_mm_and_si128(t1, low32), pu, 0x00);
        !(_mm_extract_epi32(_mm_xor_si128(x, t2), 1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414FA339
        );
    }

    fn reference(data: &[u8]) -> u32 {
        // Canonical byte-at-a-time bitwise recurrence.
        let mut c = !0u32;
        for &b in data {
            c ^= b as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
        }
        !c
    }

    fn xorshift_data(n: usize) -> Vec<u8> {
        let mut data = Vec::with_capacity(n);
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            data.push(x as u8);
        }
        data
    }

    #[test]
    fn matches_bytewise_reference_every_short_length() {
        // Every length through the slicing path and across the 128-byte
        // SIMD threshold, including every tail residue mod 16.
        let data = xorshift_data(300);
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn matches_bytewise_reference_large_buffers() {
        // Payload-sized buffers: multiple 64-byte folding rounds plus
        // every interesting tail shape.
        let data = xorshift_data(8200);
        for len in [1024, 1031, 2048, 4096, 4103, 8192, 8200] {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
        // Unaligned starts: the folding loads must not require
        // 16-byte-aligned input.
        for start in 1..17 {
            let s = &data[start..start + 4096];
            assert_eq!(crc32(s), reference(s), "start {start}");
        }
    }

    #[test]
    fn detects_corruption() {
        let a = crc32(b"some log record payload");
        let b = crc32(b"some log record payloae");
        assert_ne!(a, b);
    }
}
