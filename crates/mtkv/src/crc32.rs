//! CRC-32 (IEEE 802.3 polynomial) for log-record integrity, implemented
//! in-crate to stay within the approved dependency set. Table-driven,
//! one byte at a time — log records are small and the log path is
//! dominated by I/O, not checksumming.

const POLY: u32 = 0xEDB88320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414FA339
        );
    }

    #[test]
    fn detects_corruption() {
        let a = crc32(b"some log record payload");
        let b = crc32(b"some log record payloae");
        assert_ne!(a, b);
    }
}
