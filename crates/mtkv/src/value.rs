//! Multi-column versioned values (§4.7 of the paper).
//!
//! A value is a version number plus an array of variable-length byte
//! columns, stored in **one memory block** (the paper's small-value
//! design: good cache behaviour, and a whole-value replace is a single
//! pointer store). Values are immutable once built; a put constructs a
//! new block, copying unmodified columns from the old one, so concurrent
//! readers see all or none of a multi-column modification.

/// A fixed-size pointer into the value-separation tier (`vtier`): the
/// leaf keeps this 24-byte record instead of the column bytes for
/// values past the separation threshold (WiscKey-style key/value
/// separation). `crc` covers the payload at `vseg-<seg>[off .. off+len]`
/// so every resolution is integrity-checked before any byte is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ValuePtr {
    /// Value-segment id (`vseg-<seg>` in the store's log directory).
    pub seg: u64,
    /// Byte offset of the payload within the segment.
    pub off: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC32 of the payload bytes.
    pub crc: u32,
}

impl ValuePtr {
    /// Serializes into `out` (24 bytes, little-endian).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seg.to_le_bytes());
        out.extend_from_slice(&self.off.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.crc.to_le_bytes());
    }

    /// Deserializes from the front of `p`, advancing it 24 bytes.
    pub fn decode(p: &mut &[u8]) -> Option<ValuePtr> {
        let seg = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
        *p = &p[8..];
        let off = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
        *p = &p[8..];
        let len = u32::from_le_bytes(p.get(..4)?.try_into().ok()?);
        *p = &p[4..];
        let crc = u32::from_le_bytes(p.get(..4)?.try_into().ok()?);
        *p = &p[4..];
        Some(ValuePtr { seg, off, len, crc })
    }
}

/// Sentinel in the `ncols` field marking an **indirect** value: `buf`
/// holds an encoded [`ValuePtr`] instead of column data. Indirect
/// values never reach user callbacks — the session resolves them
/// through the value tier first — so `col`/`cols` on one safely report
/// "no columns" rather than misreading the pointer bytes as offsets.
const INDIRECT_TAG: u32 = u32::MAX;

/// A versioned, multi-column value in a single allocation.
///
/// Layout of `buf`: `ncols × u32` column end-offsets, then the column
/// bytes back to back. (The version lives in a separate field of this
/// struct but the struct itself is one heap object inside the tree.)
///
/// When `ncols` is [`INDIRECT_TAG`] the value is *indirect*: `buf`
/// instead holds a [`ValuePtr`] into the value-separation tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColValue {
    version: u64,
    ncols: u32,
    buf: Box<[u8]>,
}

impl ColValue {
    /// Builds a value from complete column contents.
    pub fn new(version: u64, cols: &[&[u8]]) -> ColValue {
        let ncols = cols.len();
        let data_len: usize = cols.iter().map(|c| c.len()).sum();
        let mut buf = Vec::with_capacity(4 * ncols + data_len);
        let mut end = 0u32;
        for c in cols {
            end += c.len() as u32;
            buf.extend_from_slice(&end.to_le_bytes());
        }
        for c in cols {
            buf.extend_from_slice(c);
        }
        ColValue {
            version,
            ncols: ncols as u32,
            buf: buf.into_boxed_slice(),
        }
    }

    /// A single-column value (the plain key-value case).
    pub fn single(version: u64, data: &[u8]) -> ColValue {
        ColValue::new(version, &[data])
    }

    /// Builds a value from column bytes packed back to back in `data`,
    /// described by per-column lengths — the shape of a value-tier
    /// payload. One allocation and one copy of `data`, versus the
    /// slice-vector detour of decode-then-[`ColValue::new`]; this sits
    /// on the cold-tier cache-miss path. `None` when the lengths do
    /// not cover `data` exactly.
    pub fn from_packed(
        version: u64,
        lens: impl ExactSizeIterator<Item = u32>,
        data: &[u8],
    ) -> Option<ColValue> {
        let ncols = lens.len();
        let mut buf = Vec::with_capacity(4 * ncols + data.len());
        let mut end = 0u64;
        for len in lens {
            end += u64::from(len);
            if end > data.len() as u64 {
                return None;
            }
            buf.extend_from_slice(&(end as u32).to_le_bytes());
        }
        if end != data.len() as u64 {
            return None;
        }
        buf.extend_from_slice(data);
        Some(ColValue {
            version,
            ncols: ncols as u32,
            buf: buf.into_boxed_slice(),
        })
    }

    /// [`ColValue::from_packed`], reusing `spare` as the backing block
    /// when its length matches exactly (a `Box<[u8]>` has no spare
    /// capacity, so only an exact fit avoids reallocation). Recycling
    /// evicted cache blocks this way takes the allocator out of the
    /// cold-read fill loop.
    pub(crate) fn from_packed_reusing(
        version: u64,
        lens: impl ExactSizeIterator<Item = u32>,
        data: &[u8],
        spare: Option<Box<[u8]>>,
    ) -> Option<ColValue> {
        let ncols = lens.len();
        let need = 4 * ncols + data.len();
        let Some(mut buf) = spare.filter(|b| b.len() == need) else {
            return ColValue::from_packed(version, lens, data);
        };
        let mut end = 0u64;
        for (i, len) in lens.enumerate() {
            end += u64::from(len);
            if end > data.len() as u64 {
                return None;
            }
            buf[4 * i..4 * i + 4].copy_from_slice(&(end as u32).to_le_bytes());
        }
        if end != data.len() as u64 {
            return None;
        }
        buf[4 * ncols..].copy_from_slice(data);
        Some(ColValue {
            version,
            ncols: ncols as u32,
            buf,
        })
    }

    /// Surrenders the backing block (for recycling through the value
    /// cache's buffer pool).
    pub(crate) fn into_buf(self) -> Box<[u8]> {
        self.buf
    }

    /// Copy-on-write update: returns a new value with `updates` applied
    /// (extending the column array if an update targets a column past the
    /// current end) and the remaining columns copied from `self`.
    pub fn with_updates(&self, version: u64, updates: &[(usize, &[u8])]) -> ColValue {
        let max_updated = updates.iter().map(|(i, _)| i + 1).max().unwrap_or(0);
        let ncols = self.ncols().max(max_updated);
        let cols: Vec<&[u8]> = (0..ncols)
            .map(|i| {
                updates
                    .iter()
                    .rev()
                    .find(|(j, _)| *j == i)
                    .map(|(_, d)| *d)
                    .unwrap_or_else(|| self.col(i).unwrap_or(&[]))
            })
            .collect();
        ColValue::new(version, &cols)
    }

    /// Builds a fresh value from updates alone (no previous value).
    pub fn from_updates(version: u64, updates: &[(usize, &[u8])]) -> ColValue {
        let ncols = updates.iter().map(|(i, _)| i + 1).max().unwrap_or(0);
        let cols: Vec<&[u8]> = (0..ncols)
            .map(|i| {
                updates
                    .iter()
                    .rev()
                    .find(|(j, _)| *j == i)
                    .map(|(_, d)| *d)
                    .unwrap_or(&[])
            })
            .collect();
        ColValue::new(version, &cols)
    }

    /// An indirect value: a fixed-size pointer record into the value
    /// tier in place of the column bytes. `col`/`cols` report no
    /// columns; callers resolve through [`crate::vtier::ValueTier`].
    pub fn indirect(version: u64, ptr: ValuePtr) -> ColValue {
        let mut buf = Vec::with_capacity(24);
        ptr.encode(&mut buf);
        ColValue {
            version,
            ncols: INDIRECT_TAG,
            buf: buf.into_boxed_slice(),
        }
    }

    /// True when this value is a pointer record (see [`ColValue::ptr`]).
    #[inline]
    pub fn is_indirect(&self) -> bool {
        self.ncols == INDIRECT_TAG
    }

    /// The value-tier pointer of an indirect value (`None` for inline).
    pub fn ptr(&self) -> Option<ValuePtr> {
        if !self.is_indirect() {
            return None;
        }
        let mut p: &[u8] = &self.buf;
        ValuePtr::decode(&mut p)
    }

    /// The value's version number (used by log replay ordering, §5).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of columns (0 for an unresolved indirect value).
    #[inline]
    pub fn ncols(&self) -> usize {
        if self.is_indirect() {
            0
        } else {
            self.ncols as usize
        }
    }

    /// Total column-data bytes (for an indirect value, the payload
    /// length the pointer names). Drives the separation threshold.
    pub fn data_bytes(&self) -> usize {
        if self.is_indirect() {
            self.ptr().map(|p| p.len as usize).unwrap_or(0)
        } else {
            self.buf.len() - 4 * self.ncols as usize
        }
    }

    #[inline]
    fn col_end(&self, i: usize) -> usize {
        let off = 4 * i;
        u32::from_le_bytes(self.buf[off..off + 4].try_into().unwrap()) as usize
    }

    /// Column `i`'s bytes, or `None` if out of range.
    pub fn col(&self, i: usize) -> Option<&[u8]> {
        if i >= self.ncols() {
            return None;
        }
        let data_base = 4 * self.ncols as usize;
        let start = if i == 0 { 0 } else { self.col_end(i - 1) };
        let end = self.col_end(i);
        Some(&self.buf[data_base + start..data_base + end])
    }

    /// All columns, copied out.
    pub fn cols(&self) -> Vec<Vec<u8>> {
        (0..self.ncols())
            .map(|i| self.col(i).unwrap().to_vec())
            .collect()
    }

    /// Approximate heap footprint (for checkpoint sizing).
    pub fn heap_bytes(&self) -> usize {
        self.buf.len() + size_of::<ColValue>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_column_roundtrip() {
        let v = ColValue::single(7, b"hello");
        assert_eq!(v.version(), 7);
        assert_eq!(v.ncols(), 1);
        assert_eq!(v.col(0), Some(&b"hello"[..]));
        assert_eq!(v.col(1), None);
    }

    #[test]
    fn multi_column_roundtrip() {
        let v = ColValue::new(1, &[b"aa", b"", b"cccc"]);
        assert_eq!(v.ncols(), 3);
        assert_eq!(v.col(0), Some(&b"aa"[..]));
        assert_eq!(v.col(1), Some(&b""[..]));
        assert_eq!(v.col(2), Some(&b"cccc"[..]));
    }

    #[test]
    fn with_updates_copies_unmodified() {
        let v = ColValue::new(1, &[b"a", b"b", b"c"]);
        let v2 = v.with_updates(2, &[(1, b"NEW")]);
        assert_eq!(v2.version(), 2);
        assert_eq!(v2.col(0), Some(&b"a"[..]));
        assert_eq!(v2.col(1), Some(&b"NEW"[..]));
        assert_eq!(v2.col(2), Some(&b"c"[..]));
        // Original untouched (copy-on-write).
        assert_eq!(v.col(1), Some(&b"b"[..]));
    }

    #[test]
    fn with_updates_extends_columns() {
        let v = ColValue::single(1, b"x");
        let v2 = v.with_updates(2, &[(3, b"far")]);
        assert_eq!(v2.ncols(), 4);
        assert_eq!(v2.col(0), Some(&b"x"[..]));
        assert_eq!(v2.col(1), Some(&b""[..]));
        assert_eq!(v2.col(3), Some(&b"far"[..]));
    }

    #[test]
    fn from_updates_fills_gaps() {
        let v = ColValue::from_updates(5, &[(2, b"two"), (0, b"zero")]);
        assert_eq!(v.ncols(), 3);
        assert_eq!(v.col(0), Some(&b"zero"[..]));
        assert_eq!(v.col(1), Some(&b""[..]));
        assert_eq!(v.col(2), Some(&b"two"[..]));
    }

    #[test]
    fn indirect_value_roundtrips_pointer() {
        let p = ValuePtr {
            seg: 3,
            off: 4096,
            len: 512,
            crc: 0xdead_beef,
        };
        let v = ColValue::indirect(9, p);
        assert!(v.is_indirect());
        assert_eq!(v.version(), 9);
        assert_eq!(v.ptr(), Some(p));
        assert_eq!(v.ncols(), 0);
        assert_eq!(v.col(0), None);
        assert!(v.cols().is_empty());
        assert_eq!(v.data_bytes(), 512);
        let inline = ColValue::single(1, b"xy");
        assert!(!inline.is_indirect());
        assert_eq!(inline.ptr(), None);
        assert_eq!(inline.data_bytes(), 2);
    }

    #[test]
    fn last_update_wins_within_one_put() {
        let v = ColValue::from_updates(1, &[(0, b"first"), (0, b"second")]);
        assert_eq!(v.col(0), Some(&b"second"[..]));
    }
}
