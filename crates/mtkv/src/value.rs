//! Multi-column versioned values (§4.7 of the paper).
//!
//! A value is a version number plus an array of variable-length byte
//! columns, stored in **one memory block** (the paper's small-value
//! design: good cache behaviour, and a whole-value replace is a single
//! pointer store). Values are immutable once built; a put constructs a
//! new block, copying unmodified columns from the old one, so concurrent
//! readers see all or none of a multi-column modification.

/// A versioned, multi-column value in a single allocation.
///
/// Layout of `buf`: `ncols × u32` column end-offsets, then the column
/// bytes back to back. (The version lives in a separate field of this
/// struct but the struct itself is one heap object inside the tree.)
#[derive(Debug, PartialEq, Eq)]
pub struct ColValue {
    version: u64,
    ncols: u32,
    buf: Box<[u8]>,
}

impl ColValue {
    /// Builds a value from complete column contents.
    pub fn new(version: u64, cols: &[&[u8]]) -> ColValue {
        let ncols = cols.len();
        let data_len: usize = cols.iter().map(|c| c.len()).sum();
        let mut buf = Vec::with_capacity(4 * ncols + data_len);
        let mut end = 0u32;
        for c in cols {
            end += c.len() as u32;
            buf.extend_from_slice(&end.to_le_bytes());
        }
        for c in cols {
            buf.extend_from_slice(c);
        }
        ColValue {
            version,
            ncols: ncols as u32,
            buf: buf.into_boxed_slice(),
        }
    }

    /// A single-column value (the plain key-value case).
    pub fn single(version: u64, data: &[u8]) -> ColValue {
        ColValue::new(version, &[data])
    }

    /// Copy-on-write update: returns a new value with `updates` applied
    /// (extending the column array if an update targets a column past the
    /// current end) and the remaining columns copied from `self`.
    pub fn with_updates(&self, version: u64, updates: &[(usize, &[u8])]) -> ColValue {
        let max_updated = updates.iter().map(|(i, _)| i + 1).max().unwrap_or(0);
        let ncols = (self.ncols as usize).max(max_updated);
        let cols: Vec<&[u8]> = (0..ncols)
            .map(|i| {
                updates
                    .iter()
                    .rev()
                    .find(|(j, _)| *j == i)
                    .map(|(_, d)| *d)
                    .unwrap_or_else(|| self.col(i).unwrap_or(&[]))
            })
            .collect();
        ColValue::new(version, &cols)
    }

    /// Builds a fresh value from updates alone (no previous value).
    pub fn from_updates(version: u64, updates: &[(usize, &[u8])]) -> ColValue {
        let ncols = updates.iter().map(|(i, _)| i + 1).max().unwrap_or(0);
        let cols: Vec<&[u8]> = (0..ncols)
            .map(|i| {
                updates
                    .iter()
                    .rev()
                    .find(|(j, _)| *j == i)
                    .map(|(_, d)| *d)
                    .unwrap_or(&[])
            })
            .collect();
        ColValue::new(version, &cols)
    }

    /// The value's version number (used by log replay ordering, §5).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols as usize
    }

    #[inline]
    fn col_end(&self, i: usize) -> usize {
        let off = 4 * i;
        u32::from_le_bytes(self.buf[off..off + 4].try_into().unwrap()) as usize
    }

    /// Column `i`'s bytes, or `None` if out of range.
    pub fn col(&self, i: usize) -> Option<&[u8]> {
        if i >= self.ncols as usize {
            return None;
        }
        let data_base = 4 * self.ncols as usize;
        let start = if i == 0 { 0 } else { self.col_end(i - 1) };
        let end = self.col_end(i);
        Some(&self.buf[data_base + start..data_base + end])
    }

    /// All columns, copied out.
    pub fn cols(&self) -> Vec<Vec<u8>> {
        (0..self.ncols())
            .map(|i| self.col(i).unwrap().to_vec())
            .collect()
    }

    /// Approximate heap footprint (for checkpoint sizing).
    pub fn heap_bytes(&self) -> usize {
        self.buf.len() + size_of::<ColValue>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_column_roundtrip() {
        let v = ColValue::single(7, b"hello");
        assert_eq!(v.version(), 7);
        assert_eq!(v.ncols(), 1);
        assert_eq!(v.col(0), Some(&b"hello"[..]));
        assert_eq!(v.col(1), None);
    }

    #[test]
    fn multi_column_roundtrip() {
        let v = ColValue::new(1, &[b"aa", b"", b"cccc"]);
        assert_eq!(v.ncols(), 3);
        assert_eq!(v.col(0), Some(&b"aa"[..]));
        assert_eq!(v.col(1), Some(&b""[..]));
        assert_eq!(v.col(2), Some(&b"cccc"[..]));
    }

    #[test]
    fn with_updates_copies_unmodified() {
        let v = ColValue::new(1, &[b"a", b"b", b"c"]);
        let v2 = v.with_updates(2, &[(1, b"NEW")]);
        assert_eq!(v2.version(), 2);
        assert_eq!(v2.col(0), Some(&b"a"[..]));
        assert_eq!(v2.col(1), Some(&b"NEW"[..]));
        assert_eq!(v2.col(2), Some(&b"c"[..]));
        // Original untouched (copy-on-write).
        assert_eq!(v.col(1), Some(&b"b"[..]));
    }

    #[test]
    fn with_updates_extends_columns() {
        let v = ColValue::single(1, b"x");
        let v2 = v.with_updates(2, &[(3, b"far")]);
        assert_eq!(v2.ncols(), 4);
        assert_eq!(v2.col(0), Some(&b"x"[..]));
        assert_eq!(v2.col(1), Some(&b""[..]));
        assert_eq!(v2.col(3), Some(&b"far"[..]));
    }

    #[test]
    fn from_updates_fills_gaps() {
        let v = ColValue::from_updates(5, &[(2, b"two"), (0, b"zero")]);
        assert_eq!(v.ncols(), 3);
        assert_eq!(v.col(0), Some(&b"zero"[..]));
        assert_eq!(v.col(1), Some(&b""[..]));
        assert_eq!(v.col(2), Some(&b"two"[..]));
    }

    #[test]
    fn last_update_wins_within_one_put() {
        let v = ColValue::from_updates(1, &[(0, b"first"), (0, b"second")]);
        assert_eq!(v.col(0), Some(&b"second"[..]));
    }
}
