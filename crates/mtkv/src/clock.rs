//! Monotonic log-record timestamps (§5 of the paper).
//!
//! Log records are timestamped; recovery computes the cutoff
//! `t = min over logs of the log's last timestamp` and drops records past
//! it. Wall clocks can repeat or go backwards, so we use a hybrid clock:
//! microseconds since the epoch, forced strictly monotonic across all
//! threads by a global atomic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static LAST: AtomicU64 = AtomicU64::new(0);

/// A strictly increasing, process-wide unique timestamp (µs-based).
pub fn now() -> u64 {
    let wall = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut last = LAST.load(Ordering::Relaxed);
    loop {
        let next = wall.max(last + 1);
        match LAST.compare_exchange_weak(last, next, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return next,
            Err(cur) => last = cur,
        }
    }
}

/// The most recent timestamp issued by [`now`], **without** advancing
/// the clock. Durability bookkeeping (checkpoint ages, stats) reads this
/// so observation never perturbs the timestamp order that recovery's
/// cutoff reasoning depends on. Returns 0 if no timestamp was issued
/// yet.
pub fn recent() -> u64 {
    LAST.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recent_does_not_advance() {
        let t = now();
        assert!(recent() >= t);
        let r1 = recent();
        let r2 = recent();
        assert_eq!(r1, r2, "recent() must not tick the clock");
        assert!(now() > r2);
    }

    #[test]
    fn strictly_monotonic() {
        let mut prev = now();
        for _ in 0..10_000 {
            let t = now();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn monotonic_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    let mut seen = Vec::with_capacity(1000);
                    for _ in 0..1000 {
                        seen.push(now());
                    }
                    seen
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "timestamps globally unique");
    }
}
