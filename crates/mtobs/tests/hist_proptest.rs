//! Seeded property tests for the histogram core: recording, bucket
//! boundaries, saturation, merge/delta algebra, and percentile sanity
//! against an exact sorted reference. No external proptest crate — a
//! seeded xorshift generator drives the cases (the repo's
//! `log_proptest` discipline), so failures reproduce from the printed
//! seed.

use mtobs::{bucket_lower, bucket_of, bucket_upper, Hist, HistSnapshot, MAX_VALUE, NBUCKETS};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A latency-shaped value: uniform over the exponent range, so
    /// every octave of the histogram gets exercised.
    fn latency(&mut self) -> u64 {
        let shift = self.next() % 44; // up to ~2^43: past saturation
        self.next() & ((1u64 << shift) | ((1u64 << shift) - 1))
    }
}

fn seed() -> u64 {
    let seed = std::env::var("MT_OBS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos() as u64
                | 1
        });
    println!("seed: {seed} (MT_OBS_SEED={seed} reproduces)");
    seed
}

#[test]
fn every_recorded_value_lands_in_its_bracketing_bucket() {
    let mut rng = Rng(seed());
    for _ in 0..50_000 {
        let v = rng.latency();
        let idx = bucket_of(v);
        let clamped = v.min(MAX_VALUE);
        assert!(
            bucket_lower(idx) <= clamped && clamped < bucket_upper(idx),
            "value {v} -> bucket {idx} [{}, {})",
            bucket_lower(idx),
            bucket_upper(idx)
        );
    }
}

#[test]
fn boundary_values_split_exactly() {
    // Every bucket boundary: the bound itself goes up, bound-1 stays.
    for i in 1..NBUCKETS {
        let b = bucket_lower(i);
        assert_eq!(bucket_of(b), i);
        assert_eq!(bucket_of(b - 1), i - 1);
    }
    // Saturation: anything at or past MAX_VALUE is the top bucket.
    for v in [MAX_VALUE, MAX_VALUE + 1, u64::MAX / 2, u64::MAX] {
        assert_eq!(bucket_of(v), NBUCKETS - 1);
    }
}

#[test]
fn count_and_sum_track_recordings_exactly() {
    let mut rng = Rng(seed());
    let h = Hist::default();
    let mut n = 0u64;
    let mut sum = 0u64;
    for _ in 0..10_000 {
        let v = rng.latency();
        h.record(v);
        n += 1;
        sum += v;
    }
    let s = h.snapshot();
    assert_eq!(s.count(), n);
    assert_eq!(s.sum, sum, "sum is exact (not bucketed)");
}

#[test]
fn merge_of_splits_equals_whole_and_delta_inverts() {
    let mut rng = Rng(seed());
    let whole = Hist::default();
    let parts: Vec<Hist> = (0..4).map(|_| Hist::default()).collect();
    for i in 0..20_000 {
        let v = rng.latency();
        whole.record(v);
        parts[i % 4].record(v);
    }
    let mut merged = HistSnapshot::default();
    for p in &parts {
        merged.merge(&p.snapshot());
    }
    assert_eq!(merged, whole.snapshot(), "merge order/partition invariant");

    // delta(snapshot after more records, snapshot before) == the more.
    let before = whole.snapshot();
    let extra = Hist::default();
    for _ in 0..1000 {
        let v = rng.latency();
        whole.record(v);
        extra.record(v);
    }
    assert_eq!(whole.snapshot().delta(&before), extra.snapshot());
    // Empty deltas and merges are identities.
    assert_eq!(before.delta(&before), HistSnapshot::default());
    let mut id = before;
    id.merge(&HistSnapshot::default());
    assert_eq!(id, before);
}

#[test]
fn percentiles_bracket_the_exact_order_statistic() {
    let mut rng = Rng(seed());
    for _case in 0..20 {
        let n = 100 + (rng.next() % 5000) as usize;
        let h = Hist::default();
        let mut exact: Vec<u64> = Vec::with_capacity(n);
        for _ in 0..n {
            let v = rng.latency().min(MAX_VALUE);
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        let s = h.snapshot();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * n as f64).ceil() as usize).max(1) - 1;
            let truth = exact[rank];
            let est = s.percentile(q);
            // The estimate must sit inside the bucket holding the true
            // order statistic: within 12.5% relative (plus the unit
            // buckets at the very bottom of the range).
            let idx = bucket_of(truth);
            assert!(
                est >= bucket_lower(idx) && est < bucket_upper(idx).max(bucket_lower(idx) + 1),
                "q={q} truth={truth} est={est} bucket=[{},{})",
                bucket_lower(idx),
                bucket_upper(idx)
            );
        }
    }
}

#[test]
fn empty_snapshot_is_harmless() {
    let s = HistSnapshot::default();
    assert_eq!(s.count(), 0);
    assert_eq!(s.mean(), 0);
    for q in [0.0, 0.5, 0.999, 1.0] {
        assert_eq!(s.percentile(q), 0);
    }
    let mut m = HistSnapshot::default();
    m.merge(&s);
    assert_eq!(m, s);
}
