//! Concurrency proof for the recorder registry: merged totals equal
//! the sum of what every worker recorded, with workers recording
//! while snapshots are taken and recorders dropping mid-run (their
//! history must fold into the retained sink, never vanish).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mtobs::{Kind, Obs};

#[test]
fn merged_totals_equal_sum_of_per_worker_records() {
    let obs = Arc::new(Obs::default());
    let expected_count = Arc::new(AtomicU64::new(0));
    let expected_sum = Arc::new(AtomicU64::new(0));
    const WORKERS: usize = 8;
    const OPS: u64 = 50_000;

    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let obs = Arc::clone(&obs);
            let expected_count = Arc::clone(&expected_count);
            let expected_sum = Arc::clone(&expected_sum);
            s.spawn(move || {
                let rec = obs.recorder();
                let mut local_sum = 0u64;
                for i in 0..OPS {
                    // Deterministic per-worker values across several
                    // octaves so many buckets participate.
                    let v = (w as u64 + 1) * 100 + (i % 1024) * 37;
                    rec.record(Kind::GetDescent, v);
                    local_sum += v;
                }
                expected_count.fetch_add(OPS, Ordering::Relaxed);
                expected_sum.fetch_add(local_sum, Ordering::Relaxed);
            });
        }
        // Concurrent snapshot reader: totals must be monotone and
        // well-formed while recording races.
        let obs_reader = Arc::clone(&obs);
        s.spawn(move || {
            let mut last = 0u64;
            for _ in 0..200 {
                let snap = obs_reader.snapshot();
                let c = snap.kind(Kind::GetDescent).count();
                assert!(c >= last, "snapshot counts must be monotone");
                last = c;
                std::hint::spin_loop();
            }
        });
    });

    let snap = obs.snapshot();
    let h = snap.kind(Kind::GetDescent);
    assert_eq!(h.count(), expected_count.load(Ordering::Relaxed));
    assert_eq!(h.sum, expected_sum.load(Ordering::Relaxed));
}

#[test]
fn dropped_recorders_fold_into_the_retained_sink_under_contention() {
    let obs = Arc::new(Obs::default());
    const WORKERS: usize = 8;
    const GENERATIONS: u64 = 16;
    const OPS: u64 = 1000;

    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let obs = Arc::clone(&obs);
            s.spawn(move || {
                for g in 0..GENERATIONS {
                    // A fresh short-lived recorder per "connection".
                    let rec = obs.recorder();
                    for i in 0..OPS {
                        rec.record(Kind::Put, (w as u64 + 1) * (g + 1) + i % 7);
                    }
                    // Snapshots racing the drop-fold must never see a
                    // partial loss below the already-folded floor.
                    let _ = obs.snapshot();
                }
            });
        }
    });

    let snap = obs.snapshot();
    assert_eq!(
        snap.kind(Kind::Put).count(),
        WORKERS as u64 * GENERATIONS * OPS,
        "every generation's records survive its recorder's drop"
    );
}
