//! Sampled request tracing: a thread-local span that rides one request
//! through the pipeline stages, costing nothing but a thread-local flag
//! check when inactive.
//!
//! The server (or any trace root) calls [`begin`] on the 1-in-N
//! requests it samples; layers below it call [`mark`] as the request
//! crosses each [`Stage`] boundary — no plumbed-through context
//! argument, so instrumenting a deep call path (decode → cache lookup
//! → descent → value-tier resolve → WAL ack → respond) never changes a
//! signature. `Obs::finish_op` collects the completed span into the
//! bounded [`TraceRing`] and force-dumps slow outliers.
//!
//! Marks record *elapsed-ns-since-begin* (first write wins per stage,
//! so a batched op marking `Descent` per key keeps the first descent's
//! timestamp). The whole span is a fixed ~64-byte thread-local — no
//! allocation anywhere.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Pipeline stages a traced request crosses, in nominal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// Wire frame parsed into a request.
    Decode = 0,
    /// Hint-cache probe finished.
    CacheLookup = 1,
    /// Tree descent started (marked from inside `masstree`).
    Descent = 2,
    /// Cold-value tier resolution finished.
    ValueResolve = 3,
    /// WAL group-commit force acknowledged the write.
    WalAck = 4,
    /// Response bytes encoded.
    Respond = 5,
    /// Descent crossed from the layer-0 B+-tree into a deeper trie
    /// layer (marked from inside `masstree` at the first layer-link
    /// hop, so `descent_deep − descent` is the layer-0 traversal time;
    /// ops whose keys resolve entirely in layer 0 never mark this).
    DescentDeep = 6,
}

impl Stage {
    pub const COUNT: usize = 7;
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Decode,
        Stage::CacheLookup,
        Stage::Descent,
        Stage::DescentDeep,
        Stage::ValueResolve,
        Stage::WalAck,
        Stage::Respond,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::CacheLookup => "cache_lookup",
            Stage::Descent => "descent",
            Stage::DescentDeep => "descent_deep",
            Stage::ValueResolve => "value_resolve",
            Stage::WalAck => "wal_ack",
            Stage::Respond => "respond",
        }
    }
}

const UNMARKED: u32 = u32::MAX;

struct SpanState {
    start: Option<Instant>,
    /// Elapsed ns since `start` when each stage was first marked
    /// (`UNMARKED` = never; saturates at ~4.3 s).
    marks: [u32; Stage::COUNT],
}

impl Default for SpanState {
    fn default() -> Self {
        SpanState {
            start: None,
            marks: [UNMARKED; Stage::COUNT],
        }
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static SPAN: Cell<SpanState> = const {
        Cell::new(SpanState { start: None, marks: [UNMARKED; Stage::COUNT] })
    };
}

/// Arms the thread-local span for the current request. Call only on
/// sampled requests; the returned guard disarms on drop if the span is
/// never collected (panic safety).
pub fn begin() -> SpanGuard {
    SPAN.with(|s| {
        s.set(SpanState {
            start: Some(Instant::now()),
            marks: [UNMARKED; Stage::COUNT],
        })
    });
    ACTIVE.with(|a| a.set(true));
    SpanGuard
}

/// Disarms the span when the traced request unwinds without reaching
/// `finish_op` (error paths), so a stale span never attaches to the
/// next request on this thread.
pub struct SpanGuard;

impl Drop for SpanGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| a.set(false));
    }
}

/// True while a span is armed on this thread.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Records the elapsed time at a stage boundary. One thread-local flag
/// check when no span is armed — cheap enough for the tree's descent
/// path.
#[inline]
pub fn mark(stage: Stage) {
    if !is_active() {
        return;
    }
    mark_slow(stage);
}

#[cold]
fn mark_slow(stage: Stage) {
    SPAN.with(|s| {
        let mut state = s.take();
        if let Some(start) = state.start {
            let i = stage as usize;
            if state.marks[i] == UNMARKED {
                state.marks[i] = start.elapsed().as_nanos().min(u32::MAX as u128 - 1) as u32;
            }
        }
        s.set(state);
    });
}

/// Collects and disarms the active span (if any) into a [`TraceRec`].
pub(crate) fn take_active(kind: crate::Kind, total_ns: u64) -> Option<TraceRec> {
    if !is_active() {
        return None;
    }
    ACTIVE.with(|a| a.set(false));
    let state = SPAN.with(|s| s.take());
    state.start?;
    Some(TraceRec {
        kind,
        total_ns,
        marks: state.marks,
    })
}

/// One completed sampled trace: the op kind, its total latency, and
/// the elapsed-ns offset at which each stage was crossed.
#[derive(Debug, Clone, Copy)]
pub struct TraceRec {
    pub kind: crate::Kind,
    pub total_ns: u64,
    /// Elapsed ns since span start per [`Stage`] ([`u32::MAX`] =
    /// stage never crossed by this op).
    pub marks: [u32; Stage::COUNT],
}

impl TraceRec {
    /// A record for a slow op that was not carrying a span (stage marks
    /// absent — the sampling contract: stages only on sampled ops).
    pub fn untraced(kind: crate::Kind, total_ns: u64) -> TraceRec {
        TraceRec {
            kind,
            total_ns,
            marks: [UNMARKED; Stage::COUNT],
        }
    }

    /// One parseable `key=value` line, e.g.
    /// `SLOWOP op=get_descent total_ns=12345 decode=1000 descent=9000`.
    pub fn structured_line(&self, tag: &str) -> String {
        let mut line = format!("{tag} op={} total_ns={}", self.kind.name(), self.total_ns);
        for st in Stage::ALL {
            let m = self.marks[st as usize];
            if m != UNMARKED {
                line.push_str(&format!(" {}={}", st.name(), m));
            }
        }
        line
    }
}

/// Spans kept per ring.
pub const RING_CAP: usize = 64;

/// A bounded ring of the most recent sampled traces. Pushes are rare
/// (1-in-N sampled requests plus slow outliers), so a mutex is fine;
/// the fixed backing array never reallocates.
#[derive(Debug)]
pub struct TraceRing {
    slots: Mutex<Box<[Option<TraceRec>; RING_CAP]>>,
    pushed: AtomicU64,
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing {
            slots: Mutex::new(Box::new([None; RING_CAP])),
            pushed: AtomicU64::new(0),
        }
    }
}

impl TraceRing {
    pub fn push(&self, rec: TraceRec) {
        let n = self.pushed.fetch_add(1, Ordering::Relaxed);
        self.slots.lock().unwrap()[(n as usize) % RING_CAP] = Some(rec);
    }

    /// Total spans ever pushed (a counter, not the retained count).
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// The retained records, oldest first.
    pub fn drain_recent(&self) -> Vec<TraceRec> {
        let n = self.pushed.load(Ordering::Relaxed) as usize;
        let slots = self.slots.lock().unwrap();
        let mut out = Vec::with_capacity(RING_CAP.min(n));
        for i in 0..RING_CAP {
            let idx = (n + i) % RING_CAP;
            if let Some(rec) = slots[idx] {
                out.push(rec);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kind;

    #[test]
    fn marks_record_monotone_offsets_and_disarm() {
        let _g = begin();
        assert!(is_active());
        mark(Stage::Decode);
        std::thread::sleep(std::time::Duration::from_millis(2));
        mark(Stage::Descent);
        mark(Stage::Descent); // first write wins
        let rec = take_active(Kind::GetDescent, 2_500_000).unwrap();
        assert!(!is_active());
        let d0 = rec.marks[Stage::Decode as usize];
        let d2 = rec.marks[Stage::Descent as usize];
        assert!(d0 != UNMARKED && d2 != UNMARKED);
        assert!(d2 > d0, "descent marked after decode");
        assert!(d2 >= 2_000_000, "sleep visible in the mark");
        assert_eq!(rec.marks[Stage::WalAck as usize], UNMARKED);
        let line = rec.structured_line("TRACE");
        assert!(line.starts_with("TRACE op=get_descent total_ns=2500000"));
        assert!(line.contains(" descent="));
        assert!(!line.contains(" wal_ack="));
    }

    #[test]
    fn unsampled_threads_never_collect() {
        mark(Stage::Decode); // no span armed: must be a no-op
        assert!(take_active(Kind::Put, 1).is_none());
    }

    #[test]
    fn guard_disarms_on_unwind() {
        {
            let _g = begin();
            assert!(is_active());
        }
        assert!(!is_active());
    }

    #[test]
    fn ring_wraps_and_counts() {
        let ring = TraceRing::default();
        for i in 0..(RING_CAP as u64 + 10) {
            ring.push(TraceRec::untraced(Kind::Put, i));
        }
        assert_eq!(ring.pushed(), RING_CAP as u64 + 10);
        let recent = ring.drain_recent();
        assert_eq!(recent.len(), RING_CAP);
        assert_eq!(recent.last().unwrap().total_ns, RING_CAP as u64 + 9);
    }
}
