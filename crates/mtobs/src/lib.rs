//! # mtobs — observability for the Masstree store
//!
//! Three pieces, all allocation-free on the recording path:
//!
//! * **Mergeable log-bucketed latency histograms** ([`Hist`]): a fixed
//!   array of relaxed atomic bucket counters indexed by the value's
//!   octave plus [`SUB_BITS`] sub-octave bits, so any recorded
//!   nanosecond value lands within 12.5% of its bucket's midpoint.
//!   Recording is two `fetch_add`s on per-worker (uncontended) cache
//!   lines — wait-free, no locks, no allocation. Snapshots are plain
//!   `u64` arrays that [`HistSnapshot::merge`] and
//!   [`HistSnapshot::delta`] combine, so per-worker recorders aggregate
//!   on *read*, never on the hot path.
//!
//! * **A recorder registry** ([`Obs`]): each worker session registers
//!   its own [`Recorder`] (one [`HistSet`] of [`Kind::COUNT`]
//!   histograms); a store-level snapshot upgrades the weak registry
//!   entries and sums them, the same flush-on-read discipline
//!   `mtcache`'s `CacheStatsShared` uses — so wire-level stats see
//!   **every** worker's traffic, not just the serving connection's.
//!   A dropped recorder folds its counts into a retained sink first,
//!   so short-lived connections never lose history.
//!
//! * **Sampled request tracing** ([`span`]): 1-in-N requests carry a
//!   thread-local span through decode → cache lookup → descent →
//!   value-tier resolve → WAL ack → respond; completed spans land in a
//!   bounded [`TraceRing`]. Ops slower than a configured threshold are
//!   force-sampled and dumped as one structured `SLOWOP` line. The
//!   inactive path — every unsampled op — costs one thread-local flag
//!   check per mark.
//!
//! Rendering helpers ([`render_prometheus`]) produce Prometheus text
//! exposition from a snapshot; the wire layer (`mtnet`) serializes
//! snapshots sparsely for the `StatsEx` op.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};

pub mod span;

pub use span::{SpanGuard, Stage, TraceRec, TraceRing};

/// Sub-octave precision bits: each power-of-two range splits into
/// `2^SUB_BITS` linear sub-buckets, bounding relative bucket width (and
/// so percentile error) to `2^-(SUB_BITS+1)` = 12.5%.
pub const SUB_BITS: u32 = 2;
const SUB: usize = 1 << SUB_BITS;

/// Largest distinguishable value (ns): ~18 minutes. Larger values
/// saturate into the top bucket.
pub const MAX_VALUE: u64 = (1 << 40) - 1;

/// Bucket count: `SUB` unit buckets below `SUB`, then `SUB` sub-buckets
/// per octave up to octave 39.
pub const NBUCKETS: usize = (40 - SUB_BITS as usize) * SUB + SUB;

/// Bucket index of a value (saturating at [`MAX_VALUE`]).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    let v = v.min(MAX_VALUE);
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let shift = msb - SUB_BITS as usize;
    let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
    (msb - SUB_BITS as usize) * SUB + sub + SUB
}

/// Inclusive lower bound of a bucket (the smallest value that maps to
/// it) — the inverse of [`bucket_of`].
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let o = (idx - SUB) / SUB;
    let s = ((idx - SUB) % SUB) as u64;
    (1u64 << (o + SUB_BITS as usize)) + (s << o)
}

/// Exclusive upper bound of a bucket.
pub fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 < NBUCKETS {
        bucket_lower(idx + 1)
    } else {
        MAX_VALUE + 1
    }
}

/// What an individual histogram measures. Foreground kinds are recorded
/// by sessions/workers (per-op or per-merged-run latency); background
/// kinds by the durability/GC/replication machinery into the store's
/// global recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// Point get served by a validated cache hint (zero descent).
    GetHit = 0,
    /// Point get that ran a full (or hint-refreshing) tree descent.
    GetDescent = 1,
    /// Point get whose value resolved through the cold value tier.
    GetCold = 2,
    Put = 3,
    Remove = 4,
    /// Range scan (one `get_range_with`/resume chunk).
    Scan = 5,
    /// One cross-connection merged get run (server-side, per wakeup).
    MultiGet = 6,
    /// One cross-connection merged put run.
    MultiPut = 7,
    /// Foreground WAL group-commit force wait (ack latency component).
    WalForce = 8,
    /// Background group-commit barrier across all log chains.
    Barrier = 9,
    /// One full checkpoint write.
    Checkpoint = 10,
    /// One value-segment GC pass.
    GcPass = 11,
    /// Cold value cache fill (segment read + decode on a cache miss).
    VsegFill = 12,
    /// One replication feeder ship pass that moved bytes.
    ReplShip = 13,
    /// One follower replay batch.
    ReplReplay = 14,
    /// One batched cold-value resolution (`resolve_many`) that missed
    /// the cache and issued clustered segment reads.
    VsegReadahead = 15,
    /// One cold miss that waited on another reader's in-flight segment
    /// read instead of issuing its own (latency = time blocked).
    VsegSharedMiss = 16,
}

impl Kind {
    pub const COUNT: usize = 17;
    pub const ALL: [Kind; Kind::COUNT] = [
        Kind::GetHit,
        Kind::GetDescent,
        Kind::GetCold,
        Kind::Put,
        Kind::Remove,
        Kind::Scan,
        Kind::MultiGet,
        Kind::MultiPut,
        Kind::WalForce,
        Kind::Barrier,
        Kind::Checkpoint,
        Kind::GcPass,
        Kind::VsegFill,
        Kind::ReplShip,
        Kind::ReplReplay,
        Kind::VsegReadahead,
        Kind::VsegSharedMiss,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Kind::GetHit => "get_hit",
            Kind::GetDescent => "get_descent",
            Kind::GetCold => "get_cold",
            Kind::Put => "put",
            Kind::Remove => "remove",
            Kind::Scan => "scan",
            Kind::MultiGet => "multi_get",
            Kind::MultiPut => "multi_put",
            Kind::WalForce => "wal_force",
            Kind::Barrier => "barrier",
            Kind::Checkpoint => "checkpoint",
            Kind::GcPass => "gc_pass",
            Kind::VsegFill => "vseg_fill",
            Kind::ReplShip => "repl_ship",
            Kind::ReplReplay => "repl_replay",
            Kind::VsegReadahead => "vseg_readahead",
            Kind::VsegSharedMiss => "vseg_shared_miss",
        }
    }

    pub fn from_u8(v: u8) -> Option<Kind> {
        Kind::ALL.get(v as usize).copied()
    }
}

/// One log-bucketed histogram: bucket counters plus a running sum (for
/// means). The count is derived (sum of buckets), so recording is two
/// relaxed `fetch_add`s.
#[derive(Debug)]
pub struct Hist {
    sum: AtomicU64,
    buckets: [AtomicU64; NBUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Hist {
    /// Wait-free, allocation-free record of one nanosecond value.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            sum: self.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Adds a snapshot's counts back into this (atomic) histogram —
    /// used to retain a dropped recorder's history.
    fn absorb(&self, s: &HistSnapshot) {
        if s.count() == 0 {
            return;
        }
        self.sum.fetch_add(s.sum, Ordering::Relaxed);
        for (b, v) in self.buckets.iter().zip(s.buckets.iter()) {
            if *v != 0 {
                b.fetch_add(*v, Ordering::Relaxed);
            }
        }
    }
}

/// A point-in-time copy of one histogram: plain numbers, mergeable and
/// subtractable, wire- and render-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Sum of recorded values (ns), for means.
    pub sum: u64,
    pub buckets: [u64; NBUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            sum: 0,
            buckets: [0; NBUCKETS],
        }
    }
}

impl HistSnapshot {
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Adds `other`'s counts into this snapshot.
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// The counts recorded since `prev` was taken (saturating, so a
    /// reset recorder yields zeros rather than wrapping).
    pub fn delta(&self, prev: &HistSnapshot) -> HistSnapshot {
        let mut d = HistSnapshot {
            sum: self.sum.saturating_sub(prev.sum),
            buckets: [0; NBUCKETS],
        };
        for i in 0..NBUCKETS {
            d.buckets[i] = self.buckets[i].saturating_sub(prev.buckets[i]);
        }
        d
    }

    /// The `q`-quantile (`0.0..=1.0`) as a nanosecond estimate: the
    /// midpoint of the bucket holding the target rank. Empty → 0.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                let lo = bucket_lower(i);
                let hi = bucket_upper(i);
                return lo + (hi - lo) / 2;
            }
        }
        MAX_VALUE
    }
}

/// One recorder's histograms, one per [`Kind`]. Sized for a per-worker
/// owner: recording touches only this worker's cache lines.
#[derive(Debug, Default)]
pub struct HistSet {
    hists: [Hist; Kind::COUNT],
}

impl HistSet {
    #[inline]
    pub fn record(&self, kind: Kind, ns: u64) {
        self.hists[kind as usize].record(ns);
    }

    pub fn hist(&self, kind: Kind) -> &Hist {
        &self.hists[kind as usize]
    }

    pub fn snapshot_into(&self, out: &mut Snapshot) {
        for k in Kind::ALL {
            out.hists[k as usize].merge(&self.hists[k as usize].snapshot());
        }
    }
}

/// A merged view over every recorder: one [`HistSnapshot`] per
/// [`Kind`], plus tracing gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub hists: Vec<HistSnapshot>,
    /// Spans sampled into the trace ring so far.
    pub traces_sampled: u64,
    /// Ops that crossed the slow-op threshold.
    pub slow_ops: u64,
}

impl Snapshot {
    pub fn empty() -> Snapshot {
        Snapshot {
            hists: vec![HistSnapshot::default(); Kind::COUNT],
            traces_sampled: 0,
            slow_ops: 0,
        }
    }

    pub fn kind(&self, k: Kind) -> &HistSnapshot {
        &self.hists[k as usize]
    }

    /// Counts recorded since `prev` (per kind; gauges subtract too).
    pub fn delta(&self, prev: &Snapshot) -> Snapshot {
        let mut d = Snapshot::empty();
        for i in 0..Kind::COUNT {
            let p = prev.hists.get(i).copied().unwrap_or_default();
            d.hists[i] = self.hists[i].delta(&p);
        }
        d.traces_sampled = self.traces_sampled.saturating_sub(prev.traces_sampled);
        d.slow_ops = self.slow_ops.saturating_sub(prev.slow_ops);
        d
    }

    /// Total foreground ops (the request-latency kinds, not background
    /// timers) — used for rate lines.
    pub fn foreground_ops(&self) -> u64 {
        [
            Kind::GetHit,
            Kind::GetDescent,
            Kind::GetCold,
            Kind::Put,
            Kind::Remove,
            Kind::Scan,
        ]
        .iter()
        .map(|k| self.kind(*k).count())
        .sum()
    }
}

/// The store-wide observability hub: a registry of per-worker
/// recorders, a global recorder for background subsystems, a retained
/// sink for dropped recorders, the sampled-trace ring, and the slow-op
/// threshold.
#[derive(Debug)]
pub struct Obs {
    live: Mutex<Vec<Weak<HistSet>>>,
    global: HistSet,
    retired: HistSet,
    ring: TraceRing,
    /// Force-sample threshold (ns); ops at or above it are dumped as a
    /// structured `SLOWOP` line. `u64::MAX` disables.
    slow_ns: AtomicU64,
    /// Sample 1-in-`2^sample_shift` requests into the trace ring.
    sample_shift: AtomicUsize,
    sample_tick: AtomicU64,
    slow_ops: AtomicU64,
    /// Master switch: `false` makes [`Recorder::record`] /
    /// [`Recorder::record_op`] and [`Obs::should_sample`] no-ops (one
    /// relaxed load), so benchmarks can measure recording overhead
    /// on-vs-off under otherwise identical instrumentation.
    enabled: AtomicBool,
}

impl Default for Obs {
    fn default() -> Self {
        Obs {
            live: Mutex::new(Vec::new()),
            global: HistSet::default(),
            retired: HistSet::default(),
            ring: TraceRing::default(),
            slow_ns: AtomicU64::new(u64::MAX),
            sample_shift: AtomicUsize::new(10), // 1 in 1024
            sample_tick: AtomicU64::new(0),
            slow_ops: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }
}

impl Obs {
    /// Registers and returns a new per-worker recorder. Its counts are
    /// visible in [`Obs::snapshot`] immediately and survive the
    /// recorder's drop (folded into the retained sink).
    pub fn recorder(self: &Arc<Self>) -> Recorder {
        let set = Arc::new(HistSet::default());
        let mut live = self.live.lock().unwrap();
        live.retain(|w| w.strong_count() > 0);
        live.push(Arc::downgrade(&set));
        Recorder {
            set,
            obs: Arc::clone(self),
        }
    }

    /// The background-subsystem recorder (WAL force, barrier,
    /// checkpoint, GC, vseg fill, replication).
    pub fn global(&self) -> &HistSet {
        &self.global
    }

    /// Merged counts across every live recorder, the retained sink for
    /// dropped recorders, and the background recorder — the
    /// `Store::cache_stats` discipline applied to histograms, so a
    /// snapshot taken on any worker sees all workers' traffic.
    pub fn snapshot(&self) -> Snapshot {
        let mut out = Snapshot::empty();
        self.global.snapshot_into(&mut out);
        {
            // The registry lock serializes this read against
            // [`Recorder::drop`]'s remove-then-fold, so a recorder's
            // counts are seen exactly once: either via its live set or
            // via the retained sink, never both.
            let mut live = self.live.lock().unwrap();
            live.retain(|w| match w.upgrade() {
                Some(set) => {
                    set.snapshot_into(&mut out);
                    true
                }
                None => false,
            });
            self.retired.snapshot_into(&mut out);
        }
        out.traces_sampled = self.ring.pushed();
        out.slow_ops = self.slow_ops.load(Ordering::Relaxed);
        out
    }

    /// Master recording switch (default on). Off: recorders and the
    /// sampler become no-ops; background `global()` timers still
    /// record (they are off the request hot path).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the slow-op dump threshold in microseconds (`None`
    /// disables).
    pub fn set_slow_threshold_us(&self, us: Option<u64>) {
        let ns = us.map_or(u64::MAX, |u| u.saturating_mul(1000));
        self.slow_ns.store(ns, Ordering::Relaxed);
    }

    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_ns.load(Ordering::Relaxed)
    }

    /// Sets the trace sampling rate to 1-in-`n` (rounded up to a power
    /// of two; 0 disables sampling entirely).
    pub fn set_sample_every(&self, n: u64) {
        let shift = if n == 0 {
            usize::MAX
        } else {
            64 - n.next_power_of_two().leading_zeros() as usize - 1
        };
        self.sample_shift.store(shift, Ordering::Relaxed);
    }

    /// True when this request should carry a trace span (a global
    /// 1-in-N tick; cheap enough for per-frame use).
    #[inline]
    pub fn should_sample(&self) -> bool {
        let shift = self.sample_shift.load(Ordering::Relaxed);
        if shift >= 64 || !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        let t = self.sample_tick.fetch_add(1, Ordering::Relaxed);
        t & ((1u64 << shift) - 1) == 0
    }

    /// The sampled-trace ring (most recent [`span::RING_CAP`] spans).
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Completes the thread-local span (if one is active) into the
    /// ring, and force-dumps a structured `SLOWOP` line when `ns`
    /// crosses the threshold — outliers are captured even when the
    /// 1-in-N sampler skipped them.
    pub fn finish_op(&self, kind: Kind, ns: u64) {
        let slow = ns >= self.slow_ns.load(Ordering::Relaxed);
        if slow {
            self.slow_ops.fetch_add(1, Ordering::Relaxed);
        }
        let rec = span::take_active(kind, ns);
        match rec {
            Some(rec) => {
                if slow {
                    eprintln!("{}", rec.structured_line("SLOWOP"));
                }
                self.ring.push(rec);
            }
            None if slow => {
                // Not sampled: dump what we know (kind + total).
                let rec = TraceRec::untraced(kind, ns);
                eprintln!("{}", rec.structured_line("SLOWOP"));
                self.ring.push(rec);
            }
            None => {}
        }
    }
}

/// A per-worker recording handle. Dropping it folds its histograms
/// into the owning [`Obs`]'s retained sink, so no traffic is lost when
/// a connection (and its session) closes.
#[derive(Debug)]
pub struct Recorder {
    set: Arc<HistSet>,
    obs: Arc<Obs>,
}

impl Recorder {
    #[inline]
    pub fn record(&self, kind: Kind, ns: u64) {
        if self.obs.enabled.load(Ordering::Relaxed) {
            self.set.record(kind, ns);
        }
    }

    /// Records and runs the slow-op / span-completion hook. Use for
    /// ops that are trace roots (session-level point ops, server
    /// frames); plain [`Recorder::record`] for sub-operations.
    #[inline]
    pub fn record_op(&self, kind: Kind, ns: u64) {
        if !self.obs.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.set.record(kind, ns);
        // One relaxed load on the common (fast, untraced) path.
        if ns >= self.obs.slow_ns.load(Ordering::Relaxed) || span::is_active() {
            self.obs.finish_op(kind, ns);
        }
    }

    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    pub fn set(&self) -> &Arc<HistSet> {
        &self.set
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        // Unregister *before* folding, under the registry lock, so a
        // concurrent snapshot never sees these counts both live and
        // retained (see [`Obs::snapshot`]).
        let mut live = self.obs.live.lock().unwrap();
        let me = Arc::as_ptr(&self.set);
        live.retain(|w| w.as_ptr() != me);
        let mut snap = Snapshot::empty();
        self.set.snapshot_into(&mut snap);
        for k in Kind::ALL {
            self.obs.retired.hists[k as usize].absorb(&snap.hists[k as usize]);
        }
    }
}

/// Renders a snapshot plus caller-supplied gauges as Prometheus text
/// exposition (`text/plain; version=0.0.4`). Histogram buckets are
/// cumulative with `le` in **seconds**; empty interior buckets are
/// skipped (legal: `le` stays monotone), keeping the payload small.
pub fn render_prometheus(snap: &Snapshot, gauges: &[(&str, u64)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# HELP mt_op_latency_seconds Per-stage operation latency.\n");
    out.push_str("# TYPE mt_op_latency_seconds histogram\n");
    for k in Kind::ALL {
        let h = snap.kind(k);
        let count = h.count();
        let mut cum = 0u64;
        for (i, b) in h.buckets.iter().enumerate() {
            if *b == 0 {
                continue;
            }
            cum += b;
            let le = bucket_upper(i) as f64 / 1e9;
            out.push_str(&format!(
                "mt_op_latency_seconds_bucket{{op=\"{}\",le=\"{le}\"}} {cum}\n",
                k.name()
            ));
        }
        out.push_str(&format!(
            "mt_op_latency_seconds_bucket{{op=\"{}\",le=\"+Inf\"}} {count}\n",
            k.name()
        ));
        out.push_str(&format!(
            "mt_op_latency_seconds_sum{{op=\"{}\"}} {}\n",
            k.name(),
            h.sum as f64 / 1e9
        ));
        out.push_str(&format!(
            "mt_op_latency_seconds_count{{op=\"{}\"}} {count}\n",
            k.name()
        ));
    }
    out.push_str("# TYPE mt_traces_sampled_total counter\n");
    out.push_str(&format!(
        "mt_traces_sampled_total {}\n",
        snap.traces_sampled
    ));
    out.push_str("# TYPE mt_slow_ops_total counter\n");
    out.push_str(&format!("mt_slow_ops_total {}\n", snap.slow_ops));
    for (name, v) in gauges {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    out
}

/// Formats nanoseconds for human display (`µs` precision keeps the
/// `stats --histograms` table aligned).
pub fn fmt_ns(ns: u64) -> String {
    if ns == 0 {
        "-".into()
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_continuous_and_inverse() {
        // Every bucket's lower bound maps back to that bucket, and
        // bounds tile the value space with no gaps.
        for i in 0..NBUCKETS {
            let lo = bucket_lower(i);
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i}");
            if i + 1 < NBUCKETS {
                assert_eq!(bucket_upper(i), bucket_lower(i + 1));
                assert_eq!(bucket_of(bucket_upper(i) - 1), i, "last value of {i}");
            }
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), NBUCKETS - 1, "saturates");
        assert_eq!(bucket_of(MAX_VALUE), NBUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width / midpoint ≤ 2^-(SUB_BITS+1) over the log range.
        for i in SUB..NBUCKETS {
            let lo = bucket_lower(i) as f64;
            let hi = bucket_upper(i) as f64;
            let mid = (lo + hi) / 2.0;
            assert!((hi - lo) / 2.0 / mid <= 0.126, "bucket {i}");
        }
    }

    #[test]
    fn percentiles_land_in_the_right_bucket() {
        let h = Hist::default();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        let p50 = s.percentile(0.50) as f64;
        let p99 = s.percentile(0.99) as f64;
        assert!((p50 / 500_000.0 - 1.0).abs() < 0.15, "p50 {p50}");
        assert!((p99 / 990_000.0 - 1.0).abs() < 0.15, "p99 {p99}");
        assert!(s.percentile(1.0) >= s.percentile(0.5));
        assert_eq!(HistSnapshot::default().percentile(0.99), 0, "empty");
    }

    #[test]
    fn merge_and_delta_are_inverse() {
        let a = Hist::default();
        let b = Hist::default();
        for v in [10u64, 100, 1000, 10_000] {
            a.record(v);
            b.record(v * 3);
        }
        let sa = a.snapshot();
        let mut merged = sa;
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 8);
        assert_eq!(merged.delta(&sa), b.snapshot());
    }

    #[test]
    fn recorder_counts_survive_drop() {
        let obs = Arc::new(Obs::default());
        {
            let r = obs.recorder();
            r.record(Kind::Put, 5_000);
            r.record(Kind::Put, 7_000);
        } // dropped: folds into the retained sink
        let r2 = obs.recorder();
        r2.record(Kind::Put, 9_000);
        let snap = obs.snapshot();
        assert_eq!(snap.kind(Kind::Put).count(), 3);
        assert_eq!(snap.kind(Kind::Put).sum, 21_000);
    }

    #[test]
    fn snapshot_sees_all_live_recorders() {
        let obs = Arc::new(Obs::default());
        let a = obs.recorder();
        let b = obs.recorder();
        a.record(Kind::GetHit, 100);
        b.record(Kind::GetHit, 200);
        obs.global().record(Kind::Checkpoint, 1 << 20);
        let snap = obs.snapshot();
        assert_eq!(snap.kind(Kind::GetHit).count(), 2);
        assert_eq!(snap.kind(Kind::Checkpoint).count(), 1);
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let obs = Arc::new(Obs::default());
        let r = obs.recorder();
        for v in [1_000u64, 2_000, 4_000, 1_000_000] {
            r.record(Kind::GetDescent, v);
        }
        let text = render_prometheus(&obs.snapshot(), &[("mt_keys", 42)]);
        assert!(text.contains("# TYPE mt_op_latency_seconds histogram"));
        assert!(text.contains("mt_op_latency_seconds_count{op=\"get_descent\"} 4"));
        assert!(text.contains("le=\"+Inf\"}"));
        assert!(text.contains("mt_keys 42"));
        // Cumulative le series must be monotone per op.
        let mut last = 0u64;
        for line in text.lines() {
            if line.starts_with("mt_op_latency_seconds_bucket{op=\"get_descent\"") {
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "{line}");
                last = v;
            }
        }
        assert_eq!(last, 4);
    }

    #[test]
    fn sampling_rate_is_respected() {
        let obs = Obs::default();
        obs.set_sample_every(4);
        let hits = (0..64).filter(|_| obs.should_sample()).count();
        assert_eq!(hits, 16);
        obs.set_sample_every(0);
        assert!((0..64).all(|_| !obs.should_sample()));
    }
}
