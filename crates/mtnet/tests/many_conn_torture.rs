//! Many-connection torture test for the shard-per-core event-loop
//! server: hundreds of pipelined clients spread across workers, with
//! mid-stream disconnects thrown in.
//!
//! What it proves:
//! * **No response cross-wiring.** Every connection owns a key whose
//!   value embeds the connection's unique tag and a version counter;
//!   every pipelined reply must match the sender's own expectation
//!   queue. Cross-connection batch aggregation (which merges different
//!   connections' ops into one tree run) must never leak one
//!   connection's response into another's frame.
//! * **Scan tokens survive worker routing.** Each connection runs a
//!   resumable scan stream under its own token; cursors live in
//!   per-worker maps keyed by shard-routable connection ids, so chunks
//!   must continue exactly where they left off no matter which worker
//!   owns the connection.
//! * **Worker-owned sessions close cleanly on drop.** After `stop()`
//!   joins the workers (dropping their sessions and flushing their
//!   logs), recovery must see clean logs — no torn tail, no replay
//!   cutoff — and every acknowledged write.
//! * **Scan-cursor LRU eviction** at the per-connection cap is
//!   surfaced in the wire stats (`cache_scan_evictions`).

use std::collections::VecDeque;

use mtkv::{DurabilityConfig, Store};
use mtnet::{Client, Request, Response, Server, ServerConfig};

const WORKERS: usize = 4;
const THREADS: usize = 8;
const CONNS_PER_THREAD: usize = 24;
const ABORTERS_PER_THREAD: usize = 8;
const DEPTH: usize = 4;
const ROUNDS: usize = 36;
const SCAN_KEYS: usize = 200;
const SCAN_CHUNK: usize = 10;

fn scan_key(i: usize) -> Vec<u8> {
    format!("scan/{i:05}").into_bytes()
}

fn own_key(tag: u64) -> Vec<u8> {
    format!("own/{tag:08}").into_bytes()
}

fn own_val(tag: u64, version: u64) -> Vec<u8> {
    format!("{tag:08}:{version:06}").into_bytes()
}

/// What the next in-order reply on a connection must be.
enum Expect {
    Val(Vec<u8>),
    PutOk,
    Rows { start: usize, count: usize },
}

/// One pipelined connection's driver state.
struct Driver {
    client: Client,
    tag: u64,
    version: u64,
    scan_pos: usize,
    step: usize,
    expects: VecDeque<Expect>,
}

impl Driver {
    fn connect(addr: std::net::SocketAddr, tag: u64) -> Driver {
        let mut client = Client::connect(addr).unwrap();
        // Establish the connection's own key (synchronously, so every
        // later pipelined Get has a value to expect).
        client
            .put(&own_key(tag), vec![(0, own_val(tag, 0))])
            .unwrap();
        Driver {
            client,
            tag,
            version: 0,
            scan_pos: 0,
            step: 0,
            expects: VecDeque::new(),
        }
    }

    /// Sends the next op in the Get → Put → Scan cycle as its own
    /// pipelined frame, recording what the reply must be.
    fn send_next(&mut self) {
        match self.step % 3 {
            0 => {
                self.client
                    .send_one(&Request::Get {
                        key: own_key(self.tag),
                        cols: Some(vec![0]),
                    })
                    .unwrap();
                self.expects
                    .push_back(Expect::Val(own_val(self.tag, self.version)));
            }
            1 => {
                self.version += 1;
                self.client
                    .send_one(&Request::Put {
                        key: own_key(self.tag),
                        cols: vec![(0, own_val(self.tag, self.version))],
                    })
                    .unwrap();
                self.expects.push_back(Expect::PutOk);
            }
            _ => {
                if self.scan_pos >= SCAN_KEYS {
                    self.scan_pos = 0;
                }
                // Start (re-)descends at the stream head or after a
                // wrap; Resume rides the registered cursor otherwise.
                let resume = if self.scan_pos == 0 {
                    mtnet::ScanResume::Start(self.tag)
                } else {
                    mtnet::ScanResume::Resume(self.tag)
                };
                self.client
                    .send_one(&Request::Scan {
                        key: scan_key(self.scan_pos),
                        count: SCAN_CHUNK as u32,
                        cols: None,
                        resume: Some(resume),
                    })
                    .unwrap();
                let count = SCAN_CHUNK.min(SCAN_KEYS - self.scan_pos);
                self.expects.push_back(Expect::Rows {
                    start: self.scan_pos,
                    count,
                });
                self.scan_pos += count;
            }
        }
        self.step += 1;
    }

    /// Receives the oldest reply and checks it against the expectation
    /// queue — any cross-wired or reordered response fails here.
    fn recv_and_check(&mut self) {
        let resp = self.client.recv_one().unwrap();
        let expect = self.expects.pop_front().expect("a reply was pending");
        match (expect, resp) {
            (Expect::Val(want), Response::Value(Some(cols))) => {
                assert_eq!(
                    cols,
                    vec![want.clone()],
                    "conn {} got another connection's value",
                    self.tag
                );
            }
            (Expect::PutOk, Response::PutOk(_)) => {}
            (Expect::Rows { start, count }, Response::Rows(rows)) => {
                assert_eq!(rows.len(), count, "conn {} scan chunk length", self.tag);
                for (i, (k, _)) in rows.iter().enumerate() {
                    assert_eq!(
                        k,
                        &scan_key(start + i),
                        "conn {} scan stream jumped — token cursor lost or misrouted",
                        self.tag
                    );
                }
            }
            (_, got) => panic!("conn {}: response kind mismatch: {got:?}", self.tag),
        }
    }
}

#[test]
fn many_pipelined_connections_torture() {
    let dir = std::env::temp_dir().join(format!("mtnet-torture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let final_versions: Vec<(u64, u64)>;
    {
        let store =
            Store::persistent_with(&dir, DurabilityConfig::tiny_segments(256 * 1024)).unwrap();
        let mut server = Server::start_with(
            store,
            "127.0.0.1:0",
            ServerConfig {
                workers: WORKERS,
                aggregate: true,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();

        // Shared scan range, written before the torture begins.
        {
            let mut c = Client::connect(addr).unwrap();
            for i in 0..SCAN_KEYS {
                c.queue(&Request::Put {
                    key: scan_key(i),
                    cols: vec![(0, vec![b'v'; 16])],
                });
            }
            let resps = c.execute_batch().unwrap();
            assert_eq!(resps.len(), SCAN_KEYS);
        }

        let results: Vec<Vec<(u64, u64)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS as u64)
                .map(|t| {
                    s.spawn(move || {
                        let mut drivers: Vec<Driver> = (0..CONNS_PER_THREAD as u64)
                            .map(|c| Driver::connect(addr, t * 1_000 + c))
                            .collect();
                        // Aborters: prime a full pipeline of requests,
                        // then vanish mid-stream with replies unread.
                        let mut aborters: Vec<Driver> = (0..ABORTERS_PER_THREAD as u64)
                            .map(|c| Driver::connect(addr, 900_000 + t * 1_000 + c))
                            .collect();
                        for d in &mut aborters {
                            for _ in 0..DEPTH {
                                d.send_next();
                            }
                        }
                        drop(aborters);

                        for d in &mut drivers {
                            for _ in 0..DEPTH {
                                d.send_next();
                            }
                        }
                        for _ in 0..ROUNDS {
                            for d in &mut drivers {
                                d.recv_and_check();
                                d.send_next();
                            }
                        }
                        for d in &mut drivers {
                            while !d.expects.is_empty() {
                                d.recv_and_check();
                            }
                        }
                        drivers.iter().map(|d| (d.tag, d.version)).collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        final_versions = results.into_iter().flatten().collect();
        assert_eq!(final_versions.len(), THREADS * CONNS_PER_THREAD);

        // Scan-cursor LRU eviction: one connection opens far more token
        // streams than the per-connection cap and the overflow surfaces
        // in the wire stats.
        {
            let mut c = Client::connect(addr).unwrap();
            for token in 0..100u64 {
                let rows = c
                    .scan_start(&scan_key(0), SCAN_CHUNK as u32, None, 1_000_000 + token)
                    .unwrap();
                assert_eq!(rows.len(), SCAN_CHUNK);
            }
            let stats = c.stats().unwrap();
            assert!(
                stats.cache_scan_evictions > 0,
                "100 live cursors past a cap of 64 must evict: {stats:?}"
            );
        }

        // Clean shutdown: joins the workers, dropping their sessions
        // (which flushes their logs) before `stop` returns.
        server.stop();
    }

    // Worker sessions closed cleanly: recovery sees whole logs (no torn
    // tail ⇒ no replay cutoff) and every acknowledged write.
    let (store, report) = mtkv::recover(&dir, &dir).unwrap();
    assert_eq!(
        report.cutoff,
        u64::MAX,
        "clean close must leave no torn log tail: {report:?}"
    );
    let session = store.session().unwrap();
    for &(tag, version) in &final_versions {
        let got = session.get(&own_key(tag), Some(&[0])).unwrap();
        assert_eq!(
            got[0],
            own_val(tag, version),
            "conn {tag}'s last acknowledged write survived shutdown"
        );
    }
    drop(session);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
