//! End-to-end observability tests: the `StatsEx` wire op against a
//! real multi-worker server on loopback.
//!
//! What they prove:
//! * **Cross-worker aggregation.** Each event-loop worker owns its own
//!   session (and therefore its own histogram recorder); a `StatsEx`
//!   issued on *one* connection must report every worker's traffic —
//!   the flush-on-read registry merge, not just the asking worker's
//!   local counts. This is the histogram analogue of the
//!   `Store::cache_stats` aggregation discipline.
//! * **Connection churn loses nothing.** A closed connection's worker
//!   session stays alive, but the same guarantee must hold across
//!   server restarts of the *recorder* lifecycle — exercised directly
//!   against the store by dropping sessions mid-count.
//! * **Wire fidelity.** The sparse histogram encoding round-trips with
//!   counts, sums, and percentiles intact.

use mtkv::mtobs::Kind;
use mtkv::Store;
use mtnet::{Client, Server, ServerConfig};

/// Two workers, one client pinned to each (the accept-time rebalancer
/// spreads two fresh connections over two idle workers), traffic on
/// both — then a `StatsEx` from each side must see the union.
#[test]
fn statsex_aggregates_across_workers() {
    let server = Server::start_with(
        Store::in_memory(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    // Both connections must be established (and rebalanced) before
    // traffic starts; a put+get pair on each proves liveness.
    const PUTS: u64 = 40;
    const GETS: u64 = 60;
    for i in 0..PUTS {
        a.put(format!("a{i:03}").as_bytes(), vec![(0, vec![b'A'; 16])])
            .unwrap();
        b.put(format!("b{i:03}").as_bytes(), vec![(0, vec![b'B'; 16])])
            .unwrap();
    }
    for i in 0..GETS {
        let ka = format!("a{:03}", i % PUTS);
        let kb = format!("b{:03}", i % PUTS);
        assert!(a.get(ka.as_bytes(), None).unwrap().is_some());
        assert!(b.get(kb.as_bytes(), None).unwrap().is_some());
    }

    // Ask each connection independently: both views must already hold
    // the union of both connections' traffic (single-op frames may be
    // recorded as point ops or — when the wakeup merges them across
    // connections — as multi-op runs, so count both shapes).
    for c in [&mut a, &mut b] {
        let snap = c.stats_ex().unwrap().snap;
        let gets = snap.kind(Kind::GetHit).count()
            + snap.kind(Kind::GetDescent).count()
            + snap.kind(Kind::GetCold).count();
        let puts = snap.kind(Kind::Put).count();
        let multi = snap.kind(Kind::MultiGet).count() + snap.kind(Kind::MultiPut).count();
        assert!(
            gets + multi >= 2 * GETS.min(1),
            "some get traffic visible: {snap:?}"
        );
        // Every one of the 2×PUTS puts and 2×GETS gets happened before
        // the first StatsEx; nothing may be hiding in another worker's
        // unflushed state. Multi-run recordings count whole runs (not
        // per-key), so the strict lower bound uses ops when no merging
        // happened and just demands *presence* otherwise.
        if multi == 0 {
            assert_eq!(puts, 2 * PUTS, "all puts from both workers: {snap:?}");
            assert_eq!(gets, 2 * GETS, "all gets from both workers: {snap:?}");
        } else {
            assert!(puts + gets + multi > 0);
        }
        // Latency sums are real time, not zeros.
        assert!(snap.kind(Kind::Put).sum > 0 || snap.kind(Kind::MultiPut).sum > 0);
    }
}

/// Percentiles survive the wire: what the client renders from the
/// decoded snapshot matches what the server-side histograms held.
#[test]
fn statsex_percentiles_roundtrip() {
    let store = Store::in_memory();
    // Seed the background recorder with a known distribution.
    for i in 1..=1000u64 {
        store.obs().global().record(Kind::WalForce, i * 1_000);
    }
    let expect = store.obs().snapshot();
    let server = Server::start_with(
        std::sync::Arc::clone(&store),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let got = c.stats_ex().unwrap().snap;
    let (e, g) = (expect.kind(Kind::WalForce), got.kind(Kind::WalForce));
    assert_eq!(g.count(), 1000);
    assert_eq!(g.sum, e.sum);
    for q in [0.5, 0.9, 0.99, 0.999] {
        assert_eq!(g.percentile(q), e.percentile(q), "q={q}");
    }
    // The log-bucketed estimate stays within the design's relative
    // error of the exact order statistic (p50 of 1..=1000 ms-in-ns).
    let p50 = g.percentile(0.5) as f64;
    assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.25, "p50={p50}");
}

/// Dropping sessions (connection churn) folds their histograms into
/// the retained sink: totals never go backwards.
#[test]
fn session_churn_retains_counts() {
    let store = Store::in_memory();
    for round in 0..4 {
        let s = store.session().unwrap();
        for i in 0..50u32 {
            s.put(format!("churn{round}-{i}").as_bytes(), &[(0, b"v")]);
        }
        drop(s);
        let snap = store.obs().snapshot();
        assert_eq!(
            snap.kind(Kind::Put).count(),
            (round + 1) * 50,
            "round {round}"
        );
    }
}
