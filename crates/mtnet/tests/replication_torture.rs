//! Kill/restart torture for primary→follower log-shipping replication.
//!
//! Seeded rounds drive writes into a primary whose log is streamed to
//! two read replicas, while the harness injects the failures the
//! replication layer claims to survive:
//!
//! * **Follower kill -9 + restart** (`simulate_crash`): the restarted
//!   follower trims its mirrors to the journaled watermark, re-replays
//!   locally, and resumes the stream from there (idempotent re-replay).
//! * **Connection tear mid-segment** (`tear_connection`): the follower
//!   reconnects with jittered backoff and presents its watermark.
//! * **Primary crash + recovery**: a new incarnation (new epoch, new
//!   replication address) makes restarted followers wipe and resync
//!   from scratch (epoch mismatch → `Gone`).
//!
//! Invariants checked every round:
//!
//! * **Read-your-writes at the primary** — every put is immediately
//!   readable at its assigned version, and the latest state survives a
//!   primary crash + recovery (zero acked-write loss: every write was
//!   group-committed with `force_log` before the crash).
//! * **Prefix consistency at the followers** — any `(key, version,
//!   cols)` row a follower serves mid-stream is byte-identical to a
//!   state the primary actually produced (no torn/merged/invented
//!   rows).
//! * **Catch-up equality** — once quiescent, each follower's full tree
//!   (keys, versions, column bytes) equals the primary's, and its
//!   heartbeat-computed lag reaches zero.
//!
//! The companion test proves the "strictly async" claim: a wedged
//! follower (valid handshake, never reads again) must not move primary
//! put/ack latency.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mtkv::{DurabilityConfig, Session, Store};
use mtnet::{Follower, FollowerConfig, FollowerStatus, ReplConfig, ReplSource};

const ROUNDS: usize = 24;
const PUTS_PER_ROUND: usize = 60;
const REMOVES_PER_ROUND: usize = 8;
const KEYSPACE: u64 = 400;
const CATCHUP: Duration = Duration::from_secs(30);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn key_of(i: u64) -> Vec<u8> {
    format!("repl/{i:06}").into_bytes()
}

/// Full tree state as `(key, version, column bytes)` rows, in key
/// order — the unit of primary/follower comparison.
type TreeState = Vec<(Vec<u8>, u64, Vec<Vec<u8>>)>;

fn snapshot(session: &Session) -> TreeState {
    let mut out = Vec::new();
    session.get_range_with(b"", usize::MAX, |k, v| {
        out.push((k.to_vec(), v.version(), v.cols()));
    });
    out
}

fn snapshot_store(store: &Arc<Store>) -> TreeState {
    snapshot(&store.session().unwrap())
}

fn follower_config() -> FollowerConfig {
    FollowerConfig {
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(200),
        quiet_timeout: Duration::from_secs(2),
        ..FollowerConfig::default()
    }
}

/// Polls until `follower`'s state equals the (quiescent) primary's and
/// its reported lag is zero.
fn wait_caught_up(primary: &Session, follower: &Follower, what: &str) {
    let want = snapshot(primary);
    let deadline = Instant::now() + CATCHUP;
    loop {
        let got = snapshot_store(&follower.store());
        if got == want && follower.lag().0 == 0 {
            return;
        }
        if Instant::now() >= deadline {
            let diff: Vec<String> = want
                .iter()
                .filter(|r| !got.contains(r))
                .chain(got.iter().filter(|r| !want.contains(r)))
                .take(8)
                .map(|(k, v, c)| {
                    format!(
                        "{} v{v} {:?}",
                        String::from_utf8_lossy(k),
                        c.iter()
                            .map(|c| String::from_utf8_lossy(c))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            panic!(
                "{what}: follower never converged \
                 (status {:?}, lag {:?}, {} rows vs primary {} rows); \
                 first differing rows (primary-only then follower-only): {diff:#?}",
                follower.status(),
                follower.lag(),
                got.len(),
                want.len(),
            );
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Mid-stream prefix consistency: every row the follower serves must be
/// byte-identical to a `(key, version) → cols` state the primary
/// actually produced. Catching the follower mid-apply is the point —
/// partial application must still only ever expose real log states.
fn assert_prefix_consistent(
    follower: &Follower,
    history: &HashMap<(Vec<u8>, u64), Vec<Vec<u8>>>,
    round: usize,
) {
    for (key, version, cols) in snapshot_store(&follower.store()) {
        match history.get(&(key.clone(), version)) {
            Some(want) => assert_eq!(
                &cols,
                want,
                "round {round}: follower row {} v{version} differs from \
                 the primary state of that version",
                String::from_utf8_lossy(&key),
            ),
            None => panic!(
                "round {round}: follower serves {} v{version}, a state \
                 the primary never produced",
                String::from_utf8_lossy(&key),
            ),
        }
    }
}

#[test]
fn seeded_kill_restart_torture() {
    let seed: u64 = std::env::var("MT_REPL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xa5a5_1234_dead_beef);
    println!("replication torture seed: {seed:#x} (override with MT_REPL_SEED)");
    let mut rng = seed;

    let base = std::env::temp_dir().join(format!("mt-repl-torture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let primary_dir = base.join("primary");
    std::fs::create_dir_all(&primary_dir).unwrap();

    // Tiny segments so rounds rotate: tears land mid-chain, restarts
    // resume across segment boundaries.
    let mut store =
        Store::persistent_with(&primary_dir, DurabilityConfig::tiny_segments(16 * 1024)).unwrap();
    let mut source = ReplSource::start_with(&store, "127.0.0.1:0", ReplConfig::default()).unwrap();
    let mut session = store.session().unwrap();

    let follower_dirs = [base.join("f0"), base.join("f1")];
    let mut followers: Vec<Option<Follower>> = follower_dirs
        .iter()
        .map(|d| {
            Some(Follower::start_with(d, &source.addr().to_string(), follower_config()).unwrap())
        })
        .collect();

    // Every `(key, assigned version) → cols` state the primary produced
    // (prefix-consistency oracle), and the latest state per key
    // (read-your-writes / zero-loss oracle).
    type VersionedCols = Option<(u64, Vec<Vec<u8>>)>;
    let mut history: HashMap<(Vec<u8>, u64), Vec<Vec<u8>>> = HashMap::new();
    let mut latest: HashMap<Vec<u8>, VersionedCols> = HashMap::new();

    for round in 0..ROUNDS {
        // ---- writes, group-committed so they ship ----
        for op in 0..PUTS_PER_ROUND {
            let key = key_of(splitmix64(&mut rng) % KEYSPACE);
            let val = format!("r{round}o{op}x{:016x}", splitmix64(&mut rng)).into_bytes();
            let two_cols = splitmix64(&mut rng).is_multiple_of(4);
            let extra = format!("c1-{round}").into_bytes();
            let updates: Vec<(usize, &[u8])> = if two_cols {
                vec![(0, val.as_slice()), (1, extra.as_slice())]
            } else {
                vec![(0, val.as_slice())]
            };
            let version = session.put(&key, &updates);
            // Read-your-writes: the put is immediately visible at its
            // assigned version; record that exact state.
            let (v, cols) = session.get_with(&key, |val| {
                let val = val.expect("read-your-writes at the primary");
                (val.version(), val.cols())
            });
            assert_eq!(v, version, "round {round}: get after put sees the put");
            history.insert((key.clone(), v), cols.clone());
            latest.insert(key, Some((v, cols)));
            if op % 16 == 0 {
                assert!(session.force_log(), "group commit must succeed");
            }
        }
        for _ in 0..REMOVES_PER_ROUND {
            let key = key_of(splitmix64(&mut rng) % KEYSPACE);
            session.remove(&key);
            latest.insert(key, None);
        }
        assert!(session.force_log(), "group commit must succeed");

        // ---- sample the followers mid-stream ----
        for f in followers.iter().flatten() {
            assert_prefix_consistent(f, &history, round);
        }

        // ---- injected failure ----
        let primary_restart = round == 8 || round == 16;
        if primary_restart {
            println!("round {round}: primary crash + recovery");
            drop(source);
            // kill -9: abandon session buffers (everything acked above
            // was force_log'd, so nothing acked may be lost).
            let _ = session.simulate_crash();
            drop(store);
            let (recovered, report) = mtkv::recover(&primary_dir, &primary_dir).unwrap();
            store = recovered;
            session = store.session().unwrap();
            // Zero acked-write loss across the primary crash.
            let state: HashMap<Vec<u8>, (u64, Vec<Vec<u8>>)> = snapshot(&session)
                .into_iter()
                .map(|(k, v, c)| (k, (v, c)))
                .collect();
            for (key, want) in &latest {
                match want {
                    Some(vc) => assert_eq!(
                        state.get(key),
                        Some(vc),
                        "round {round}: acked write lost in recovery \
                         ({report:?}): {}",
                        String::from_utf8_lossy(key),
                    ),
                    None => assert!(
                        !state.contains_key(key),
                        "round {round}: acked remove lost in recovery: {}",
                        String::from_utf8_lossy(key),
                    ),
                }
            }
            // New incarnation on a new address: restarted followers
            // must resync (epoch mismatch → Gone → wipe).
            source = ReplSource::start_with(&store, "127.0.0.1:0", ReplConfig::default()).unwrap();
            for (i, slot) in followers.iter_mut().enumerate() {
                slot.take().unwrap().simulate_crash();
                *slot = Some(
                    Follower::start_with(
                        &follower_dirs[i],
                        &source.addr().to_string(),
                        follower_config(),
                    )
                    .unwrap(),
                );
            }
        } else {
            match splitmix64(&mut rng) % 4 {
                1 => {
                    let i = (splitmix64(&mut rng) % 2) as usize;
                    println!("round {round}: tearing follower {i}'s connection");
                    followers[i].as_ref().unwrap().tear_connection();
                }
                2 => {
                    let i = (splitmix64(&mut rng) % 2) as usize;
                    println!("round {round}: kill -9 + restart of follower {i}");
                    followers[i].take().unwrap().simulate_crash();
                    followers[i] = Some(
                        Follower::start_with(
                            &follower_dirs[i],
                            &source.addr().to_string(),
                            follower_config(),
                        )
                        .unwrap(),
                    );
                }
                _ => {}
            }
        }

        // ---- every follower catches back up to exact equality ----
        for (i, f) in followers.iter().flatten().enumerate() {
            wait_caught_up(&session, f, &format!("round {round}, follower {i}"));
        }
    }

    // Final state: both followers streaming, zero lag, exact equality
    // (already asserted), and the stats plumbing agrees.
    for f in followers.iter().flatten() {
        assert_eq!(f.status(), FollowerStatus::Streaming);
        let (lag_bytes, _) = f.lag();
        assert_eq!(lag_bytes, 0);
        assert!(f.applied_bytes() > 0);
    }
    let (role, nfollowers, _, _) = store.repl_stats().snapshot();
    assert_eq!(role, mtnet::repl::ROLE_PRIMARY);
    assert_eq!(nfollowers, 2, "both followers registered at the primary");

    for slot in &mut followers {
        slot.take().unwrap().stop();
    }
    drop(source);
    drop(session);
    drop(store);
    let _ = std::fs::remove_dir_all(&base);
}

/// Value-separation torture: the primary runs with a cold value tier
/// (low threshold, tiny segments, aggressive GC), so the stream
/// interleaves vseg byte shipping with WAL chains and the followers
/// replay **pointer records** whose payloads live in mirrored
/// segments. Injected failures are the same family as above — follower
/// kill -9 + restart, connection tears, and a primary crash + recovery
/// whose epoch bump forces a full resync (vseg mirrors wiped, value
/// caches purged). Every round the followers must converge to exact
/// byte equality (snapshots resolve indirect values on both sides),
/// and at the end the follower's value-tier stats must show it
/// actually served indirect reads with zero integrity failures.
#[test]
fn value_separated_replication_torture() {
    let mut rng: u64 = 0xc01d_ba5e_0000_0001;
    let base = std::env::temp_dir().join(format!("mt-repl-vtier-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let primary_dir = base.join("primary");
    std::fs::create_dir_all(&primary_dir).unwrap();

    let cold_config = || {
        let mut c = DurabilityConfig::tiny_segments(16 * 1024).with_value_separation(24, 4096);
        c.value_segment_bytes = 4096;
        c.gc_dead_fraction = 0.3;
        c
    };
    let mut store = Store::persistent_with(&primary_dir, cold_config()).unwrap();
    let mut source = ReplSource::start_with(&store, "127.0.0.1:0", ReplConfig::default()).unwrap();
    let mut session = store.session().unwrap();

    let follower_dirs = [base.join("f0"), base.join("f1")];
    let mut followers: Vec<Option<Follower>> = follower_dirs
        .iter()
        .map(|d| {
            Some(Follower::start_with(d, &source.addr().to_string(), follower_config()).unwrap())
        })
        .collect();

    let mut latest: HashMap<Vec<u8>, Option<(u64, Vec<Vec<u8>>)>> = HashMap::new();
    const VROUNDS: usize = 8;
    const VKEYSPACE: u64 = 120;

    for round in 0..VROUNDS {
        for op in 0..40 {
            let key = key_of(splitmix64(&mut rng) % VKEYSPACE);
            // Most values clear the threshold and go to the cold tier;
            // a few stay inline so both paths ship in one stream.
            let mut val = format!("vr{round}o{op}:").into_bytes();
            let len = 12 + (splitmix64(&mut rng) % 150) as usize;
            while val.len() < len {
                val.push(b'a' + (splitmix64(&mut rng) % 26) as u8);
            }
            let version = session.put(&key, &[(0, &val)]);
            latest.insert(key, Some((version, vec![val])));
        }
        for _ in 0..6 {
            let key = key_of(splitmix64(&mut rng) % VKEYSPACE);
            session.remove(&key);
            latest.insert(key, None);
        }
        assert!(session.force_log(), "group commit must succeed");
        // A durability cycle: checkpoints the pointer records and runs
        // value GC, whose relocations ship through the GC's own WAL
        // chain.
        store.checkpoint_now().unwrap();

        if round == 4 {
            println!("vtier round {round}: primary crash + recovery (epoch resync)");
            drop(source);
            let _ = session.simulate_crash();
            drop(store);
            let (recovered, report) =
                mtkv::recover_with(&primary_dir, &primary_dir, cold_config()).unwrap();
            store = recovered;
            session = store.session().unwrap();
            // Compare column bytes, not versions: value GC relocates
            // live values under fresh versions, and a relocation logged
            // after the cycle's group-commit barrier may legitimately
            // fall past the recovery cutoff — the bytes then come back
            // under the pre-relocation version. Either version, same
            // bytes.
            let state: HashMap<Vec<u8>, Vec<Vec<u8>>> = snapshot(&session)
                .into_iter()
                .map(|(k, _, c)| (k, c))
                .collect();
            for (key, want) in &latest {
                match want {
                    Some((_, cols)) => assert_eq!(
                        state.get(key),
                        Some(cols),
                        "vtier round {round}: acked indirect write lost ({report:?}): {}",
                        String::from_utf8_lossy(key),
                    ),
                    None => assert!(
                        !state.contains_key(key),
                        "vtier round {round}: acked remove lost: {}",
                        String::from_utf8_lossy(key),
                    ),
                }
            }
            source = ReplSource::start_with(&store, "127.0.0.1:0", ReplConfig::default()).unwrap();
            for (i, slot) in followers.iter_mut().enumerate() {
                slot.take().unwrap().simulate_crash();
                *slot = Some(
                    Follower::start_with(
                        &follower_dirs[i],
                        &source.addr().to_string(),
                        follower_config(),
                    )
                    .unwrap(),
                );
            }
        } else {
            match splitmix64(&mut rng) % 3 {
                0 => {
                    let i = (splitmix64(&mut rng) % 2) as usize;
                    println!("vtier round {round}: tearing follower {i}'s connection");
                    followers[i].as_ref().unwrap().tear_connection();
                }
                1 => {
                    let i = (splitmix64(&mut rng) % 2) as usize;
                    println!("vtier round {round}: kill -9 + restart of follower {i}");
                    followers[i].take().unwrap().simulate_crash();
                    followers[i] = Some(
                        Follower::start_with(
                            &follower_dirs[i],
                            &source.addr().to_string(),
                            follower_config(),
                        )
                        .unwrap(),
                    );
                }
                _ => {}
            }
        }

        for (i, f) in followers.iter().flatten().enumerate() {
            wait_caught_up(&session, f, &format!("vtier round {round}, follower {i}"));
        }
    }

    // The primary actually separated values, and each follower served
    // indirect reads out of its mirrored segments without a single
    // integrity failure (the catch-up snapshots resolve every pointer).
    let pstats = store.value_tier_stats();
    assert!(
        pstats.live_segment_bytes > 0,
        "primary separated nothing: {pstats:?}"
    );
    for (i, f) in followers.iter().flatten().enumerate() {
        let fstats = f.store().value_tier_stats();
        assert!(
            fstats.indirect_reads > 0,
            "follower {i} never resolved an indirect value: {fstats:?}"
        );
        assert_eq!(
            fstats.unresolved_reads, 0,
            "follower {i} hit integrity failures: {fstats:?}"
        );
    }

    for slot in &mut followers {
        slot.take().unwrap().stop();
    }
    drop(source);
    drop(session);
    drop(store);
    let _ = std::fs::remove_dir_all(&base);
}

/// The async-shipping guarantee: a wedged follower — valid handshake,
/// then never reads another byte (a SIGSTOPped process) — must not
/// move the primary's put/group-commit latency. Shipping happens on
/// per-follower feeder threads; the commit path never waits on them.
#[test]
fn wedged_follower_never_blocks_primary_acks() {
    use std::io::Write;

    let base = std::env::temp_dir().join(format!("mt-repl-wedge-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let store = Store::persistent_with(&base, DurabilityConfig::tiny_segments(64 * 1024)).unwrap();
    // Long ack timeout: the wedged peer stays registered (not shed)
    // for the whole measurement, so we measure coexistence, not
    // shedding.
    let source = ReplSource::start_with(
        &store,
        "127.0.0.1:0",
        ReplConfig {
            ack_timeout: Duration::from_secs(60),
            ..ReplConfig::default()
        },
    )
    .unwrap();
    let session = store.session().unwrap();

    // A wedged "follower": raw socket, valid handshake (fresh, epoch 0,
    // no watermarks), then it never reads — the feeder's socket buffer
    // fills and its writes start blocking.
    let mut wedged = std::net::TcpStream::connect(source.addr()).unwrap();
    let mut hs = Vec::new();
    hs.extend_from_slice(b"MTRP");
    hs.extend_from_slice(&1u32.to_le_bytes());
    hs.extend_from_slice(&0u64.to_le_bytes());
    hs.extend_from_slice(&0u32.to_le_bytes());
    wedged.write_all(&hs).unwrap();
    wedged.flush().unwrap();
    // Shrink what the kernel will buffer on our side so the feeder
    // wedges quickly.
    let _ = wedged.set_nonblocking(false);

    // Pre-fill enough log that the feeder has megabytes to ship into
    // the dead socket.
    for i in 0..2_000u32 {
        session.put(&format!("fill{i:06}").into_bytes(), &[(0, &[0u8; 512])]);
    }
    assert!(session.force_log());
    std::thread::sleep(Duration::from_millis(300));

    // Measured phase: puts + group commits while the feeder is wedged.
    let mut worst = Duration::ZERO;
    let start = Instant::now();
    for i in 0..200u32 {
        let t0 = Instant::now();
        session.put(&format!("lat{i:06}").into_bytes(), &[(0, &[1u8; 64])]);
        if i % 8 == 0 {
            assert!(session.force_log());
        }
        worst = worst.max(t0.elapsed());
    }
    assert!(session.force_log());
    let total = start.elapsed();

    // Generous absolute bounds: a commit path that waited on the wedged
    // feeder even once would hit the 60 s ack timeout (or the 50 ms
    // write timeout per frame, hundreds of times over).
    assert!(
        worst < Duration::from_millis(250),
        "a single put stalled {worst:?} with a wedged follower attached"
    );
    assert!(
        total < Duration::from_secs(10),
        "200 puts + group commits took {total:?} with a wedged follower"
    );

    drop(wedged);
    drop(source);
    drop(session);
    drop(store);
    let _ = std::fs::remove_dir_all(&base);
}

/// Regression: a primary whose pointer records only ever become durable
/// through the WAL's 200 ms *background* force — no `force_log`, no
/// checkpoint, no explicit Flush — must still ship value-tier payload
/// bytes to followers. The feeder forces the tier itself before
/// snapshotting its shipping watermark; without that, every pointer
/// record shipped but zero vseg bytes ever did (the tier's durable
/// watermark never moved), and followers answered misses for separated
/// keys forever.
#[test]
fn background_forced_primary_ships_value_payloads() {
    let base = std::env::temp_dir().join(format!("mt-repl-bgforce-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let primary_dir = base.join("primary");
    std::fs::create_dir_all(&primary_dir).unwrap();

    let config = DurabilityConfig::default().with_value_separation(24, 4096);
    let store = Store::persistent_with(&primary_dir, config).unwrap();
    let source = ReplSource::start_with(&store, "127.0.0.1:0", ReplConfig::default()).unwrap();
    let session = store.session().unwrap();

    let big = vec![b'x'; 600];
    for i in 0..5u64 {
        session.put(&key_of(i), &[(0, &big)]);
    }
    // Deliberately no durability call here: the logger's background
    // force is the only thing advancing the WAL shipping watermark.

    let follower = Follower::start_with(
        &base.join("f0"),
        &source.addr().to_string(),
        follower_config(),
    )
    .unwrap();
    wait_caught_up(&session, &follower, "background-forced primary");

    assert!(
        store.value_tier_stats().live_segment_bytes > 0,
        "primary separated nothing — test lost its premise"
    );
    let fstats = follower.store().value_tier_stats();
    assert!(
        fstats.indirect_reads > 0,
        "follower never resolved an indirect value: {fstats:?}"
    );
    assert_eq!(
        fstats.unresolved_reads, 0,
        "follower hit integrity failures: {fstats:?}"
    );

    follower.stop();
    drop(source);
    drop(session);
    drop(store);
    let _ = std::fs::remove_dir_all(&base);
}
