//! End-to-end network tests: a real server on loopback, clients with
//! single operations, batches, and pipelined batches.

use mtkv::Store;
use mtnet::{Client, Request, Response, Server};

fn start_in_memory() -> Server {
    Server::start(Store::in_memory(), "127.0.0.1:0").unwrap()
}

#[test]
fn single_ops() {
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();
    assert_eq!(c.get(b"k", None).unwrap(), None);
    let v1 = c.put(b"k", vec![(0, b"hello".to_vec()), (1, b"world".to_vec())]).unwrap();
    assert!(v1 > 0);
    assert_eq!(
        c.get(b"k", None).unwrap(),
        Some(vec![b"hello".to_vec(), b"world".to_vec()])
    );
    assert_eq!(c.get(b"k", Some(vec![1])).unwrap(), Some(vec![b"world".to_vec()]));
    assert!(c.remove(b"k").unwrap());
    assert!(!c.remove(b"k").unwrap());
    assert_eq!(c.get(b"k", None).unwrap(), None);
}

#[test]
fn batched_queries() {
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();
    for i in 0..100u32 {
        c.queue(&Request::Put {
            key: format!("key{i:03}").into_bytes(),
            cols: vec![(0, i.to_le_bytes().to_vec())],
        });
    }
    let responses = c.execute_batch().unwrap();
    assert_eq!(responses.len(), 100);
    assert!(responses.iter().all(|r| matches!(r, Response::PutOk(_))));
    // Batched gets.
    for i in 0..100u32 {
        c.queue(&Request::Get {
            key: format!("key{i:03}").into_bytes(),
            cols: Some(vec![0]),
        });
    }
    let responses = c.execute_batch().unwrap();
    for (i, r) in responses.iter().enumerate() {
        match r {
            Response::Value(Some(cols)) => assert_eq!(cols[0], (i as u32).to_le_bytes()),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(server.ops_served(), 200);
}

#[test]
fn scans_over_network() {
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();
    for i in 0..50u32 {
        c.put(format!("user{i:04}").as_bytes(), vec![(0, vec![i as u8]), (1, vec![7])])
            .unwrap();
    }
    let rows = c.scan(b"user0010", 5, Some(vec![0])).unwrap();
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0].0, b"user0010");
    assert_eq!(rows[0].1, vec![vec![10u8]]);
    assert_eq!(rows[4].0, b"user0014");
}

#[test]
fn pipelined_batches() {
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();
    // Keep 4 batches in flight.
    for b in 0..4u32 {
        for i in 0..64u32 {
            c.queue(&Request::Put {
                key: format!("p{b}k{i}").into_bytes(),
                cols: vec![(0, b"x".to_vec())],
            });
        }
        c.send_batch().unwrap();
    }
    assert_eq!(c.in_flight(), 4);
    for _ in 0..4 {
        let rs = c.recv_batch().unwrap();
        assert_eq!(rs.len(), 64);
    }
    assert_eq!(c.in_flight(), 0);
}

#[test]
fn many_concurrent_clients() {
    let server = start_in_memory();
    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..500u32 {
                    c.put(format!("t{t}i{i}").as_bytes(), vec![(0, i.to_le_bytes().to_vec())])
                        .unwrap();
                }
                for i in 0..500u32 {
                    let got = c.get(format!("t{t}i{i}").as_bytes(), Some(vec![0])).unwrap();
                    assert_eq!(got.unwrap()[0], i.to_le_bytes());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn persistent_server_recovers() {
    let dir = std::env::temp_dir().join(format!("mtnet-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    {
        let store = Store::persistent(&dir).unwrap();
        let server = Server::start(store, "127.0.0.1:0").unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        for i in 0..200u32 {
            c.put(format!("dur{i:04}").as_bytes(), vec![(0, i.to_le_bytes().to_vec())])
                .unwrap();
        }
        // Drop client first so the connection session flushes its log.
        drop(c);
    }
    // Allow connection threads to drop their sessions (forcing logs).
    std::thread::sleep(std::time::Duration::from_millis(300));
    let (store, report) = mtkv::recover(&dir, &dir).unwrap();
    assert!(report.replayed >= 190, "most records on disk: {report:?}");
    let s = store.session().unwrap();
    assert_eq!(s.get(b"dur0000", Some(&[0])).unwrap()[0], 0u32.to_le_bytes());
    assert_eq!(s.get(b"dur0199", Some(&[0])).unwrap()[0], 199u32.to_le_bytes());
    std::fs::remove_dir_all(&dir).unwrap();
}
