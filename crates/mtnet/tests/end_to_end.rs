//! End-to-end network tests: a real server on loopback, clients with
//! single operations, batches, pipelined batches, and the durability
//! admin requests (`Stats`/`Flush`).

use mtkv::{DurabilityConfig, Store};
use mtnet::{Client, Request, Response, Server};

fn start_in_memory() -> Server {
    Server::start(Store::in_memory(), "127.0.0.1:0").unwrap()
}

#[test]
fn stats_and_flush_drive_durability_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("mtnet-e2e-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        // Tiny segments so the workload below rotates; no background
        // thread — the client's Flush requests drive the cycles.
        let store = Store::persistent_with(&dir, DurabilityConfig::tiny_segments(2048)).unwrap();
        let server = Server::start(store, "127.0.0.1:0").unwrap();
        let mut c = Client::connect(server.addr()).unwrap();

        let s0 = c.stats().unwrap();
        assert_eq!(s0.checkpoints, 0, "no checkpoint yet");
        for i in 0..300u32 {
            c.put(format!("dur{i:04}").as_bytes(), vec![(0, vec![0u8; 32])])
                .unwrap();
        }
        // The logger drains on a ~10ms cadence; poll (bounded) until the
        // rotation is visible on disk rather than racing it. Poll for
        // bytes too: rotation creates the (empty) successor file before
        // flushing the sealed segment's buffered bytes, so there is an
        // instant where the files hold only the session-create journal
        // entry and an opening heartbeat; a rotation is only really
        // durable once the sealed segment's payload (≥ the 2048-byte
        // rotation threshold) has landed.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let s1 = loop {
            let s = c.stats().unwrap();
            if (s.log_segments >= 2 && s.log_bytes >= 2048) || std::time::Instant::now() > deadline
            {
                break s;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        assert!(s1.log_segments >= 2, "rotation visible in stats: {s1:?}");
        assert!(s1.log_bytes > 0);

        // Flush: checkpoint epoch advances, covered segments vanish.
        let s2 = c.flush().unwrap();
        assert_eq!(s2.checkpoints, 1, "{s2:?}");
        assert!(s2.last_checkpoint_start_ts > 0);
        assert!(s2.segments_truncated >= 1, "{s2:?}");
        assert!(
            s2.log_bytes < s1.log_bytes,
            "truncation shrank the logs: {} -> {}",
            s1.log_bytes,
            s2.log_bytes
        );
        // A second flush advances the epoch again.
        let s3 = c.flush().unwrap();
        assert_eq!(s3.checkpoints, 2);
        assert!(s3.last_checkpoint_start_ts > s2.last_checkpoint_start_ts);
    }
    // Everything the client wrote survives recovery, and the replay work
    // is bounded: segments the flush truncated are gone.
    let (store, report) = mtkv::recover(&dir, &dir).unwrap();
    assert!(report.used_checkpoint, "{report:?}");
    let s = store.session().unwrap();
    for i in [0u32, 137, 299] {
        assert_eq!(
            s.get(format!("dur{i:04}").as_bytes(), Some(&[0])).unwrap()[0],
            vec![0u8; 32]
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_on_in_memory_store_is_all_zero() {
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();
    c.put(b"k", vec![(0, b"v".to_vec())]).unwrap();
    let s = c.stats().unwrap();
    // Everything durability/replication-related is zero; the live
    // per-worker connection counts must still see this one connection.
    assert_eq!(s.worker_conns.iter().sum::<u64>(), 1, "{s:?}");
    let expect = mtnet::StatsReply {
        worker_conns: s.worker_conns.clone(),
        ..Default::default()
    };
    assert_eq!(s, expect);
    // Flush is a harmless no-op without a log dir.
    let s = c.flush().unwrap();
    assert_eq!(s.checkpoints, 0);
    assert_eq!(c.get(b"k", None).unwrap(), Some(vec![b"v".to_vec()]));
}

#[test]
fn sync_is_a_group_commit_barrier_without_a_checkpoint() {
    let dir = std::env::temp_dir().join(format!("mtnet-e2e-sync-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = Store::persistent(&dir).unwrap();
        let server = Server::start(store, "127.0.0.1:0").unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        for i in 0..50u32 {
            c.put(format!("sy{i:03}").as_bytes(), vec![(0, vec![7u8; 64])])
                .unwrap();
        }
        // Sync forces the connection's log: when the reply arrives the
        // bytes are on disk — no polling for the 200 ms group-commit
        // cadence needed — and NO checkpoint ran.
        let s = c.sync().unwrap();
        assert_eq!(s.checkpoints, 0, "sync must not checkpoint: {s:?}");
        assert_eq!(s.last_checkpoint_start_ts, 0);
        assert!(s.log_bytes > 0, "forced log is visible on disk: {s:?}");
        assert!(s.log_segments >= 1);
        // A later flush still runs the full cycle.
        let s2 = c.flush().unwrap();
        assert_eq!(s2.checkpoints, 1);
    }
    // Everything acked by sync survives a crash-style recovery.
    let (store, _) = mtkv::recover(&dir, &dir).unwrap();
    let s = store.session().unwrap();
    for i in [0u32, 25, 49] {
        assert_eq!(
            s.get(format!("sy{i:03}").as_bytes(), Some(&[0])).unwrap()[0],
            vec![7u8; 64]
        );
    }
    drop(s);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sync_mixes_into_batches_and_is_harmless_in_memory() {
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();
    c.queue(&Request::Put {
        key: b"s".to_vec(),
        cols: vec![(0, b"1".to_vec())],
    });
    c.queue(&Request::Sync);
    c.queue(&Request::Get {
        key: b"s".to_vec(),
        cols: None,
    });
    let responses = c.execute_batch().unwrap();
    assert_eq!(responses.len(), 3);
    assert!(matches!(responses[0], Response::PutOk(_)));
    assert!(matches!(responses[1], Response::Stats(_)));
    assert_eq!(responses[2], Response::Value(Some(vec![b"1".to_vec()])));
}

#[test]
fn wire_stats_report_hot_cache_counters() {
    let store = Store::in_memory();
    store.set_session_cache(Some(mtkv::CacheConfig {
        admit_threshold: 1,
        ..mtkv::CacheConfig::default()
    }));
    let server = Server::start(store, "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    c.put(b"hot", vec![(0, b"v".to_vec())]).unwrap();
    // Repeated point gets on one key: the per-connection session's hint
    // cache serves the repeats with zero descent.
    for _ in 0..100 {
        assert_eq!(c.get(b"hot", None).unwrap(), Some(vec![b"v".to_vec()]));
    }
    let s = c.stats().unwrap();
    assert!(s.cache_lookups >= 100, "{s:?}");
    assert!(s.cache_hits > 0, "repeat gets served by hints: {s:?}");
    assert_eq!(s.checkpoints, 0);
}

#[test]
fn admin_requests_mix_into_batches() {
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();
    // Gets / puts / stats interleaved in one batch: runs split around
    // the admin request and responses stay positionally matched.
    c.queue(&Request::Put {
        key: b"a".to_vec(),
        cols: vec![(0, b"1".to_vec())],
    });
    c.queue(&Request::Get {
        key: b"a".to_vec(),
        cols: None,
    });
    c.queue(&Request::Stats);
    c.queue(&Request::Get {
        key: b"a".to_vec(),
        cols: None,
    });
    let responses = c.execute_batch().unwrap();
    assert_eq!(responses.len(), 4);
    assert!(matches!(responses[0], Response::PutOk(_)));
    assert_eq!(responses[1], Response::Value(Some(vec![b"1".to_vec()])));
    assert!(matches!(responses[2], Response::Stats(_)));
    assert_eq!(responses[3], Response::Value(Some(vec![b"1".to_vec()])));
}

#[test]
fn single_ops() {
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();
    assert_eq!(c.get(b"k", None).unwrap(), None);
    let v1 = c
        .put(b"k", vec![(0, b"hello".to_vec()), (1, b"world".to_vec())])
        .unwrap();
    assert!(v1 > 0);
    assert_eq!(
        c.get(b"k", None).unwrap(),
        Some(vec![b"hello".to_vec(), b"world".to_vec()])
    );
    assert_eq!(
        c.get(b"k", Some(vec![1])).unwrap(),
        Some(vec![b"world".to_vec()])
    );
    assert!(c.remove(b"k").unwrap());
    assert!(!c.remove(b"k").unwrap());
    assert_eq!(c.get(b"k", None).unwrap(), None);
}

#[test]
fn batched_queries() {
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();
    for i in 0..100u32 {
        c.queue(&Request::Put {
            key: format!("key{i:03}").into_bytes(),
            cols: vec![(0, i.to_le_bytes().to_vec())],
        });
    }
    let responses = c.execute_batch().unwrap();
    assert_eq!(responses.len(), 100);
    assert!(responses.iter().all(|r| matches!(r, Response::PutOk(_))));
    // Batched gets.
    for i in 0..100u32 {
        c.queue(&Request::Get {
            key: format!("key{i:03}").into_bytes(),
            cols: Some(vec![0]),
        });
    }
    let responses = c.execute_batch().unwrap();
    for (i, r) in responses.iter().enumerate() {
        match r {
            Response::Value(Some(cols)) => assert_eq!(cols[0], (i as u32).to_le_bytes()),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(server.ops_served(), 200);
}

#[test]
fn scans_over_network() {
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();
    for i in 0..50u32 {
        c.put(
            format!("user{i:04}").as_bytes(),
            vec![(0, vec![i as u8]), (1, vec![7])],
        )
        .unwrap();
    }
    let rows = c.scan(b"user0010", 5, Some(vec![0])).unwrap();
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0].0, b"user0010");
    assert_eq!(rows[0].1, vec![vec![10u8]]);
    assert_eq!(rows[4].0, b"user0014");
}

#[test]
fn pipelined_batches() {
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();
    // Keep 4 batches in flight.
    for b in 0..4u32 {
        for i in 0..64u32 {
            c.queue(&Request::Put {
                key: format!("p{b}k{i}").into_bytes(),
                cols: vec![(0, b"x".to_vec())],
            });
        }
        c.send_batch().unwrap();
    }
    assert_eq!(c.in_flight(), 4);
    for _ in 0..4 {
        let rs = c.recv_batch().unwrap();
        assert_eq!(rs.len(), 64);
    }
    assert_eq!(c.in_flight(), 0);
}

#[test]
fn many_concurrent_clients() {
    let server = start_in_memory();
    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..500u32 {
                    c.put(
                        format!("t{t}i{i}").as_bytes(),
                        vec![(0, i.to_le_bytes().to_vec())],
                    )
                    .unwrap();
                }
                for i in 0..500u32 {
                    let got = c
                        .get(format!("t{t}i{i}").as_bytes(), Some(vec![0]))
                        .unwrap();
                    assert_eq!(got.unwrap()[0], i.to_le_bytes());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn persistent_server_recovers() {
    let dir = std::env::temp_dir().join(format!("mtnet-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    {
        let store = Store::persistent(&dir).unwrap();
        let server = Server::start(store, "127.0.0.1:0").unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        for i in 0..200u32 {
            c.put(
                format!("dur{i:04}").as_bytes(),
                vec![(0, i.to_le_bytes().to_vec())],
            )
            .unwrap();
        }
        // Drop client first so the connection session flushes its log.
        drop(c);
    }
    // Allow connection threads to drop their sessions (forcing logs).
    std::thread::sleep(std::time::Duration::from_millis(300));
    let (store, report) = mtkv::recover(&dir, &dir).unwrap();
    assert!(report.replayed >= 190, "most records on disk: {report:?}");
    let s = store.session().unwrap();
    assert_eq!(
        s.get(b"dur0000", Some(&[0])).unwrap()[0],
        0u32.to_le_bytes()
    );
    assert_eq!(
        s.get(b"dur0199", Some(&[0])).unwrap()[0],
        199u32.to_le_bytes()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interleaved_batch_path_matches_sequential_semantics() {
    // Mixed batches — gets, puts (including duplicate keys within one
    // batch), removes, scans — must behave exactly as if executed one at
    // a time in batch order, even though the server routes runs of gets
    // and puts through the interleaved traversal engine.
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();

    // A put run with a duplicate key: per-key order must hold, so the
    // later write wins.
    c.queue(&Request::Put {
        key: b"dup".to_vec(),
        cols: vec![(0, b"first".to_vec())],
    });
    c.queue(&Request::Put {
        key: b"other".to_vec(),
        cols: vec![(0, b"o".to_vec())],
    });
    c.queue(&Request::Put {
        key: b"dup".to_vec(),
        cols: vec![(0, b"second".to_vec())],
    });
    let resp = c.execute_batch().unwrap();
    assert_eq!(resp.len(), 3);
    let versions: Vec<u64> = resp
        .iter()
        .map(|r| match r {
            Response::PutOk(v) => *v,
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    assert!(versions[2] > versions[0], "batch order preserved per key");
    assert_eq!(c.get(b"dup", None).unwrap(), Some(vec![b"second".to_vec()]));

    // A mixed batch: get-run, remove, get-run again; responses stay
    // positionally matched and read-your-writes holds across runs.
    c.queue(&Request::Get {
        key: b"dup".to_vec(),
        cols: None,
    });
    c.queue(&Request::Get {
        key: b"other".to_vec(),
        cols: None,
    });
    c.queue(&Request::Remove {
        key: b"dup".to_vec(),
    });
    c.queue(&Request::Get {
        key: b"dup".to_vec(),
        cols: None,
    });
    c.queue(&Request::Get {
        key: b"missing".to_vec(),
        cols: None,
    });
    let resp = c.execute_batch().unwrap();
    assert_eq!(resp.len(), 5);
    assert_eq!(resp[0], Response::Value(Some(vec![b"second".to_vec()])));
    assert_eq!(resp[1], Response::Value(Some(vec![b"o".to_vec()])));
    assert_eq!(resp[2], Response::RemoveOk(true));
    assert_eq!(resp[3], Response::Value(None), "sees the remove before it");
    assert_eq!(resp[4], Response::Value(None));

    // A large uniform get batch (the multiget fast path) with per-request
    // column selections mixed in.
    let mut put_ops = Vec::new();
    for i in 0..300u32 {
        put_ops.push((
            format!("bulk{i:04}").into_bytes(),
            vec![(0, i.to_le_bytes().to_vec()), (1, b"col1".to_vec())],
        ));
    }
    c.multi_put(put_ops).unwrap();
    for i in 0..300u32 {
        let cols = if i % 2 == 0 { None } else { Some(vec![1]) };
        c.queue(&Request::Get {
            key: format!("bulk{i:04}").into_bytes(),
            cols,
        });
    }
    let resp = c.execute_batch().unwrap();
    for (i, r) in resp.iter().enumerate() {
        match (i % 2, r) {
            (0, Response::Value(Some(cols))) => {
                assert_eq!(cols.len(), 2);
                assert_eq!(cols[0], (i as u32).to_le_bytes());
            }
            (_, Response::Value(Some(cols))) => {
                assert_eq!(cols, &vec![b"col1".to_vec()]);
            }
            (_, other) => panic!("unexpected {other:?}"),
        }
    }

    // The client-side multiget convenience.
    let keys: Vec<Vec<u8>> = (0..40u32)
        .map(|i| format!("bulk{i:04}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let hits = c.multi_get(&refs, Some(vec![0])).unwrap();
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.as_ref().unwrap()[0], (i as u32).to_le_bytes());
    }
}

#[test]
fn zero_copy_batch_encoding_matches_owned_path() {
    // The borrowed serializer (`execute_batch_into`) must produce byte-
    // identical wire output to encoding the owned `execute_batch`
    // responses, across every request kind, duplicate-put splits, column
    // selections, and misses.
    let store = Store::in_memory();
    let session = store.session().unwrap();
    for i in 0..64u32 {
        session.put(
            format!("zc{i:03}").as_bytes(),
            &[(0, &i.to_le_bytes()[..]), (1, b"second")],
        );
    }
    let batch = || -> Vec<Request> {
        let mut reqs = Vec::new();
        for i in 0..8u32 {
            reqs.push(Request::Get {
                key: format!("zc{i:03}").into_bytes(),
                cols: if i % 2 == 0 {
                    None
                } else {
                    Some(vec![1, 0, 9])
                },
            });
        }
        reqs.push(Request::Get {
            key: b"missing".to_vec(),
            cols: None,
        });
        reqs.push(Request::Scan {
            key: b"zc".to_vec(),
            count: 5,
            cols: Some(vec![0]),
            resume: None,
        });
        reqs.push(Request::Put {
            key: b"dup".to_vec(),
            cols: vec![(0, b"a".to_vec())],
        });
        reqs.push(Request::Put {
            key: b"dup".to_vec(),
            cols: vec![(0, b"b".to_vec())],
        });
        reqs.push(Request::Remove {
            key: b"zc000".to_vec(),
        });
        reqs
    };
    // Owned path first (it mutates state), then reset the mutated keys
    // and replay the same batch through the borrowed path on a twin
    // store so both observe identical state.
    let owned_store = Store::in_memory();
    let owned_session = owned_store.session().unwrap();
    for i in 0..64u32 {
        owned_session.put(
            format!("zc{i:03}").as_bytes(),
            &[(0, &i.to_le_bytes()[..]), (1, b"second")],
        );
    }
    let owned_resps = mtnet::execute_batch(&owned_session, batch());
    let mut owned_bytes = Vec::new();
    for r in &owned_resps {
        r.encode(&mut owned_bytes);
    }
    let mut borrowed_bytes = Vec::new();
    let written = mtnet::execute_batch_into(&session, batch(), &mut borrowed_bytes);
    assert_eq!(written, owned_resps.len());
    // PutOk carries a store-global version; those differ between the twin
    // stores only if version draws diverge — identical op sequences keep
    // them aligned, so the full byte streams must match.
    assert_eq!(owned_bytes, borrowed_bytes);
}

#[test]
fn stats_aggregate_every_connections_cache_counters() {
    // A `Stats` reply must reflect ALL connections' cache traffic as of
    // the request: the store flushes every live session's batched local
    // counters before snapshotting the shared sink (the old behavior
    // flushed only the requesting connection's, so another connection's
    // traffic was invisible until it crossed its own 256-event flush
    // threshold or closed).
    let store = Store::in_memory();
    store.set_session_cache(Some(mtkv::CacheConfig {
        admit_threshold: 1,
        adaptive_bypass: false,
        ..mtkv::CacheConfig::default()
    }));
    let server = Server::start(store, "127.0.0.1:0").unwrap();
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();

    for i in 0..20u32 {
        a.put(format!("agg{i:02}").as_bytes(), vec![(0, b"v".to_vec())])
            .unwrap();
    }
    // Reads on BOTH connections — well under the 256-event batch flush.
    for _ in 0..2 {
        for i in 0..20u32 {
            let k = format!("agg{i:02}");
            assert!(a.get(k.as_bytes(), None).unwrap().is_some());
            assert!(b.get(k.as_bytes(), None).unwrap().is_some());
        }
    }
    // One Stats from connection A must already see B's lookups too:
    // 80 read lookups total across both connections.
    let s = a.stats().unwrap();
    assert!(
        s.cache_lookups >= 80,
        "stats must aggregate both connections' lookups: {s:?}"
    );
    assert!(s.cache_hits > 0, "repeat gets hit: {s:?}");
    // Writes through cached anchors are visible in the write counters.
    for i in 0..20u32 {
        a.put(format!("agg{i:02}").as_bytes(), vec![(0, b"w".to_vec())])
            .unwrap();
    }
    let s = b.stats().unwrap();
    assert!(
        s.cache_write_hits > 0,
        "hot-key updates must be served by write anchors: {s:?}"
    );
}

#[test]
fn scan_resume_token_streams_a_range_in_chunks() {
    let store = Store::in_memory();
    store.set_session_cache(Some(mtkv::CacheConfig::default()));
    let server = Server::start(store, "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    for i in 0..500u32 {
        c.put(
            format!("sr{i:04}").as_bytes(),
            vec![(0, i.to_le_bytes().to_vec())],
        )
        .unwrap();
    }
    let full = c.scan(b"sr", 10_000, None).unwrap();
    assert_eq!(full.len(), 500);

    // Stream the same range in chunks under one token: every chunk
    // continues exactly where the previous stopped, with no duplicates
    // and no gaps, until a short chunk signals exhaustion.
    let mut streamed = Vec::new();
    let mut first = true;
    loop {
        let rows = if first {
            first = false;
            c.scan_start(b"sr", 64, None, 7).unwrap()
        } else {
            c.scan_resume(b"sr", 64, None, 7).unwrap()
        };
        let n = rows.len();
        streamed.extend(rows);
        if n < 64 {
            break;
        }
    }
    assert_eq!(streamed, full, "chunked token stream equals one big scan");

    // Interleaved second stream under a different token is independent.
    let first_a = c.scan_start(b"sr0100", 5, None, 1).unwrap();
    let first_b = c.scan_start(b"sr0200", 5, None, 2).unwrap();
    let second_a = c.scan_resume(b"", 5, None, 1).unwrap();
    assert_eq!(first_a[0].0, b"sr0100");
    assert_eq!(first_b[0].0, b"sr0200");
    assert_eq!(second_a[0].0, b"sr0105", "token 1 continued, key ignored");

    // The resumes actually took the validated-anchor fast path.
    let s = c.stats().unwrap();
    assert!(
        s.cache_scan_resumes > 0,
        "token chunks must resume at anchors: {s:?}"
    );
}

#[test]
fn scan_resume_token_survives_interleaved_writes() {
    let store = Store::in_memory();
    store.set_session_cache(Some(mtkv::CacheConfig::default()));
    let server = Server::start(store, "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    for i in (0..400u32).step_by(2) {
        c.put(format!("iw{i:04}").as_bytes(), vec![(0, b"v".to_vec())])
            .unwrap();
    }
    let mut seen: Vec<Vec<u8>> = Vec::new();
    let mut round = 0u32;
    loop {
        let rows = if round == 0 {
            c.scan_start(b"iw", 16, None, 99).unwrap()
        } else {
            c.scan_resume(b"iw", 16, None, 99).unwrap()
        };
        let n = rows.len();
        seen.extend(rows.into_iter().map(|(k, _)| k));
        // Churn between chunks: inserts ahead/behind and removes force
        // splits and anchor invalidations mid-stream.
        c.put(
            format!("iw{:04}", (round * 37) % 400 + 1).as_bytes(),
            vec![(0, b"x".to_vec())],
        )
        .unwrap();
        c.remove(format!("iw{:04}", (round * 26) % 100).as_bytes())
            .unwrap();
        round += 1;
        if n < 16 {
            break;
        }
    }
    // Non-atomic scan guarantees hold across resumed chunks: strict
    // order, no duplicates.
    for w in seen.windows(2) {
        assert!(
            w[0] < w[1],
            "resumed stream reordered: {:?} {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn oversized_frame_gets_typed_error_then_clean_close() {
    use std::io::Write;
    let server = start_in_memory();
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    // Declared frame length far past the 256 MiB cap. The old behavior
    // was a silent drop: the worker marked the connection dead and the
    // client hung waiting for a reply that never came.
    s.write_all(&(300u32 << 20).to_le_bytes()).unwrap();
    s.write_all(&1u32.to_le_bytes()).unwrap();
    s.flush().unwrap();
    let mut r = std::io::BufReader::new(s.try_clone().unwrap());
    let (count, body) = mtnet::proto::read_batch(&mut r)
        .unwrap()
        .expect("a typed error batch must precede the close");
    assert_eq!(count, 1);
    let mut p = &body[..];
    match Response::decode(&mut p) {
        Some(Response::Err(msg)) => {
            assert!(msg.contains("bad"), "error names the cause: {msg}")
        }
        other => panic!("expected Response::Err, got {other:?}"),
    }
    // Then a clean EOF — never a hung connection.
    assert!(
        mtnet::proto::read_batch(&mut r).unwrap().is_none(),
        "server closes cleanly after the error reply"
    );
}

#[test]
fn undecodable_request_gets_typed_error_after_earlier_frames() {
    use std::io::Write;
    let server = start_in_memory();
    let mut good = Client::connect(server.addr()).unwrap();
    good.put(b"poison/keep", vec![(0, b"v".to_vec())]).unwrap();

    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    // First a valid single-Get frame, then a frame whose body is not a
    // decodable request. The valid frame's reply must still arrive
    // before the typed error and the close (drain-then-close).
    let mut body = Vec::new();
    Request::Get {
        key: b"poison/keep".to_vec(),
        cols: None,
    }
    .encode(&mut body);
    s.write_all(&mtnet::proto::frame_batch(1, &body)).unwrap();
    let garbage = [0xFFu8, 0xEE, 0xDD];
    s.write_all(&mtnet::proto::frame_batch(1, &garbage))
        .unwrap();
    s.flush().unwrap();

    let mut r = std::io::BufReader::new(s.try_clone().unwrap());
    let (count, body) = mtnet::proto::read_batch(&mut r)
        .unwrap()
        .expect("get reply");
    assert_eq!(count, 1);
    let mut p = &body[..];
    assert!(
        matches!(Response::decode(&mut p), Some(Response::Value(Some(_)))),
        "frame parsed before the poison still gets its reply"
    );
    let (count, body) = mtnet::proto::read_batch(&mut r)
        .unwrap()
        .expect("error batch");
    assert_eq!(count, 1);
    let mut p = &body[..];
    match Response::decode(&mut p) {
        Some(Response::Err(msg)) => assert!(msg.contains("bad"), "{msg}"),
        other => panic!("expected Response::Err, got {other:?}"),
    }
    assert!(mtnet::proto::read_batch(&mut r).unwrap().is_none());
}

#[test]
fn scan_tokens_do_not_survive_reconnect() {
    let server = start_in_memory();
    let mut a = Client::connect(server.addr()).unwrap();
    for i in 0..100u32 {
        a.put(format!("tk{i:04}").as_bytes(), vec![(0, b"v".to_vec())])
            .unwrap();
    }
    let rows = a.scan_start(b"tk", 10, None, 5).unwrap();
    assert_eq!(rows.len(), 10);
    drop(a);

    // A reconnecting client presenting the old token must get a clean
    // typed error — never another connection's cursor position.
    let mut b = Client::connect(server.addr()).unwrap();
    let err = b.scan_resume(b"tk", 10, None, 5).unwrap_err();
    assert!(
        err.to_string().contains("unknown scan token"),
        "strict resume across reconnect: {err}"
    );
    // Recovery path: a fresh Start at the continuation key works.
    let rows = b.scan_start(b"tk0010", 10, None, 5).unwrap();
    assert_eq!(rows[0].0, b"tk0010");
}

#[test]
fn evicted_scan_token_errors_instead_of_restarting() {
    let server = start_in_memory();
    let mut c = Client::connect(server.addr()).unwrap();
    for i in 0..100u32 {
        c.put(format!("ev{i:04}").as_bytes(), vec![(0, b"v".to_vec())])
            .unwrap();
    }
    // Open one stream, then push it past the per-connection cursor cap.
    c.scan_start(b"ev", 5, None, 0).unwrap();
    for t in 1..=64u64 {
        c.scan_start(b"ev", 5, None, t).unwrap();
    }
    let err = c.scan_resume(b"", 5, None, 0).unwrap_err();
    assert!(
        err.to_string().contains("unknown scan token"),
        "evicted token must error, not restart: {err}"
    );
    let s = c.stats().unwrap();
    assert!(s.cache_scan_evictions > 0, "{s:?}");
}
