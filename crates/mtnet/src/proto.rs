//! Wire protocol for the Masstree server (§3 of the paper).
//!
//! "A single client message can include many queries": requests travel in
//! length-prefixed **batches**, and the client library pipelines batches,
//! which §7 shows is vital for small-operation throughput. All integers
//! little-endian.
//!
//! ```text
//! batch  := u32 byte-length, u32 count, message*
//! get    := 0x01, key, colset
//! put    := 0x02, key, u16 n, (u16 col, bytes)*
//! remove := 0x03, key
//! scan   := 0x04, key, u32 count, colset,
//!           resume(u8 0 | u8 1 + u64 token | u8 2 + u64 token)
//! stats  := 0x05
//! flush  := 0x06
//! sync   := 0x07
//! statsex:= 0x08
//! key    := u32 len, bytes        colset := u16 n (0xffff = all), u16*
//! ```
//!
//! `stats`, `flush` and `sync` are the admin requests: `stats` reports
//! the server's checkpoint epoch, log footprint and hot-cache counters;
//! `flush` forces this connection's log, runs a full durability cycle
//! (checkpoint + segment truncation + checkpoint pruning) and reports
//! the stats afterwards — tests use it to wait for durability events
//! instead of sleeping; `sync` is the lightweight group-commit barrier:
//! it only forces this connection's log (no checkpoint, no truncation),
//! serving clients that just want durability confirmation of their own
//! writes without paying for a whole cycle.

/// How a `Scan` request relates to a server-side cursor token.
///
/// The two variants make the client's intent explicit on the wire so a
/// reconnected client can never silently adopt another connection's
/// cursor (tokens are connection-scoped, and a fresh connection starts
/// with none):
///
/// * [`ScanResume::Start`] — begin (or restart) a stream under this
///   token: the server descends from the request key and **overwrites**
///   any cursor previously registered under the token.
/// * [`ScanResume::Resume`] — continue a stream: the server requires a
///   live cursor under the token and replies [`Response::Err`]
///   (`"unknown scan token"`) when there is none — first chunk never
///   sent `Start`, cursor evicted at the per-connection LRU cap, or the
///   connection was re-established. The request key is *not* used as a
///   fallback start; the client must recover explicitly with `Start` at
///   its continuation key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanResume {
    /// Register/overwrite the cursor under the token, starting at the
    /// request key.
    Start(u64),
    /// Continue from the cursor under the token; error if absent.
    Resume(u64),
}

impl ScanResume {
    /// The client-chosen token, whichever the variant.
    pub fn token(self) -> u64 {
        match self {
            ScanResume::Start(t) | ScanResume::Resume(t) => t,
        }
    }
}

/// A client request (one query within a batch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `get_c(k)`: fetch the listed columns (`None` = whole value).
    Get {
        key: Vec<u8>,
        cols: Option<Vec<u16>>,
    },
    /// `put_c(k, v)`: atomically set the listed columns.
    Put {
        key: Vec<u8>,
        cols: Vec<(u16, Vec<u8>)>,
    },
    /// `remove(k)`.
    Remove { key: Vec<u8> },
    /// `getrange_c(k, n)`, optionally resumable: a client streaming a
    /// long range in chunks opens the stream with
    /// [`ScanResume::Start`] and continues it with
    /// [`ScanResume::Resume`] under the same client-chosen token. The
    /// server keeps a per-connection [`ScanCursor`] (validated anchor
    /// plus bound) under that token — `Resume` chunks re-enter the tree
    /// at the remembered border node instead of descending from the
    /// root. `Resume` with no live cursor (evicted, never started, or
    /// a new connection) is a typed error, never a silent restart —
    /// the client recovers with `Start` at its continuation key (one
    /// past the last row received), costing one descent. Tokens are
    /// connection-scoped.
    ///
    /// [`ScanCursor`]: mtkv::ScanCursor
    Scan {
        key: Vec<u8>,
        count: u32,
        cols: Option<Vec<u16>>,
        resume: Option<ScanResume>,
    },
    /// Durability stats snapshot (checkpoint epoch, log bytes).
    Stats,
    /// Force this connection's log, run a full durability cycle
    /// (checkpoint + truncate + prune), and report the stats afterwards.
    /// Replies [`Response::Err`] instead when durability could not be
    /// guaranteed (dead log, failed checkpoint).
    Flush,
    /// Group-commit barrier only: force this connection's log and report
    /// the stats — no checkpoint, no truncation. Replies
    /// [`Response::Err`] when the log is dead (durability cannot be
    /// confirmed).
    Sync,
    /// Extended observability snapshot: merged per-op-kind latency
    /// histograms and tracing gauges ([`Response::StatsEx`]). Unlike
    /// `Stats` this carries full distributions, so clients can render
    /// p50/p90/p99/p999 and deltas without server-side aggregation.
    StatsEx,
}

/// The durability snapshot carried by [`Response::Stats`]; mirrors
/// `mtkv::DurabilityStats` plus replication (`mtkv::ReplStats`) and
/// per-worker connection counters.
///
/// Wire format is **self-describing** so mixed-version client/server
/// pairs degrade gracefully instead of misparsing when a release adds
/// counters:
///
/// ```text
/// stats_reply := u16 nfields, u64 × nfields, u32 nworkers, u64 × nworkers
/// ```
///
/// The fixed `u64` counters appear in declaration order and are only
/// ever **appended** to; a decoder fills the fields it knows, zeroes
/// the ones an older peer didn't send, and skips the ones a newer peer
/// added.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Checkpoints completed this server lifetime (the epoch tests wait
    /// on).
    pub checkpoints: u64,
    /// `start_ts` of the newest completed checkpoint (0 if none).
    pub last_checkpoint_start_ts: u64,
    /// Total bytes across live log segments.
    pub log_bytes: u64,
    /// Live log segment files.
    pub log_segments: u64,
    /// Segments deleted by checkpoint truncation this lifetime.
    pub segments_truncated: u64,
    /// Hot-path cache tier: hint-table lookups across all sessions.
    pub cache_lookups: u64,
    /// Hot-path cache tier: lookups served by a validated hint (zero
    /// descent).
    pub cache_hits: u64,
    /// Hot-path cache tier: hints that failed validation (split, delete,
    /// reuse) and fell back to a full descent.
    pub cache_stale: u64,
    /// Validated-anchor write path: writes served through a cached
    /// anchor (zero descent).
    pub cache_write_hits: u64,
    /// Validated-anchor write path: writes whose anchor failed
    /// validation and fell back to a full descent.
    pub cache_write_stale: u64,
    /// Resumable scans: chunks resumed at a validated anchor (zero
    /// descent).
    pub cache_scan_resumes: u64,
    /// Resumable scans: token cursors evicted least-recently-used at the
    /// per-connection cap (each eviction costs its stream one descent on
    /// resume).
    pub cache_scan_evictions: u64,
    /// Replication role: 0 = none, 1 = primary, 2 = follower.
    pub repl_role: u64,
    /// Primary: live (un-shed) followers currently attached.
    pub repl_followers: u64,
    /// Bounded-staleness lag in **bytes**. On the primary: the worst
    /// (largest) gap between total durable log bytes and any live
    /// follower's acked apply watermark. On a follower: bytes between
    /// the primary's advertised durable total and what this replica has
    /// applied.
    pub repl_lag_bytes: u64,
    /// Bounded-staleness lag in **primary clock microseconds**: how far
    /// behind the primary's write timeline the laggiest replica (on the
    /// primary) or this replica (on a follower) is. 0 when caught up.
    pub repl_lag_ts_us: u64,
    /// Value tier: reads that resolved an indirect (value-separated)
    /// pointer record. 0 when value separation is off.
    pub indirect_reads: u64,
    /// Value tier: indirect reads served from the decoded-value cache.
    pub value_cache_hits: u64,
    /// Value tier: payload bytes relocated by segment GC this lifetime.
    pub gc_rewritten_bytes: u64,
    /// Value tier: live (referenced) bytes across all value segments.
    pub live_segment_bytes: u64,
    /// Value tier: batched cold resolutions (`resolve_many` calls) that
    /// missed the cache and issued clustered segment reads.
    pub readahead_batches: u64,
    /// Value tier: bytes fetched by clustered (coalesced) segment reads
    /// — payloads plus the gaps dragged along with them.
    pub coalesced_bytes: u64,
    /// Value tier: cold misses that shared another reader's in-flight
    /// segment read instead of issuing their own.
    pub shared_misses: u64,
    /// Live connection count per event-loop worker (index = worker id);
    /// the accept-time rebalancer keeps these near-equal under uniform
    /// load. Empty when the backend is not the event-loop server.
    pub worker_conns: Vec<u64>,
}

impl StatsReply {
    /// Fixed `u64` counters this version knows, in wire order. New
    /// counters are appended (never inserted or removed), and the wire
    /// carries the sender's count so either side can be older.
    const NFIELDS: u16 = 23;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&Self::NFIELDS.to_le_bytes());
        for v in [
            self.checkpoints,
            self.last_checkpoint_start_ts,
            self.log_bytes,
            self.log_segments,
            self.segments_truncated,
            self.cache_lookups,
            self.cache_hits,
            self.cache_stale,
            self.cache_write_hits,
            self.cache_write_stale,
            self.cache_scan_resumes,
            self.cache_scan_evictions,
            self.repl_role,
            self.repl_followers,
            self.repl_lag_bytes,
            self.repl_lag_ts_us,
            self.indirect_reads,
            self.value_cache_hits,
            self.gc_rewritten_bytes,
            self.live_segment_bytes,
            self.readahead_batches,
            self.coalesced_bytes,
            self.shared_misses,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.worker_conns.len() as u32).to_le_bytes());
        for v in &self.worker_conns {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(p: &mut &[u8]) -> Option<StatsReply> {
        let nf = u16::from_le_bytes(p.get(..2)?.try_into().ok()?) as usize;
        *p = &p[2..];
        // Fields an older sender omitted stay zero; fields a newer
        // sender appended are consumed and dropped.
        let mut f = [0u64; Self::NFIELDS as usize];
        for j in 0..nf {
            let v = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
            *p = &p[8..];
            if let Some(slot) = f.get_mut(j) {
                *slot = v;
            }
        }
        let n = u32::from_le_bytes(p.get(..4)?.try_into().ok()?) as usize;
        *p = &p[4..];
        let mut worker_conns = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            worker_conns.push(u64::from_le_bytes(p.get(..8)?.try_into().ok()?));
            *p = &p[8..];
        }
        Some(StatsReply {
            checkpoints: f[0],
            last_checkpoint_start_ts: f[1],
            log_bytes: f[2],
            log_segments: f[3],
            segments_truncated: f[4],
            cache_lookups: f[5],
            cache_hits: f[6],
            cache_stale: f[7],
            cache_write_hits: f[8],
            cache_write_stale: f[9],
            cache_scan_resumes: f[10],
            cache_scan_evictions: f[11],
            repl_role: f[12],
            repl_followers: f[13],
            repl_lag_bytes: f[14],
            repl_lag_ts_us: f[15],
            indirect_reads: f[16],
            value_cache_hits: f[17],
            gc_rewritten_bytes: f[18],
            live_segment_bytes: f[19],
            readahead_batches: f[20],
            coalesced_bytes: f[21],
            shared_misses: f[22],
            worker_conns,
        })
    }
}

/// The observability snapshot carried by [`Response::StatsEx`]: one
/// merged latency histogram per [`mtobs::Kind`] plus tracing gauges.
///
/// Wire format is sparse — latency histograms are mostly zeros (156
/// log-spaced buckets, a handful populated), so each kind encodes only
/// its nonzero buckets:
///
/// ```text
/// statsex_reply := u64 traces_sampled, u64 slow_ops,
///                  u8 nkinds, kind_hist*
/// kind_hist     := u8 kind, u64 sum_ns, u16 nbuckets,
///                  (u8 bucket_idx, u64 count)*
/// ```
///
/// Kinds whose histogram is entirely empty are omitted; the decoder
/// reconstructs them as empty, so encode→decode is identity on any
/// snapshot with [`mtobs::Kind::COUNT`] histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsExReply {
    /// Merged per-kind histograms and gauges (index = `mtobs::Kind`).
    pub snap: mtobs::Snapshot,
}

impl Default for StatsExReply {
    fn default() -> Self {
        StatsExReply {
            snap: mtobs::Snapshot::empty(),
        }
    }
}

impl StatsExReply {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.snap.traces_sampled.to_le_bytes());
        out.extend_from_slice(&self.snap.slow_ops.to_le_bytes());
        let kinds_mark = out.len();
        out.push(0);
        let mut nkinds = 0u8;
        for (k, h) in self.snap.hists.iter().enumerate() {
            if h.sum == 0 && h.count() == 0 {
                continue;
            }
            out.push(k as u8);
            out.extend_from_slice(&h.sum.to_le_bytes());
            let nb_mark = out.len();
            out.extend_from_slice(&0u16.to_le_bytes());
            let mut nb = 0u16;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c != 0 {
                    out.push(i as u8);
                    out.extend_from_slice(&c.to_le_bytes());
                    nb += 1;
                }
            }
            out[nb_mark..nb_mark + 2].copy_from_slice(&nb.to_le_bytes());
            nkinds += 1;
        }
        out[kinds_mark] = nkinds;
    }

    fn decode(p: &mut &[u8]) -> Option<StatsExReply> {
        let mut snap = mtobs::Snapshot::empty();
        snap.traces_sampled = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
        *p = &p[8..];
        snap.slow_ops = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
        *p = &p[8..];
        let nkinds = *p.first()?;
        *p = &p[1..];
        for _ in 0..nkinds {
            let k = *p.first()? as usize;
            *p = &p[1..];
            let sum = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
            *p = &p[8..];
            let nb = u16::from_le_bytes(p.get(..2)?.try_into().ok()?);
            *p = &p[2..];
            let h = snap.hists.get_mut(k)?;
            h.sum = sum;
            for _ in 0..nb {
                let i = *p.first()? as usize;
                *p = &p[1..];
                let c = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
                *p = &p[8..];
                *h.buckets.get_mut(i)? = c;
            }
        }
        Some(StatsExReply { snap })
    }
}

/// A server response (positionally matched to the request batch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Get result: `None` = key absent.
    Value(Option<Vec<Vec<u8>>>),
    /// Put result: the value version assigned.
    PutOk(u64),
    /// Remove result: whether the key existed.
    RemoveOk(bool),
    /// Scan result rows.
    Rows(Vec<(Vec<u8>, Vec<Vec<u8>>)>),
    /// Durability stats (reply to `Stats` and `Flush`).
    Stats(StatsReply),
    /// Observability snapshot (reply to `StatsEx`): per-kind latency
    /// histograms plus tracing gauges.
    StatsEx(StatsExReply),
    /// Request failed server-side: a `Flush`/`Sync` whose log is dead
    /// (I/O error) or whose durability cycle failed — so a client never
    /// receives a stats reply acknowledging durability that did not
    /// happen — a `Scan` resuming an unknown token, or a batch frame
    /// the server refused to parse (oversized or corrupt).
    Err(String),
    /// The request is a write but this server is a read-only replica.
    /// The payload names the primary's client address when known
    /// (`"read-only replica; primary at <addr>"`) so clients can
    /// re-target without out-of-band configuration.
    Redirect(String),
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn get_bytes(p: &mut &[u8]) -> Option<Vec<u8>> {
    let len = u32::from_le_bytes(p.get(..4)?.try_into().ok()?) as usize;
    *p = &p[4..];
    let b = p.get(..len)?.to_vec();
    *p = &p[len..];
    Some(b)
}

fn put_colset(out: &mut Vec<u8>, cols: &Option<Vec<u16>>) {
    match cols {
        None => out.extend_from_slice(&0xffffu16.to_le_bytes()),
        Some(ids) => {
            out.extend_from_slice(&(ids.len() as u16).to_le_bytes());
            for id in ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
    }
}

fn get_colset(p: &mut &[u8]) -> Option<Option<Vec<u16>>> {
    let n = u16::from_le_bytes(p.get(..2)?.try_into().ok()?);
    *p = &p[2..];
    if n == 0xffff {
        return Some(None);
    }
    let mut ids = Vec::with_capacity(n as usize);
    for _ in 0..n {
        ids.push(u16::from_le_bytes(p.get(..2)?.try_into().ok()?));
        *p = &p[2..];
    }
    Some(Some(ids))
}

impl Request {
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Get { key, cols } => {
                out.push(0x01);
                put_bytes(out, key);
                put_colset(out, cols);
            }
            Request::Put { key, cols } => {
                out.push(0x02);
                put_bytes(out, key);
                out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
                for (id, data) in cols {
                    out.extend_from_slice(&id.to_le_bytes());
                    put_bytes(out, data);
                }
            }
            Request::Remove { key } => {
                out.push(0x03);
                put_bytes(out, key);
            }
            Request::Scan {
                key,
                count,
                cols,
                resume,
            } => {
                out.push(0x04);
                put_bytes(out, key);
                out.extend_from_slice(&count.to_le_bytes());
                put_colset(out, cols);
                match resume {
                    None => out.push(0),
                    Some(ScanResume::Resume(token)) => {
                        out.push(1);
                        out.extend_from_slice(&token.to_le_bytes());
                    }
                    Some(ScanResume::Start(token)) => {
                        out.push(2);
                        out.extend_from_slice(&token.to_le_bytes());
                    }
                }
            }
            Request::Stats => out.push(0x05),
            Request::Flush => out.push(0x06),
            Request::Sync => out.push(0x07),
            Request::StatsEx => out.push(0x08),
        }
    }

    pub fn decode(p: &mut &[u8]) -> Option<Request> {
        let op = *p.first()?;
        *p = &p[1..];
        match op {
            0x01 => Some(Request::Get {
                key: get_bytes(p)?,
                cols: get_colset(p)?,
            }),
            0x02 => {
                let key = get_bytes(p)?;
                let n = u16::from_le_bytes(p.get(..2)?.try_into().ok()?) as usize;
                *p = &p[2..];
                let mut cols = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = u16::from_le_bytes(p.get(..2)?.try_into().ok()?);
                    *p = &p[2..];
                    cols.push((id, get_bytes(p)?));
                }
                Some(Request::Put { key, cols })
            }
            0x03 => Some(Request::Remove { key: get_bytes(p)? }),
            0x04 => {
                let key = get_bytes(p)?;
                let count = u32::from_le_bytes(p.get(..4)?.try_into().ok()?);
                *p = &p[4..];
                let cols = get_colset(p)?;
                let tag = *p.first()?;
                *p = &p[1..];
                let resume = match tag {
                    0 => None,
                    1 | 2 => {
                        let t = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
                        *p = &p[8..];
                        Some(if tag == 1 {
                            ScanResume::Resume(t)
                        } else {
                            ScanResume::Start(t)
                        })
                    }
                    _ => return None,
                };
                Some(Request::Scan {
                    key,
                    count,
                    cols,
                    resume,
                })
            }
            0x05 => Some(Request::Stats),
            0x06 => Some(Request::Flush),
            0x07 => Some(Request::Sync),
            0x08 => Some(Request::StatsEx),
            _ => None,
        }
    }
}

impl Response {
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Value(None) => out.push(0x80),
            Response::Value(Some(cols)) => {
                out.push(0x81);
                out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
                for c in cols {
                    put_bytes(out, c);
                }
            }
            Response::PutOk(version) => {
                out.push(0x82);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Response::RemoveOk(existed) => {
                out.push(0x83);
                out.push(*existed as u8);
            }
            Response::Rows(rows) => {
                out.push(0x84);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for (key, cols) in rows {
                    put_bytes(out, key);
                    out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
                    for c in cols {
                        put_bytes(out, c);
                    }
                }
            }
            Response::Stats(stats) => {
                out.push(0x85);
                stats.encode(out);
            }
            Response::Err(msg) => {
                out.push(0x86);
                put_bytes(out, msg.as_bytes());
            }
            Response::Redirect(msg) => {
                out.push(0x87);
                put_bytes(out, msg.as_bytes());
            }
            Response::StatsEx(stats) => {
                out.push(0x88);
                stats.encode(out);
            }
        }
    }

    pub fn decode(p: &mut &[u8]) -> Option<Response> {
        let op = *p.first()?;
        *p = &p[1..];
        match op {
            0x80 => Some(Response::Value(None)),
            0x81 => {
                let n = u16::from_le_bytes(p.get(..2)?.try_into().ok()?) as usize;
                *p = &p[2..];
                let mut cols = Vec::with_capacity(n);
                for _ in 0..n {
                    cols.push(get_bytes(p)?);
                }
                Some(Response::Value(Some(cols)))
            }
            0x82 => {
                let v = u64::from_le_bytes(p.get(..8)?.try_into().ok()?);
                *p = &p[8..];
                Some(Response::PutOk(v))
            }
            0x83 => {
                let e = *p.first()?;
                *p = &p[1..];
                Some(Response::RemoveOk(e != 0))
            }
            0x84 => {
                let n = u32::from_le_bytes(p.get(..4)?.try_into().ok()?) as usize;
                *p = &p[4..];
                let mut rows = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let key = get_bytes(p)?;
                    let nc = u16::from_le_bytes(p.get(..2)?.try_into().ok()?) as usize;
                    *p = &p[2..];
                    let mut cols = Vec::with_capacity(nc);
                    for _ in 0..nc {
                        cols.push(get_bytes(p)?);
                    }
                    rows.push((key, cols));
                }
                Some(Response::Rows(rows))
            }
            0x85 => Some(Response::Stats(StatsReply::decode(p)?)),
            0x86 => Some(Response::Err(
                String::from_utf8_lossy(&get_bytes(p)?).into_owned(),
            )),
            0x87 => Some(Response::Redirect(
                String::from_utf8_lossy(&get_bytes(p)?).into_owned(),
            )),
            0x88 => Some(Response::StatsEx(StatsExReply::decode(p)?)),
            _ => None,
        }
    }
}

/// Frames a batch of encoded messages: `u32 len, u32 count, body`.
pub fn frame_batch(count: usize, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32 + 4).to_le_bytes());
    out.extend_from_slice(&(count as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

// ---- zero-copy response writers ----
//
// The server's hot read path serializes responses *directly* from
// value slices borrowed under the store's epoch guard into the
// connection's reusable output buffer. These helpers write the same
// wire bytes as `Response::encode` / `frame_batch` without ever
// building a `Response` (and its owned `Vec<Vec<u8>>` payload copies):
// the frame header is reserved up front and **length-patched** once the
// batch is fully encoded.

/// Reserves a batch frame header (`u32 len, u32 count`) in `out`,
/// returning the patch mark to pass to [`finish_batch`].
pub fn begin_batch(out: &mut Vec<u8>) -> usize {
    let mark = out.len();
    out.extend_from_slice(&[0u8; 8]);
    mark
}

/// Patches the header reserved by [`begin_batch`] once the `count`
/// responses have been encoded after it. The resulting bytes are
/// exactly what `frame_batch(count, body)` would have produced.
#[allow(clippy::ptr_arg)] // symmetry with begin_batch, which must grow the Vec
pub fn finish_batch(out: &mut Vec<u8>, mark: usize, count: usize) {
    let len = (out.len() - mark - 4) as u32;
    out[mark..mark + 4].copy_from_slice(&len.to_le_bytes());
    out[mark + 4..mark + 8].copy_from_slice(&(count as u32).to_le_bytes());
}

/// Encodes `Response::Value(None)` (key absent).
pub fn write_value_none(out: &mut Vec<u8>) {
    out.push(0x80);
}

/// Encodes `Response::Value(Some(..))` straight from borrowed column
/// slices. `ncols` must equal the number of items `cols` yields.
pub fn write_value_borrowed<'a>(
    out: &mut Vec<u8>,
    ncols: usize,
    cols: impl Iterator<Item = &'a [u8]>,
) {
    out.push(0x81);
    out.extend_from_slice(&(ncols as u16).to_le_bytes());
    let mut written = 0usize;
    for c in cols {
        put_bytes(out, c);
        written += 1;
    }
    debug_assert_eq!(written, ncols, "column count must match the iterator");
}

/// Incremental encoder for `Response::Rows`, writing each row straight
/// from borrowed key/column slices; the row count is length-patched on
/// [`RowsWriter::finish`].
pub struct RowsWriter<'a> {
    out: &'a mut Vec<u8>,
    mark: usize,
    rows: u32,
}

impl<'a> RowsWriter<'a> {
    pub fn begin(out: &'a mut Vec<u8>) -> RowsWriter<'a> {
        out.push(0x84);
        let mark = out.len();
        out.extend_from_slice(&0u32.to_le_bytes());
        RowsWriter { out, mark, rows: 0 }
    }

    /// Appends one row. `ncols` must equal the number of items `cols`
    /// yields.
    pub fn push_row<'b>(&mut self, key: &[u8], ncols: usize, cols: impl Iterator<Item = &'b [u8]>) {
        put_bytes(self.out, key);
        self.out.extend_from_slice(&(ncols as u16).to_le_bytes());
        let mut written = 0usize;
        for c in cols {
            put_bytes(self.out, c);
            written += 1;
        }
        debug_assert_eq!(written, ncols, "column count must match the iterator");
        self.rows += 1;
    }

    /// Patches the row count into the header written by `begin`.
    pub fn finish(self) {
        self.out[self.mark..self.mark + 4].copy_from_slice(&self.rows.to_le_bytes());
    }
}

/// Parses one complete batch frame from the front of `buf` without
/// consuming or copying: `Ok(Some((consumed, count)))` when a whole
/// frame is present — its `count` messages are the bytes
/// `buf[8..consumed]` — `Ok(None)` when more bytes are needed, and
/// `Err` on a corrupt length prefix. The event-loop server's frame
/// accumulator; the byte layout is exactly what [`read_batch`] reads
/// from a stream.
pub fn parse_batch_frame(buf: &[u8]) -> std::io::Result<Option<(usize, u32)>> {
    let Some(len4) = buf.get(..4) else {
        return Ok(None);
    };
    let len = u32::from_le_bytes(len4.try_into().unwrap()) as usize;
    if !(4..=256 << 20).contains(&len) {
        return Err(std::io::Error::other("bad frame length"));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let count = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    Ok(Some((4 + len, count)))
}

/// Reads a whole batch frame from a stream; `Ok(None)` on clean EOF.
pub fn read_batch<R: std::io::Read>(r: &mut R) -> std::io::Result<Option<(u32, Vec<u8>)>> {
    let mut len4 = [0u8; 4];
    match r.read_exact(&mut len4) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len4) as usize;
    if !(4..=256 << 20).contains(&len) {
        return Err(std::io::Error::other("bad frame length"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let count = u32::from_le_bytes(body[..4].try_into().unwrap());
    body.drain(..4);
    Ok(Some((count, body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let mut p = &buf[..];
        assert_eq!(Request::decode(&mut p), Some(r));
        assert!(p.is_empty());
    }

    fn roundtrip_resp(r: Response) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let mut p = &buf[..];
        assert_eq!(Response::decode(&mut p), Some(r));
        assert!(p.is_empty());
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Get {
            key: b"k".to_vec(),
            cols: None,
        });
        roundtrip_req(Request::Get {
            key: vec![],
            cols: Some(vec![0, 3, 9]),
        });
        roundtrip_req(Request::Put {
            key: b"key\0binary".to_vec(),
            cols: vec![(0, b"a".to_vec()), (7, vec![])],
        });
        roundtrip_req(Request::Remove {
            key: b"gone".to_vec(),
        });
        roundtrip_req(Request::Scan {
            key: b"start".to_vec(),
            count: 100,
            cols: Some(vec![2]),
            resume: None,
        });
        roundtrip_req(Request::Scan {
            key: b"start".to_vec(),
            count: 7,
            cols: None,
            resume: Some(ScanResume::Resume(0xdead_beef_cafe_f00d)),
        });
        roundtrip_req(Request::Scan {
            key: b"start".to_vec(),
            count: 7,
            cols: None,
            resume: Some(ScanResume::Start(42)),
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Flush);
        roundtrip_req(Request::Sync);
        roundtrip_req(Request::StatsEx);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Value(None));
        roundtrip_resp(Response::Value(Some(vec![b"a".to_vec(), vec![]])));
        roundtrip_resp(Response::PutOk(u64::MAX));
        roundtrip_resp(Response::RemoveOk(true));
        roundtrip_resp(Response::Rows(vec![
            (b"k1".to_vec(), vec![b"v1".to_vec()]),
            (b"k2".to_vec(), vec![b"v2".to_vec(), b"w2".to_vec()]),
        ]));
        roundtrip_resp(Response::Stats(StatsReply {
            checkpoints: 3,
            last_checkpoint_start_ts: u64::MAX - 1,
            log_bytes: 1 << 40,
            log_segments: 17,
            segments_truncated: 9,
            cache_lookups: 1_000_000,
            cache_hits: 900_000,
            cache_stale: 123,
            cache_write_hits: 55_000,
            cache_write_stale: 77,
            cache_scan_resumes: 4_321,
            cache_scan_evictions: 12,
            repl_role: 1,
            repl_followers: 2,
            repl_lag_bytes: 1 << 33,
            repl_lag_ts_us: 250_000,
            indirect_reads: 88_000,
            value_cache_hits: 70_500,
            gc_rewritten_bytes: 9 << 20,
            live_segment_bytes: 3 << 30,
            readahead_batches: 12_345,
            coalesced_bytes: 6 << 25,
            shared_misses: 432,
            worker_conns: vec![3, 0, 7, 1],
        }));
        roundtrip_resp(Response::Stats(StatsReply::default()));
        roundtrip_resp(Response::StatsEx(StatsExReply::default()));
        roundtrip_resp(Response::Err("log dead: No space left on device".into()));
        roundtrip_resp(Response::Err(String::new()));
        roundtrip_resp(Response::Redirect(
            "read-only replica; primary at 127.0.0.1:7070".into(),
        ));
    }

    #[test]
    fn stats_reply_tolerates_field_count_skew() {
        // An older peer sends fewer fixed counters: the ones it never
        // heard of decode as zero, and worker_conns still lines up.
        let mut buf = vec![0x85];
        buf.extend_from_slice(&20u16.to_le_bytes());
        for v in 1..=20u64 {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&9u64.to_le_bytes());
        let mut p = &buf[..];
        let Some(Response::Stats(s)) = Response::decode(&mut p) else {
            panic!("old-peer stats frame must decode");
        };
        assert!(p.is_empty());
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.live_segment_bytes, 20);
        assert_eq!(s.readahead_batches, 0);
        assert_eq!(s.coalesced_bytes, 0);
        assert_eq!(s.shared_misses, 0);
        assert_eq!(s.worker_conns, vec![9]);

        // A newer peer appends counters we don't know: they are skipped
        // and worker_conns still lines up.
        let mut buf = vec![0x85];
        buf.extend_from_slice(&25u16.to_le_bytes());
        for v in 1..=25u64 {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut p = &buf[..];
        let Some(Response::Stats(s)) = Response::decode(&mut p) else {
            panic!("new-peer stats frame must decode");
        };
        assert!(p.is_empty());
        assert_eq!(s.shared_misses, 23);
        assert!(s.worker_conns.is_empty());
    }

    #[test]
    fn statsex_roundtrips_populated_snapshot() {
        // Record into a real recorder so the snapshot exercises the
        // sparse encoding with realistic bucket spreads per kind.
        let obs = std::sync::Arc::new(mtobs::Obs::default());
        let rec = obs.recorder();
        for i in 0..1000u64 {
            rec.record(mtobs::Kind::GetHit, 300 + i);
            rec.record(mtobs::Kind::Put, 9_000 + i * 17);
        }
        rec.record(mtobs::Kind::Scan, 5_000_000);
        obs.global().record(mtobs::Kind::Checkpoint, 120_000_000);
        obs.global().record(mtobs::Kind::WalForce, u64::MAX); // saturates
        let mut snap = obs.snapshot();
        snap.traces_sampled = 42;
        snap.slow_ops = 7;

        let reply = StatsExReply { snap };
        let mut buf = Vec::new();
        Response::StatsEx(reply.clone()).encode(&mut buf);
        let mut p = &buf[..];
        let got = Response::decode(&mut p).expect("decodes");
        assert!(p.is_empty());
        let Response::StatsEx(got) = got else {
            panic!("wrong variant: {got:?}");
        };
        assert_eq!(got, reply);
        assert_eq!(got.snap.kind(mtobs::Kind::GetHit).count(), 1000);
        assert_eq!(got.snap.kind(mtobs::Kind::Put).count(), 1000);
        assert_eq!(got.snap.kind(mtobs::Kind::Scan).count(), 1);
        // Untouched kinds decode back as empty.
        assert_eq!(got.snap.kind(mtobs::Kind::GcPass).count(), 0);
        // Sparse: the frame is far smaller than 15 kinds x 156 buckets
        // of dense u64s would be.
        assert!(buf.len() < 2048, "sparse frame too large: {}", buf.len());
    }

    #[test]
    fn statsex_decode_rejects_truncated_and_bad_kind() {
        let obs = std::sync::Arc::new(mtobs::Obs::default());
        obs.global().record(mtobs::Kind::GetHit, 1234);
        let reply = StatsExReply {
            snap: obs.snapshot(),
        };
        let mut buf = Vec::new();
        Response::StatsEx(reply).encode(&mut buf);
        // Truncation anywhere inside the frame must fail cleanly.
        for cut in 1..buf.len() {
            let mut p = &buf[..cut];
            assert_eq!(Response::decode(&mut p), None, "cut at {cut}");
        }
        // A kind index past Kind::COUNT must be rejected, not panic.
        let mut bad = buf.clone();
        bad[1 + 16 + 1] = 0xee; // opcode, gauges, nkinds, then first kind id
        let mut p = &bad[..];
        assert_eq!(Response::decode(&mut p), None);
    }

    #[test]
    fn batch_framing() {
        let mut body = Vec::new();
        Request::Remove { key: b"x".to_vec() }.encode(&mut body);
        Request::Remove { key: b"y".to_vec() }.encode(&mut body);
        let framed = frame_batch(2, &body);
        let mut cursor = std::io::Cursor::new(&framed);
        let (count, got) = read_batch(&mut cursor).unwrap().unwrap();
        assert_eq!(count, 2);
        assert_eq!(got, body);
        // EOF afterwards.
        assert!(read_batch(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn borrowed_writers_match_owned_encoding() {
        // Value(Some): byte-identical to Response::encode.
        let cols = [b"alpha".as_slice(), b"".as_slice(), b"gamma".as_slice()];
        let mut owned = Vec::new();
        Response::Value(Some(cols.iter().map(|c| c.to_vec()).collect())).encode(&mut owned);
        let mut borrowed = Vec::new();
        write_value_borrowed(&mut borrowed, cols.len(), cols.iter().copied());
        assert_eq!(owned, borrowed);

        // Value(None).
        let mut owned = Vec::new();
        Response::Value(None).encode(&mut owned);
        let mut borrowed = Vec::new();
        write_value_none(&mut borrowed);
        assert_eq!(owned, borrowed);

        // Rows: byte-identical including the patched row count.
        let rows = [
            (b"k1".as_slice(), vec![b"v1".as_slice()]),
            (b"k2".as_slice(), vec![b"v2".as_slice(), b"w2".as_slice()]),
        ];
        let mut owned = Vec::new();
        Response::Rows(
            rows.iter()
                .map(|(k, cs)| (k.to_vec(), cs.iter().map(|c| c.to_vec()).collect()))
                .collect(),
        )
        .encode(&mut owned);
        let mut borrowed = Vec::new();
        let mut w = RowsWriter::begin(&mut borrowed);
        for (k, cs) in &rows {
            w.push_row(k, cs.len(), cs.iter().copied());
        }
        w.finish();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn patched_frame_matches_frame_batch() {
        let mut body = Vec::new();
        Request::Remove { key: b"x".to_vec() }.encode(&mut body);
        Request::Remove { key: b"y".to_vec() }.encode(&mut body);
        let eager = frame_batch(2, &body);
        let mut patched = Vec::new();
        let mark = begin_batch(&mut patched);
        patched.extend_from_slice(&body);
        finish_batch(&mut patched, mark, 2);
        assert_eq!(eager, patched);
        // Patching also works mid-buffer (a non-zero mark).
        let mut buf = b"junk".to_vec();
        let mark = begin_batch(&mut buf);
        buf.extend_from_slice(&body);
        finish_batch(&mut buf, mark, 2);
        assert_eq!(&buf[4..], &eager[..]);
    }

    #[test]
    fn truncated_decode_fails_cleanly() {
        let mut buf = Vec::new();
        Request::Put {
            key: b"key".to_vec(),
            cols: vec![(1, b"data".to_vec())],
        }
        .encode(&mut buf);
        for cut in 1..buf.len() {
            let mut p = &buf[..cut];
            // Must not panic; may return None or (for tiny prefixes that
            // happen to parse) a different value — never UB.
            let _ = Request::decode(&mut p);
        }
    }
}
