//! Client library with batched, pipelined queries.
//!
//! §7 of the paper: "Batched query support is vital on these benchmarks."
//! The client accumulates requests into a batch, sends them in one write,
//! and reads the positionally-matched responses. Keeping several batches
//! in flight ([`Client::send_batch`] without an immediate
//! [`Client::recv_batch`], or the [`Client::send_one`] /
//! [`Client::recv_one`] pair for single-op frames) hides round-trip
//! latency the way the paper's client aggregators drive the server —
//! and hands the event-loop server simultaneously-pending frames it can
//! aggregate across connections.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{
    frame_batch, read_batch, Request, Response, ScanResume, StatsExReply, StatsReply,
};

/// One `(key, columns)` row returned by scans.
pub type Row = (Vec<u8>, Vec<Vec<u8>>);

/// One `(key, column updates)` put within a client batch.
pub type PutSpec = (Vec<u8>, Vec<(u16, Vec<u8>)>);

/// A synchronous connection to a Masstree server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    pending: Vec<u8>,
    pending_count: usize,
    /// Batches in flight (their request counts, FIFO).
    in_flight: VecDeque<usize>,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let conn = TcpStream::connect(addr)?;
        conn.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::with_capacity(1 << 20, conn.try_clone()?),
            writer: BufWriter::with_capacity(1 << 20, conn),
            pending: Vec::with_capacity(1 << 16),
            pending_count: 0,
            in_flight: VecDeque::new(),
        })
    }

    /// Queues a request into the current batch (no I/O yet).
    pub fn queue(&mut self, req: &Request) {
        req.encode(&mut self.pending);
        self.pending_count += 1;
    }

    /// Sends the current batch without waiting for its responses
    /// (pipelining). Returns the number of requests sent.
    pub fn send_batch(&mut self) -> std::io::Result<usize> {
        if self.pending_count == 0 {
            return Ok(0);
        }
        let framed = frame_batch(self.pending_count, &self.pending);
        self.writer.write_all(&framed)?;
        self.writer.flush()?;
        self.in_flight.push_back(self.pending_count);
        let n = self.pending_count;
        self.pending.clear();
        self.pending_count = 0;
        Ok(n)
    }

    /// Receives the oldest in-flight batch's responses.
    pub fn recv_batch(&mut self) -> std::io::Result<Vec<Response>> {
        let expected = self
            .in_flight
            .pop_front()
            .ok_or_else(|| std::io::Error::other("no batch in flight"))?;
        let Some((count, body)) = read_batch(&mut self.reader)? else {
            return Err(std::io::Error::other("server closed connection"));
        };
        if count as usize != expected {
            return Err(std::io::Error::other("response count mismatch"));
        }
        let mut p = &body[..];
        let mut out = Vec::with_capacity(expected);
        for _ in 0..expected {
            out.push(
                Response::decode(&mut p)
                    .ok_or_else(|| std::io::Error::other("malformed response"))?,
            );
        }
        Ok(out)
    }

    /// Number of batches currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Sends `req` immediately as its own single-request frame without
    /// waiting for the response — the building block of a pipelined
    /// point-op stream: prime `depth` frames with this, then alternate
    /// [`Client::recv_one`] / `send_one` to hold the depth steady. (A
    /// stream of single-op frames is also exactly the shape the
    /// event-loop server's cross-connection aggregation recovers batch
    /// throughput from.)
    pub fn send_one(&mut self, req: &Request) -> std::io::Result<()> {
        debug_assert_eq!(self.pending_count, 0, "send_one atop a queued batch");
        self.queue(req);
        self.send_batch()?;
        Ok(())
    }

    /// Receives the oldest in-flight single-request frame's response
    /// (counterpart of [`Client::send_one`]).
    pub fn recv_one(&mut self) -> std::io::Result<Response> {
        let mut resps = self.recv_batch()?;
        match resps.len() {
            1 => Ok(resps.pop().expect("len checked")),
            n => Err(std::io::Error::other(format!(
                "recv_one on a {n}-request frame"
            ))),
        }
    }

    /// Sends the current batch and waits for its responses.
    pub fn execute_batch(&mut self) -> std::io::Result<Vec<Response>> {
        self.send_batch()?;
        self.recv_batch()
    }

    // ---- convenience single-operation wrappers ----

    pub fn get(
        &mut self,
        key: &[u8],
        cols: Option<Vec<u16>>,
    ) -> std::io::Result<Option<Vec<Vec<u8>>>> {
        self.queue(&Request::Get {
            key: key.to_vec(),
            cols,
        });
        match self.execute_batch()?.pop() {
            Some(Response::Value(v)) => Ok(v),
            _ => Err(std::io::Error::other("unexpected response")),
        }
    }

    /// Errors with the server's redirect payload (naming the primary)
    /// when the target is a read-only replica.
    pub fn put(&mut self, key: &[u8], cols: Vec<(u16, Vec<u8>)>) -> std::io::Result<u64> {
        self.queue(&Request::Put {
            key: key.to_vec(),
            cols,
        });
        match self.execute_batch()?.pop() {
            Some(Response::PutOk(v)) => Ok(v),
            Some(Response::Redirect(msg)) | Some(Response::Err(msg)) => {
                Err(std::io::Error::other(msg))
            }
            _ => Err(std::io::Error::other("unexpected response")),
        }
    }

    /// Sends one batch of gets and returns the positionally matched
    /// values. The server executes the whole batch through its
    /// interleaved traversal engine, so this is the fastest way to read
    /// many keys.
    pub fn multi_get(
        &mut self,
        keys: &[&[u8]],
        cols: Option<Vec<u16>>,
    ) -> std::io::Result<Vec<Option<Vec<Vec<u8>>>>> {
        for key in keys {
            self.queue(&Request::Get {
                key: key.to_vec(),
                cols: cols.clone(),
            });
        }
        self.execute_batch()?
            .into_iter()
            .map(|r| match r {
                Response::Value(v) => Ok(v),
                _ => Err(std::io::Error::other("unexpected response")),
            })
            .collect()
    }

    /// Sends one batch of single-column puts and returns the assigned
    /// value versions, positionally matched.
    pub fn multi_put(&mut self, ops: Vec<PutSpec>) -> std::io::Result<Vec<u64>> {
        for (key, cols) in ops {
            self.queue(&Request::Put { key, cols });
        }
        self.execute_batch()?
            .into_iter()
            .map(|r| match r {
                Response::PutOk(v) => Ok(v),
                Response::Redirect(msg) | Response::Err(msg) => Err(std::io::Error::other(msg)),
                _ => Err(std::io::Error::other("unexpected response")),
            })
            .collect()
    }

    /// Errors with the server's redirect payload (naming the primary)
    /// when the target is a read-only replica.
    pub fn remove(&mut self, key: &[u8]) -> std::io::Result<bool> {
        self.queue(&Request::Remove { key: key.to_vec() });
        match self.execute_batch()?.pop() {
            Some(Response::RemoveOk(e)) => Ok(e),
            Some(Response::Redirect(msg)) | Some(Response::Err(msg)) => {
                Err(std::io::Error::other(msg))
            }
            _ => Err(std::io::Error::other("unexpected response")),
        }
    }

    /// Reads the server's durability stats (checkpoint epoch, log
    /// bytes/segments). Tests poll this to wait for a background
    /// checkpoint instead of sleeping.
    pub fn stats(&mut self) -> std::io::Result<StatsReply> {
        self.queue(&Request::Stats);
        match self.execute_batch()?.pop() {
            Some(Response::Stats(s)) => Ok(s),
            _ => Err(std::io::Error::other("unexpected response")),
        }
    }

    /// Reads the server's observability snapshot: merged per-op-kind
    /// latency histograms (every worker's traffic, flushed on read)
    /// plus tracing gauges. Render percentiles client-side with
    /// `mtobs::HistSnapshot::percentile`, or deltas between two calls
    /// with `mtobs::Snapshot::delta`.
    pub fn stats_ex(&mut self) -> std::io::Result<StatsExReply> {
        self.queue(&Request::StatsEx);
        match self.execute_batch()?.pop() {
            Some(Response::StatsEx(s)) => Ok(s),
            _ => Err(std::io::Error::other("unexpected response")),
        }
    }

    /// Forces this connection's log, runs a full durability cycle on the
    /// server (checkpoint + log truncation + checkpoint pruning), and
    /// returns the stats afterwards.
    ///
    /// Errors if the server could not guarantee durability (its log
    /// writer died on an I/O error, or the checkpoint cycle failed) —
    /// a returned `StatsReply` really means the data is safe.
    pub fn flush(&mut self) -> std::io::Result<StatsReply> {
        self.queue(&Request::Flush);
        match self.execute_batch()?.pop() {
            Some(Response::Stats(s)) => Ok(s),
            Some(Response::Redirect(msg)) | Some(Response::Err(msg)) => {
                Err(std::io::Error::other(msg))
            }
            _ => Err(std::io::Error::other("unexpected response")),
        }
    }

    /// Group-commit barrier: forces this connection's log on the server
    /// (everything this connection logged is durable when the reply
    /// arrives) **without** running a checkpoint cycle — the lightweight
    /// alternative to [`Client::flush`] for clients that only want
    /// durability confirmation of their own writes.
    ///
    /// Errors if the server's log writer died (an I/O error) — a
    /// returned `StatsReply` really means the writes are safe.
    pub fn sync(&mut self) -> std::io::Result<StatsReply> {
        self.queue(&Request::Sync);
        match self.execute_batch()?.pop() {
            Some(Response::Stats(s)) => Ok(s),
            Some(Response::Redirect(msg)) | Some(Response::Err(msg)) => {
                Err(std::io::Error::other(msg))
            }
            _ => Err(std::io::Error::other("unexpected response")),
        }
    }

    pub fn scan(
        &mut self,
        key: &[u8],
        count: u32,
        cols: Option<Vec<u16>>,
    ) -> std::io::Result<Vec<Row>> {
        self.queue(&Request::Scan {
            key: key.to_vec(),
            count,
            cols,
            resume: None,
        });
        match self.execute_batch()?.pop() {
            Some(Response::Rows(rows)) => Ok(rows),
            _ => Err(std::io::Error::other("unexpected response")),
        }
    }

    /// Opens (or restarts) a resumable chunked scan: descends from
    /// `key` and registers the server-side cursor under the
    /// client-chosen `token`, overwriting any cursor the token already
    /// named. Follow-up chunks use [`Client::scan_resume`] with the
    /// same token. A short (< `count`) result means the range is
    /// exhausted. Tokens are scoped to this connection.
    pub fn scan_start(
        &mut self,
        key: &[u8],
        count: u32,
        cols: Option<Vec<u16>>,
        token: u64,
    ) -> std::io::Result<Vec<Row>> {
        self.scan_chunk(key, count, cols, ScanResume::Start(token))
    }

    /// Continues a resumable chunked scan opened with
    /// [`Client::scan_start`]: the server re-enters the tree at the
    /// remembered border node (zero descent). Strict: if the token has
    /// no live cursor — never started on this connection (e.g. after a
    /// reconnect; tokens are connection-scoped) or evicted at the
    /// server's per-connection cursor cap — this errors with
    /// `"unknown scan token"` instead of silently restarting. Recover
    /// by calling `scan_start` at the stream's continuation key (one
    /// past the last row received), which costs one descent.
    pub fn scan_resume(
        &mut self,
        key: &[u8],
        count: u32,
        cols: Option<Vec<u16>>,
        token: u64,
    ) -> std::io::Result<Vec<Row>> {
        self.scan_chunk(key, count, cols, ScanResume::Resume(token))
    }

    fn scan_chunk(
        &mut self,
        key: &[u8],
        count: u32,
        cols: Option<Vec<u16>>,
        resume: ScanResume,
    ) -> std::io::Result<Vec<Row>> {
        self.queue(&Request::Scan {
            key: key.to_vec(),
            count,
            cols,
            resume: Some(resume),
        });
        match self.execute_batch()?.pop() {
            Some(Response::Rows(rows)) => Ok(rows),
            Some(Response::Err(msg)) => Err(std::io::Error::other(msg)),
            _ => Err(std::io::Error::other("unexpected response")),
        }
    }
}
